"""``repro metrics`` subcommand: inspect telemetry locally or over HTTP.

Two modes:

* ``repro metrics --url http://host:8000`` -- fetch the service's
  ``/metrics``, validate it with the strict exposition parser (so a
  malformed payload is an error here, not in a scraper), and echo it.
* ``repro metrics fig11 --jobs 4`` -- run scenarios in-process with the
  registry live, then echo the resulting exposition; the quickest way to
  see engine/sweep/cache series for one workload.
"""

from __future__ import annotations

import argparse
from typing import List

from .logs import echo
from .prometheus import parse_prometheus, render_prometheus


def metrics_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Show telemetry as Prometheus text exposition.",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        metavar="SCENARIO",
        help="scenarios to run in-process before dumping metrics",
    )
    parser.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="fetch <URL>/metrics from a running service instead",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for in-process scenario runs",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="scenario parameter override (repeatable)",
    )
    args = parser.parse_args(argv)

    if args.url is not None:
        if args.scenarios:
            parser.error("--url and in-process scenarios are mutually exclusive")
        from urllib.request import urlopen

        url = args.url.rstrip("/") + "/metrics"
        with urlopen(url) as response:
            text = response.read().decode("utf-8")
        parse_prometheus(text)  # strict validation before echoing
        echo(text.rstrip("\n"))
        return 0

    from repro.estimator.serialize import parse_override_value

    params = {}
    for pair in args.param:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            parser.error(f"--param expects KEY=VALUE, got {pair!r}")
        params[key] = parse_override_value(raw)

    if args.scenarios:
        from repro.estimator.registry import get_scenario

        for name in args.scenarios:
            get_scenario(name).run(jobs=args.jobs, **params)
    echo(render_prometheus().rstrip("\n"))
    return 0
