"""Run metadata stamped into BENCH_*.json so perf points are attributable.

A BENCH number without provenance cannot be compared across PRs; every
benchmark output now carries the source-tree fingerprint
(:func:`repro.core.cache.code_version`), a timestamp (harness-supplied
via ``BENCH_TIMESTAMP`` when reproducibility matters), the hostname, and
interpreter/numpy versions.
"""

from __future__ import annotations

import os
import platform
import socket
import time
from typing import Any, Dict, Optional


def run_metadata(timestamp: Optional[str] = None) -> Dict[str, Any]:
    """Provenance dict for benchmark outputs.

    ``timestamp`` (or env ``BENCH_TIMESTAMP``) lets the harness pin a
    run time; otherwise the current epoch second is used.
    """
    from repro.core.cache import code_version

    if timestamp is None:
        timestamp = os.environ.get("BENCH_TIMESTAMP") or str(int(time.time()))
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "code_version": code_version(),
        "timestamp": timestamp,
        "hostname": socket.gethostname(),
        "python": platform.python_version(),
        "numpy": numpy_version,
    }
