"""Prometheus text exposition (format 0.0.4): renderer and strict parser.

:func:`render_prometheus` turns a registry collect() into the scrape
payload served at ``/metrics``.  :func:`parse_prometheus` is the
validating inverse used by CI's curl test -- it enforces the grammar
(metric-name charset, label syntax, known TYPEs) *and* the histogram
invariants (cumulative monotone buckets, ``+Inf`` bucket == ``_count``)
so a malformed exposition fails the build instead of a scraper.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Tuple

from .metrics import REGISTRY, MetricsRegistry, Snapshot

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames: Tuple[str, ...], labelvalues: Tuple[str, ...],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label_value(extra[1])}"')
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_prometheus(registry: Optional[MetricsRegistry] = None,
                      families: Optional[Snapshot] = None) -> str:
    """Render a registry (default: the global one) as exposition text.

    ``families`` overrides the registry collect() when the caller has a
    pre-merged snapshot (e.g. rendering a worker delta for debugging).
    """
    if families is None:
        families = (registry or REGISTRY).collect()
    lines: List[str] = []
    for name in sorted(families):
        family = families[name]
        kind = family["type"]
        labelnames = tuple(family["labelnames"])
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(family["series"]):
            value = family["series"][key]
            if kind == "histogram":
                bounds = value["bounds"]
                cumulative = 0
                for bound, bucket_count in zip(bounds, value["buckets"]):
                    cumulative += bucket_count
                    labels = _format_labels(
                        labelnames, key, ("le", _format_value(float(bound)))
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                cumulative += value["buckets"][-1]
                labels = _format_labels(labelnames, key, ("le", "+Inf"))
                lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _format_labels(labelnames, key)
                lines.append(f"{name}_sum{labels} {_format_value(value['sum'])}")
                lines.append(f"{name}_count{labels} {cumulative}")
            else:
                labels = _format_labels(labelnames, key)
                lines.append(f"{name}{labels} {_format_value(float(value))}")
    return "\n".join(lines) + "\n"


def _parse_value(text: str, line_no: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"line {line_no}: invalid sample value {text!r}")


def _parse_labels(text: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    position = 0
    while position < len(text):
        match = _LABEL_PAIR_RE.match(text, position)
        if match is None:
            raise ValueError(f"line {line_no}: malformed label set {{{text}}}")
        name = match.group("name")
        if name in labels:
            raise ValueError(f"line {line_no}: duplicate label {name!r}")
        value = match.group("value")
        value = value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
        labels[name] = value
        position = match.end()
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse exposition text; raise ``ValueError`` on any violation.

    Returns ``{family_name: {"type", "help", "samples": [(name, labels,
    value)]}}``.  Histogram families additionally get per-labelset bucket
    monotonicity and ``+Inf == _count`` checks.
    """
    families: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    seen_samples = set()
    for line_no, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if not _NAME_RE.match(name):
                raise ValueError(f"line {line_no}: invalid metric name {name!r}")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                raise ValueError(f"line {line_no}: malformed TYPE line")
            name, kind = parts
            if not _NAME_RE.match(name):
                raise ValueError(f"line {line_no}: invalid metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {line_no}: unknown metric type {kind!r}")
            if name in types:
                raise ValueError(f"line {line_no}: duplicate TYPE for {name!r}")
            types[name] = kind
            families.setdefault(name, {"type": kind, "help": "", "samples": []})
            families[name]["type"] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line.strip())
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample line {line!r}")
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", line_no)
        for label_name in labels:
            if not _LABEL_RE.match(label_name):
                raise ValueError(
                    f"line {line_no}: invalid label name {label_name!r}"
                )
        value = _parse_value(match.group("value"), line_no)
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and types.get(base) in ("histogram", "summary"):
                family_name = base
                break
        if family_name not in families:
            raise ValueError(
                f"line {line_no}: sample {sample_name!r} precedes its "
                f"HELP/TYPE metadata"
            )
        dedup_key = (sample_name, tuple(sorted(labels.items())))
        if dedup_key in seen_samples:
            raise ValueError(f"line {line_no}: duplicate sample {sample_name!r}")
        seen_samples.add(dedup_key)
        families[family_name]["samples"].append((sample_name, labels, value))

    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        _check_histogram(name, family["samples"])
    return families


def _check_histogram(name: str, samples) -> None:
    buckets: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
    for sample_name, labels, value in samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                raise ValueError(f"histogram {name!r}: bucket without le label")
            le = math.inf if labels["le"] == "+Inf" else float(labels["le"])
            buckets.setdefault(key, []).append((le, value))
        elif sample_name == f"{name}_count":
            counts[key] = value
    for key, series in buckets.items():
        series.sort(key=lambda pair: pair[0])
        if not series or not math.isinf(series[-1][0]):
            raise ValueError(f"histogram {name!r}: missing +Inf bucket")
        previous = -math.inf
        for le, value in series:
            if value < previous:
                raise ValueError(
                    f"histogram {name!r}: bucket counts not monotone"
                )
            previous = value
        if key in counts and counts[key] != series[-1][1]:
            raise ValueError(
                f"histogram {name!r}: _count != +Inf bucket count"
            )
        if key not in counts:
            raise ValueError(f"histogram {name!r}: missing _count sample")
