"""Logging and CLI-output sinks for repro library code.

Library modules must not call bare ``print()`` (enforced by the
``source_lint`` print-ban rule); diagnostics go through
:func:`get_logger` and intentional CLI output through :func:`echo`.
``REPRO_DEBUG=1`` attaches a stderr handler at DEBUG so fallback
reasons, cache churn, and span summaries become visible without code
changes.
"""

from __future__ import annotations

import logging
import os
import sys

_ROOT_NAME = "repro"
_configured = False


def _configure() -> None:
    global _configured
    if _configured:
        return
    _configured = True
    root = logging.getLogger(_ROOT_NAME)
    if os.environ.get("REPRO_DEBUG") == "1" and not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
        root.setLevel(logging.DEBUG)


def get_logger(name: str = _ROOT_NAME) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (configured on first use)."""
    _configure()
    if name != _ROOT_NAME and not name.startswith(_ROOT_NAME + "."):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def echo(message: str = "") -> None:
    """Intentional user-facing CLI output (the sanctioned print substitute).

    Flushes so service-startup banners appear promptly even when stdout
    is a pipe (scripts wait on them).
    """
    sys.stdout.write(str(message) + "\n")
    sys.stdout.flush()
