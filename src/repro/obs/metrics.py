"""Mergeable metrics registry: counters, gauges, fixed-bucket histograms.

The measurement substrate for every hot subsystem (decoding engine,
periodic compiler, sweep engine, HTTP service).  Design constraints, in
order:

* **Worker-count invariance** -- the engines ship work to
  ``multiprocessing`` pools, and PR 1's contract is that results never
  depend on the worker count.  Telemetry extends that contract: a worker
  captures :func:`snapshot` before a shard, computes the
  :func:`delta_since` after, and ships the delta home with the shard
  result; the parent :func:`merge`\\ s it.  Counters and histogram bucket
  arrays are pure sums, so ``jobs=1`` and ``jobs=4`` merge to identical
  deterministic series (wall-clock-valued series differ in *value*, never
  in shape).
* **Mergeable histograms** -- fixed bucket bounds chosen at creation;
  observation lands in one bucket, merging is element-wise addition, and
  percentiles are interpolated from the cumulative bucket counts
  (:meth:`Histogram.percentile`).  This is what lets decode-latency
  p50/p99 survive sharding, process boundaries, and Prometheus scrapes
  unchanged.
* **Near-zero overhead, and a hard off switch** -- recording is a lock,
  a float add, and (histograms) a bisect.  :func:`set_enabled` (or
  ``REPRO_METRICS=0``) turns every record call into a single attribute
  check; ``bench_decode_engine.py`` gates the enabled/disabled throughput
  ratio at 3%.
* **Registry idiom** -- metrics are owned by a process-wide
  :data:`REGISTRY` and created with :func:`counter` / :func:`gauge` /
  :func:`histogram`, get-or-create by name like the decoder/noise/
  scenario registries; re-declaring a name with a different type or
  label set is an error.

Collectors (:func:`register_collector`) contribute *computed* gauge
families at scrape time -- cache hit counters, job-queue depth -- without
the owning subsystem pushing values on every change.  Collected series
appear in :func:`collect` (and therefore ``/metrics``) but never in
deltas: a gauge is a statement about *this* process now, not an additive
quantity.
"""

from __future__ import annotations

import bisect
import math
import os
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]
Snapshot = Dict[str, Dict[str, Any]]

# Latency buckets (seconds): log-spaced from 10us to 10s, the span between
# a single cached decode and a cold d=11 DEM extraction.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Count buckets (powers of two): for size-like observations such as
# unique syndromes per decode batch.
COUNT_BUCKETS: Tuple[float, ...] = tuple(float(2 ** k) for k in range(17))

_TYPES = ("counter", "gauge", "histogram")


def _label_key(labelnames: Tuple[str, ...], labels: Dict[str, str]) -> LabelValues:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """One family: a name, a type, label names, and per-labelset series."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: Dict[LabelValues, Any] = {}
        if not self.labelnames:
            self._series[()] = self._new_value()

    # -- subclass hooks -----------------------------------------------------

    def _new_value(self) -> Any:
        return 0.0

    # -- label handling -----------------------------------------------------

    def labels(self, **labels: Any) -> "_Child":
        key = _label_key(self.labelnames, {k: str(v) for k, v in labels.items()})
        with self._lock:
            if key not in self._series:
                self._series[key] = self._new_value()
        return _Child(self, key)

    def _value_snapshot(self, value: Any) -> Any:
        return value

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            series = {
                key: self._value_snapshot(value)
                for key, value in self._series.items()
            }
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": self.labelnames,
            "series": series,
        }

    def _reset(self) -> None:
        with self._lock:
            for key in self._series:
                self._series[key] = self._new_value()


class _Child:
    """A family bound to one label-value tuple."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: _Metric, key: LabelValues) -> None:
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, amount)

    def set(self, value: float) -> None:
        self._metric._set(self._key, value)

    def observe(self, value: float) -> None:
        self._metric._observe(self._key, value)

    @property
    def value(self) -> Any:
        with self._metric._lock:
            return self._metric._value_snapshot(self._metric._series[self._key])


class Counter(_Metric):
    """Monotonic float counter; ``inc`` only."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._inc((), amount)

    def _inc(self, key: LabelValues, amount: float) -> None:
        if not _ENABLED.on:
            return
        if amount < 0:
            raise ValueError("counters only increase")
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._series[()]


class Gauge(_Metric):
    """Last-write-wins value; excluded from deltas and merging."""

    kind = "gauge"

    def set(self, value: float) -> None:
        self._set((), value)

    def inc(self, amount: float = 1.0) -> None:
        self._inc((), amount)

    def _set(self, key: LabelValues, value: float) -> None:
        if not _ENABLED.on:
            return
        with self._lock:
            self._series[key] = float(value)

    def _inc(self, key: LabelValues, amount: float) -> None:
        if not _ENABLED.on:
            return
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._series[()]


class _HistValue:
    """Mutable per-series histogram state: bucket counts + sum + count."""

    __slots__ = ("buckets", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.buckets = [0] * num_buckets  # one per bound, plus +Inf at the end
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram; merge = element-wise bucket addition.

    ``bounds`` are the finite upper bounds (ascending); an implicit +Inf
    bucket catches the overflow.  An observation lands in the first bucket
    whose bound is >= the value (Prometheus ``le`` semantics, applied
    non-cumulatively here; the exposition cumulates).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        bounds: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be non-empty and ascending")
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValueError("bounds must be finite; +Inf is implicit")
        self.bounds = bounds
        super().__init__(name, help, labelnames)

    def _new_value(self) -> _HistValue:
        return _HistValue(len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self._observe((), value)

    def _observe(self, key: LabelValues, value: float) -> None:
        if not _ENABLED.on:
            return
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._series[key] = self._new_value()
            state.buckets[index] += 1
            state.sum += value
            state.count += 1

    def _value_snapshot(self, value: _HistValue) -> Dict[str, Any]:
        return {
            "bounds": self.bounds,
            "buckets": list(value.buckets),
            "sum": value.sum,
            "count": value.count,
        }

    # -- percentiles --------------------------------------------------------

    @staticmethod
    def percentile_of(series_value: Dict[str, Any], q: float) -> float:
        """Interpolated q-quantile (q in [0, 1]) of one snapshot series.

        Linear interpolation inside the containing bucket (lower edge 0
        for the first); observations in the +Inf bucket report the last
        finite bound.  NaN on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        count = series_value["count"]
        if count == 0:
            return math.nan
        bounds = series_value["bounds"]
        target = q * count
        cumulative = 0
        for index, bucket_count in enumerate(series_value["buckets"]):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count > 0:
                if index >= len(bounds):  # +Inf bucket
                    return float(bounds[-1])
                lower = 0.0 if index == 0 else float(bounds[index - 1])
                upper = float(bounds[index])
                fraction = (target - previous) / bucket_count
                return lower + fraction * (upper - lower)
        return float(bounds[-1])  # pragma: no cover - count > 0 always lands

    def percentile(self, q: float, labels: Optional[Dict[str, Any]] = None) -> float:
        """q-quantile of one series (labels required iff the family has them)."""
        key = _label_key(
            self.labelnames, {k: str(v) for k, v in (labels or {}).items()}
        )
        with self._lock:
            state = self._series.get(key)
            if state is None:
                return math.nan
            value = self._value_snapshot(state)
        return self.percentile_of(value, q)

    def merged_percentile(self, q: float) -> float:
        """q-quantile over every series of the family merged together."""
        merged: Optional[Dict[str, Any]] = None
        with self._lock:
            for state in self._series.values():
                value = self._value_snapshot(state)
                if merged is None:
                    merged = value
                else:
                    merged["buckets"] = [
                        a + b for a, b in zip(merged["buckets"], value["buckets"])
                    ]
                    merged["sum"] += value["sum"]
                    merged["count"] += value["count"]
        if merged is None:
            return math.nan
        return self.percentile_of(merged, q)


class _Enabled:
    __slots__ = ("on",)

    def __init__(self, on: bool) -> None:
        self.on = on


_ENABLED = _Enabled(os.environ.get("REPRO_METRICS", "1") != "0")


def set_enabled(on: bool) -> None:
    """Globally enable/disable metric recording (register stays live)."""
    _ENABLED.on = bool(on)


def enabled() -> bool:
    return _ENABLED.on


@contextmanager
def metrics_disabled() -> Iterator[None]:
    """Temporarily stop recording -- the benchmark A/B switch."""
    previous = _ENABLED.on
    _ENABLED.on = False
    try:
        yield
    finally:
        _ENABLED.on = previous


Collector = Callable[[], Dict[str, Tuple[str, str, Tuple[str, ...], Dict[LabelValues, float]]]]


class MetricsRegistry:
    """Process-wide metric store with snapshot/delta/merge for sharded runs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Collector] = []

    # -- creation (get-or-create, like the other registries) ----------------

    def _declare(self, cls, name: str, help: str, labelnames, **kwargs) -> _Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already declared as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        bounds: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._declare(Histogram, name, help, labelnames, bounds=bounds)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    # -- snapshot / delta / merge -------------------------------------------

    def snapshot(self) -> Snapshot:
        """Plain-data view of every family (pickles across processes)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric.snapshot() for metric in metrics}

    def delta_since(self, base: Snapshot) -> Snapshot:
        """Additive difference of counters/histograms since ``base``.

        Gauges are excluded: they are not additive, and a worker's gauge
        is a statement about the worker process, not about the run.
        Series absent from ``base`` appear whole; zero deltas are dropped
        so shard messages stay small.
        """
        delta: Snapshot = {}
        for name, family in self.snapshot().items():
            if family["type"] == "gauge":
                continue
            base_series = base.get(name, {}).get("series", {})
            changed: Dict[LabelValues, Any] = {}
            for key, value in family["series"].items():
                before = base_series.get(key)
                if family["type"] == "counter":
                    diff = value - (before or 0.0)
                    if diff:
                        changed[key] = diff
                else:
                    if before is None:
                        if value["count"]:
                            changed[key] = value
                        continue
                    if value["count"] == before["count"]:
                        continue
                    changed[key] = {
                        "bounds": value["bounds"],
                        "buckets": [
                            a - b
                            for a, b in zip(value["buckets"], before["buckets"])
                        ],
                        "sum": value["sum"] - before["sum"],
                        "count": value["count"] - before["count"],
                    }
            if changed:
                delta[name] = {**family, "series": changed}
        return delta

    def merge(self, delta: Snapshot) -> None:
        """Fold a shard's delta into this registry (creating as needed)."""
        for name, family in delta.items():
            kind = family["type"]
            if kind == "counter":
                metric = self.counter(name, family["help"], family["labelnames"])
                for key, amount in family["series"].items():
                    with metric._lock:
                        metric._series[key] = metric._series.get(key, 0.0) + amount
            elif kind == "histogram":
                bounds = None
                for value in family["series"].values():
                    bounds = value["bounds"]
                    break
                metric = self.histogram(
                    name, family["help"], family["labelnames"],
                    bounds=bounds or LATENCY_BUCKETS,
                )
                for key, value in family["series"].items():
                    if tuple(value["bounds"]) != metric.bounds:
                        raise ValueError(
                            f"histogram {name!r} bucket bounds differ; "
                            f"cannot merge"
                        )
                    with metric._lock:
                        state = metric._series.get(key)
                        if state is None:
                            state = metric._series[key] = metric._new_value()
                        for i, c in enumerate(value["buckets"]):
                            state.buckets[i] += c
                        state.sum += value["sum"]
                        state.count += value["count"]
            elif kind == "gauge":
                continue  # by construction deltas never carry gauges
            else:  # pragma: no cover - snapshot only emits known kinds
                raise ValueError(f"unknown metric type {kind!r}")

    def reset(self) -> None:
        """Zero every series (families survive); for tests and benchmarks."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()

    # -- collectors ----------------------------------------------------------

    def register_collector(self, collector: Collector) -> None:
        """Add a scrape-time gauge source (cache stats, queue depths)."""
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(self, collector: Collector) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def collect(self) -> Snapshot:
        """Snapshot plus collector-computed gauge families (for exposition)."""
        out = self.snapshot()
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            for name, (kind, help, labelnames, series) in collector().items():
                out[name] = {
                    "type": kind,
                    "help": help,
                    "labelnames": tuple(labelnames),
                    "series": dict(series),
                }
        return out


REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
    """Get-or-create a counter on the default registry."""
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return REGISTRY.gauge(name, help, labelnames)


def histogram(
    name: str,
    help: str = "",
    labelnames: Sequence[str] = (),
    bounds: Sequence[float] = LATENCY_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return REGISTRY.histogram(name, help, labelnames, bounds=bounds)


def snapshot() -> Snapshot:
    return REGISTRY.snapshot()


def delta_since(base: Snapshot) -> Snapshot:
    return REGISTRY.delta_since(base)


def merge(delta: Snapshot) -> None:
    REGISTRY.merge(delta)


def reset() -> None:
    REGISTRY.reset()


def register_collector(collector: Collector) -> None:
    REGISTRY.register_collector(collector)


def unregister_collector(collector: Collector) -> None:
    REGISTRY.unregister_collector(collector)


def percentiles(
    name: str,
    qs: Sequence[float] = (0.5, 0.99),
    labels: Optional[Dict[str, Any]] = None,
) -> Dict[float, float]:
    """Quantiles of a registered histogram, merged across label sets.

    With ``labels`` the quantiles come from that one series; without,
    every series of the family is bucket-merged first (valid because all
    series of a family share bounds).  NaN quantiles mean no observations
    yet.  This is the programmatic surface ROADMAP item 2's
    ``ReactionTiming`` consumes for measured decode latency.
    """
    metric = REGISTRY.get(name)
    if metric is None or metric.kind != "histogram":
        return {q: math.nan for q in qs}
    if labels is not None:
        return {q: metric.percentile(q, labels) for q in qs}
    return {q: metric.merged_percentile(q) for q in qs}
