"""Nested spans with Chrome trace-event export and a text-tree renderer.

Tracing is off by default; :func:`span` then returns a shared null
context manager and costs one global read.  When enabled
(:func:`enable_tracing` or env ``REPRO_TRACE=out.json``), spans record
complete ("X") events -- name, microsecond timestamp/duration, pid/tid,
nesting depth, free-form args -- into an in-process buffer.
:func:`write_trace` emits ``{"traceEvents": [...]}`` loadable in
Perfetto / ``chrome://tracing``; :func:`render_trace_tree` prints the
same data as an indented tree with repeated siblings aggregated, for
``python -m repro --trace``.

Pool workers inherit the enabled flag via fork but their buffers die
with the process, so a trace shows the parent's orchestration (shard
fan-out, merge, report) rather than per-worker decode internals; the
``atexit`` writer checks the recording PID so forked children cannot
clobber the parent's output file.
"""

from __future__ import annotations

import atexit
import functools
import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional


class _State:
    __slots__ = ("enabled", "path", "pid")

    def __init__(self) -> None:
        self.enabled = False
        self.path: Optional[str] = None
        self.pid: Optional[int] = None


_STATE = _State()
_EVENTS: List[Dict[str, Any]] = []
_EVENTS_LOCK = threading.Lock()
_LOCAL = threading.local()


class _NullSpan:
    """Shared do-nothing span; identity-stable so tests can assert no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **args: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "args", "_start_us", "_depth")

    def __init__(self, name: str, args: Dict[str, Any]) -> None:
        self.name = name
        self.args = args
        self._start_us = 0.0
        self._depth = 0

    def __enter__(self) -> "_Span":
        depth = getattr(_LOCAL, "depth", 0)
        self._depth = depth
        _LOCAL.depth = depth + 1
        self._start_us = time.perf_counter() * 1e6
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end_us = time.perf_counter() * 1e6
        _LOCAL.depth = self._depth
        event = {
            "name": self.name,
            "ph": "X",
            "ts": self._start_us,
            "dur": end_us - self._start_us,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": dict(self.args, depth=self._depth),
        }
        with _EVENTS_LOCK:
            _EVENTS.append(event)

    def set(self, **args: Any) -> None:
        self.args.update(args)


def span(name: str, **args: Any):
    """Context manager timing a named region; no-op unless tracing is on."""
    if not _STATE.enabled:
        return _NULL_SPAN
    return _Span(name, args)


def traced(name_or_fn: Any = None) -> Callable:
    """Decorator form of :func:`span`; usable bare or with a name."""

    def decorate(fn: Callable, name: Optional[str] = None) -> Callable:
        label = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _STATE.enabled:
                return fn(*args, **kwargs)
            with _Span(label, {}):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name_or_fn):
        return decorate(name_or_fn)
    return lambda fn: decorate(fn, name_or_fn)


def enable_tracing(path: Optional[str] = None) -> None:
    """Start recording spans; ``path`` arms the at-exit JSON writer."""
    _STATE.enabled = True
    _STATE.path = path
    _STATE.pid = os.getpid()
    clear_trace()


def disable_tracing() -> None:
    _STATE.enabled = False


def tracing_enabled() -> bool:
    return _STATE.enabled


def clear_trace() -> None:
    with _EVENTS_LOCK:
        _EVENTS.clear()


def trace_events() -> List[Dict[str, Any]]:
    with _EVENTS_LOCK:
        return [dict(event) for event in _EVENTS]


def write_trace(path: Optional[str] = None) -> Optional[str]:
    """Write the Chrome trace JSON; returns the path written (or None)."""
    path = path or _STATE.path
    if path is None:
        return None
    payload = {"traceEvents": trace_events(), "displayTimeUnit": "ms"}
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


def _iter_roots(events: List[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
    for event in events:
        if event["args"].get("depth", 0) == 0:
            yield event


def render_trace_tree() -> str:
    """Indented per-thread span tree; repeated siblings aggregate by name."""
    events = trace_events()
    if not events:
        return "(no spans recorded)"
    by_tid: Dict[int, List[Dict[str, Any]]] = {}
    for event in sorted(events, key=lambda e: e["ts"]):
        by_tid.setdefault(event["tid"], []).append(event)
    lines: List[str] = []
    for tid, thread_events in sorted(by_tid.items()):
        lines.append(f"thread {tid}")
        lines.extend(_render_level(thread_events, depth=0, indent="  "))
    return "\n".join(lines)


def _render_level(events: List[Dict[str, Any]], depth: int, indent: str) -> List[str]:
    level = [e for e in events if e["args"].get("depth", 0) == depth]
    groups: Dict[str, List[Dict[str, Any]]] = {}
    order: List[str] = []
    for event in level:
        if event["name"] not in groups:
            order.append(event["name"])
        groups.setdefault(event["name"], []).append(event)
    lines: List[str] = []
    for name in order:
        members = groups[name]
        total_ms = sum(e["dur"] for e in members) / 1000.0
        if len(members) == 1:
            lines.append(f"{indent}{name}  {total_ms:.3f} ms")
        else:
            mean_ms = total_ms / len(members)
            lines.append(
                f"{indent}{name}  x{len(members)}  total {total_ms:.3f} ms"
                f"  mean {mean_ms:.3f} ms"
            )
        children = [
            child
            for member in members
            for child in events
            if child["args"].get("depth", 0) == depth + 1
            and member["ts"] <= child["ts"]
            and child["ts"] + child["dur"] <= member["ts"] + member["dur"] + 1e-3
        ]
        if children:
            lines.extend(_render_level(children, depth + 1, indent + "  "))
    return lines


def _atexit_writer() -> None:
    # Forked pool workers inherit this hook; only the process that called
    # enable_tracing may write, or children truncate the parent's file.
    if _STATE.enabled and _STATE.path and os.getpid() == _STATE.pid:
        write_trace()


_ENV_TRACE = os.environ.get("REPRO_TRACE")
if _ENV_TRACE:
    enable_tracing(_ENV_TRACE)
atexit.register(_atexit_writer)
