"""repro.obs -- telemetry: mergeable metrics, spans, logging, exposition.

Public surface:

* metrics -- :func:`counter`, :func:`gauge`, :func:`histogram`,
  :func:`snapshot`/:func:`delta_since`/:func:`merge` (the worker-delta
  protocol), :func:`percentiles` (programmatic p50/p99 for ROADMAP
  item 2), :func:`set_enabled`/:func:`metrics_disabled` (the benchmark
  overhead gate's A/B switch).
* spans -- :func:`span`, :func:`traced`, :func:`enable_tracing`,
  :func:`write_trace`, :func:`render_trace_tree`
  (``REPRO_TRACE=out.json`` for Perfetto-viewable Chrome traces).
* exposition -- :func:`render_prometheus` / :func:`parse_prometheus`.
* sinks -- :func:`get_logger`, :func:`echo`.

Importing this package registers the cache collector: the counters kept
by :mod:`repro.core.cache` (``cache_stats()`` stays the compat API)
surface as ``repro_cache_{hits,misses,entries}{cache=...}`` gauges at
scrape time without ``core.cache`` knowing obs exists.
"""

from .logs import echo, get_logger
from .meta import run_metadata
from .metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    delta_since,
    enabled,
    gauge,
    histogram,
    merge,
    metrics_disabled,
    percentiles,
    register_collector,
    reset,
    set_enabled,
    snapshot,
    unregister_collector,
)
from .prometheus import parse_prometheus, render_prometheus
from .spans import (
    clear_trace,
    disable_tracing,
    enable_tracing,
    render_trace_tree,
    span,
    trace_events,
    traced,
    tracing_enabled,
    write_trace,
)

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "clear_trace",
    "counter",
    "delta_since",
    "disable_tracing",
    "echo",
    "enable_tracing",
    "enabled",
    "gauge",
    "get_logger",
    "histogram",
    "merge",
    "metrics_disabled",
    "parse_prometheus",
    "percentiles",
    "register_collector",
    "render_prometheus",
    "render_trace_tree",
    "reset",
    "run_metadata",
    "set_enabled",
    "snapshot",
    "span",
    "trace_events",
    "traced",
    "tracing_enabled",
    "unregister_collector",
    "write_trace",
]


def _cache_collector():
    """Expose repro.core.cache counters as scrape-time gauges."""
    from repro.core.cache import cache_stats

    hits = {}
    misses = {}
    entries = {}
    for name, (hit_count, miss_count, currsize) in cache_stats().items():
        key = (name,)
        hits[key] = float(hit_count)
        misses[key] = float(miss_count)
        entries[key] = float(currsize)
    return {
        "repro_cache_hits": (
            "gauge", "Memoization cache hits since process start.",
            ("cache",), hits,
        ),
        "repro_cache_misses": (
            "gauge", "Memoization cache misses since process start.",
            ("cache",), misses,
        ),
        "repro_cache_entries": (
            "gauge", "Current memoization cache entry count.",
            ("cache",), entries,
        ),
    }


register_collector(_cache_collector)
