"""Quantum-chemistry (THC qubitization) building-block estimate (Sec. III.3).

Ground-state energy estimation via qubitization repeats PREPARE and SELECT
blocks ~pi * lambda / (2 * epsilon) times.  Following the paper's reading
of Ref. [77]: PREPARE (and its inverse) is dominated by table lookup
(90-95% of its T count); SELECT splits ~30% lookup / ~70% controlled
rotations, with rotations implemented as phase-gradient additions.  Both
primitives therefore reduce to the same lookup and adder gadgets as
factoring, and inherit the transversal architecture's timings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arithmetic.runways import RunwayConfig
from repro.arithmetic.timing import AdditionTiming
from repro.core.params import ArchitectureConfig
from repro.core.volume import ResourceEstimate
from repro.lookup.qrom import QROMSpec
from repro.lookup.timing import LookupTiming

PREPARE_LOOKUP_T_FRACTION = 0.925  # midpoint of the paper's 90-95%
SELECT_LOOKUP_T_FRACTION = 0.30
SELECT_ROTATION_T_FRACTION = 0.70


@dataclass(frozen=True)
class THCInstance:
    """A tensor-hypercontraction chemistry instance.

    Attributes:
        num_orbitals: spatial orbitals N.
        thc_rank: THC rank M (~3.5 N typically).
        lambda_value: Hamiltonian 1-norm (Hartree).
        target_accuracy: epsilon, chemical accuracy 1.6e-3 Ha by default.
    """

    num_orbitals: int
    thc_rank: int
    lambda_value: float
    target_accuracy: float = 1.6e-3

    @property
    def qubitization_steps(self) -> float:
        """Walk steps: ceil(pi lambda / (2 eps))."""
        return math.ceil(math.pi * self.lambda_value / (2 * self.target_accuracy))

    @property
    def lookup_address_bits(self) -> int:
        """PREPARE indexes the THC auxiliary grid of ~M^2/2 entries."""
        entries = max(self.thc_rank * (self.thc_rank + 1) // 2, 2)
        return max(1, math.ceil(math.log2(entries)))

    @property
    def rotation_register_bits(self) -> int:
        """Phase-gradient accuracy: ~log2 of steps/eps headroom."""
        return max(10, math.ceil(math.log2(self.qubitization_steps)) + 2)


@dataclass(frozen=True)
class ChemistryEstimate:
    """Resource estimate for one THC instance on the architecture."""

    instance: THCInstance
    runtime_seconds: float
    physical_qubits: float
    total_ccz: float

    def as_resource_estimate(self) -> ResourceEstimate:
        return ResourceEstimate(
            physical_qubits=self.physical_qubits,
            runtime_seconds=self.runtime_seconds,
            metadata={"total_ccz": self.total_ccz},
        )


def estimate_chemistry(
    instance: THCInstance,
    config: ArchitectureConfig = ArchitectureConfig(),
    code_distance: int = 27,
) -> ChemistryEstimate:
    """Time/space for the qubitization walk on the transversal machine.

    Each step: PREPARE + PREPARE^dagger (two lookups over the THC grid,
    chunked into windows like factoring's QROM) and SELECT (one lookup plus
    one phase-gradient addition of the rotation register).
    """
    physical = config.physical
    window = 7  # lookup window, same regime as factoring's w_exp + w_mul
    spec = QROMSpec(window, instance.num_orbitals)
    lookup = LookupTiming(spec, code_distance, physical)
    chunks = math.ceil(2**instance.lookup_address_bits / 2**window)
    prepare_time = 2 * chunks * lookup.duration
    runway = RunwayConfig(instance.rotation_register_bits, instance.rotation_register_bits, 16)
    addition = AdditionTiming(runway, code_distance, physical)
    select_time = chunks * lookup.duration * SELECT_LOOKUP_T_FRACTION / (
        SELECT_LOOKUP_T_FRACTION + SELECT_ROTATION_T_FRACTION
    ) + instance.num_orbitals / 2 * addition.duration * 0.1
    step_time = prepare_time + select_time
    runtime = instance.qubitization_steps * step_time
    ccz_per_step = (
        2 * chunks * spec.toffoli_count
        + instance.num_orbitals * instance.rotation_register_bits // 4
    )
    total_ccz = instance.qubitization_steps * float(ccz_per_step)
    logical = (
        2 * instance.num_orbitals
        + instance.lookup_address_bits
        + instance.rotation_register_bits
        + spec.target_bits
    )
    active = 2 * code_distance**2 - 1
    qubits = logical * active * 1.5  # ancilla/fan-out margin as in factoring
    return ChemistryEstimate(
        instance=instance,
        runtime_seconds=runtime,
        physical_qubits=qubits,
        total_ccz=total_ccz,
    )


def fermi_hubbard_reference() -> THCInstance:
    """A mid-sized benchmark instance (FeMoco-lite scale)."""
    return THCInstance(num_orbitals=76, thc_rank=280, lambda_value=300.0)
