"""Architecture-level parameter optimization (paper Table II, Sec. IV.2).

Sweeps algorithm parameters in pairs -- windows (w_exp, w_mul), runway
separation, code distance -- minimizing the total space-time volume of the
factoring run, with the runway padding set by the approximation-error
budget.  In a transversal architecture Cliffords are fast and the reaction
time binds, which pushes towards smaller windows and much smaller runway
separations (more parallel segments and factories) than lattice-surgery
compilations: Table II's (3, 4, 96) vs Ref. [8]'s (5, 5, 1024).

The (w_exp, w_mul, r_sep) grid is expressed through the estimation
pipeline's sweep engine: grid points share the memoized timing/factory
sub-models, and a sound volume lower bound
(:func:`repro.algorithms.factoring.spacetime_volume_lower_bound`) lets the
branch-and-bound scan skip dominated points without moving the argmin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.algorithms.factoring import (
    FactoringEstimate,
    FactoringParameters,
    estimate_factoring,
    spacetime_volume_lower_bound,
)
from repro.arithmetic.runways import minimum_padding
from repro.core.params import ArchitectureConfig
from repro.estimator.sweep import grid, minimize

WINDOW_EXP_RANGE = (2, 3, 4, 5)
WINDOW_MUL_RANGE = (2, 3, 4, 5)
RUNWAY_SEPARATIONS = (48, 64, 96, 128, 256, 512, 1024)


@dataclass(frozen=True)
class OptimizationResult:
    """Best parameters plus the sweep trace.

    ``trace`` holds the (parameters, volume) pairs actually evaluated;
    ``num_pruned`` counts grid points skipped by the lower-bound hook.
    """

    parameters: FactoringParameters
    estimate: FactoringEstimate
    trace: Tuple[Tuple[FactoringParameters, float], ...]
    num_pruned: int = 0

    @property
    def spacetime_volume(self) -> float:
        return self.estimate.physical_qubits * self.estimate.runtime_seconds


def grid_point_parameters(
    modulus_bits: int,
    window_exp: int,
    window_mul: int,
    runway_separation: int,
    code_distance: int,
    runway_error_budget: float,
) -> FactoringParameters:
    """Algorithm parameters for one grid point, with consistent padding.

    The padding is the smallest keeping the total oblivious-runway error
    inside its budget for the implied number of additions, mirroring the
    paper's r_pad = 43 at its operating point.
    """
    num_segments = -(-modulus_bits // runway_separation)
    num_additions = (
        2
        * -(-(3 * modulus_bits // 2) // window_exp)
        * -(-modulus_bits // window_mul)
    )
    padding = minimum_padding(
        num_additions, runway_error_budget, max(num_segments - 1, 1)
    )
    return FactoringParameters(
        modulus_bits=modulus_bits,
        window_exp=window_exp,
        window_mul=window_mul,
        runway_separation=runway_separation,
        runway_padding=padding,
        code_distance=code_distance,
    )


def candidate_parameters(
    modulus_bits: int = 2048,
    window_exp_range: Iterable[int] = WINDOW_EXP_RANGE,
    window_mul_range: Iterable[int] = WINDOW_MUL_RANGE,
    runway_separations: Iterable[int] = RUNWAY_SEPARATIONS,
    code_distance: int = 27,
    runway_error_budget: float = 0.01,
) -> Iterable[FactoringParameters]:
    """Enumerate the sweep grid (kept for callers supplying custom grids)."""
    for w_exp in window_exp_range:
        for w_mul in window_mul_range:
            for r_sep in runway_separations:
                yield grid_point_parameters(
                    modulus_bits, w_exp, w_mul, r_sep,
                    code_distance, runway_error_budget,
                )


def optimize_factoring(
    config: ArchitectureConfig = ArchitectureConfig(),
    candidates: Optional[Iterable[FactoringParameters]] = None,
    *,
    modulus_bits: int = 2048,
    window_exp_range: Iterable[int] = WINDOW_EXP_RANGE,
    window_mul_range: Iterable[int] = WINDOW_MUL_RANGE,
    runway_separations: Iterable[int] = RUNWAY_SEPARATIONS,
    code_distance: int = 27,
    runway_error_budget: float = 0.01,
    prune: bool = True,
) -> OptimizationResult:
    """Minimize space-time volume over the candidate grid.

    With the default grid the scan runs through the sweep engine with
    branch-and-bound pruning (disable via ``prune=False``; the argmin is
    identical either way, the bound being sound).  An explicit
    ``candidates`` iterable falls back to an exhaustive serial scan.
    """
    if candidates is not None:
        return _optimize_over(candidates, config)

    def evaluate(point: dict) -> dict:
        params = grid_point_parameters(
            modulus_bits,
            point["window_exp"],
            point["window_mul"],
            point["runway_separation"],
            code_distance,
            runway_error_budget,
        )
        estimate = estimate_factoring(params, config)
        return {
            "parameters": params,
            "estimate": estimate,
            "volume": estimate.physical_qubits * estimate.runtime_seconds,
        }

    def lower_bound(point: dict) -> float:
        params = grid_point_parameters(
            modulus_bits,
            point["window_exp"],
            point["window_mul"],
            point["runway_separation"],
            code_distance,
            runway_error_budget,
        )
        return spacetime_volume_lower_bound(params, config)

    result = minimize(
        evaluate,
        grid(
            window_exp=tuple(window_exp_range),
            window_mul=tuple(window_mul_range),
            runway_separation=tuple(runway_separations),
        ),
        objective=lambda record: record["volume"],
        lower_bound=lower_bound if prune else None,
    )
    return OptimizationResult(
        parameters=result.best["parameters"],
        estimate=result.best["estimate"],
        trace=tuple(
            (record["parameters"], volume) for record, volume in result.trace
        ),
        num_pruned=result.pruned,
    )


def _optimize_over(
    candidates: Iterable[FactoringParameters], config: ArchitectureConfig
) -> OptimizationResult:
    best: Optional[Tuple[FactoringParameters, FactoringEstimate]] = None
    best_volume = math.inf
    trace = []
    for params in candidates:
        estimate = estimate_factoring(params, config)
        volume = estimate.physical_qubits * estimate.runtime_seconds
        trace.append((params, volume))
        if volume < best_volume:
            best_volume = volume
            best = (params, estimate)
    if best is None:
        raise ValueError("empty candidate grid")
    return OptimizationResult(
        parameters=best[0], estimate=best[1], trace=tuple(trace)
    )


# Ref. [8]'s lattice-surgery operating point, the Table II comparison column.
GIDNEY_EKERA_COLUMN: Dict[str, float] = {
    "window_exp": 5,
    "window_mul": 5,
    "runway_separation": 1024,
    "runway_padding": 43,
    "code_distance": 27,
    "max_factories": 28,
}


def table_ii_columns(parameters: FactoringParameters) -> Dict[str, Dict[str, float]]:
    """Table II rows for an already-optimized parameter set."""
    return {
        "ours": {
            "window_exp": parameters.window_exp,
            "window_mul": parameters.window_mul,
            "runway_separation": parameters.runway_separation,
            "runway_padding": parameters.runway_padding,
            "code_distance": parameters.code_distance,
            "max_factories": parameters.max_factories,
        },
        "gidney_ekera": dict(GIDNEY_EKERA_COLUMN),
    }


def table_ii(config: ArchitectureConfig = ArchitectureConfig()) -> Dict[str, Dict[str, float]]:
    """Reproduce Table II: our optimized parameters vs Ref. [8]'s."""
    return table_ii_columns(optimize_factoring(config).parameters)
