"""Architecture-level parameter optimization (paper Table II, Sec. IV.2).

Sweeps algorithm parameters in pairs -- windows (w_exp, w_mul), runway
separation, code distance -- minimizing the total space-time volume of the
factoring run, with the runway padding set by the approximation-error
budget.  In a transversal architecture Cliffords are fast and the reaction
time binds, which pushes towards smaller windows and much smaller runway
separations (more parallel segments and factories) than lattice-surgery
compilations: Table II's (3, 4, 96) vs Ref. [8]'s (5, 5, 1024).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Tuple

from repro.algorithms.factoring import (
    FactoringEstimate,
    FactoringParameters,
    estimate_factoring,
)
from repro.arithmetic.runways import minimum_padding
from repro.core.params import ArchitectureConfig


@dataclass(frozen=True)
class OptimizationResult:
    """Best parameters plus the sweep trace."""

    parameters: FactoringParameters
    estimate: FactoringEstimate
    trace: Tuple[Tuple[FactoringParameters, float], ...]

    @property
    def spacetime_volume(self) -> float:
        return self.estimate.physical_qubits * self.estimate.runtime_seconds


def candidate_parameters(
    modulus_bits: int = 2048,
    window_exp_range: Iterable[int] = (2, 3, 4, 5),
    window_mul_range: Iterable[int] = (2, 3, 4, 5),
    runway_separations: Iterable[int] = (48, 64, 96, 128, 256, 512, 1024),
    code_distance: int = 27,
    runway_error_budget: float = 0.01,
) -> Iterable[FactoringParameters]:
    """Enumerate the sweep grid with consistent runway padding.

    The padding is the smallest keeping the total oblivious-runway error
    inside its budget for the implied number of additions, mirroring the
    paper's r_pad = 43 at its operating point.
    """
    for w_exp in window_exp_range:
        for w_mul in window_mul_range:
            for r_sep in runway_separations:
                num_segments = -(-modulus_bits // r_sep)
                num_additions = (
                    2
                    * -(-(3 * modulus_bits // 2) // w_exp)
                    * -(-modulus_bits // w_mul)
                )
                padding = minimum_padding(
                    num_additions, runway_error_budget, max(num_segments - 1, 1)
                )
                yield FactoringParameters(
                    modulus_bits=modulus_bits,
                    window_exp=w_exp,
                    window_mul=w_mul,
                    runway_separation=r_sep,
                    runway_padding=padding,
                    code_distance=code_distance,
                )


def optimize_factoring(
    config: ArchitectureConfig = ArchitectureConfig(),
    candidates: Optional[Iterable[FactoringParameters]] = None,
) -> OptimizationResult:
    """Minimize space-time volume over the candidate grid."""
    if candidates is None:
        candidates = candidate_parameters()
    best: Optional[Tuple[FactoringParameters, FactoringEstimate]] = None
    best_volume = math.inf
    trace = []
    for params in candidates:
        estimate = estimate_factoring(params, config)
        volume = estimate.physical_qubits * estimate.runtime_seconds
        trace.append((params, volume))
        if volume < best_volume:
            best_volume = volume
            best = (params, estimate)
    if best is None:
        raise ValueError("empty candidate grid")
    return OptimizationResult(
        parameters=best[0], estimate=best[1], trace=tuple(trace)
    )


def table_ii(config: ArchitectureConfig = ArchitectureConfig()) -> Dict[str, Dict[str, float]]:
    """Reproduce Table II: our optimized parameters vs Ref. [8]'s."""
    ours = optimize_factoring(config).parameters
    return {
        "ours": {
            "window_exp": ours.window_exp,
            "window_mul": ours.window_mul,
            "runway_separation": ours.runway_separation,
            "runway_padding": ours.runway_padding,
            "code_distance": ours.code_distance,
            "max_factories": ours.max_factories,
        },
        "gidney_ekera": {
            "window_exp": 5,
            "window_mul": 5,
            "runway_separation": 1024,
            "runway_padding": 43,
            "code_distance": 27,
            "max_factories": 28,
        },
    }
