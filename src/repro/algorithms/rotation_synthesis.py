"""Rotation synthesis costs (paper Fig. 1 and Sec. III.3).

Arbitrary-angle rotations appear in the QPE layer of factoring and the
SELECT block of chemistry.  Two standard implementations, both reducible
to this repo's gadgets:

* **Phase-gradient addition** (Ref. [21]): adding the angle register into
  a resource state |PG_b> = sum_k e^{-2 pi i k / 2^b} |k> applies the
  rotation; cost = one b-bit addition (b ~ log2(1/epsilon) bits).
* **Repeat-until-success / Ross-Selinger-style T sequences**: ~K log2(1/
  epsilon) T gates per rotation with K ~ 1-3 depending on the protocol.

The paper's architecture makes the addition route attractive because
additions are reaction-limited and fast; this module quantifies both so
algorithm studies can pick per-instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arithmetic.runways import RunwayConfig
from repro.arithmetic.timing import AdditionTiming
from repro.core.params import PhysicalParams

# T-count constant of number-theoretic synthesis (Ross-Selinger ~ 1.15
# log2(1/eps) + O(1); fallback protocols land at ~3 log2(1/eps)).
SYNTHESIS_T_CONSTANT = 1.15
SYNTHESIS_T_OFFSET = 9.0


@dataclass(frozen=True)
class RotationCost:
    """Cost of one single-qubit Z rotation to accuracy epsilon."""

    accuracy: float
    code_distance: int = 27
    physical: PhysicalParams = PhysicalParams()

    def __post_init__(self) -> None:
        if not 0 < self.accuracy < 1:
            raise ValueError("accuracy must be in (0, 1)")

    @property
    def angle_bits(self) -> int:
        """Phase-gradient register width b = ceil(log2(1/eps)) + 1."""
        return max(2, math.ceil(math.log2(1.0 / self.accuracy)) + 1)

    # -- phase-gradient route ------------------------------------------------

    @property
    def gradient_toffolis(self) -> int:
        """One b-bit addition: b MAJ-Toffolis consume CCZ states."""
        return self.angle_bits

    @property
    def gradient_time(self) -> float:
        """Reaction-limited b-bit ripple addition (no runways needed)."""
        runway = RunwayConfig(self.angle_bits, self.angle_bits, 1)
        return AdditionTiming(runway, self.code_distance, self.physical).duration

    # -- T-sequence route -------------------------------------------------------

    @property
    def synthesis_t_count(self) -> float:
        """Ross-Selinger-style T count."""
        return SYNTHESIS_T_CONSTANT * math.log2(1.0 / self.accuracy) + SYNTHESIS_T_OFFSET

    @property
    def synthesis_time(self) -> float:
        """Sequential T gates, each resolved one reaction time apart."""
        return self.synthesis_t_count * self.physical.reaction_time

    # -- comparison ------------------------------------------------------------

    def preferred_route(self) -> str:
        """'gradient' or 'synthesis', whichever is faster wall-clock.

        The gradient route additionally amortizes when many rotations share
        the resource state, which is the chemistry SELECT situation.
        """
        return (
            "gradient" if self.gradient_time <= self.synthesis_time else "synthesis"
        )


def qpe_rotation_budget(exponent_bits: int, total_error: float) -> float:
    """Per-rotation accuracy for iterative QPE over ``exponent_bits`` bits."""
    if exponent_bits < 1:
        raise ValueError("exponent_bits must be positive")
    if not 0 < total_error < 1:
        raise ValueError("total_error must be in (0, 1)")
    return total_error / exponent_bits
