"""End-to-end transversal resource estimate for Shor factoring (Sec. IV.2).

Assembles the gadget models into the paper's headline estimate: for
2048-bit RSA at Table I/II parameters, ~19 M qubits for ~5.6 days, with a
space and logical-error breakdown per component (Fig. 12) and every knob
(windows, runways, distance, factories, timescales) exposed for the
optimizer and sensitivity sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.arithmetic.runways import RunwayConfig
from repro.arithmetic.timing import AdditionTiming
from repro.arithmetic.windowed import WindowedExpConfig, ekera_hastad_exponent_bits
from repro.core.cache import memoized
from repro.core.logical_error import required_distance, transversal_cnot_error
from repro.core.idle import storage_error_per_round
from repro.core.params import ArchitectureConfig, PhysicalParams
from repro.core.volume import ResourceEstimate
from repro.factory.pipeline import size_fleet
from repro.lookup.ghz_fanout import FanoutLayout
from repro.lookup.qrom import QROMSpec
from repro.lookup.timing import LookupTiming


@dataclass(frozen=True)
class FactoringParameters:
    """Algorithm-level knobs (paper Table II)."""

    modulus_bits: int = 2048
    window_exp: int = 3
    window_mul: int = 4
    runway_separation: int = 96
    runway_padding: int = 43
    code_distance: int = 27
    max_factories: int = 192
    fanout_grid_spacing: int = 2
    # Absolute CCZ error budget (paper Sec. III.6: "the CCZ error budget
    # should not exceed 5%"), giving a 1.6e-11 per-CCZ target at 3e9 CCZs.
    ccz_error_budget: float = 0.05
    # Average factory utilization: consumption is bursty across pipelined
    # runway segments, so the fleet carries headroom (sized so the default
    # configuration lands at the paper's 192-factory ceiling).
    factory_utilization: float = 0.7

    def windowed(self) -> WindowedExpConfig:
        runway = RunwayConfig(
            self.modulus_bits, self.runway_separation, self.runway_padding
        )
        return WindowedExpConfig(
            modulus_bits=self.modulus_bits,
            exponent_bits=ekera_hastad_exponent_bits(self.modulus_bits),
            window_exp=self.window_exp,
            window_mul=self.window_mul,
            runway=runway,
        )


@dataclass
class FactoringEstimate:
    """Full output: headline numbers plus per-phase breakdowns."""

    parameters: FactoringParameters
    config: ArchitectureConfig
    runtime_seconds: float = 0.0
    physical_qubits: float = 0.0
    logical_error: float = 0.0
    lookup_time: float = 0.0
    addition_time: float = 0.0
    num_lookup_additions: float = 0.0
    total_ccz: float = 0.0
    num_factories: int = 0
    space_breakdown: Dict[str, Dict[str, float]] = field(default_factory=dict)
    error_breakdown: Dict[str, float] = field(default_factory=dict)

    def as_resource_estimate(self) -> ResourceEstimate:
        return ResourceEstimate(
            physical_qubits=self.physical_qubits,
            runtime_seconds=self.runtime_seconds,
            breakdown={
                phase: sum(parts.values())
                for phase, parts in self.space_breakdown.items()
            },
            logical_error=self.logical_error,
            metadata={
                "lookup_time": self.lookup_time,
                "addition_time": self.addition_time,
                "num_lookup_additions": self.num_lookup_additions,
                "total_ccz": self.total_ccz,
                "num_factories": float(self.num_factories),
            },
        )


@memoized
def factoring_submodels(
    parameters: FactoringParameters, physical: PhysicalParams
) -> Tuple[WindowedExpConfig, QROMSpec, LookupTiming, AdditionTiming, FanoutLayout]:
    """Pure sub-models of one factoring grid point, built once per input set.

    Sweeps revisit the same (parameters, physical) slices constantly --
    e.g. the Table II window grid shares its runway/timing sub-models
    across every ``window`` combination -- so the assembly is memoized on
    the frozen dataclass inputs.
    """
    windowed = parameters.windowed()
    d = parameters.code_distance
    lookup_spec = QROMSpec(windowed.lookup_address_bits, parameters.modulus_bits)
    lookup = LookupTiming(
        lookup_spec, d, physical, parameters.fanout_grid_spacing
    )
    addition = AdditionTiming(windowed.runway, d, physical)
    fanout = FanoutLayout(
        parameters.modulus_bits, parameters.fanout_grid_spacing, d
    )
    return windowed, lookup_spec, lookup, addition, fanout


@memoized
def nonfactory_space_terms(
    parameters: FactoringParameters, physical: PhysicalParams
) -> Tuple[Tuple[Tuple[str, float], ...], Tuple[Tuple[str, float], ...]]:
    """Per-phase space terms excluding the factory fleet, as (name, atoms).

    Shared by :func:`estimate_factoring` and the optimizer's pruning bound:
    the true footprint only ever adds factory atoms on top of these, so
    their phase-max is a sound lower bound on the machine size.
    """
    windowed, lookup_spec, _, addition, fanout = factoring_submodels(
        parameters, physical
    )
    d = parameters.code_distance
    active_atoms = 2 * d * d - 1
    dense_atoms = d * d
    register_logicals = windowed.register_logical_qubits
    lookup_terms = (
        ("storage", (register_logicals - parameters.modulus_bits) * dense_atoms),
        ("lookup_target", parameters.modulus_bits * active_atoms),
        (
            "cnot_fanout",
            (fanout.logical_qubits + lookup_spec.ancilla_bits) * active_atoms,
        ),
        # One fresh and one just-measured GHZ register staged in the
        # three-stage fan-out pipeline (Sec. III.8), stored densely.
        ("ghz_pipeline", 2 * fanout.logical_qubits * dense_atoms),
    )
    addition_terms = (
        (
            "storage",
            (register_logicals - windowed.runway.padded_width) * dense_atoms,
        ),
        ("adder_segments", addition.active_logical_qubits() * active_atoms),
    )
    return lookup_terms, addition_terms


def spacetime_volume_lower_bound(
    parameters: FactoringParameters,
    config: ArchitectureConfig = ArchitectureConfig(),
) -> float:
    """Cheap, sound lower bound on a grid point's space-time volume.

    The runtime part is exact (the same memoized timing sub-models the full
    estimate uses); the space part omits the factory fleet, the one term
    needing the distillation models.  Never exceeds the true volume, so the
    optimizer can prune dominated grid points without moving the argmin.
    """
    windowed, _, lookup, addition, _ = factoring_submodels(
        parameters, config.physical
    )
    runtime = windowed.num_lookup_additions * (lookup.duration + addition.duration)
    lookup_terms, addition_terms = nonfactory_space_terms(
        parameters, config.physical
    )
    qubit_floor = max(
        sum(v for _, v in lookup_terms), sum(v for _, v in addition_terms)
    )
    return runtime * qubit_floor


def estimate_factoring(
    parameters: FactoringParameters = FactoringParameters(),
    config: ArchitectureConfig = ArchitectureConfig(),
) -> FactoringEstimate:
    """Run the full pipeline and return the populated estimate."""
    est = FactoringEstimate(parameters=parameters, config=config)
    d = parameters.code_distance
    physical = config.physical
    error = config.error

    # -- timing ------------------------------------------------------------
    windowed, lookup_spec, lookup, addition, fanout = factoring_submodels(
        parameters, physical
    )
    est.lookup_time = lookup.duration
    est.addition_time = addition.duration
    est.num_lookup_additions = float(windowed.num_lookup_additions)
    est.runtime_seconds = est.num_lookup_additions * (
        est.lookup_time + est.addition_time
    )
    est.total_ccz = windowed.total_ccz

    # -- factories ----------------------------------------------------------
    per_ccz_target = parameters.ccz_error_budget / max(est.total_ccz, 1.0)
    fleet = size_fleet(
        consumption_rate=addition.ccz_consumption_rate / parameters.factory_utilization,
        code_distance=d,
        ccz_error_target=per_ccz_target,
        physical=physical,
        max_factories=parameters.max_factories,
    )
    est.num_factories = fleet.count

    # -- space --------------------------------------------------------------
    register_logicals = windowed.register_logical_qubits
    lookup_terms, addition_terms = nonfactory_space_terms(parameters, physical)
    lookup_space = dict(lookup_terms)
    lookup_space["factories"] = float(fleet.num_atoms)
    addition_space = dict(addition_terms)
    addition_space["factories"] = float(fleet.num_atoms)
    est.space_breakdown = {"lookup": lookup_space, "addition": addition_space}
    est.physical_qubits = max(
        sum(lookup_space.values()), sum(addition_space.values())
    )

    # -- logical error accounting --------------------------------------------
    # Transversal-gate error: every CCZ consumption step touches its working
    # set with ~one transversal gate (Eq. 4 at x = 1 CNOT per SE round).
    per_gate = transversal_cnot_error(d, error, config.se_rounds_per_gate)
    gate_ops_lookup = est.num_lookup_additions * lookup_spec.num_entries * (
        2.0 + fanout.logical_qubits / max(lookup_spec.num_entries, 1)
    )
    fanout_ops = est.num_lookup_additions * (
        parameters.modulus_bits + fanout.logical_qubits
    )
    gate_ops_addition = (
        est.num_lookup_additions
        * windowed.runway.toffoli_depth
        * windowed.runway.num_segments
        * 4.0  # CNOTs per MAJ/UMA working set
    )
    storage_rounds = est.runtime_seconds / config.storage_se_period
    storage_error = (
        register_logicals
        * storage_rounds
        * storage_error_per_round(d, config.storage_se_period, error, physical)
    )
    runway_error = (
        est.num_lookup_additions * windowed.runway.runway_error_per_addition()
    )
    est.error_breakdown = {
        "lookup_iteration": gate_ops_lookup * per_gate,
        "cnot_fanout": fanout_ops * per_gate,
        "addition": gate_ops_addition * per_gate,
        "storage": storage_error,
        "runways": runway_error,
        "ccz_states": est.total_ccz * fleet.ccz_error,
    }
    est.logical_error = sum(est.error_breakdown.values())
    return est


def required_distance_for_budget(
    parameters: FactoringParameters,
    config: ArchitectureConfig,
    max_distance: int = 61,
) -> int:
    """Smallest odd distance keeping the total logical error in budget."""
    for d in range(13, max_distance + 1, 2):
        trial = FactoringParameters(
            **{**parameters.__dict__, "code_distance": d}
        )
        est = estimate_factoring(trial, config)
        if est.logical_error <= config.target_total_error:
            return d
    raise ValueError(f"no distance <= {max_distance} meets the budget")
