"""Algorithm-level estimators and the parameter optimizer."""

from repro.algorithms.chemistry import (
    ChemistryEstimate,
    THCInstance,
    estimate_chemistry,
    fermi_hubbard_reference,
)
from repro.algorithms.factoring import (
    FactoringEstimate,
    FactoringParameters,
    estimate_factoring,
    required_distance_for_budget,
    spacetime_volume_lower_bound,
)
from repro.algorithms.rotation_synthesis import RotationCost, qpe_rotation_budget
from repro.algorithms.optimizer import (
    OptimizationResult,
    candidate_parameters,
    optimize_factoring,
    table_ii,
)

__all__ = [
    "ChemistryEstimate",
    "FactoringEstimate",
    "FactoringParameters",
    "OptimizationResult",
    "RotationCost",
    "THCInstance",
    "candidate_parameters",
    "estimate_chemistry",
    "estimate_factoring",
    "fermi_hubbard_reference",
    "optimize_factoring",
    "qpe_rotation_budget",
    "required_distance_for_budget",
    "spacetime_volume_lower_bound",
    "table_ii",
]
