"""Monte-Carlo logical-error estimation and model fitting (Fig. 6(a)).

Runs memory / transversal-CNOT experiments through the frame sampler and
the batched decoding engine (:mod:`repro.decoder.engine`), estimates
logical error rates, and fits the paper's heuristic model:

* Eq. (2) memory fit: log p_L = log C - ((d+1)/2) log Lambda.
* Eq. (4) transversal fit: extracts the decoding factor alpha from
  per-CNOT logical error rates at different CNOT densities x.

All Monte-Carlo entry points accept a decoder registry name, a worker
count for sharded parallel decoding, and an optional ``target_failures``
for streaming early-stop sampling (``shots`` then acts as the cap).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.decoder.engine import DecodingEngine, SeedLike, make_decoder
from repro.sim.circuit import Circuit
from repro.sim.frame import FrameSimulator
from repro.sim.memory import NoiseLike, memory_circuit, transversal_cnot_experiment


@dataclass(frozen=True)
class LogicalErrorResult:
    """Outcome of one Monte-Carlo decoding run."""

    shots: int
    failures: int

    @property
    def rate(self) -> float:
        return self.failures / self.shots if self.shots else 0.0

    @property
    def std_error(self) -> float:
        """Binomial standard error of the rate."""
        if self.shots == 0:
            return 0.0
        p = self.rate
        return math.sqrt(max(p * (1 - p), 1e-12) / self.shots)


def run_decoding_experiment(
    circuit: Circuit,
    shots: int,
    seed: SeedLike = 0,
    observable: Optional[int] = 0,
    *,
    decoder: str = "mwpm",
    detector_meta: Optional[Sequence[Tuple[int, str, int, int]]] = None,
    basis: str = "Z",
    workers: int = 1,
    shard_shots: int = 1024,
    target_failures: Optional[int] = None,
    packed: bool = True,
) -> LogicalErrorResult:
    """Sample a noisy circuit and decode it through the batched engine.

    Args:
        circuit: noisy circuit to sample.
        shots: shot count (the cap when ``target_failures`` is set).
        seed: int or :class:`numpy.random.SeedSequence`; per-shard streams
            are derived from it with ``SeedSequence.spawn``.
        observable: failure column, or ``None`` to fail on any observable.
        decoder: registry name ("mwpm", "union_find", "sequential").
        detector_meta / basis: forwarded to the "sequential" decoder.
        workers: parallel decoding workers (results are worker-invariant).
        shard_shots: shots per engine shard.
        target_failures: when set, stream shard batches until this many
            failures are seen (or ``shots`` is exhausted).
        packed: run the bit-packed compiled pipeline (default) or the
            byte-per-bit reference path; results are bit-identical.
    """
    with DecodingEngine(
        circuit,
        decoder,
        detector_meta=detector_meta,
        basis=basis,
        observable=observable,
        shard_shots=shard_shots,
        workers=workers,
        packed=packed,
    ) as engine:
        if target_failures is not None:
            result = engine.run_until(target_failures, max_shots=shots, seed=seed)
        else:
            result = engine.run(shots, seed=seed)
    return LogicalErrorResult(shots=result.shots, failures=result.failures)


def paired_failure_counts(
    circuit: Circuit,
    decoders: Dict[str, object],
    shots: int,
    seed: SeedLike = 0,
    *,
    dem=None,
    shard_shots: int = 1024,
) -> Dict[str, int]:
    """Decode one shared sampled syndrome table with several decoders.

    The paired-comparison convention every weighted-vs-uniform and
    decoder-tradeoff surface uses: the circuit is sampled *once* through
    the packed pipeline (engine shard layout, so the table matches what
    ``DecodingEngine.run`` would draw for the same seed), and every
    decoder consumes the identical bit-packed keys -- failure-count
    differences are decoder differences, not sampling noise.

    Args:
        circuit: noisy circuit to sample.
        decoders: mapping label -> decoder registry name or already-built
            :class:`~repro.decoder.base.Decoder` (iteration order kept).
        shots: shots sampled once and decoded by everyone.
        seed: int or :class:`numpy.random.SeedSequence`.
        dem: detector error model to build named decoders from; extracted
            once from ``circuit`` when omitted.
        shard_shots: engine shard size (changes the sampled stream, not
            the convention).

    Returns:
        label -> failure count on observable column 0.
    """
    if not decoders:
        return {}
    if dem is None and any(isinstance(d, str) for d in decoders.values()):
        dem = FrameSimulator(circuit).detector_error_model()
    built = {
        label: make_decoder(d, dem) if isinstance(d, str) else d
        for label, d in decoders.items()
    }
    sampler = next(iter(built.values()))
    with DecodingEngine(circuit, sampler, shard_shots=shard_shots) as engine:
        det_keys, obs_keys = engine.collect(shots, seed=seed)
    observables = np.unpackbits(obs_keys, axis=1, count=circuit.num_observables)
    return {
        label: int(
            (decoder.decode_packed(det_keys, circuit.num_detectors)[:, 0]
             ^ observables[:, 0]).sum()
        )
        for label, decoder in built.items()
    }


def memory_logical_error(
    distance: int,
    rounds: int,
    p: float,
    shots: int,
    seed: SeedLike = 0,
    basis: str = "Z",
    *,
    decoder: str = "mwpm",
    workers: int = 1,
    target_failures: Optional[int] = None,
    packed: bool = True,
    noise: NoiseLike = None,
) -> LogicalErrorResult:
    """Logical error of a distance-d memory experiment (whole run).

    ``noise`` selects the circuit noise model (a
    :class:`~repro.noise.models.NoiseModel` instance or registry name);
    the scalar ``p`` stays as uniform-depolarizing sugar.
    """
    circuit = memory_circuit(distance, rounds, p, basis, noise=noise)
    return run_decoding_experiment(
        circuit,
        shots,
        seed,
        decoder=decoder,
        workers=workers,
        target_failures=target_failures,
        packed=packed,
    )

def per_round_rate(result: LogicalErrorResult, rounds: int) -> float:
    """Convert a whole-run failure probability to a per-round rate.

    Inverts p_run = (1 - (1 - 2 p_round)^rounds) / 2.
    """
    p_run = min(result.rate, 0.4999)
    return 0.5 * (1.0 - (1.0 - 2.0 * p_run) ** (1.0 / rounds))


def cnot_experiment_rate(
    distance: int,
    rounds: int,
    p: float,
    cnot_every: int,
    shots: int,
    seed: SeedLike = 0,
    decoder: str = "sequential",
    *,
    workers: int = 1,
    target_failures: Optional[int] = None,
    packed: bool = True,
    noise: NoiseLike = None,
) -> Tuple[LogicalErrorResult, int]:
    """Two-patch transversal-CNOT experiment; returns (result, num_cnots).

    A CNOT is inserted after every ``cnot_every``-th SE round, i.e.
    x = 1/cnot_every CNOTs per round.  A shot fails when either patch's
    logical-Z observable is mispredicted (a logical CNOT error).

    Args:
        decoder: "sequential" (correlated two-pass MWPM, full distance) or
            "joint" (single MWPM on the naively-decomposed joint graph --
            a deliberately weaker decoder for ablations).
        workers / target_failures: forwarded to the decoding engine.
    """
    if decoder == "sequential":
        engine_decoder = "sequential"
    elif decoder == "joint":
        engine_decoder = "mwpm"
    else:
        raise ValueError(f"unknown decoder {decoder!r}")
    cnot_rounds = list(range(cnot_every, rounds, cnot_every))
    builder = transversal_cnot_experiment(
        distance, rounds, p, cnot_rounds, noise=noise
    )
    result = run_decoding_experiment(
        builder.circuit,
        shots,
        seed,
        observable=None,
        decoder=engine_decoder,
        detector_meta=builder.detector_meta,
        workers=workers,
        target_failures=target_failures,
        packed=packed,
    )
    return result, len(cnot_rounds)


# -- model fits ----------------------------------------------------------------


@dataclass(frozen=True)
class MemoryFit:
    """Fitted Eq. (2) constants."""

    prefactor_c: float
    lam: float


def fit_memory_model(distances: Sequence[int], per_round: Sequence[float]) -> MemoryFit:
    """Least-squares fit of log p = log C - ((d+1)/2) log Lambda."""
    if len(distances) != len(per_round) or len(distances) < 2:
        raise ValueError("need >= 2 (distance, rate) pairs")
    xs = np.array([(d + 1) / 2.0 for d in distances])
    ys = np.array([math.log(max(r, 1e-12)) for r in per_round])
    slope, intercept = np.polyfit(xs, ys, 1)
    return MemoryFit(prefactor_c=math.exp(intercept), lam=math.exp(-slope))


@dataclass(frozen=True)
class AlphaFit:
    """Fitted Eq. (4) decoding factor (and refitted prefactor)."""

    alpha: float
    prefactor_c: float
    residual: float


def fit_alpha(
    data: Sequence[Tuple[int, float, float]],
    prefactor_c: float,
    lam: float,
    fit_prefactor: bool = True,
) -> AlphaFit:
    """Fit alpha (and optionally C) to per-CNOT logical error rates.

    Args:
        data: triples (distance, cnots_per_round_x, per_cnot_rate).
        prefactor_c: initial/fixed prefactor from the memory fit.
        lam: memory-fit Lambda, held fixed.
        fit_prefactor: when True (default) C floats jointly with alpha,
            absorbing boundary effects of the finite-size experiments.
    """
    if not data:
        raise ValueError("no data to fit")

    def model(distance: int, x: float, alpha: float, c: float) -> float:
        return 2.0 * c / x * ((alpha * x + 1.0) / lam) ** ((distance + 1) / 2.0)

    def loss(params: np.ndarray) -> float:
        alpha = math.exp(float(params[0]))
        c = math.exp(float(params[1])) if fit_prefactor else prefactor_c
        total = 0.0
        for distance, x, rate in data:
            total += (
                math.log(max(rate, 1e-12)) - math.log(model(distance, x, alpha, c))
            ) ** 2
        return total

    x0 = np.array([math.log(0.2), math.log(max(prefactor_c, 1e-6))])
    best = optimize.minimize(loss, x0=x0, method="Nelder-Mead")
    fitted_c = math.exp(float(best.x[1])) if fit_prefactor else prefactor_c
    return AlphaFit(
        alpha=math.exp(float(best.x[0])),
        prefactor_c=fitted_c,
        residual=float(best.fun),
    )


def eq4_prediction(distance: int, x: float, prefactor_c: float, lam: float, alpha: float) -> float:
    """Evaluate Eq. (4) with explicit constants (for plotting/fit checks)."""
    return 2.0 * prefactor_c / x * ((alpha * x + 1.0) / lam) ** ((distance + 1) / 2.0)
