"""Monte-Carlo logical-error estimation and model fitting (Fig. 6(a)).

Runs memory / transversal-CNOT experiments through the frame sampler and
the MWPM decoder, estimates logical error rates, and fits the paper's
heuristic model:

* Eq. (2) memory fit: log p_L = log C - ((d+1)/2) log Lambda.
* Eq. (4) transversal fit: extracts the decoding factor alpha from
  per-CNOT logical error rates at different CNOT densities x.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.decoder.graph import DecodingGraph
from repro.decoder.mwpm import MWPMDecoder
from repro.sim.circuit import Circuit
from repro.sim.frame import FrameSimulator
from repro.sim.memory import memory_circuit, transversal_cnot_experiment


@dataclass(frozen=True)
class LogicalErrorResult:
    """Outcome of one Monte-Carlo decoding run."""

    shots: int
    failures: int

    @property
    def rate(self) -> float:
        return self.failures / self.shots if self.shots else 0.0

    @property
    def std_error(self) -> float:
        """Binomial standard error of the rate."""
        if self.shots == 0:
            return 0.0
        p = self.rate
        return math.sqrt(max(p * (1 - p), 1e-12) / self.shots)


def run_decoding_experiment(
    circuit: Circuit, shots: int, seed: int = 0, observable: int = 0
) -> LogicalErrorResult:
    """Sample a noisy circuit and decode with MWPM on its DEM."""
    sim = FrameSimulator(circuit, rng=np.random.default_rng(seed))
    dem = sim.detector_error_model()
    decoder = MWPMDecoder(DecodingGraph.from_dem(dem))
    detectors, observables = sim.sample(shots)
    predictions = decoder.decode_batch(detectors)
    failures = int(np.sum(predictions[:, observable] ^ observables[:, observable]))
    return LogicalErrorResult(shots=shots, failures=failures)


def memory_logical_error(
    distance: int, rounds: int, p: float, shots: int, seed: int = 0, basis: str = "Z"
) -> LogicalErrorResult:
    """Logical error of a distance-d memory experiment (whole run)."""
    circuit = memory_circuit(distance, rounds, p, basis)
    return run_decoding_experiment(circuit, shots, seed)

def per_round_rate(result: LogicalErrorResult, rounds: int) -> float:
    """Convert a whole-run failure probability to a per-round rate.

    Inverts p_run = (1 - (1 - 2 p_round)^rounds) / 2.
    """
    p_run = min(result.rate, 0.4999)
    return 0.5 * (1.0 - (1.0 - 2.0 * p_run) ** (1.0 / rounds))


def cnot_experiment_rate(
    distance: int,
    rounds: int,
    p: float,
    cnot_every: int,
    shots: int,
    seed: int = 0,
    decoder: str = "sequential",
) -> Tuple[LogicalErrorResult, int]:
    """Two-patch transversal-CNOT experiment; returns (result, num_cnots).

    A CNOT is inserted after every ``cnot_every``-th SE round, i.e.
    x = 1/cnot_every CNOTs per round.  A shot fails when either patch's
    logical-Z observable is mispredicted (a logical CNOT error).

    Args:
        decoder: "sequential" (correlated two-pass MWPM, full distance) or
            "joint" (single MWPM on the naively-decomposed joint graph --
            a deliberately weaker decoder for ablations).
    """
    from repro.decoder.sequential import SequentialCNOTDecoder

    cnot_rounds = list(range(cnot_every, rounds, cnot_every))
    builder = transversal_cnot_experiment(distance, rounds, p, cnot_rounds)
    circuit = builder.circuit
    sim = FrameSimulator(circuit, rng=np.random.default_rng(seed))
    dem = sim.detector_error_model()
    if decoder == "sequential":
        dec = SequentialCNOTDecoder(dem, builder.detector_meta, basis="Z")
    elif decoder == "joint":
        dec = MWPMDecoder(DecodingGraph.from_dem(dem))
    else:
        raise ValueError(f"unknown decoder {decoder!r}")
    detectors, observables = sim.sample(shots)
    predictions = dec.decode_batch(detectors)
    wrong = (predictions ^ observables).any(axis=1)
    result = LogicalErrorResult(shots=shots, failures=int(np.sum(wrong)))
    return result, len(cnot_rounds)


# -- model fits ----------------------------------------------------------------


@dataclass(frozen=True)
class MemoryFit:
    """Fitted Eq. (2) constants."""

    prefactor_c: float
    lam: float


def fit_memory_model(distances: Sequence[int], per_round: Sequence[float]) -> MemoryFit:
    """Least-squares fit of log p = log C - ((d+1)/2) log Lambda."""
    if len(distances) != len(per_round) or len(distances) < 2:
        raise ValueError("need >= 2 (distance, rate) pairs")
    xs = np.array([(d + 1) / 2.0 for d in distances])
    ys = np.array([math.log(max(r, 1e-12)) for r in per_round])
    slope, intercept = np.polyfit(xs, ys, 1)
    return MemoryFit(prefactor_c=math.exp(intercept), lam=math.exp(-slope))


@dataclass(frozen=True)
class AlphaFit:
    """Fitted Eq. (4) decoding factor (and refitted prefactor)."""

    alpha: float
    prefactor_c: float
    residual: float


def fit_alpha(
    data: Sequence[Tuple[int, float, float]],
    prefactor_c: float,
    lam: float,
    fit_prefactor: bool = True,
) -> AlphaFit:
    """Fit alpha (and optionally C) to per-CNOT logical error rates.

    Args:
        data: triples (distance, cnots_per_round_x, per_cnot_rate).
        prefactor_c: initial/fixed prefactor from the memory fit.
        lam: memory-fit Lambda, held fixed.
        fit_prefactor: when True (default) C floats jointly with alpha,
            absorbing boundary effects of the finite-size experiments.
    """
    if not data:
        raise ValueError("no data to fit")

    def model(distance: int, x: float, alpha: float, c: float) -> float:
        return 2.0 * c / x * ((alpha * x + 1.0) / lam) ** ((distance + 1) / 2.0)

    def loss(params: np.ndarray) -> float:
        alpha = math.exp(float(params[0]))
        c = math.exp(float(params[1])) if fit_prefactor else prefactor_c
        total = 0.0
        for distance, x, rate in data:
            total += (
                math.log(max(rate, 1e-12)) - math.log(model(distance, x, alpha, c))
            ) ** 2
        return total

    x0 = np.array([math.log(0.2), math.log(max(prefactor_c, 1e-6))])
    best = optimize.minimize(loss, x0=x0, method="Nelder-Mead")
    fitted_c = math.exp(float(best.x[1])) if fit_prefactor else prefactor_c
    return AlphaFit(
        alpha=math.exp(float(best.x[0])),
        prefactor_c=fitted_c,
        residual=float(best.fun),
    )


def eq4_prediction(distance: int, x: float, prefactor_c: float, lam: float, alpha: float) -> float:
    """Evaluate Eq. (4) with explicit constants (for plotting/fit checks)."""
    return 2.0 * prefactor_c / x * ((alpha * x + 1.0) / lam) ** ((distance + 1) / 2.0)
