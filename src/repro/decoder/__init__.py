"""Decoders and logical-error analysis."""

from repro.decoder.analysis import (
    AlphaFit,
    LogicalErrorResult,
    MemoryFit,
    cnot_experiment_rate,
    eq4_prediction,
    fit_alpha,
    fit_memory_model,
    memory_logical_error,
    per_round_rate,
    run_decoding_experiment,
)
from repro.decoder.graph import BOUNDARY, DecodingGraph, Edge
from repro.decoder.mwpm import MWPMDecoder
from repro.decoder.sequential import SequentialCNOTDecoder
from repro.decoder.union_find import UnionFindDecoder

__all__ = [
    "AlphaFit",
    "BOUNDARY",
    "DecodingGraph",
    "Edge",
    "LogicalErrorResult",
    "MWPMDecoder",
    "MemoryFit",
    "SequentialCNOTDecoder",
    "UnionFindDecoder",
    "cnot_experiment_rate",
    "eq4_prediction",
    "fit_alpha",
    "fit_memory_model",
    "memory_logical_error",
    "per_round_rate",
    "run_decoding_experiment",
]
