"""Decoders, the batched Monte-Carlo decoding engine, and error analysis.

Decoder stack
-------------

Every decoder satisfies the :class:`~repro.decoder.base.Decoder` protocol
(``decode`` one syndrome row, ``decode_batch`` many byte-per-bit rows,
``decode_packed`` many bit-packed rows, ``num_observables``) and inherits
:class:`~repro.decoder.base.BatchDecoder`, which deduplicates syndromes
once per batch -- bit-packed rows *are* the fixed-width dedup keys, so the
packed sampling pipeline hands its output straight to the decoder with no
pack/unpack round trip.  Implementations:

* :class:`MWPMDecoder` -- minimum-weight perfect matching ("mwpm"), with
  exact defect-cluster decomposition, a cross-shot cluster cache, and a
  vectorized subset-DP matcher on the batch path.
* :class:`UnionFindDecoder` -- cluster growth + peeling ("union_find").
* :class:`SequentialCNOTDecoder` -- correlated two-pass MWPM for
  transversal-CNOT circuits ("sequential"; needs ``detector_meta``).

Decoder registry
----------------

The quoted names above are keys in the engine's registry: build a decoder
from a detector error model with
``make_decoder("mwpm", dem)`` (or ``"sequential"`` plus
``detector_meta=...``), list names with :func:`available_decoders`, and
add your own with :func:`register_decoder`.  Experiment entry points
(:func:`run_decoding_experiment`, :func:`memory_logical_error`, ...) take
the registry name directly via their ``decoder=`` argument.

Monte-Carlo engine
------------------

:class:`DecodingEngine` drives throughput-oriented Monte-Carlo runs::

    engine = DecodingEngine(circuit, "mwpm", shard_shots=1024, workers=4)
    result = engine.run(100_000, seed=7)          # fixed shot count
    result = engine.run_until(100, 10**7, seed=7) # stream to 100 failures

Shots are split into fixed-size shards, each sampled from an independent
``SeedSequence.spawn`` child stream and decoded with dedup; shards are
distributed over ``multiprocessing`` workers.  The shard layout depends
only on the seed and ``shard_shots``, so results are bit-identical for
any worker count, including under ``run_until`` early stopping (the stop
rule is evaluated on the shard-ordered prefix).
"""

from repro.decoder.analysis import (
    AlphaFit,
    LogicalErrorResult,
    MemoryFit,
    cnot_experiment_rate,
    eq4_prediction,
    fit_alpha,
    fit_memory_model,
    memory_logical_error,
    per_round_rate,
    run_decoding_experiment,
)
from repro.decoder.base import BatchDecoder, Decoder
from repro.decoder.engine import (
    DecodingEngine,
    EngineResult,
    available_decoders,
    make_decoder,
    register_decoder,
)
from repro.decoder.graph import BOUNDARY, DecodingGraph, Edge
from repro.decoder.mwpm import MWPMDecoder
from repro.decoder.sequential import SequentialCNOTDecoder
from repro.decoder.union_find import UnionFindDecoder

__all__ = [
    "AlphaFit",
    "BOUNDARY",
    "BatchDecoder",
    "Decoder",
    "DecodingEngine",
    "DecodingGraph",
    "Edge",
    "EngineResult",
    "LogicalErrorResult",
    "MWPMDecoder",
    "MemoryFit",
    "SequentialCNOTDecoder",
    "UnionFindDecoder",
    "available_decoders",
    "cnot_experiment_rate",
    "eq4_prediction",
    "fit_alpha",
    "fit_memory_model",
    "make_decoder",
    "memory_logical_error",
    "per_round_rate",
    "register_decoder",
    "run_decoding_experiment",
]
