"""Zero-copy shard transport over POSIX shared memory.

``DecodingEngine.collect`` historically shipped every shard's bit-packed
sample tables back through the worker pool's pickle pipe: each shard was
serialized in the worker, copied through the pipe, deserialized in the
parent, and finally ``np.concatenate``-copied into the output table.  This
module replaces that with ``multiprocessing.shared_memory``: the parent
allocates one segment per table up front, workers write their shard's rows
directly into the segment at the shard's row offset, and the parent's
result arrays are views of the same pages -- no pickling, no pipe copy,
and no concatenation copy.

Ownership: the returned arrays are :class:`SharedMemoryArray` views whose
``_owner`` closes *and unlinks* the segment when the last referencing
array is garbage collected, so the tables stay valid after the engine
(and its pool) is closed and never leak ``/dev/shm`` entries.

Worker attachments unregister themselves from ``resource_tracker``
immediately: the parent's owner is the single point of unlinking, and a
tracked attachment would otherwise tear the segment down when the first
pool worker exits (or spam leak warnings on interpreter shutdown).
"""

from __future__ import annotations

import mmap
import os
from multiprocessing import resource_tracker, shared_memory
from typing import Tuple

import numpy as np

try:
    # The POSIX shm syscalls the stdlib class itself wraps; attaching
    # through them skips SharedMemory's resource-tracker registration,
    # which is per-name (a set): concurrent register/unregister pairs
    # from several pool workers interleave into spurious tracker errors.
    import _posixshmem
except ImportError:  # pragma: no cover - non-POSIX fallback
    _posixshmem = None


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Remove a segment from this process's resource tracker."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class _SegmentOwner:
    """Unlinks (and closes) one shared-memory segment on finalization."""

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self._shm = shm

    def __del__(self) -> None:
        try:
            self._shm.unlink()
        except Exception:
            pass
        try:
            self._shm.close()
        except Exception:
            # The buffer may still be exported during interpreter
            # shutdown; the mapping is reclaimed with the process either
            # way, and the unlink above already freed the name.
            pass


class SharedMemoryArray(np.ndarray):
    """ndarray view over a shared-memory segment that owns the segment.

    Derived views keep the parent array -- and through it the owner --
    alive via the ``base`` chain, so slicing the collect output is safe;
    the segment is unlinked when the last view dies.
    """

    _owner: "_SegmentOwner | None" = None


def allocate(rows: int, width: int) -> Tuple[SharedMemoryArray, str]:
    """Create a (rows, width) uint8 table in a fresh segment.

    Returns the owning array view and the segment name workers attach to.
    """
    shm = shared_memory.SharedMemory(create=True, size=max(1, rows * width))
    # The segment stays registered with the parent's resource tracker
    # until the owner unlinks it (stdlib unlink() unregisters), so a
    # killed process still gets its segments reclaimed.
    owner = _SegmentOwner(shm)
    arr = np.ndarray((rows, width), dtype=np.uint8, buffer=shm.buf).view(
        SharedMemoryArray
    )
    arr._owner = owner
    return arr, shm.name


def write_rows(name: str, row_start: int, rows: np.ndarray) -> None:
    """Copy a shard's (shots, width) uint8 rows into a segment slice.

    Used by pool workers: attach by name, write in place, detach.  The
    attachment is unregistered from the worker's resource tracker (the
    parent owns the segment's lifetime).
    """
    width = rows.shape[1]
    if width == 0 or rows.shape[0] == 0:
        return
    data = np.ascontiguousarray(rows).reshape(-1)
    start = row_start * width
    if _posixshmem is not None:
        fd = _posixshmem.shm_open("/" + name, os.O_RDWR, 0o600)
        try:
            size = os.fstat(fd).st_size
            buf = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        try:
            flat = np.frombuffer(buf, dtype=np.uint8)
            flat[start:start + data.size] = data
        finally:
            del flat
            buf.close()
        return
    shm = shared_memory.SharedMemory(name=name)  # pragma: no cover
    _untrack(shm)
    try:
        flat = np.frombuffer(shm.buf, dtype=np.uint8)
        flat[start:start + data.size] = data
    finally:
        del flat
        shm.close()
