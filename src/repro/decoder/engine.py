"""High-throughput Monte-Carlo decoding engine.

All of the paper's Monte-Carlo numbers (the Fig. 6(a) model fit, the
Fig. 13(a) decoder trade-off) flow through "sample a noisy circuit, decode
every shot, count logical failures".  The engine makes that loop
throughput-oriented:

* **Decoder registry** -- decoders are selected by name (``"mwpm"``,
  ``"union_find"``, ``"sequential"``) through :func:`make_decoder`, so
  experiments and sweeps are parameterized by a string instead of being
  hard-wired to one class.
* **Syndrome deduplication** -- every decoder inherits
  :class:`~repro.decoder.base.BatchDecoder`, which decodes each *unique*
  syndrome row once (rows bit-packed and deduplicated as fixed-width byte
  keys) and scatters predictions back.  In low-``p`` regimes most shots
  are duplicates or all-zero.
* **Bit-packed hot path** -- by default shards sample through the
  compiled bit-packed pipeline (:mod:`repro.sim.compiled`) and hand the
  packed per-shot keys straight to ``decode_packed``; the byte-per-bit
  reference path (``packed=False``) produces bit-identical results for
  the same seed and is kept as the verification baseline.
* **Sharded parallel sampling** -- shots are split into fixed-size shards,
  each with an independent child of one root
  :class:`numpy.random.SeedSequence`.  The shard structure depends only on
  the seed and shard size, never on the worker count, so results are
  bit-identical for 1 or N ``multiprocessing`` workers.  One persistent
  pool serves all ``run``/``run_until`` calls of an engine (see
  :meth:`DecodingEngine.close`).
* **Streaming early-stop** -- :meth:`DecodingEngine.run_until` keeps
  drawing shard batches until a target failure count or a shot cap is
  reached, so sweeps spend shots where failures are rare instead of using
  one fixed count everywhere.  The stopping rule is evaluated on the
  shard-ordered prefix, keeping it deterministic under parallelism.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.decoder.base import BatchDecoder, Decoder
from repro.decoder.graph import DecodingGraph
from repro.decoder.mwpm import MWPMDecoder
from repro.decoder.sequential import SequentialCNOTDecoder
from repro.decoder.union_find import UnionFindDecoder
from repro.noise.dem import DetectorErrorModel, last_periodic_fallback
from repro.obs import metrics as _metrics
from repro.obs.logs import get_logger
from repro.obs.spans import span
from repro.sim.circuit import Circuit
from repro.sim.frame import FrameSimulator

SeedLike = Union[int, np.random.SeedSequence]

_LOG = get_logger("repro.decoder.engine")

# Shot/failure/shard counters are deterministic functions of (seed,
# shard_shots) and merge identically for any worker count; the phase-time
# counters and throughput gauge are wall-clock-valued and exist for
# diagnosis, not invariance.
_ENGINE_SHOTS = _metrics.counter(
    "repro_engine_shots_total", "Shots sampled and decoded by the engine."
)
_ENGINE_FAILURES = _metrics.counter(
    "repro_engine_failures_total", "Logical failures counted by the engine."
)
_ENGINE_SHARDS = _metrics.counter(
    "repro_engine_shards_total", "Shards executed by the engine."
)
_ENGINE_SAMPLE_SECONDS = _metrics.counter(
    "repro_engine_sample_seconds_total",
    "Wall-clock seconds spent sampling shards.",
)
_ENGINE_DECODE_SECONDS = _metrics.counter(
    "repro_engine_decode_seconds_total",
    "Wall-clock seconds spent deduplicating and decoding shards.",
)
_ENGINE_THROUGHPUT = _metrics.gauge(
    "repro_engine_last_shots_per_second",
    "Throughput of the most recent DecodingEngine.run call.",
)

# -- decoder registry ----------------------------------------------------------

DecoderFactory = Callable[..., Decoder]
_REGISTRY: Dict[str, DecoderFactory] = {}


def register_decoder(name: str, factory: DecoderFactory) -> None:
    """Register a decoder factory under ``name``.

    The factory is called as ``factory(dem, detector_meta=..., basis=...)``
    and must return an object satisfying the
    :class:`~repro.decoder.base.Decoder` protocol.
    """
    if name in _REGISTRY:
        raise ValueError(f"decoder {name!r} is already registered")
    _REGISTRY[name] = factory


def available_decoders() -> Tuple[str, ...]:
    """Registered decoder names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_decoder(
    name: str,
    dem: DetectorErrorModel,
    *,
    detector_meta: Optional[Sequence[Tuple[int, str, int, int]]] = None,
    basis: str = "Z",
) -> Decoder:
    """Build a registered decoder from a detector error model.

    Args:
        name: registry key; see :func:`available_decoders`.
        dem: detector error model of the circuit to decode.
        detector_meta: per-detector (patch, basis, check, round) metadata;
            required by the ``"sequential"`` decoder, ignored otherwise.
        basis: CSS sector for the ``"sequential"`` decoder.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown decoder {name!r}; available: {available_decoders()}"
        )
    return factory(dem, detector_meta=detector_meta, basis=basis)


def _make_mwpm(dem, *, detector_meta=None, basis="Z"):
    return MWPMDecoder(DecodingGraph.from_dem(dem))


def _make_mwpm_uniform(dem, *, detector_meta=None, basis="Z"):
    # Verification baseline: DEM topology, uniform edge weights (the
    # hand-built-graph convention).  The DEM-weighted "mwpm" must never
    # decode worse than this.
    return MWPMDecoder(DecodingGraph.from_dem_uniform(dem))


def _make_union_find(dem, *, detector_meta=None, basis="Z"):
    return UnionFindDecoder(DecodingGraph.from_dem(dem))


def _make_sequential(dem, *, detector_meta=None, basis="Z"):
    if detector_meta is None:
        raise ValueError("the 'sequential' decoder requires detector_meta")
    return SequentialCNOTDecoder(dem, detector_meta, basis=basis)


register_decoder("mwpm", _make_mwpm)
register_decoder("mwpm_uniform", _make_mwpm_uniform)
register_decoder("union_find", _make_union_find)
register_decoder("sequential", _make_sequential)


# -- engine --------------------------------------------------------------------


@dataclass(frozen=True)
class EngineResult:
    """Aggregate outcome of one engine run."""

    shots: int
    failures: int
    shards: int

    @property
    def rate(self) -> float:
        return self.failures / self.shots if self.shots else 0.0


# Per-worker state, installed once by the pool initializer so shard tasks
# only ship (shots, seed) pairs instead of the circuit and decoder.
_WORKER: dict = {}


def _worker_init(
    circuit: Circuit,
    decoder: Optional[Decoder],
    observable: Optional[int],
    packed: bool,
    sim: Optional[FrameSimulator] = None,
    compile_mode: str = "auto",
) -> None:
    _WORKER["sim"] = (
        sim if sim is not None
        else FrameSimulator(circuit, compile_mode=compile_mode)
    )
    _WORKER["decoder"] = decoder
    _WORKER["observable"] = observable
    _WORKER["packed"] = packed
    _WORKER["num_detectors"] = circuit.num_detectors
    _WORKER["num_observables"] = circuit.num_observables


def _run_shard(task: Tuple[int, np.random.SeedSequence]) -> Tuple[int, int]:
    """Sample + decode one shard; returns (shots, failures)."""
    shots, seed_seq = task
    sim: FrameSimulator = _WORKER["sim"]
    decoder: Decoder = _WORKER["decoder"]
    observable: Optional[int] = _WORKER["observable"]
    rng = np.random.default_rng(seed_seq)
    metered = _metrics.enabled()
    with span("engine.shard", shots=shots):
        if _WORKER["packed"]:
            # Packed end to end: sampling emits bit-packed per-shot keys
            # that the decoder dedups directly; only the tiny observable
            # table is unpacked for the failure comparison.
            start = time.perf_counter() if metered else 0.0
            det_keys, obs_keys = sim.sample_packed(shots, rng=rng)
            if metered:
                mid = time.perf_counter()
                _ENGINE_SAMPLE_SECONDS.inc(mid - start)
            predictions = decoder.decode_packed(
                det_keys, _WORKER["num_detectors"]
            )
            if metered:
                _ENGINE_DECODE_SECONDS.inc(time.perf_counter() - mid)
            num_obs = _WORKER["num_observables"]
            if num_obs:
                observables = np.unpackbits(obs_keys, axis=1, count=num_obs)
            else:
                observables = np.zeros((shots, 0), dtype=np.uint8)
        else:
            start = time.perf_counter() if metered else 0.0
            detectors, observables = sim.sample(shots, rng=rng)
            if metered:
                mid = time.perf_counter()
                _ENGINE_SAMPLE_SECONDS.inc(mid - start)
            predictions = decoder.decode_batch(detectors)
            if metered:
                _ENGINE_DECODE_SECONDS.inc(time.perf_counter() - mid)
        if observable is None:
            wrong = (predictions ^ observables).any(axis=1)
        else:
            wrong = predictions[:, observable] ^ observables[:, observable]
        if metered:
            _ENGINE_SHARDS.inc()
        return shots, int(np.sum(wrong))


def _collect_shard(
    task: Tuple[int, np.random.SeedSequence]
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample one shard; returns bit-packed (detector, observable) keys.

    Workers ship the packed arrays back to the parent, ~8x less pickle
    bandwidth than byte-per-bit tables.
    """
    shots, seed_seq = task
    sim: FrameSimulator = _WORKER["sim"]
    if _metrics.enabled():
        start = time.perf_counter()
        out = sim.sample_packed(shots, rng=np.random.default_rng(seed_seq))
        _ENGINE_SAMPLE_SECONDS.inc(time.perf_counter() - start)
        _ENGINE_SHARDS.inc()
        return out
    return sim.sample_packed(shots, rng=np.random.default_rng(seed_seq))


def _run_shard_metered(task):
    """Pool-side wrapper: run the shard, ship the shard's metric delta.

    The parent merges the delta into its registry, so counters and
    histograms come out identical to a serial run -- the worker-count
    invariance contract extended to telemetry.  The snapshot is taken per
    task (not per worker) so increments are never double-shipped.
    """
    base = _metrics.snapshot()
    out = _run_shard(task)
    return out, _metrics.delta_since(base)


def _collect_shard_metered(task):
    """Pool-side wrapper for :func:`_collect_shard`; see above."""
    base = _metrics.snapshot()
    out = _collect_shard(task)
    return out, _metrics.delta_since(base)


_METERED = {_run_shard: _run_shard_metered, _collect_shard: _collect_shard_metered}


class DecodingEngine:
    """Batched Monte-Carlo decoding of one noisy circuit.

    Args:
        circuit: the noisy circuit to sample (its DEM is extracted once).
        decoder: registry name (see :func:`available_decoders`) or an
            already-built :class:`~repro.decoder.base.Decoder` instance.
        detector_meta: passed through to :func:`make_decoder` for the
            ``"sequential"`` decoder.
        basis: CSS sector for the ``"sequential"`` decoder.
        observable: observable column a failure is counted on; ``None``
            counts a shot as failed when *any* observable is mispredicted
            (the transversal-CNOT criterion).
        shard_shots: shots per shard.  The shard layout is a function of
            the seed and this value only, so results do not depend on
            ``workers``.
        workers: number of ``multiprocessing`` workers; ``1`` runs inline.
        packed: when True (default), shards run the bit-packed compiled
            pipeline (:meth:`~repro.sim.frame.FrameSimulator.sample_packed`
            feeding :meth:`~repro.decoder.base.BatchDecoder.decode_packed`);
            ``False`` runs the byte-per-bit reference path.  Both produce
            bit-identical results for the same seed.
        compile_mode: packed-program selection (``"auto"`` / ``"linear"``
            / ``"periodic"``), forwarded to the simulators -- ``"auto"``
            replays a detected repeated round periodically (see
            :mod:`repro.sim.periodic`).  All modes are bit-identical per
            seed; programs are memoized per circuit fingerprint, so
            repeated engines and ``run_until`` batches never recompile.

    The engine keeps one persistent worker pool alive across ``run`` /
    ``run_until`` calls (spawning a pool ships the circuit and decoder to
    every worker; respawning per batch wasted that setup).  Call
    :meth:`close` -- or use the engine as a context manager -- to release
    the pool; it is also released on garbage collection.
    """

    def __init__(
        self,
        circuit: Circuit,
        decoder: Union[str, Decoder] = "mwpm",
        *,
        detector_meta: Optional[Sequence[Tuple[int, str, int, int]]] = None,
        basis: str = "Z",
        observable: Optional[int] = 0,
        shard_shots: int = 1024,
        workers: int = 1,
        packed: bool = True,
        compile_mode: str = "auto",
    ) -> None:
        if shard_shots < 1:
            raise ValueError("shard_shots must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.circuit = circuit
        self.observable = observable
        self.shard_shots = shard_shots
        self.workers = workers
        self.packed = packed
        self.compile_mode = compile_mode
        self._pool = None
        # One simulator for serial execution and DEM extraction: its
        # compiled program is fetched once (fingerprint-memoized) and
        # reused across run() calls.
        self._sim = FrameSimulator(circuit, compile_mode=compile_mode)
        if isinstance(decoder, str):
            # DEM extraction is the dominant setup cost; skip it entirely
            # when the caller hands over an already-built decoder.
            with span("engine.extract_dem"):
                self.dem: Optional[DetectorErrorModel] = (
                    self._sim.detector_error_model()
                )
            # A failed periodic certification silently degrades DEM
            # extraction to the linear path; surface the reason so the
            # degradation is observable (also counted in
            # repro_periodic_fallback_total{reason=...}).
            self.periodic_fallback_reason = last_periodic_fallback()
            if self.periodic_fallback_reason is not None:
                _LOG.debug(
                    "periodic DEM extraction fell back to linear: %s",
                    self.periodic_fallback_reason,
                )
            with span("engine.build_decoder", decoder=decoder):
                self.decoder = make_decoder(
                    decoder, self.dem, detector_meta=detector_meta, basis=basis
                )
        else:
            self.dem = None
            self.decoder = decoder
            self.periodic_fallback_reason = None

    def close(self) -> None:
        """Release the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "DecodingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- public API ---------------------------------------------------------

    def run(self, shots: int, seed: SeedLike = 0) -> EngineResult:
        """Decode a fixed number of shots, sharded and deduplicated."""
        if shots < 0:
            raise ValueError("shots must be >= 0")
        if shots == 0:
            return EngineResult(shots=0, failures=0, shards=0)
        root = _as_seed_sequence(seed)
        sizes = self._shard_sizes(shots)
        tasks = list(zip(sizes, root.spawn(len(sizes))))
        with span("engine.run", shots=shots, workers=self.workers):
            start = time.perf_counter()
            results = self._execute(tasks)
            elapsed = time.perf_counter() - start
        total = sum(s for s, _ in results)
        failures = sum(f for _, f in results)
        _ENGINE_SHOTS.inc(total)
        _ENGINE_FAILURES.inc(failures)
        if elapsed > 0:
            _ENGINE_THROUGHPUT.set(total / elapsed)
        return EngineResult(shots=total, failures=failures, shards=len(tasks))

    def run_until(
        self,
        target_failures: int,
        max_shots: int,
        seed: SeedLike = 0,
    ) -> EngineResult:
        """Stream shard batches until enough failures (or the shot cap).

        Shards are consumed in spawn order and the stop condition is
        checked on the ordered prefix, so the result is identical for any
        worker count: the run covers every shard up to and including the
        first one at which the cumulative failure count reaches
        ``target_failures`` (or cumulative shots reach ``max_shots``).
        """
        if target_failures < 1:
            raise ValueError("target_failures must be >= 1")
        if max_shots < 1:
            raise ValueError("max_shots must be >= 1")
        root = _as_seed_sequence(seed)
        shots_done = 0
        failures = 0
        shards = 0
        with span(
            "engine.run_until",
            target_failures=target_failures,
            max_shots=max_shots,
        ):
            while shots_done < max_shots and failures < target_failures:
                sizes = self._next_wave_sizes(max_shots - shots_done)
                tasks = list(zip(sizes, root.spawn(len(sizes))))
                results = self._execute(tasks)
                for shard_shots, shard_failures in results:
                    shots_done += shard_shots
                    failures += shard_failures
                    shards += 1
                    if failures >= target_failures or shots_done >= max_shots:
                        break
                else:
                    continue
                break
        _ENGINE_SHOTS.inc(shots_done)
        _ENGINE_FAILURES.inc(failures)
        return EngineResult(shots=shots_done, failures=failures, shards=shards)

    def collect(
        self, shots: int, seed: SeedLike = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample detector/observable tables without decoding them.

        Shards are drawn exactly as in :meth:`run` (same seed spawning,
        same layout), sampled with the packed pipeline, and concatenated
        in shard order -- workers return bit-packed arrays, ~8x less
        pickle bandwidth than byte-per-bit tables.

        Returns:
            (detectors, observables): uint8 arrays of shapes
            (shots, ceil(num_detectors/8)) and
            (shots, ceil(num_observables/8)), one bit-packed row per shot
            (the dedup-key layout ``decode_packed`` consumes).
        """
        if shots < 0:
            raise ValueError("shots must be >= 0")
        det_width = (self.circuit.num_detectors + 7) // 8
        obs_width = (self.circuit.num_observables + 7) // 8
        if shots == 0:
            return (
                np.zeros((0, det_width), dtype=np.uint8),
                np.zeros((0, obs_width), dtype=np.uint8),
            )
        root = _as_seed_sequence(seed)
        sizes = self._shard_sizes(shots)
        tasks = list(zip(sizes, root.spawn(len(sizes))))
        parts = self._execute(tasks, fn=_collect_shard)
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
        )

    # -- internals ----------------------------------------------------------

    def _shard_sizes(self, shots: int) -> List[int]:
        full, rest = divmod(shots, self.shard_shots)
        return [self.shard_shots] * full + ([rest] if rest else [])

    def _next_wave_sizes(self, remaining: int) -> List[int]:
        sizes: List[int] = []
        for _ in range(self.workers):
            if remaining <= 0:
                break
            size = min(self.shard_shots, remaining)
            sizes.append(size)
            remaining -= size
        return sizes

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = multiprocessing.Pool(
                self.workers,
                initializer=_worker_init,
                initargs=(
                    self.circuit, self.decoder, self.observable, self.packed,
                    None, self.compile_mode,
                ),
            )
        return self._pool

    def _execute(self, tasks, fn=_run_shard) -> List:
        if self.workers <= 1:
            _worker_init(
                self.circuit, self.decoder, self.observable, self.packed,
                sim=self._sim,
            )
            return [fn(task) for task in tasks]
        metered = _METERED.get(fn)
        if metered is None or not _metrics.enabled():
            return self._ensure_pool().map(fn, tasks)
        outs: List = []
        with span("engine.merge_deltas", tasks=len(tasks)):
            for out, delta in self._ensure_pool().map(metered, tasks):
                _metrics.merge(delta)
                outs.append(out)
        return outs


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)
