"""High-throughput Monte-Carlo decoding engine.

All of the paper's Monte-Carlo numbers (the Fig. 6(a) model fit, the
Fig. 13(a) decoder trade-off) flow through "sample a noisy circuit, decode
every shot, count logical failures".  The engine makes that loop
throughput-oriented:

* **Decoder registry** -- decoders are selected by name (``"mwpm"``,
  ``"union_find"``, ``"sequential"``) through :func:`make_decoder`, so
  experiments and sweeps are parameterized by a string instead of being
  hard-wired to one class.
* **Syndrome deduplication** -- every decoder inherits
  :class:`~repro.decoder.base.BatchDecoder`, which decodes each *unique*
  syndrome row once (rows bit-packed and deduplicated as fixed-width byte
  keys) and scatters predictions back.  In low-``p`` regimes most shots
  are duplicates or all-zero.
* **Bit-packed hot path** -- by default shards sample through the
  compiled bit-packed pipeline (:mod:`repro.sim.compiled`) and hand the
  packed per-shot keys straight to ``decode_packed``; the byte-per-bit
  reference path (``packed=False``) produces bit-identical results for
  the same seed and is kept as the verification baseline.
* **Sharded parallel sampling** -- shots are split into fixed-size shards,
  each with an independent child of one root
  :class:`numpy.random.SeedSequence`.  The shard structure depends only on
  the seed and shard size, never on the worker count, so results are
  bit-identical for 1 or N ``multiprocessing`` workers.  One persistent
  pool serves all ``run``/``run_until`` calls of an engine (see
  :meth:`DecodingEngine.close`).
* **Streaming early-stop** -- :meth:`DecodingEngine.run_until` keeps
  drawing shard batches until a target failure count or a shot cap is
  reached, and :meth:`DecodingEngine.run_until_rel_error` until the
  (weighted) estimate's relative standard error is tight enough, so
  sweeps spend shots where failures are rare instead of using one fixed
  count everywhere.  Both stopping rules are evaluated on the
  shard-ordered prefix, keeping them deterministic under parallelism.
* **Weighted estimation** -- an engine built with an importance
  ``sampler`` (see :mod:`repro.estimator.rare`) draws shots from a
  reweighted proposal model and ships per-shot likelihood-ratio weight
  sums home with each shard, exactly like the shard metric deltas; the
  :class:`EngineResult` then estimates the failure probability as a
  weighted mean under the *original* model (``weighted_rate``), with a
  variance and effective sample size, still bit-identical for any worker
  count.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.decoder import transport as _transport
from repro.decoder.base import BatchDecoder, Decoder
from repro.decoder.graph import DecodingGraph
from repro.decoder.mwpm import MWPMDecoder
from repro.decoder.sequential import SequentialCNOTDecoder
from repro.decoder.union_find import UnionFindDecoder
from repro.noise.dem import DetectorErrorModel, last_periodic_fallback
from repro.obs import metrics as _metrics
from repro.obs.logs import get_logger
from repro.obs.spans import span
from repro.sim.circuit import Circuit
from repro.sim.frame import FrameSimulator

SeedLike = Union[int, np.random.SeedSequence]

_LOG = get_logger("repro.decoder.engine")

# Shot/failure/shard counters are deterministic functions of (seed,
# shard_shots) and merge identically for any worker count; the phase-time
# counters and throughput gauge are wall-clock-valued and exist for
# diagnosis, not invariance.
_ENGINE_SHOTS = _metrics.counter(
    "repro_engine_shots_total", "Shots sampled and decoded by the engine."
)
_ENGINE_FAILURES = _metrics.counter(
    "repro_engine_failures_total", "Logical failures counted by the engine."
)
_ENGINE_SHARDS = _metrics.counter(
    "repro_engine_shards_total", "Shards executed by the engine."
)
_ENGINE_SAMPLE_SECONDS = _metrics.counter(
    "repro_engine_sample_seconds_total",
    "Wall-clock seconds spent sampling shards.",
)
_ENGINE_DECODE_SECONDS = _metrics.counter(
    "repro_engine_decode_seconds_total",
    "Wall-clock seconds spent deduplicating and decoding shards.",
)
_ENGINE_THROUGHPUT = _metrics.gauge(
    "repro_engine_last_shots_per_second",
    "Throughput of the most recent DecodingEngine.run call.",
)
_ENGINE_ESS_RATIO = _metrics.gauge(
    "repro_engine_last_ess_ratio",
    "Effective-sample-size fraction (ESS/shots) of the most recent "
    "importance-sampled engine run.",
)
_ENGINE_WEIGHT_VARIANCE = _metrics.gauge(
    "repro_engine_last_weight_variance",
    "Importance-weight variance of the most recent weighted engine run.",
)

# -- decoder registry ----------------------------------------------------------

DecoderFactory = Callable[..., Decoder]
_REGISTRY: Dict[str, DecoderFactory] = {}


def register_decoder(name: str, factory: DecoderFactory) -> None:
    """Register a decoder factory under ``name``.

    The factory is called as ``factory(dem, detector_meta=..., basis=...)``
    and must return an object satisfying the
    :class:`~repro.decoder.base.Decoder` protocol.
    """
    if name in _REGISTRY:
        raise ValueError(f"decoder {name!r} is already registered")
    _REGISTRY[name] = factory


def available_decoders() -> Tuple[str, ...]:
    """Registered decoder names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_decoder(
    name: str,
    dem: DetectorErrorModel,
    *,
    detector_meta: Optional[Sequence[Tuple[int, str, int, int]]] = None,
    basis: str = "Z",
) -> Decoder:
    """Build a registered decoder from a detector error model.

    Args:
        name: registry key; see :func:`available_decoders`.
        dem: detector error model of the circuit to decode.
        detector_meta: per-detector (patch, basis, check, round) metadata;
            required by the ``"sequential"`` decoder, ignored otherwise.
        basis: CSS sector for the ``"sequential"`` decoder.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown decoder {name!r}; available: {available_decoders()}"
        )
    return factory(dem, detector_meta=detector_meta, basis=basis)


def _make_mwpm(dem, *, detector_meta=None, basis="Z"):
    return MWPMDecoder(DecodingGraph.from_dem(dem))


def _make_mwpm_uniform(dem, *, detector_meta=None, basis="Z"):
    # Verification baseline: DEM topology, uniform edge weights (the
    # hand-built-graph convention).  The DEM-weighted "mwpm" must never
    # decode worse than this.
    return MWPMDecoder(DecodingGraph.from_dem_uniform(dem))


def _make_union_find(dem, *, detector_meta=None, basis="Z"):
    return UnionFindDecoder(DecodingGraph.from_dem(dem))


def _make_sequential(dem, *, detector_meta=None, basis="Z"):
    if detector_meta is None:
        raise ValueError("the 'sequential' decoder requires detector_meta")
    return SequentialCNOTDecoder(dem, detector_meta, basis=basis)


register_decoder("mwpm", _make_mwpm)
register_decoder("mwpm_uniform", _make_mwpm_uniform)
register_decoder("union_find", _make_union_find)
register_decoder("sequential", _make_sequential)


# -- engine --------------------------------------------------------------------


@dataclass(frozen=True)
class EngineResult:
    """Aggregate outcome of one engine run.

    For uniform (brute-force) runs the weighted fields are derived from
    the raw counts in ``__post_init__`` -- every shot has weight 1, so
    ``weighted_rate == rate`` and ``ess == shots``.  Importance-sampled
    runs (an engine built with a ``sampler``) fill them with the
    likelihood-ratio sums shipped home per shard:

    * ``weighted_failures`` -- sum over failing shots of the shot weight
      ``w_i`` (the unbiased failure-count mass under the original model);
    * ``weighted_failures_sq`` -- sum over failing shots of ``w_i**2``
      (second moment, feeding :attr:`variance`);
    * ``weight_sum`` / ``weight_sq_sum`` -- sums of ``w_i`` and
      ``w_i**2`` over *all* shots (feeding :attr:`ess`).

    ``shots_beyond_stop`` counts shots an early-stop run sampled beyond
    the counted prefix (see :meth:`DecodingEngine.run_until`); it is 0
    for fixed-shot runs and, unlike every other field, depends on the
    worker count (the in-flight wave is ``workers`` shards wide).
    """

    shots: int
    failures: int
    shards: int
    weighted_failures: float = None  # type: ignore[assignment]
    weighted_failures_sq: float = None  # type: ignore[assignment]
    weight_sum: float = None  # type: ignore[assignment]
    weight_sq_sum: float = None  # type: ignore[assignment]
    shots_beyond_stop: int = 0

    def __post_init__(self) -> None:
        # Uniform-weight defaults: w_i = 1 for every shot makes the
        # weighted fields exact functions of the integer counts.
        if self.weighted_failures is None:
            object.__setattr__(self, "weighted_failures", float(self.failures))
        if self.weighted_failures_sq is None:
            object.__setattr__(
                self, "weighted_failures_sq", float(self.failures)
            )
        if self.weight_sum is None:
            object.__setattr__(self, "weight_sum", float(self.shots))
        if self.weight_sq_sum is None:
            object.__setattr__(self, "weight_sq_sum", float(self.shots))

    @property
    def rate(self) -> float:
        """Raw failure fraction of the *sampled* shots (proposal model)."""
        return self.failures / self.shots if self.shots else 0.0

    @property
    def weighted_rate(self) -> float:
        """Unbiased failure-probability estimate under the original model.

        The mean of ``w_i * fail_i``; equals :attr:`rate` for uniform
        runs.
        """
        return self.weighted_failures / self.shots if self.shots else 0.0

    @property
    def variance(self) -> float:
        """Sample variance of :attr:`weighted_rate` (the estimator itself,
        not the per-shot population): ``s^2 / n`` with the usual unbiased
        ``s^2`` over the per-shot values ``w_i * fail_i``."""
        n = self.shots
        if n == 0:
            return 0.0
        if n == 1:
            return math.inf
        mean = self.weighted_failures / n
        centered = self.weighted_failures_sq - n * mean * mean
        return max(centered, 0.0) / ((n - 1) * n)

    @property
    def std_error(self) -> float:
        """Standard error of :attr:`weighted_rate`."""
        return math.sqrt(self.variance)

    @property
    def rel_error(self) -> float:
        """``std_error / weighted_rate`` (``inf`` until a failure is seen)."""
        rate = self.weighted_rate
        return self.std_error / rate if rate > 0 else math.inf

    @property
    def ess(self) -> float:
        """Kish effective sample size ``(sum w)^2 / sum w^2``.

        Equals ``shots`` for uniform weights; a small ``ess / shots``
        fraction means a few heavy weights dominate the estimate and the
        proposal inflation should be reduced.
        """
        return (
            self.weight_sum * self.weight_sum / self.weight_sq_sum
            if self.weight_sq_sum > 0
            else 0.0
        )

    def failure_rate_ci(self, level: float = 0.95) -> Tuple[float, float]:
        """Wilson score confidence interval for the failure probability.

        Uniform runs get the classical binomial interval on
        ``(failures, shots)``.  Weighted runs use the effective binomial
        ``(weighted_rate, ess)``: the interval a uniform run of ``ess``
        shots at the same estimate would have, which is the standard
        weighted-sample approximation.  Unlike the normal interval, the
        Wilson interval stays informative at zero observed failures
        (upper bound ~ ``z^2 / n``), which is what the adaptive budget
        allocator relies on to stop feeding converged zero-failure
        points.
        """
        if not 0.0 < level < 1.0:
            raise ValueError("level must be in (0, 1)")
        n = self.ess
        if n <= 0:
            return (0.0, 1.0)
        p = min(max(self.weighted_rate, 0.0), 1.0)
        z = NormalDist().inv_cdf(0.5 + level / 2.0)
        denom = 1.0 + z * z / n
        center = (p + z * z / (2.0 * n)) / denom
        half = (z / denom) * math.sqrt(
            p * (1.0 - p) / n + z * z / (4.0 * n * n)
        )
        return (max(center - half, 0.0), min(center + half, 1.0))

    def __add__(self, other: "EngineResult") -> "EngineResult":
        """Merge two runs' sufficient statistics (order-independent)."""
        if not isinstance(other, EngineResult):
            return NotImplemented
        return EngineResult(
            shots=self.shots + other.shots,
            failures=self.failures + other.failures,
            shards=self.shards + other.shards,
            weighted_failures=self.weighted_failures + other.weighted_failures,
            weighted_failures_sq=(
                self.weighted_failures_sq + other.weighted_failures_sq
            ),
            weight_sum=self.weight_sum + other.weight_sum,
            weight_sq_sum=self.weight_sq_sum + other.weight_sq_sum,
            shots_beyond_stop=self.shots_beyond_stop + other.shots_beyond_stop,
        )


class _ShardStats(NamedTuple):
    """Sufficient statistics one shard ships home (sums in shard order)."""

    shots: int
    failures: int
    weighted_failures: float
    weighted_failures_sq: float
    weight_sum: float
    weight_sq_sum: float


def _as_result(stats: _ShardStats) -> EngineResult:
    return EngineResult(
        shots=stats.shots,
        failures=stats.failures,
        shards=1,
        weighted_failures=stats.weighted_failures,
        weighted_failures_sq=stats.weighted_failures_sq,
        weight_sum=stats.weight_sum,
        weight_sq_sum=stats.weight_sq_sum,
    )


def _sum_stats(results: Sequence[_ShardStats]) -> EngineResult:
    # Left-to-right accumulation in shard (spawn) order: the float sums
    # come out bit-identical for any worker count.
    shots = failures = 0
    wf = wfsq = ws = wsq = 0.0
    for stats in results:
        shots += stats.shots
        failures += stats.failures
        wf += stats.weighted_failures
        wfsq += stats.weighted_failures_sq
        ws += stats.weight_sum
        wsq += stats.weight_sq_sum
    return EngineResult(
        shots=shots,
        failures=failures,
        shards=len(results),
        weighted_failures=wf,
        weighted_failures_sq=wfsq,
        weight_sum=ws,
        weight_sq_sum=wsq,
    )


# Per-worker state, installed once by the pool initializer so shard tasks
# only ship (shots, seed) pairs instead of the circuit and decoder.
_WORKER: dict = {}


def _worker_init(
    circuit: Circuit,
    decoder: Optional[Decoder],
    observable: Optional[int],
    packed: bool,
    sim: Optional[FrameSimulator] = None,
    compile_mode: str = "auto",
    sampler=None,
) -> None:
    # An importance-sampled engine never touches the circuit simulator in
    # its shard loop, so workers skip building one.
    if sim is not None:
        _WORKER["sim"] = sim
    elif sampler is not None:
        _WORKER["sim"] = None
    else:
        _WORKER["sim"] = FrameSimulator(circuit, compile_mode=compile_mode)
    _WORKER["decoder"] = decoder
    _WORKER["observable"] = observable
    _WORKER["packed"] = packed
    _WORKER["sampler"] = sampler
    _WORKER["num_detectors"] = circuit.num_detectors
    _WORKER["num_observables"] = circuit.num_observables


def _shard_failures(predictions, observables, observable):
    if observable is None:
        return (predictions ^ observables).any(axis=1)
    return (
        predictions[:, observable] ^ observables[:, observable]
    ).astype(bool)


def _run_shard(task: Tuple[int, np.random.SeedSequence]) -> _ShardStats:
    """Sample + decode one shard; returns its :class:`_ShardStats` sums."""
    shots, seed_seq = task
    sim: Optional[FrameSimulator] = _WORKER["sim"]
    decoder: Decoder = _WORKER["decoder"]
    observable: Optional[int] = _WORKER["observable"]
    sampler = _WORKER.get("sampler")
    rng = np.random.default_rng(seed_seq)
    metered = _metrics.enabled()
    with span("engine.shard", shots=shots):
        if sampler is not None:
            # Importance path: shots come from the reweighted DEM proposal
            # (already in the packed dedup-key layout), each with a
            # log-likelihood-ratio under the original model.  The shard
            # ships weight *sums*, accumulated in shard order -- the same
            # protocol that keeps the metric deltas worker-count
            # invariant.
            start = time.perf_counter() if metered else 0.0
            det_keys, obs_keys, log_weights = sampler.sample_weighted(
                shots, rng
            )
            if metered:
                mid = time.perf_counter()
                _ENGINE_SAMPLE_SECONDS.inc(mid - start)
            predictions = decoder.decode_packed(
                det_keys, _WORKER["num_detectors"]
            )
            if metered:
                _ENGINE_DECODE_SECONDS.inc(time.perf_counter() - mid)
                _ENGINE_SHARDS.inc()
            num_obs = _WORKER["num_observables"]
            if num_obs:
                observables = np.unpackbits(obs_keys, axis=1, count=num_obs)
            else:
                observables = np.zeros((shots, 0), dtype=np.uint8)
            wrong = _shard_failures(predictions, observables, observable)
            weights = np.exp(log_weights)
            failing = weights[wrong]
            return _ShardStats(
                shots=shots,
                failures=int(wrong.sum()),
                weighted_failures=float(failing.sum()),
                weighted_failures_sq=float(np.square(failing).sum()),
                weight_sum=float(weights.sum()),
                weight_sq_sum=float(np.square(weights).sum()),
            )
        if _WORKER["packed"]:
            # Packed end to end: sampling emits bit-packed per-shot keys
            # that the decoder dedups directly; only the tiny observable
            # table is unpacked for the failure comparison.
            start = time.perf_counter() if metered else 0.0
            det_keys, obs_keys = sim.sample_packed(shots, rng=rng)
            if metered:
                mid = time.perf_counter()
                _ENGINE_SAMPLE_SECONDS.inc(mid - start)
            predictions = decoder.decode_packed(
                det_keys, _WORKER["num_detectors"]
            )
            if metered:
                _ENGINE_DECODE_SECONDS.inc(time.perf_counter() - mid)
            num_obs = _WORKER["num_observables"]
            if num_obs:
                observables = np.unpackbits(obs_keys, axis=1, count=num_obs)
            else:
                observables = np.zeros((shots, 0), dtype=np.uint8)
        else:
            start = time.perf_counter() if metered else 0.0
            detectors, observables = sim.sample(shots, rng=rng)
            if metered:
                mid = time.perf_counter()
                _ENGINE_SAMPLE_SECONDS.inc(mid - start)
            predictions = decoder.decode_batch(detectors)
            if metered:
                _ENGINE_DECODE_SECONDS.inc(time.perf_counter() - mid)
        wrong = _shard_failures(predictions, observables, observable)
        if metered:
            _ENGINE_SHARDS.inc()
        failures = int(np.sum(wrong))
        return _ShardStats(
            shots=shots,
            failures=failures,
            weighted_failures=float(failures),
            weighted_failures_sq=float(failures),
            weight_sum=float(shots),
            weight_sq_sum=float(shots),
        )


def _collect_shard(
    task: Tuple[int, np.random.SeedSequence]
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample one shard; returns bit-packed (detector, observable) keys.

    Workers ship the packed arrays back to the parent, ~8x less pickle
    bandwidth than byte-per-bit tables.
    """
    shots, seed_seq = task
    sim: FrameSimulator = _WORKER["sim"]
    if _metrics.enabled():
        start = time.perf_counter()
        out = sim.sample_packed(shots, rng=np.random.default_rng(seed_seq))
        _ENGINE_SAMPLE_SECONDS.inc(time.perf_counter() - start)
        _ENGINE_SHARDS.inc()
        return out
    return sim.sample_packed(shots, rng=np.random.default_rng(seed_seq))


def _run_shard_metered(task):
    """Pool-side wrapper: run the shard, ship the shard's metric delta.

    The parent merges the delta into its registry, so counters and
    histograms come out identical to a serial run -- the worker-count
    invariance contract extended to telemetry.  The snapshot is taken per
    task (not per worker) so increments are never double-shipped.
    """
    base = _metrics.snapshot()
    out = _run_shard(task)
    return out, _metrics.delta_since(base)


def _collect_shard_metered(task):
    """Pool-side wrapper for :func:`_collect_shard`; see above."""
    base = _metrics.snapshot()
    out = _collect_shard(task)
    return out, _metrics.delta_since(base)


def _collect_shard_shm(
    task: Tuple[int, np.random.SeedSequence, str, str, int]
) -> int:
    """Sample one shard straight into the parent's shared-memory tables.

    The task carries the two segment names and the shard's starting row;
    the worker writes its bit-packed rows in place (see
    :mod:`repro.decoder.transport`), so nothing but this acknowledgement
    rides the pickle pipe.
    """
    shots, seed_seq, det_name, obs_name, row_start = task
    sim: FrameSimulator = _WORKER["sim"]
    metered = _metrics.enabled()
    start = time.perf_counter() if metered else 0.0
    det, obs = sim.sample_packed(shots, rng=np.random.default_rng(seed_seq))
    if metered:
        _ENGINE_SAMPLE_SECONDS.inc(time.perf_counter() - start)
        _ENGINE_SHARDS.inc()
    _transport.write_rows(det_name, row_start, det)
    _transport.write_rows(obs_name, row_start, obs)
    return shots


def _collect_shard_shm_metered(task):
    """Pool-side wrapper for :func:`_collect_shard_shm`; see above."""
    base = _metrics.snapshot()
    out = _collect_shard_shm(task)
    return out, _metrics.delta_since(base)


_METERED = {
    _run_shard: _run_shard_metered,
    _collect_shard: _collect_shard_metered,
    _collect_shard_shm: _collect_shard_shm_metered,
}


class DecodingEngine:
    """Batched Monte-Carlo decoding of one noisy circuit.

    Args:
        circuit: the noisy circuit to sample (its DEM is extracted once).
        decoder: registry name (see :func:`available_decoders`) or an
            already-built :class:`~repro.decoder.base.Decoder` instance.
        detector_meta: passed through to :func:`make_decoder` for the
            ``"sequential"`` decoder.
        basis: CSS sector for the ``"sequential"`` decoder.
        observable: observable column a failure is counted on; ``None``
            counts a shot as failed when *any* observable is mispredicted
            (the transversal-CNOT criterion).
        shard_shots: shots per shard.  The shard layout is a function of
            the seed and this value only, so results do not depend on
            ``workers``.
        workers: number of ``multiprocessing`` workers; ``1`` runs inline.
        packed: when True (default), shards run the bit-packed compiled
            pipeline (:meth:`~repro.sim.frame.FrameSimulator.sample_packed`
            feeding :meth:`~repro.decoder.base.BatchDecoder.decode_packed`);
            ``False`` runs the byte-per-bit reference path.  Both produce
            bit-identical results for the same seed.
        compile_mode: packed-program selection (``"auto"`` / ``"linear"``
            / ``"periodic"``), forwarded to the simulators -- ``"auto"``
            replays a detected repeated round periodically (see
            :mod:`repro.sim.periodic`).  All modes are bit-identical per
            seed; programs are memoized per circuit fingerprint, so
            repeated engines and ``run_until`` batches never recompile.
        sampler: optional importance sampler (an object with
            ``sample_weighted(shots, rng) -> (det_keys, obs_keys,
            log_weights)`` in the packed dedup-key layout, e.g.
            :class:`repro.estimator.rare.ImportanceSampler`).  When given,
            shards draw from the sampler's reweighted proposal instead of
            simulating the circuit, and results carry likelihood-ratio
            weight sums so ``EngineResult.weighted_rate`` estimates the
            failure probability under the *original* model.  The decoder
            still decodes against the original DEM.  ``collect`` is
            unavailable in this mode.
        transport: shard-table transport for :meth:`collect` -- ``"auto"``
            / ``"shm"`` write shard rows into shared-memory segments the
            returned arrays view zero-copy; ``"pickle"`` ships each
            shard's arrays through the pool pipe and concatenates (the
            pre-shared-memory baseline).  Bit-identical either way.

    The engine keeps one persistent worker pool alive across ``run`` /
    ``run_until`` calls (spawning a pool ships the circuit and decoder to
    every worker; respawning per batch wasted that setup).  Call
    :meth:`close` -- or use the engine as a context manager -- to release
    the pool; it is also released on garbage collection.
    """

    def __init__(
        self,
        circuit: Circuit,
        decoder: Union[str, Decoder] = "mwpm",
        *,
        detector_meta: Optional[Sequence[Tuple[int, str, int, int]]] = None,
        basis: str = "Z",
        observable: Optional[int] = 0,
        shard_shots: int = 1024,
        workers: int = 1,
        packed: bool = True,
        compile_mode: str = "auto",
        sampler=None,
        transport: str = "auto",
    ) -> None:
        if shard_shots < 1:
            raise ValueError("shard_shots must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if transport not in ("auto", "shm", "pickle"):
            raise ValueError(f"unknown transport {transport!r}")
        self.transport = transport
        self.circuit = circuit
        self.observable = observable
        self.shard_shots = shard_shots
        self.workers = workers
        self.packed = packed
        self.compile_mode = compile_mode
        self.sampler = sampler
        self._pool = None
        # One simulator for serial execution and DEM extraction: its
        # compiled program is fetched once (fingerprint-memoized) and
        # reused across run() calls.
        self._sim = FrameSimulator(circuit, compile_mode=compile_mode)
        if isinstance(decoder, str):
            # DEM extraction is the dominant setup cost; skip it entirely
            # when the caller hands over an already-built decoder.
            with span("engine.extract_dem"):
                self.dem: Optional[DetectorErrorModel] = (
                    self._sim.detector_error_model()
                )
            # A failed periodic certification silently degrades DEM
            # extraction to the linear path; surface the reason so the
            # degradation is observable (also counted in
            # repro_periodic_fallback_total{reason=...}).
            self.periodic_fallback_reason = last_periodic_fallback()
            if self.periodic_fallback_reason is not None:
                _LOG.debug(
                    "periodic DEM extraction fell back to linear: %s",
                    self.periodic_fallback_reason,
                )
            with span("engine.build_decoder", decoder=decoder):
                self.decoder = make_decoder(
                    decoder, self.dem, detector_meta=detector_meta, basis=basis
                )
        else:
            self.dem = None
            self.decoder = decoder
            self.periodic_fallback_reason = None

    def close(self) -> None:
        """Release the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "DecodingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- public API ---------------------------------------------------------

    def run(self, shots: int, seed: SeedLike = 0) -> EngineResult:
        """Decode a fixed number of shots, sharded and deduplicated."""
        if shots < 0:
            raise ValueError("shots must be >= 0")
        if shots == 0:
            return EngineResult(shots=0, failures=0, shards=0)
        root = _as_seed_sequence(seed)
        sizes = self._shard_sizes(shots)
        tasks = list(zip(sizes, root.spawn(len(sizes))))
        with span("engine.run", shots=shots, workers=self.workers):
            start = time.perf_counter()
            results = self._execute(tasks)
            elapsed = time.perf_counter() - start
        result = _sum_stats(results)
        _ENGINE_SHOTS.inc(result.shots)
        _ENGINE_FAILURES.inc(result.failures)
        if elapsed > 0:
            _ENGINE_THROUGHPUT.set(result.shots / elapsed)
        self._observe_weighted(result)
        return result

    def run_until(
        self,
        target_failures: int,
        max_shots: int,
        seed: SeedLike = 0,
    ) -> EngineResult:
        """Stream shard batches until enough failures (or the shot cap).

        Shards are consumed in spawn order and the stop condition is
        checked on the ordered prefix, so the result is identical for any
        worker count: the run covers every shard up to and including the
        first one at which the cumulative failure count reaches
        ``target_failures`` (or cumulative shots reach ``max_shots``).

        Stop-boundary contract: each wave dispatches up to ``workers``
        shards at once, and every dispatched shard runs to completion
        even when an earlier shard of the same wave already satisfies the
        stop condition -- the engine *samples* beyond the stop, but the
        counted result never includes those shards.  The overshoot is
        reported as ``EngineResult.shots_beyond_stop`` so budget
        accounting (wall-clock, draws from the entropy stream) is exact.
        Unlike the counted fields, ``shots_beyond_stop`` depends on the
        worker count, because the wave width is ``workers`` shards.
        """
        if target_failures < 1:
            raise ValueError("target_failures must be >= 1")
        if max_shots < 1:
            raise ValueError("max_shots must be >= 1")
        with span(
            "engine.run_until",
            target_failures=target_failures,
            max_shots=max_shots,
        ):
            result = self._run_streaming(
                lambda res: res.failures >= target_failures, max_shots, seed
            )
        low, high = result.failure_rate_ci()
        _LOG.debug(
            "run_until(%d): %d/%d failures, rate %.3g "
            "(95%% CI [%.3g, %.3g]), %d shots beyond stop",
            target_failures, result.failures, result.shots, result.rate,
            low, high, result.shots_beyond_stop,
        )
        return result

    def run_until_rel_error(
        self,
        target_rel_err: float,
        max_shots: int,
        seed: SeedLike = 0,
        *,
        min_failures: int = 5,
    ) -> EngineResult:
        """Stream shard batches until the estimate is tight enough.

        Stops at the first shard (in spawn order, so worker-count
        invariant) where at least ``min_failures`` failures have been
        seen *and* ``EngineResult.rel_error`` -- the standard error of
        the weighted failure estimate divided by the estimate -- is at
        most ``target_rel_err``; ``max_shots`` caps the run either way.
        For a uniform engine this is a binomial precision target; for an
        importance-sampled engine it is the natural stopping rule,
        because the weighted variance (not the raw failure count) is
        what a precision claim rests on.  The stop-boundary contract of
        :meth:`run_until` applies unchanged, including
        ``shots_beyond_stop``.
        """
        if not target_rel_err > 0:
            raise ValueError("target_rel_err must be > 0")
        if max_shots < 1:
            raise ValueError("max_shots must be >= 1")
        if min_failures < 1:
            raise ValueError("min_failures must be >= 1")
        with span(
            "engine.run_until_rel_error",
            target_rel_err=target_rel_err,
            max_shots=max_shots,
        ):
            result = self._run_streaming(
                lambda res: (
                    res.failures >= min_failures
                    and res.rel_error <= target_rel_err
                ),
                max_shots,
                seed,
            )
        _LOG.debug(
            "run_until_rel_error(%.3g): rate %.3g +- %.3g after %d shots "
            "(ESS %.0f, %d beyond stop)",
            target_rel_err, result.weighted_rate, result.std_error,
            result.shots, result.ess, result.shots_beyond_stop,
        )
        return result

    def _run_streaming(
        self,
        should_stop: Callable[[EngineResult], bool],
        max_shots: int,
        seed: SeedLike,
    ) -> EngineResult:
        """Wave loop shared by the early-stop runs (prefix-deterministic)."""
        root = _as_seed_sequence(seed)
        acc = EngineResult(shots=0, failures=0, shards=0)
        beyond = 0
        stopped = False
        while not stopped and acc.shots < max_shots:
            sizes = self._next_wave_sizes(max_shots - acc.shots)
            tasks = list(zip(sizes, root.spawn(len(sizes))))
            results = self._execute(tasks)
            for index, stats in enumerate(results):
                acc = acc + _as_result(stats)
                if should_stop(acc) or acc.shots >= max_shots:
                    beyond = sum(sizes[index + 1:])
                    stopped = True
                    break
        _ENGINE_SHOTS.inc(acc.shots)
        _ENGINE_FAILURES.inc(acc.failures)
        result = EngineResult(
            shots=acc.shots,
            failures=acc.failures,
            shards=acc.shards,
            weighted_failures=acc.weighted_failures,
            weighted_failures_sq=acc.weighted_failures_sq,
            weight_sum=acc.weight_sum,
            weight_sq_sum=acc.weight_sq_sum,
            shots_beyond_stop=beyond,
        )
        self._observe_weighted(result)
        return result

    def _observe_weighted(self, result: EngineResult) -> None:
        if self.sampler is None or not result.shots or not _metrics.enabled():
            return
        _ENGINE_ESS_RATIO.set(result.ess / result.shots)
        mean_weight = result.weight_sum / result.shots
        _ENGINE_WEIGHT_VARIANCE.set(
            max(result.weight_sq_sum / result.shots - mean_weight ** 2, 0.0)
        )

    def collect(
        self, shots: int, seed: SeedLike = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample detector/observable tables without decoding them.

        Shards are drawn exactly as in :meth:`run` (same seed spawning,
        same layout) and sampled with the packed pipeline.  With the
        default shared-memory transport, workers write their shard rows
        directly into two pre-allocated segments at the shard's row
        offset and the returned arrays are zero-copy views of those
        segments (see :mod:`repro.decoder.transport`); ``transport=
        "pickle"`` restores the ship-and-concatenate baseline.  Both
        transports produce bit-identical tables for the same seed.

        Returns:
            (detectors, observables): uint8 arrays of shapes
            (shots, ceil(num_detectors/8)) and
            (shots, ceil(num_observables/8)), one bit-packed row per shot
            (the dedup-key layout ``decode_packed`` consumes).  Shared-
            memory-backed arrays own their segment and remain valid after
            :meth:`close`.
        """
        if self.sampler is not None:
            raise ValueError(
                "collect() is unavailable on an importance-sampled engine: "
                "the sampler draws from the reweighted proposal model, not "
                "the circuit"
            )
        if shots < 0:
            raise ValueError("shots must be >= 0")
        det_width = (self.circuit.num_detectors + 7) // 8
        obs_width = (self.circuit.num_observables + 7) // 8
        if shots == 0:
            return (
                np.zeros((0, det_width), dtype=np.uint8),
                np.zeros((0, obs_width), dtype=np.uint8),
            )
        root = _as_seed_sequence(seed)
        sizes = self._shard_sizes(shots)
        seeds = root.spawn(len(sizes))
        if self.transport == "pickle":
            parts = self._execute(list(zip(sizes, seeds)), fn=_collect_shard)
            return (
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
            )
        # Shared-memory transport: allocate both output tables once, have
        # every shard write its rows in place at its offset, and return
        # views of the segments -- the parent never copies a row.  The
        # rows, offsets, and values are exactly the pickle path's, so the
        # transports are bit-identical per seed.
        detectors, det_name = _transport.allocate(shots, det_width)
        observables, obs_name = _transport.allocate(shots, obs_width)
        offsets = [0]
        for size in sizes[:-1]:
            offsets.append(offsets[-1] + size)
        tasks = [
            (size, seed_seq, det_name, obs_name, offset)
            for size, seed_seq, offset in zip(sizes, seeds, offsets)
        ]
        self._execute(tasks, fn=_collect_shard_shm)
        return detectors, observables

    # -- internals ----------------------------------------------------------

    def _shard_sizes(self, shots: int) -> List[int]:
        full, rest = divmod(shots, self.shard_shots)
        return [self.shard_shots] * full + ([rest] if rest else [])

    def _next_wave_sizes(self, remaining: int) -> List[int]:
        sizes: List[int] = []
        for _ in range(self.workers):
            if remaining <= 0:
                break
            size = min(self.shard_shots, remaining)
            sizes.append(size)
            remaining -= size
        return sizes

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = multiprocessing.Pool(
                self.workers,
                initializer=_worker_init,
                initargs=(
                    self.circuit, self.decoder, self.observable, self.packed,
                    None, self.compile_mode, self.sampler,
                ),
            )
        return self._pool

    def _execute(self, tasks, fn=_run_shard) -> List:
        if self.workers <= 1:
            _worker_init(
                self.circuit, self.decoder, self.observable, self.packed,
                sim=self._sim, sampler=self.sampler,
            )
            return [fn(task) for task in tasks]
        metered = _METERED.get(fn)
        if metered is None or not _metrics.enabled():
            return self._ensure_pool().map(fn, tasks)
        outs: List = []
        with span("engine.merge_deltas", tasks=len(tasks)):
            for out, delta in self._ensure_pool().map(metered, tasks):
                _metrics.merge(delta)
                outs.append(out)
        return outs


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)
