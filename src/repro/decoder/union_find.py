"""Union-find decoder (paper Refs. [17, 90]).

A faster-but-less-accurate alternative to MWPM: defects grow clusters on
the decoding graph until every cluster is valid (even defect count or
touching the boundary); each cluster is then corrected by peeling a
spanning tree.  The paper's Fig. 13(a) motivates carrying such decoders:
they trade accuracy (a larger decoding factor alpha) for speed, and the
architecture tolerates the difference at ~50% volume cost.

Two implementations live here:

* The **batched arena** (default) runs cluster growth for a whole
  unique-syndrome batch at once: support is a flat ``(row, edge)`` touch
  counter updated with sorted-key scatters over the graph's CSR incidence
  arrays, cluster membership is a per-row union-find over dense
  ``(rows, nodes)`` parent tables with vectorized path compression, and
  the final correction peels the recorded spanning forest of every row
  simultaneously (leaf rounds over compact node instances).  Half-edge
  growth discretizes exactly to touch counting -- every increment of an
  edge's support is half that same edge's weight, so an edge is grown at
  two touches (one for zero-weight rails) -- which is what makes the
  integer batch formulation bit-exact per row.
* The **reference** per-shot implementation (``batched=False``, and the
  ``_grow``/``_peel`` methods) is the original sequential
  Delfosse-Nickerson loop, kept as the verification and benchmarking
  baseline.

Rows are independent in the arena: predictions are a pure per-row
function, so batch composition and row order never change the output
(the ``registry_contract`` analysis pass checks this for every
registered decoder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

import numpy as np

from repro.decoder.base import BatchDecoder, SparseTables, _unmask_rows
from repro.decoder.graph import BOUNDARY, DecodingGraph

# Edges whose -log-likelihood weight rails to ~0 (probability pinned at
# the 0.499999 rail in Edge.weight) are grown in one step: half-edge
# increments of a vanishing weight would otherwise stall the frontier.
_ZERO_WEIGHT = 1e-5

# Growth rounds before the decoder declares non-convergence (a defect
# that can never become valid, e.g. a severed adjacency).
_MAX_ROUNDS = 10_000

# Observable masks ride int64 scalars through the arena; graphs with more
# observables fall back to the reference path (mirrors the MWPM decoder's
# vectorized-DP limit).
_MASK_OBS_LIMIT = 62

# Upper bound on rows x max(nodes, edges) elements held live per arena
# chunk, bounding the dense per-row state tables.
_ARENA_CHUNK_ELEMS = 1 << 24


@dataclass
class _Cluster:
    """A growing cluster of detectors (reference implementation)."""

    root: int
    defects: int
    touches_boundary: bool

    @property
    def is_valid(self) -> bool:
        return self.touches_boundary or self.defects % 2 == 0


class _EdgeArrays(NamedTuple):
    """Flat edge/incidence arrays of the decoding graph for the arena.

    The boundary is materialized as node index ``num_detectors``; edges
    are sorted by endpoint pair so every derived ordering (and therefore
    every tie in the arena) is a pure function of the graph.
    """

    node_count: int  # detectors + 1 (boundary at index num_detectors)
    ea: np.ndarray  # (E,) int64 lower endpoint
    eb: np.ndarray  # (E,) int64 upper endpoint
    mask: np.ndarray  # (E,) int64 observable mask
    thresh: np.ndarray  # (E,) uint8 touches to grow (1 zero-weight, else 2)
    indptr: np.ndarray  # (node_count + 1,) CSR over incident edges
    inc_edge: np.ndarray  # incident edge index per CSR slot


def _ragged_ranges(starts: np.ndarray, counts: np.ndarray, total: int) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for every (s, c) pair, vectorized.

    ``counts`` must be strictly positive (filter zeros before calling).
    """
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        idx = np.cumsum(counts)[:-1]
        out[idx] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    np.cumsum(out, out=out)
    return out


def _find_rows(parent: np.ndarray, rows: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Vectorized union-find root lookup with per-query path compression."""
    if rows.size == 0:
        return nodes
    p = parent[rows, nodes]
    while True:
        gp = parent[rows, p]
        if np.array_equal(gp, p):
            break
        p = gp
    parent[rows, nodes] = p
    return p


class UnionFindDecoder(BatchDecoder):
    """Cluster-growth decoder on a :class:`DecodingGraph`.

    Args:
        graph: decoding graph to grow clusters on.
        batched: when True (default), decode through the vectorized
            multi-row arena; ``False`` restores the per-shot reference
            loop (the pre-arena baseline kept for verification and the
            decode-phase benchmark).
    """

    def __init__(self, graph: DecodingGraph, *, batched: bool = True) -> None:
        self.graph = graph
        self.batched = batched
        self._adjacency: Dict[int, List[Tuple[int, float, int]]] = {}
        for edge in graph.edges:
            if len(edge.detectors) == 1:
                u, v = edge.detectors[0], BOUNDARY
            else:
                u, v = edge.detectors
            mask = 0
            for obs in edge.observables:
                mask |= 1 << obs
            self._adjacency.setdefault(u, []).append((v, edge.weight, mask))
            self._adjacency.setdefault(v, []).append((u, edge.weight, mask))
        self._edge_cache: Optional[_EdgeArrays] = None
        self._sparse_cache: "SparseTables | bool | None" = None
        self._token: Optional[str] = None

    def _find(self, parents: Dict[int, int], node: int) -> int:
        root = node
        while parents[root] != root:
            root = parents[root]
        while parents[node] != root:
            parents[node], node = root, parents[node]
        return root

    @property
    def num_observables(self) -> int:
        return self.graph.num_observables

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Predict observable flips for one syndrome."""
        syndrome = np.asarray(syndrome, dtype=np.uint8)
        if not self.batched or self.graph.num_observables > _MASK_OBS_LIMIT:
            return self._decode_reference(syndrome)
        return self._decode_unique(syndrome[None, :])[0]

    def _decode_reference(self, syndrome: np.ndarray) -> np.ndarray:
        """Per-shot reference decode (sequential growth + DFS peel)."""
        defects = [int(d) for d in np.flatnonzero(syndrome)]
        if not defects:
            return np.zeros(self.graph.num_observables, dtype=np.uint8)
        mask = self._peel(self._grow(set(defects)), set(defects))
        return _unmask_rows(
            np.array([mask], dtype=np.int64), self.graph.num_observables
        )[0]

    # -- sparse fast path / cache hooks -------------------------------------

    def _cache_token(self) -> str:
        """Content fingerprint keying the cross-batch syndrome cache."""
        if self._token is None:
            self._token = (
                f"union_find:{int(self.batched)}:{self.graph.digest()}"
            )
        return self._token

    def _sparse_tables(self) -> Optional[SparseTables]:
        """Single-defect correction table, precomputed through the arena.

        Unlike MWPM, a union-find pair correction is not a shortest-path
        closed form (it depends on the cluster-growth geometry), so only
        the singles table is precomputed: every boundary-reachable
        detector's one-defect syndrome is decoded once as a single arena
        batch.  Table rows are exact :meth:`decode` outputs, so the fast
        path is bit-identical by construction.
        """
        if not self.batched or self.graph.num_observables > _MASK_OBS_LIMIT:
            return None
        if self._sparse_cache is None:
            n = self.graph.num_detectors
            edges = self._edge_arrays()
            # A lone defect converges iff its component holds the boundary;
            # isolated defects stay out of the table (the full path raises
            # its non-convergence error for them).
            reach = np.zeros(edges.node_count, dtype=bool)
            reach[edges.node_count - 1] = True
            while True:
                live = reach[edges.ea] | reach[edges.eb]
                before = int(reach.sum())
                reach[edges.ea[live]] = True
                reach[edges.eb[live]] = True
                if int(reach.sum()) == before:
                    break
            singles_ok = reach[:n].copy()
            singles = np.zeros(
                (n, self.graph.num_observables), dtype=np.uint8
            )
            ok_rows = np.flatnonzero(singles_ok)
            if ok_rows.size and n:
                eye = np.zeros((ok_rows.size, n), dtype=np.uint8)
                eye[np.arange(ok_rows.size), ok_rows] = 1
                singles[ok_rows] = self._decode_unique(eye)
            self._sparse_cache = SparseTables(
                singles=singles, singles_ok=singles_ok
            ) if n else False
        return self._sparse_cache or None

    # -- batched arena -------------------------------------------------------

    def _decode_unique(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode deduplicated syndrome rows through the growth arena."""
        num_obs = self.graph.num_observables
        if not self.batched or num_obs > _MASK_OBS_LIMIT:
            out = np.zeros((syndromes.shape[0], num_obs), dtype=np.uint8)
            for i in range(syndromes.shape[0]):
                out[i] = self._decode_reference(syndromes[i])
            return out
        edges = self._edge_arrays()
        rows = syndromes.shape[0]
        width = max(edges.node_count, edges.ea.size, 1)
        chunk = max(1, _ARENA_CHUNK_ELEMS // width)
        masks = np.zeros(rows, dtype=np.int64)
        flagged = np.zeros(rows, dtype=bool)
        for start in range(0, rows, chunk):
            block = np.ascontiguousarray(syndromes[start:start + chunk])
            masks[start:start + chunk], flagged[start:start + chunk] = (
                self._arena(block, edges)
            )
        out = _unmask_rows(masks, num_obs)
        # Rows where round-synchronous growth could diverge from the
        # sequential reference (live-live merges with carried-over support,
        # or a grown cycle whose observable mask makes the correction
        # spanning-tree dependent) re-decode through the reference path so
        # the arena is bit-identical to it on every row.
        for i in np.flatnonzero(flagged):
            out[i] = self._decode_reference(syndromes[i])
        return out

    def _edge_arrays(self) -> _EdgeArrays:
        """Canonical flat edge list + CSR incidence, built lazily."""
        if self._edge_cache is None:
            n = self.graph.num_detectors
            merged: Dict[Tuple[int, int], Tuple[float, int]] = {}
            for u, nbrs in self._adjacency.items():
                ui = n if u == BOUNDARY else u
                for v, weight, mask in nbrs:
                    vi = n if v == BOUNDARY else v
                    key = (ui, vi) if ui < vi else (vi, ui)
                    merged.setdefault(key, (weight, mask))
            keys = sorted(merged)
            count = len(keys)
            ea = np.fromiter((k[0] for k in keys), dtype=np.int64, count=count)
            eb = np.fromiter((k[1] for k in keys), dtype=np.int64, count=count)
            weight = np.fromiter(
                (merged[k][0] for k in keys), dtype=np.float64, count=count
            )
            mask = np.fromiter(
                (merged[k][1] for k in keys), dtype=np.int64, count=count
            )
            thresh = np.where(weight <= _ZERO_WEIGHT, 1, 2).astype(np.uint8)
            if count:
                ends = np.concatenate([ea, eb])
                eids = np.concatenate([np.arange(count, dtype=np.int64)] * 2)
                order = np.lexsort((eids, ends))
                inc_edge = eids[order]
                counts = np.bincount(ends, minlength=n + 1)
            else:
                inc_edge = np.zeros(0, dtype=np.int64)
                counts = np.zeros(n + 1, dtype=np.int64)
            indptr = np.zeros(n + 2, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._edge_cache = _EdgeArrays(
                node_count=n + 1,
                ea=ea,
                eb=eb,
                mask=mask,
                thresh=thresh,
                indptr=indptr,
                inc_edge=inc_edge,
            )
        return self._edge_cache

    def _arena(
        self, syndromes: np.ndarray, edges: _EdgeArrays
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Grow and peel every row of one chunk.

        Returns ``(masks, flagged)``: int64 observable masks per row, and a
        bool row mask marking rows whose arena result is not certified
        bit-identical to the sequential reference (the caller re-decodes
        those through :meth:`_decode_reference`).

        Growth is round-synchronous: every node of every invalid cluster
        adds one touch to each un-grown incident edge, edges at threshold
        grow, and the resulting events apply as ensure-then-union in
        canonical (row, edge) order via a vectorized link loop.  Cluster
        validity (defect parity, boundary contact) is recomputed from the
        membership pairs at every round start rather than maintained
        incrementally.

        The reference loop processes clusters sequentially *within* a
        round, so a merge can absorb a cluster whose turn had not happened
        yet, skipping its touches for that round.  That is only possible
        when the merge edge entered the round one touch below threshold
        (a single cluster's touch completes it mid-round); such rows are
        flagged rather than emulated.  Every other divergence is a
        spanning-tree choice, which the peel-side potential check flags.
        """
        rows = syndromes.shape[0]
        node_count = edges.node_count
        boundary = node_count - 1
        num_edges = edges.ea.size
        flagged = np.zeros(rows, dtype=bool)
        rows0, nodes0 = np.nonzero(syndromes)
        if rows0.size == 0:
            return np.zeros(rows, dtype=np.int64), flagged
        parent = np.broadcast_to(
            np.arange(node_count, dtype=np.int64), (rows, node_count)
        ).copy()
        in_cl = np.zeros((rows, node_count), dtype=bool)
        in_cl[rows0, nodes0] = True
        # Defect indicator padded with a zero boundary column so cluster
        # stats index it directly with (row, node) membership pairs.
        defect_pad = np.zeros((rows, node_count), dtype=np.int64)
        defect_pad[:, :node_count - 1] = syndromes
        act_r = rows0.astype(np.int64)
        act_n = nodes0.astype(np.int64)
        support = np.zeros(rows * num_edges, dtype=np.uint8)
        grown = np.zeros(rows * num_edges, dtype=bool)
        tree_rows: List[np.ndarray] = []
        tree_edges: List[np.ndarray] = []
        for round_no in range(_MAX_ROUNDS + 1):
            roots = _find_rows(parent, act_r, act_n)
            # Fresh cluster stats: defect parity and boundary contact per
            # root, scattered back to the membership pairs.
            root_keys = act_r * node_count + roots
            uniq_roots, root_inv = np.unique(root_keys, return_inverse=True)
            defects = np.bincount(
                root_inv, weights=defect_pad[act_r, act_n],
                minlength=uniq_roots.size,
            ).astype(np.int64)
            touches = np.zeros(uniq_roots.size, dtype=bool)
            touches[root_inv[act_n == boundary]] = True
            live = ~(touches[root_inv] | (defects[root_inv] % 2 == 0))
            if not live.any():
                break
            if round_no == _MAX_ROUNDS:
                raise self._convergence_error(
                    act_r, roots, live, defects[root_inv],
                    touches[root_inv], grown, num_edges,
                )
            # Rows whose clusters are all valid stop paying per-round cost.
            row_live = np.zeros(rows, dtype=bool)
            row_live[act_r[live]] = True
            keep = row_live[act_r]
            if not keep.all():
                act_r, act_n = act_r[keep], act_n[keep]
                live = live[keep]
            rows_l = act_r[live]
            nodes_l = act_n[live]
            # One touch per (invalid-cluster node, incident un-grown edge).
            starts = edges.indptr[nodes_l]
            cnts = edges.indptr[nodes_l + 1] - starts
            nz = cnts > 0
            total = int(cnts.sum())
            if total == 0:
                continue
            pos = _ragged_ranges(starts[nz], cnts[nz], total)
            touched = np.repeat(rows_l[nz], cnts[nz]) * num_edges
            touched += edges.inc_edge[pos]
            touched = touched[~grown[touched]]
            if touched.size == 0:
                continue
            cand, counts = np.unique(touched, return_counts=True)
            prev = support[cand].astype(np.int64)
            support[cand] += counts.astype(np.uint8)
            ready = support[cand] >= edges.thresh[cand % num_edges]
            newly = cand[ready]
            if newly.size == 0:
                continue
            grown[newly] = True
            # Edges entering the round one touch below threshold can grow
            # at a single cluster's sequential turn in the reference loop;
            # _apply_events flags live-live merges on those edges.
            risky = prev[ready] == (
                edges.thresh[newly % num_edges].astype(np.int64) - 1
            )
            new_r, new_n = self._apply_events(
                newly, risky, edges, parent, in_cl,
                tree_rows, tree_edges, flagged, boundary, node_count, num_edges,
            )
            if new_r.size:
                act_r = np.concatenate([act_r, new_r])
                act_n = np.concatenate([act_n, new_n])
        masks = self._peel_forest(
            rows, tree_rows, tree_edges, syndromes, edges, grown, flagged
        )
        return masks, flagged

    def _apply_events(
        self,
        newly: np.ndarray,
        risky: np.ndarray,
        edges: _EdgeArrays,
        parent: np.ndarray,
        in_cl: np.ndarray,
        tree_rows: List[np.ndarray],
        tree_edges: List[np.ndarray],
        flagged: np.ndarray,
        boundary: int,
        node_count: int,
        num_edges: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply one round's grown edges; returns the new (row, node) pairs.

        ``newly`` is sorted by flat (row, edge) key.  Endpoints outside
        any cluster are ensured as singletons first (the reference loop's
        ``ensure``), turning every event into a union.  Unions run as a
        vectorized link loop: each pass links the higher root under the
        lower (strictly decreasing, hence acyclic and safe to apply
        simultaneously), first event per target root wins, losers retry
        next pass, and same-root events drop as cycles.
        """
        g_r = newly // num_edges
        g_e = newly % num_edges
        ends_a = edges.ea[g_e]
        ends_b = edges.eb[g_e]
        in_a = in_cl[g_r, ends_a]
        in_b = in_cl[g_r, ends_b]
        # A risky edge joining two distinct round-start clusters is the
        # one event whose sequential-order effects the arena cannot
        # reproduce; flag the row for reference re-decode.
        merge_risk = np.flatnonzero(in_a & in_b & risky)
        if merge_risk.size:
            ru0 = _find_rows(parent, g_r[merge_risk], ends_a[merge_risk])
            rv0 = _find_rows(parent, g_r[merge_risk], ends_b[merge_risk])
            flagged[g_r[merge_risk[ru0 != rv0]]] = True
        # Ensure fresh endpoints as singleton clusters (they are their own
        # roots already); they join via the union loop below.
        fresh_r = np.concatenate([g_r[~in_a], g_r[~in_b]])
        fresh_n = np.concatenate([ends_a[~in_a], ends_b[~in_b]])
        if fresh_r.size:
            fresh_keys = np.unique(fresh_r * node_count + fresh_n)
            fresh_r = fresh_keys // node_count
            fresh_n = fresh_keys % node_count
            in_cl[fresh_r, fresh_n] = True
        rem = np.arange(newly.size)
        tr: List[np.ndarray] = []
        te: List[np.ndarray] = []
        while rem.size:
            ru = _find_rows(parent, g_r[rem], ends_a[rem])
            rv = _find_rows(parent, g_r[rem], ends_b[rem])
            merge = ru != rv
            rem = rem[merge]
            if rem.size == 0:
                break
            ru = ru[merge]
            rv = rv[merge]
            hi = np.maximum(ru, rv)
            lo = np.minimum(ru, rv)
            key = g_r[rem] * node_count + hi
            _, first = np.unique(key, return_index=True)
            win = np.zeros(rem.size, dtype=bool)
            win[first] = True
            widx = rem[win]
            parent[g_r[widx], hi[win]] = lo[win]
            tr.append(g_r[widx])
            te.append(g_e[widx])
            rem = rem[~win]
        if tr:
            tree_rows.append(np.concatenate(tr))
            tree_edges.append(np.concatenate(te))
        return fresh_r, fresh_n

    def _peel_forest(
        self,
        rows: int,
        tree_rows: List[np.ndarray],
        tree_edges: List[np.ndarray],
        syndromes: np.ndarray,
        edges: _EdgeArrays,
        grown: np.ndarray,
        flagged: np.ndarray,
    ) -> np.ndarray:
        """Peel every row's spanning forest at once; returns int64 masks.

        A tree edge is flipped iff its leaf-side subtree holds odd defect
        parity, so the result is independent of peel order; leaves are
        removed in synchronized rounds over compact (row, node) instances.

        The reference peel picks *its own* spanning tree over the grown
        subgraph; two trees give the same correction iff every grown cycle
        carries a zero observable mask.  After peeling, tree-derived node
        potentials certify each non-tree grown edge; rows with an
        inconsistent cycle are flagged for reference re-decode.
        """
        masks = np.zeros(rows, dtype=np.int64)
        num_edges = edges.ea.size
        grown_flat = np.flatnonzero(grown)
        if not tree_rows:
            if grown_flat.size:
                flagged[np.unique(grown_flat // num_edges)] = True
            return masks
        t_r = np.concatenate(tree_rows)
        t_e = np.concatenate(tree_edges)
        if t_r.size == 0:
            if grown_flat.size:
                flagged[np.unique(grown_flat // num_edges)] = True
            return masks
        node_count = edges.node_count
        boundary = node_count - 1
        e_u = edges.ea[t_e]
        e_v = edges.eb[t_e]
        e_mask = edges.mask[t_e]
        keys = np.concatenate([t_r * node_count + e_u, t_r * node_count + e_v])
        inst_keys, inverse = np.unique(keys, return_inverse=True)
        count = t_e.size
        uid = np.asarray(inverse[:count], dtype=np.int64)
        vid = np.asarray(inverse[count:], dtype=np.int64)
        total = inst_keys.size
        deg = np.bincount(uid, minlength=total) + np.bincount(vid, minlength=total)
        xor_nbr = np.zeros(total, dtype=np.int64)
        np.bitwise_xor.at(xor_nbr, uid, vid)
        np.bitwise_xor.at(xor_nbr, vid, uid)
        xor_mask = np.zeros(total, dtype=np.int64)
        np.bitwise_xor.at(xor_mask, uid, e_mask)
        np.bitwise_xor.at(xor_mask, vid, e_mask)
        node_of = inst_keys % node_count
        row_of = inst_keys // node_count
        detector = node_of != boundary
        parity = np.zeros(total, dtype=np.int64)
        parity[detector] = syndromes[row_of[detector], node_of[detector]]
        replay: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        while True:
            leaves = np.flatnonzero(detector & (deg == 1))
            if leaves.size == 0:
                break
            nbr = xor_nbr[leaves]
            # A two-node component has two mutual leaves; the larger
            # instance id defers so exactly one side peels the edge.
            skip = (deg[nbr] == 1) & detector[nbr] & (nbr < leaves)
            if skip.any():
                leaves = leaves[~skip]
                nbr = nbr[~skip]
            leaf_mask = xor_mask[leaves]
            replay.append((leaves, nbr, leaf_mask))
            odd = parity[leaves] == 1
            if odd.any():
                np.bitwise_xor.at(masks, row_of[leaves[odd]], leaf_mask[odd])
                np.bitwise_xor.at(parity, nbr[odd], 1)
            np.subtract.at(deg, nbr, 1)
            np.bitwise_xor.at(xor_nbr, nbr, leaves)
            np.bitwise_xor.at(xor_mask, nbr, leaf_mask)
            deg[leaves] = 0
        # Certify non-tree grown edges against tree potentials: replaying
        # the peel in reverse assigns phi root-first along every path.
        tree_flat = t_r * num_edges + t_e
        cycle_flat = np.setdiff1d(grown_flat, tree_flat)
        if cycle_flat.size:
            phi = np.zeros(total, dtype=np.int64)
            for leaves, nbr, leaf_mask in reversed(replay):
                phi[leaves] = phi[nbr] ^ leaf_mask
            c_r = cycle_flat // num_edges
            c_e = cycle_flat % num_edges
            key_u = c_r * node_count + edges.ea[c_e]
            key_v = c_r * node_count + edges.eb[c_e]
            iu = np.minimum(np.searchsorted(inst_keys, key_u), total - 1)
            iv = np.minimum(np.searchsorted(inst_keys, key_v), total - 1)
            consistent = (
                (inst_keys[iu] == key_u)
                & (inst_keys[iv] == key_v)
                & ((phi[iu] ^ phi[iv]) == edges.mask[c_e])
            )
            if not consistent.all():
                flagged[np.unique(c_r[~consistent])] = True
        return masks

    def _convergence_error(
        self,
        act_r: np.ndarray,
        roots: np.ndarray,
        live: np.ndarray,
        pair_defects: np.ndarray,
        pair_touches: np.ndarray,
        grown: np.ndarray,
        num_edges: int,
    ) -> RuntimeError:
        row = int(act_r[live][0])
        sel = live & (act_r == row)
        state = {
            int(root): (int(dc), bool(tb))
            for root, dc, tb in zip(
                roots[sel], pair_defects[sel], pair_touches[sel]
            )
        }
        grown_count = int(grown[row * num_edges:(row + 1) * num_edges].sum())
        return RuntimeError(
            "union-find growth failed to converge after "
            f"{_MAX_ROUNDS} rounds; invalid clusters "
            f"(root -> (defects, touches_boundary)): {state}; "
            f"{grown_count} edges grown"
        )

    # -- reference growth ----------------------------------------------------

    def _grow(self, defects: Set[int]) -> Set[frozenset]:
        """Grow clusters until valid; returns the set of fully-grown edges.

        Edge growth is discretized: each cluster adds half an edge weight
        per round on its frontier; an edge is grown when the accumulated
        support reaches its weight.
        """
        parents: Dict[int, int] = {}
        clusters: Dict[int, _Cluster] = {}
        support: Dict[frozenset, float] = {}
        grown: Set[frozenset] = set()

        def ensure(node: int) -> None:
            if node not in parents:
                parents[node] = node
                clusters[node] = _Cluster(
                    node, 1 if node in defects else 0, node == BOUNDARY
                )

        for d in defects:
            ensure(d)

        def invalid_roots() -> List[int]:
            roots = {self._find(parents, d) for d in defects}
            return [r for r in roots if not clusters[r].is_valid]

        safety = 0
        while True:
            bad = invalid_roots()
            if not bad:
                return grown
            safety += 1
            if safety > _MAX_ROUNDS:
                state = {
                    root: (clusters[root].defects, clusters[root].touches_boundary)
                    for root in bad
                }
                raise RuntimeError(
                    "union-find growth failed to converge after "
                    f"{safety - 1} rounds; invalid clusters "
                    f"(root -> (defects, touches_boundary)): {state}; "
                    f"{len(grown)} edges grown"
                )
            for root in bad:
                nodes = [n for n in parents if self._find(parents, n) == root]
                for node in nodes:
                    for neighbor, weight, _mask in self._adjacency.get(node, ()):
                        key = frozenset((node, neighbor))
                        if key in grown:
                            continue
                        if weight <= _ZERO_WEIGHT:
                            # Effectively-free edge: grow it immediately.
                            support[key] = weight
                        else:
                            support[key] = support.get(key, 0.0) + weight / 2
                        if support[key] >= weight:
                            grown.add(key)
                            ensure(neighbor)
                            self._union(parents, clusters, node, neighbor)

    def _union(self, parents, clusters, a: int, b: int) -> None:
        ra = self._find(parents, a)
        rb = self._find(parents, b)
        if ra == rb:
            return
        parents[rb] = ra
        clusters[ra] = _Cluster(
            ra,
            clusters[ra].defects + clusters[rb].defects,
            clusters[ra].touches_boundary or clusters[rb].touches_boundary,
        )

    # -- reference peeling ---------------------------------------------------

    def _peel(self, grown: Set[frozenset], defects: Set[int]) -> int:
        """Peel spanning forests of the grown edges; return observable mask."""
        adjacency: Dict[int, List[Tuple[int, int]]] = {}
        for key in grown:
            nodes = tuple(key)
            if len(nodes) == 1:
                continue
            u, v = nodes
            mask = self._edge_mask(u, v)
            adjacency.setdefault(u, []).append((v, mask))
            adjacency.setdefault(v, []).append((u, mask))
        # Build spanning trees rooted at boundary (if present) or any node.
        visited: Set[int] = set()
        total_mask = 0
        nodes = list(adjacency)
        # Prefer roots at the boundary so dangling defects peel onto it.
        nodes.sort(key=lambda n: 0 if n == BOUNDARY else 1)
        for start in nodes:
            if start in visited:
                continue
            order: List[Tuple[int, Optional[int], int]] = []
            stack = [(start, None, 0)]
            while stack:
                node, parent, mask = stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                order.append((node, parent, mask))
                for neighbor, edge_mask in adjacency.get(node, ()):
                    if neighbor not in visited:
                        stack.append((neighbor, node, edge_mask))
            # Peel leaves upward: flip an edge when its child carries a defect.
            carry: Dict[int, int] = {
                node: 1 if node in defects else 0 for node, _, _ in order
            }
            for node, parent, mask in reversed(order):
                if parent is None:
                    continue
                if carry[node] % 2 == 1:
                    total_mask ^= mask
                    carry[parent] += 1
                    carry[node] = 0
        return total_mask

    def _edge_mask(self, u: int, v: int) -> int:
        edge = self.graph.edge_between(u, v)
        if edge is None:
            return 0
        mask = 0
        for obs in edge.observables:
            mask |= 1 << obs
        return mask
