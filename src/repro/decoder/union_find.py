"""Union-find decoder (paper Refs. [17, 90]).

A faster-but-less-accurate alternative to MWPM: defects grow clusters on
the decoding graph until every cluster is valid (even defect count or
touching the boundary); each cluster is then corrected by peeling a
spanning tree.  The paper's Fig. 13(a) motivates carrying such decoders:
they trade accuracy (a larger decoding factor alpha) for speed, and the
architecture tolerates the difference at ~50% volume cost.

This implementation follows Delfosse-Nickerson: half-edge growth, cluster
merging by weighted union, boundary absorption, then peeling from the
leaves with observable-mask accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.decoder.base import BatchDecoder
from repro.decoder.graph import BOUNDARY, DecodingGraph

# Edges whose -log-likelihood weight rails to ~0 (probability pinned at
# the 0.499999 rail in Edge.weight) are grown in one step: half-edge
# increments of a vanishing weight would otherwise stall the frontier.
_ZERO_WEIGHT = 1e-5


@dataclass
class _Cluster:
    """A growing cluster of detectors."""

    root: int
    defects: int
    touches_boundary: bool

    @property
    def is_valid(self) -> bool:
        return self.touches_boundary or self.defects % 2 == 0


class UnionFindDecoder(BatchDecoder):
    """Cluster-growth decoder on a :class:`DecodingGraph`."""

    def __init__(self, graph: DecodingGraph) -> None:
        self.graph = graph
        self._adjacency: Dict[int, List[Tuple[int, float, int]]] = {}
        for edge in graph.edges:
            if len(edge.detectors) == 1:
                u, v = edge.detectors[0], BOUNDARY
            else:
                u, v = edge.detectors
            mask = 0
            for obs in edge.observables:
                mask |= 1 << obs
            self._adjacency.setdefault(u, []).append((v, edge.weight, mask))
            self._adjacency.setdefault(v, []).append((u, edge.weight, mask))

    # -- union-find plumbing -------------------------------------------------

    def _find(self, parents: Dict[int, int], node: int) -> int:
        root = node
        while parents[root] != root:
            root = parents[root]
        while parents[node] != root:
            parents[node], node = root, parents[node]
        return root

    @property
    def num_observables(self) -> int:
        return self.graph.num_observables

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Predict observable flips for one syndrome."""
        defects = [int(d) for d in np.flatnonzero(syndrome)]
        out = np.zeros(self.graph.num_observables, dtype=np.uint8)
        if not defects:
            return out
        mask = self._peel(self._grow(set(defects)), set(defects))
        for i in range(self.graph.num_observables):
            out[i] = (mask >> i) & 1
        return out

    # -- growth ----------------------------------------------------------------

    def _grow(self, defects: Set[int]) -> Set[frozenset]:
        """Grow clusters until valid; returns the set of fully-grown edges.

        Edge growth is discretized: each cluster adds half an edge weight
        per round on its frontier; an edge is grown when the accumulated
        support reaches its weight.
        """
        parents: Dict[int, int] = {}
        clusters: Dict[int, _Cluster] = {}
        support: Dict[frozenset, float] = {}
        grown: Set[frozenset] = set()
        membership: Dict[int, int] = {}

        def ensure(node: int) -> None:
            if node not in parents:
                parents[node] = node
                clusters[node] = _Cluster(
                    node, 1 if node in defects else 0, node == BOUNDARY
                )

        for d in defects:
            ensure(d)

        def invalid_roots() -> List[int]:
            roots = {self._find(parents, d) for d in defects}
            return [r for r in roots if not clusters[r].is_valid]

        safety = 0
        while True:
            bad = invalid_roots()
            if not bad:
                return grown
            safety += 1
            if safety > 10_000:
                state = {
                    root: (clusters[root].defects, clusters[root].touches_boundary)
                    for root in bad
                }
                raise RuntimeError(
                    "union-find growth failed to converge after "
                    f"{safety - 1} rounds; invalid clusters "
                    f"(root -> (defects, touches_boundary)): {state}; "
                    f"{len(grown)} edges grown"
                )
            for root in bad:
                nodes = [n for n in parents if self._find(parents, n) == root]
                for node in nodes:
                    for neighbor, weight, _mask in self._adjacency.get(node, ()):
                        key = frozenset((node, neighbor))
                        if key in grown:
                            continue
                        if weight <= _ZERO_WEIGHT:
                            # Effectively-free edge: grow it immediately.
                            support[key] = weight
                        else:
                            support[key] = support.get(key, 0.0) + weight / 2
                        if support[key] >= weight:
                            grown.add(key)
                            ensure(neighbor)
                            self._union(parents, clusters, node, neighbor)

    def _union(self, parents, clusters, a: int, b: int) -> None:
        ra = self._find(parents, a)
        rb = self._find(parents, b)
        if ra == rb:
            return
        parents[rb] = ra
        clusters[ra] = _Cluster(
            ra,
            clusters[ra].defects + clusters[rb].defects,
            clusters[ra].touches_boundary or clusters[rb].touches_boundary,
        )

    # -- peeling ------------------------------------------------------------------

    def _peel(self, grown: Set[frozenset], defects: Set[int]) -> int:
        """Peel spanning forests of the grown edges; return observable mask."""
        adjacency: Dict[int, List[Tuple[int, int]]] = {}
        for key in grown:
            nodes = tuple(key)
            if len(nodes) == 1:
                continue
            u, v = nodes
            mask = self._edge_mask(u, v)
            adjacency.setdefault(u, []).append((v, mask))
            adjacency.setdefault(v, []).append((u, mask))
        # Build spanning trees rooted at boundary (if present) or any node.
        visited: Set[int] = set()
        total_mask = 0
        nodes = list(adjacency)
        # Prefer roots at the boundary so dangling defects peel onto it.
        nodes.sort(key=lambda n: 0 if n == BOUNDARY else 1)
        for start in nodes:
            if start in visited:
                continue
            order: List[Tuple[int, Optional[int], int]] = []
            stack = [(start, None, 0)]
            while stack:
                node, parent, mask = stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                order.append((node, parent, mask))
                for neighbor, edge_mask in adjacency.get(node, ()):
                    if neighbor not in visited:
                        stack.append((neighbor, node, edge_mask))
            # Peel leaves upward: flip an edge when its child carries a defect.
            carry: Dict[int, int] = {
                node: 1 if node in defects else 0 for node, _, _ in order
            }
            for node, parent, mask in reversed(order):
                if parent is None:
                    continue
                if carry[node] % 2 == 1:
                    total_mask ^= mask
                    carry[parent] += 1
                    carry[node] = 0
        return total_mask

    def _edge_mask(self, u: int, v: int) -> int:
        edge = self.graph.edge_between(u, v)
        if edge is None:
            return 0
        mask = 0
        for obs in edge.observables:
            mask |= 1 << obs
        return mask
