"""Persistent syndrome -> correction cache shared by all decoders.

``run_until`` / ``run_until_rel_error`` waves and the sweep-level
``adaptive_shots`` allocator re-decode the same recurring syndromes wave
after wave: dedup collapses duplicates *within* one shard batch, but every
new batch starts from scratch.  This module adds the cross-batch layer: a
bounded per-process LRU mapping (decoder fingerprint, packed syndrome
bytes) to the decoded correction row, living across shards inside each
pool worker.

The cache is an optimization, never a semantic input: values are exact
decoder outputs keyed by the exact packed syndrome and a content
fingerprint of the decoder configuration and decoding graph
(:meth:`repro.decoder.graph.DecodingGraph.digest`), so hits return
bit-identical rows and results stay invariant under worker count, batch
composition, and cache capacity.  It registers with
:func:`repro.core.cache.register_cache`, so ``clear_caches()`` empties it
and ``caching_disabled()`` bypasses it; hit/miss totals are exported as
``repro_syndrome_cache_{hits,misses}_total{decoder=...}`` counters.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.core import cache as _core_cache
from repro.obs import metrics as _metrics

# Decoded rows kept per process.  At paper-relevant p the recurring
# syndrome population is far smaller than this; the bound is a runaway
# guard for above-threshold inputs (entries are tiny: key bytes + one
# uint8 row per observable).
DEFAULT_CAPACITY = 1 << 16

_CACHE_HITS = _metrics.counter(
    "repro_syndrome_cache_hits_total",
    "Unique syndrome rows served from the cross-batch decode cache.",
    ("decoder",),
)
_CACHE_MISSES = _metrics.counter(
    "repro_syndrome_cache_misses_total",
    "Unique syndrome rows decoded and inserted into the decode cache.",
    ("decoder",),
)


class _CacheInfo(NamedTuple):
    hits: int
    misses: int
    maxsize: int
    currsize: int


class SyndromeCache:
    """Bounded LRU from (decoder token, packed syndrome bytes) to row bytes.

    Exposes ``lru_cache``-style ``cache_info()`` / ``cache_clear()`` so it
    plugs into :func:`repro.core.cache.register_cache`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, bytes], bytes]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, token: str, key: bytes) -> Optional[bytes]:
        row = self._entries.get((token, key))
        if row is None:
            self._misses += 1
            return None
        self._entries.move_to_end((token, key))
        self._hits += 1
        return row

    def put(self, token: str, key: bytes, row: bytes) -> None:
        entries = self._entries
        entries[(token, key)] = row
        entries.move_to_end((token, key))
        while len(entries) > self.capacity:
            entries.popitem(last=False)

    def cache_info(self) -> _CacheInfo:
        return _CacheInfo(
            hits=self._hits,
            misses=self._misses,
            maxsize=self.capacity,
            currsize=len(self._entries),
        )

    def cache_clear(self) -> None:
        self._entries.clear()
        self._hits = 0
        self._misses = 0


_SYNDROME_CACHE = SyndromeCache()
_core_cache.register_cache("repro.decoder.syndrome", _SYNDROME_CACHE)


def syndrome_cache() -> SyndromeCache:
    """The per-process syndrome-decode cache singleton."""
    return _SYNDROME_CACHE


def cache_enabled() -> bool:
    """Whether decode results may be served from / inserted into the cache.

    Off while :func:`repro.core.cache.caching_disabled` is active on the
    calling thread, or process-wide when ``REPRO_SYNDROME_CACHE=0`` is set
    in the environment (the switch pool workers inherit, used by the
    cached-vs-uncached equivalence tests and benchmarks).
    """
    if _core_cache.bypassed():
        return False
    return os.environ.get("REPRO_SYNDROME_CACHE", "1") != "0"


def lookup_rows(
    token: str, unique_packed: np.ndarray, num_observables: int, label: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Serve cached correction rows for a batch of unique packed syndromes.

    Returns ``(out, pending)``: a zeroed ``(rows, num_observables)`` uint8
    table with every cache hit filled in, and the indices of the rows that
    missed (in ascending order) for the caller to decode and
    :func:`insert_rows`.
    """
    rows = unique_packed.shape[0]
    out = np.zeros((rows, num_observables), dtype=np.uint8)
    cache = _SYNDROME_CACHE
    missed = []
    for i in range(rows):
        row = cache.get(token, unique_packed[i].tobytes())
        if row is None:
            missed.append(i)
        elif num_observables:
            out[i] = np.frombuffer(row, dtype=np.uint8)
    pending = np.asarray(missed, dtype=np.intp)
    if _metrics.enabled():
        _CACHE_HITS.labels(decoder=label).inc(rows - pending.size)
        _CACHE_MISSES.labels(decoder=label).inc(pending.size)
    return out, pending


def insert_rows(
    token: str, unique_packed: np.ndarray, decoded: np.ndarray
) -> None:
    """Insert freshly decoded rows (aligned with ``unique_packed``)."""
    cache = _SYNDROME_CACHE
    for i in range(unique_packed.shape[0]):
        cache.put(token, unique_packed[i].tobytes(), decoded[i].tobytes())
