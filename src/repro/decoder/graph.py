"""Decoding graph construction from a detector error model.

Mechanisms flipping one or two detectors become (boundary) edges.
Mechanisms flipping more than two detectors -- which arise from error
propagation through transversal CNOTs (paper Sec. II.4) -- are decomposed
into products of existing edges, the standard correlated-decomposition used
when matching transversal-gate circuits.  Each component block inherits the
logical-observable mask of the simple mechanism with the same symptom, so
matched paths predict observables consistently; any residual observable
difference rides on the first block.  Parallel edges are merged with
XOR-convolved probabilities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.noise.dem import DetectorErrorModel, ErrorMechanism

BOUNDARY = -1


@dataclass
class Edge:
    """One matchable error: flips ``detectors`` (1 or 2) and ``observables``."""

    detectors: Tuple[int, ...]
    probability: float
    observables: FrozenSet[int] = frozenset()

    @property
    def weight(self) -> float:
        """-log-likelihood weight; railed for probabilities near 1/2."""
        p = min(max(self.probability, 1e-15), 0.499999)
        return math.log((1 - p) / p)


class DecodingGraph:
    """Matching graph: detectors plus a single boundary node."""

    def __init__(self, num_detectors: int, num_observables: int) -> None:
        self.num_detectors = num_detectors
        self.num_observables = num_observables
        self._edges: Dict[FrozenSet[int], Edge] = {}

    # -- construction -------------------------------------------------------

    def add_mechanism(
        self,
        detectors: Tuple[int, ...],
        probability: float,
        observables: FrozenSet[int],
    ) -> None:
        """Insert an edge, merging with any parallel edge."""
        if len(detectors) == 1:
            key = frozenset((detectors[0], BOUNDARY))
        elif len(detectors) == 2:
            key = frozenset(detectors)
        else:
            raise ValueError(f"edge must touch 1 or 2 detectors, got {detectors}")
        existing = self._edges.get(key)
        if existing is None:
            self._edges[key] = Edge(detectors, probability, observables)
            return
        if existing.observables == observables:
            p = existing.probability
            existing.probability = p * (1 - probability) + probability * (1 - p)
        elif probability > existing.probability:
            # Conflicting logical hypotheses: keep the likelier one.
            existing.observables = observables
            existing.probability = probability
        # An unlikelier conflicting mechanism is dropped (approximation).

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges.values())

    def digest(self) -> str:
        """Content fingerprint of the graph (16 hex chars).

        A stable hash over the detector/observable counts and every edge's
        (sorted endpoints, exact probability bits, observable set), in
        canonical endpoint order.  Two graphs share a digest iff they decode
        identically, which is what keys the persistent syndrome-decode
        cache: any reweighting, edge insertion, or mask change rolls the
        digest and thereby invalidates cached corrections.
        """
        import hashlib

        payload = [f"{self.num_detectors},{self.num_observables}"]
        for key in sorted(self._edges, key=sorted):
            edge = self._edges[key]
            ends = ",".join(str(d) for d in sorted(key))
            obs = ",".join(str(o) for o in sorted(edge.observables))
            payload.append(f"{ends}|{edge.probability.hex()}|{obs}")
        return hashlib.sha256("\n".join(payload).encode()).hexdigest()[:16]

    def edge_between(self, a: int, b: int) -> Optional[Edge]:
        """Edge connecting detectors a and b (use BOUNDARY for the boundary)."""
        return self._edges.get(frozenset((a, b)))

    @classmethod
    def from_dem(
        cls, dem: DetectorErrorModel, *, verify: bool = False
    ) -> "DecodingGraph":
        """Build the graph, decomposing hyperedges into edge products.

        With ``verify=True`` the lowered graph is checked by the
        ``dem_consistency`` diagnostics of :mod:`repro.analysis`
        (isolated detectors, boundary reachability, edge-probability
        sanity); error-severity findings raise
        :class:`~repro.analysis.VerificationError`.
        """
        graph = cls(dem.num_detectors, dem.num_observables)
        simple: List[ErrorMechanism] = []
        composite: List[ErrorMechanism] = []
        for mech in dem.mechanisms:
            if not mech.detectors:
                # Undetectable logical flip: un-matchable, contributes an
                # (exponentially small) error floor; ignored.
                continue
            if len(mech.detectors) <= 2:
                simple.append(mech)
            else:
                composite.append(mech)
        # Symptom -> observable mask of the likeliest simple mechanism.
        block_obs: Dict[FrozenSet[int], Tuple[float, FrozenSet[int]]] = {}
        for mech in simple:
            graph.add_mechanism(mech.detectors, mech.probability, frozenset(mech.observables))
            key = frozenset(mech.detectors)
            best = block_obs.get(key)
            if best is None or mech.probability > best[0]:
                block_obs[key] = (mech.probability, frozenset(mech.observables))
        known = set(block_obs)
        for mech in composite:
            for part, part_obs in _decompose(mech, known, block_obs):
                graph.add_mechanism(tuple(sorted(part)), mech.probability, part_obs)
        if verify:
            from repro.analysis import verify_graph

            verify_graph(graph)
        return graph

    @classmethod
    def from_dem_uniform(
        cls, dem: DetectorErrorModel, probability: float = 1e-3
    ) -> "DecodingGraph":
        """DEM topology with every edge pinned to one probability.

        The hand-built uniform-weight graph decoders historically matched
        on: shortest paths minimize hop count, not likelihood.  Observable
        masks (and hyperedge decomposition) still come from the true DEM,
        so only the *metric* is degraded -- the verification baseline the
        DEM-weighted graph must never decode worse than.
        """
        graph = cls.from_dem(dem)
        for edge in graph._edges.values():
            edge.probability = probability
        return graph


def _decompose(
    mech: ErrorMechanism,
    known: set,
    block_obs: Dict[FrozenSet[int], Tuple[float, FrozenSet[int]]],
) -> List[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """Split a hyperedge into known 2/1-detector components.

    Prefers partitions whose every block is an existing simple-edge symptom
    (error propagation through a CNOT produces exactly such products).
    Falls back to greedy pairing in index order.  Each block carries the
    observable mask of its simple counterpart; any residual (the XOR
    mismatch against the composite mechanism's true flips) is folded into
    the first block so the total stays exact.
    """
    detectors = list(mech.detectors)
    blocks = _partition_into_known(detectors, known)
    if blocks is None:
        blocks = [
            frozenset(detectors[i : i + 2]) for i in range(0, len(detectors), 2)
        ]
    assigned: List[FrozenSet[int]] = []
    for block in blocks:
        entry = block_obs.get(block)
        assigned.append(entry[1] if entry is not None else frozenset())
    total: FrozenSet[int] = frozenset()
    for obs in assigned:
        total = total ^ obs
    residual = total ^ frozenset(mech.observables)
    if residual:
        assigned[0] = assigned[0] ^ residual
    return list(zip(blocks, assigned))


def _partition_into_known(detectors: List[int], known: set) -> Optional[List[FrozenSet[int]]]:
    """Exact cover of the detector set by known pair/singleton symptoms."""
    if not detectors:
        return []
    first = detectors[0]
    rest = detectors[1:]
    for i, other in enumerate(rest):
        pair = frozenset((first, other))
        if pair in known:
            remainder = rest[:i] + rest[i + 1 :]
            tail = _partition_into_known(remainder, known)
            if tail is not None:
                return [pair] + tail
    single = frozenset((first,))
    if single in known:
        tail = _partition_into_known(rest, known)
        if tail is not None:
            return [single] + tail
    return None
