"""Minimum-weight perfect-matching decoder on a decoding graph.

Defects (flipped detectors) are matched pairwise or to the boundary along
shortest paths of the decoding graph; the predicted logical flip is the XOR
of observable masks along the matched paths.  Shortest paths are
precomputed once per graph (the experiment graphs are small), and the
perfect matching is delegated to networkx's blossom implementation via the
standard defect-graph + boundary-copy construction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.decoder.graph import BOUNDARY, DecodingGraph


class MWPMDecoder:
    """Decoder instance bound to one decoding graph."""

    def __init__(self, graph: DecodingGraph) -> None:
        self.graph = graph
        self._nx = nx.Graph()
        self._nx.add_node(BOUNDARY)
        for det in range(graph.num_detectors):
            self._nx.add_node(det)
        for edge in graph.edges:
            if len(edge.detectors) == 1:
                u, v = edge.detectors[0], BOUNDARY
            else:
                u, v = edge.detectors
            obs_mask = _mask(edge.observables, graph.num_observables)
            # Keep the lighter of parallel edges (merging already done).
            if self._nx.has_edge(u, v) and self._nx[u][v]["weight"] <= edge.weight:
                continue
            self._nx.add_edge(u, v, weight=edge.weight, obs=obs_mask)
        self._distance: Dict[int, Dict[int, float]] = {}
        self._path_obs: Dict[int, Dict[int, int]] = {}
        self._precompute_paths()

    def _precompute_paths(self) -> None:
        for source in self._nx.nodes:
            lengths, paths = nx.single_source_dijkstra(self._nx, source, weight="weight")
            self._distance[source] = lengths
            obs_map: Dict[int, int] = {}
            for dest, path in paths.items():
                mask = 0
                for a, b in zip(path, path[1:]):
                    mask ^= self._nx[a][b]["obs"]
                obs_map[dest] = mask
            self._path_obs[source] = obs_map

    # -- decoding -----------------------------------------------------------

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Predict observable flips for one shot.

        Args:
            syndrome: uint8 vector over detectors (1 = defect).

        Returns:
            uint8 vector over observables with the predicted flips.
        """
        defects = [int(d) for d in np.flatnonzero(syndrome)]
        prediction = 0
        if defects:
            prediction = self._match(defects)
        return _unmask(prediction, self.graph.num_observables)

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode many shots; returns (shots, num_observables) flips."""
        out = np.zeros((syndromes.shape[0], self.graph.num_observables), dtype=np.uint8)
        for i in range(syndromes.shape[0]):
            out[i] = self.decode(syndromes[i])
        return out

    def _match(self, defects: List[int]) -> int:
        """Blossom matching on the defect graph with boundary copies."""
        unreachable = [d for d in defects if d not in self._distance]
        if unreachable:
            raise ValueError(f"defects outside the decoding graph: {unreachable}")
        match_graph = nx.Graph()
        for i, u in enumerate(defects):
            match_graph.add_node(("d", i))
            match_graph.add_node(("b", i))
            boundary_dist = self._distance[u].get(BOUNDARY)
            if boundary_dist is not None:
                match_graph.add_edge(("d", i), ("b", i), weight=boundary_dist)
            for j in range(i + 1, len(defects)):
                v = defects[j]
                dist = self._distance[u].get(v)
                if dist is not None:
                    match_graph.add_edge(("d", i), ("d", j), weight=dist)
        for i in range(len(defects)):
            for j in range(i + 1, len(defects)):
                match_graph.add_edge(("b", i), ("b", j), weight=0.0)
        matching = nx.algorithms.matching.min_weight_matching(match_graph)
        prediction = 0
        for a, b in matching:
            if a[0] == "b" and b[0] == "b":
                continue
            if a[0] == "d" and b[0] == "d":
                u, v = defects[a[1]], defects[b[1]]
                prediction ^= self._path_obs[u][v]
            else:
                defect_node = a if a[0] == "d" else b
                u = defects[defect_node[1]]
                prediction ^= self._path_obs[u][BOUNDARY]
        return prediction


def _mask(observables, num_observables: int) -> int:
    mask = 0
    for obs in observables:
        if obs >= num_observables:
            raise ValueError(f"observable index {obs} out of range")
        mask |= 1 << obs
    return mask


def _unmask(mask: int, num_observables: int) -> np.ndarray:
    out = np.zeros(num_observables, dtype=np.uint8)
    for i in range(num_observables):
        out[i] = (mask >> i) & 1
    return out
