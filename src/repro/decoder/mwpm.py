"""Minimum-weight perfect-matching decoder on a decoding graph.

Defects (flipped detectors) are matched pairwise or to the boundary along
shortest paths of the decoding graph; the predicted logical flip is the XOR
of observable masks along the matched paths.  Shortest paths are
precomputed once per graph (the experiment graphs are small).

Matching strategy: syndromes with up to :data:`_DP_MATCH_LIMIT` defects --
the overwhelming majority in sub-threshold Monte-Carlo runs -- are matched
exactly by a subset-sum dynamic program over the defect set (O(k 2^k),
microseconds for typical k <= 6), which is the engine's hot path.  Larger
syndromes fall back to networkx's blossom implementation via the standard
defect-graph + boundary-copy construction.  Both are exact minimum-weight
perfect matchings; ``matcher="blossom"`` forces the fallback everywhere
(the pre-engine baseline, kept for benchmarking and cross-checks).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.decoder.base import BatchDecoder
from repro.decoder.graph import BOUNDARY, DecodingGraph

# Largest defect count handled by the exact subset-DP matcher; beyond it
# the O(k 2^k) table loses to blossom.
_DP_MATCH_LIMIT = 12


class MWPMDecoder(BatchDecoder):
    """Decoder instance bound to one decoding graph.

    Args:
        graph: decoding graph to match on.
        matcher: ``"auto"`` (subset-DP for small defect sets, blossom
            otherwise) or ``"blossom"`` (always blossom).
    """

    def __init__(self, graph: DecodingGraph, matcher: str = "auto") -> None:
        if matcher not in ("auto", "blossom"):
            raise ValueError(f"unknown matcher {matcher!r}")
        self.graph = graph
        self.matcher = matcher
        self._nx = nx.Graph()
        self._nx.add_node(BOUNDARY)
        for det in range(graph.num_detectors):
            self._nx.add_node(det)
        for edge in graph.edges:
            if len(edge.detectors) == 1:
                u, v = edge.detectors[0], BOUNDARY
            else:
                u, v = edge.detectors
            obs_mask = _mask(edge.observables, graph.num_observables)
            # Keep the lighter of parallel edges (merging already done).
            if self._nx.has_edge(u, v) and self._nx[u][v]["weight"] <= edge.weight:
                continue
            self._nx.add_edge(u, v, weight=edge.weight, obs=obs_mask)
        self._distance: Dict[int, Dict[int, float]] = {}
        self._path_obs: Dict[int, Dict[int, int]] = {}
        self._precompute_paths()

    def _precompute_paths(self) -> None:
        for source in self._nx.nodes:
            lengths, paths = nx.single_source_dijkstra(self._nx, source, weight="weight")
            self._distance[source] = lengths
            obs_map: Dict[int, int] = {}
            for dest, path in paths.items():
                mask = 0
                for a, b in zip(path, path[1:]):
                    mask ^= self._nx[a][b]["obs"]
                obs_map[dest] = mask
            self._path_obs[source] = obs_map

    # -- decoding -----------------------------------------------------------

    @property
    def num_observables(self) -> int:
        return self.graph.num_observables

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Predict observable flips for one shot.

        Args:
            syndrome: uint8 vector over detectors (1 = defect).

        Returns:
            uint8 vector over observables with the predicted flips.
        """
        defects = [int(d) for d in np.flatnonzero(syndrome)]
        prediction = 0
        if defects:
            prediction = self._match(defects)
        return _unmask(prediction, self.graph.num_observables)

    def _match(self, defects: List[int]) -> int:
        """Exact minimum-weight matching of the defect set."""
        unreachable = [d for d in defects if d not in self._distance]
        if unreachable:
            raise ValueError(f"defects outside the decoding graph: {unreachable}")
        if self.matcher == "auto" and len(defects) <= _DP_MATCH_LIMIT:
            return self._match_dp(defects)
        return self._match_blossom(defects)

    def _match_dp(self, defects: List[int]) -> int:
        """Subset DP: each defect pairs with a partner or the boundary.

        ``cost[mask]`` is the minimal weight to resolve the defect subset
        ``mask``; the lowest defect in the subset either matches the
        boundary or one of the remaining defects.  Exact for any defect
        count (the boundary absorbs arbitrarily many), and detects
        infeasible syndromes as an infinite total cost.
        """
        k = len(defects)
        boundary_cost = [
            self._distance[u].get(BOUNDARY, math.inf) for u in defects
        ]
        pair_cost = [
            [self._distance[u].get(v, math.inf) for v in defects] for u in defects
        ]
        size = 1 << k
        cost = [math.inf] * size
        choice: List[Tuple[int, int]] = [(-1, -1)] * size
        cost[0] = 0.0
        for mask in range(1, size):
            i = (mask & -mask).bit_length() - 1
            rest = mask ^ (1 << i)
            best = boundary_cost[i] + cost[rest]
            best_choice = (i, -1)
            row = pair_cost[i]
            submask = rest
            while submask:
                j = (submask & -submask).bit_length() - 1
                submask &= submask - 1
                candidate = row[j] + cost[rest ^ (1 << j)]
                if candidate < best:
                    best = candidate
                    best_choice = (i, j)
            cost[mask] = best
            choice[mask] = best_choice
        full = size - 1
        if math.isinf(cost[full]):
            raise ValueError(
                f"MWPM matching is not perfect: defects {defects} cannot all "
                "be paired or routed to the boundary; the decoding graph "
                "cannot explain this syndrome"
            )
        prediction = 0
        mask = full
        while mask:
            i, j = choice[mask]
            if j < 0:
                prediction ^= self._path_obs[defects[i]][BOUNDARY]
                mask ^= 1 << i
            else:
                prediction ^= self._path_obs[defects[i]][defects[j]]
                mask ^= (1 << i) | (1 << j)
        return prediction

    def _match_blossom(self, defects: List[int]) -> int:
        """Blossom matching on the defect graph with boundary copies."""
        match_graph = nx.Graph()
        for i, u in enumerate(defects):
            match_graph.add_node(("d", i))
            match_graph.add_node(("b", i))
            boundary_dist = self._distance[u].get(BOUNDARY)
            if boundary_dist is not None:
                match_graph.add_edge(("d", i), ("b", i), weight=boundary_dist)
            for j in range(i + 1, len(defects)):
                v = defects[j]
                dist = self._distance[u].get(v)
                if dist is not None:
                    match_graph.add_edge(("d", i), ("d", j), weight=dist)
        for i in range(len(defects)):
            for j in range(i + 1, len(defects)):
                match_graph.add_edge(("b", i), ("b", j), weight=0.0)
        matching = nx.algorithms.matching.min_weight_matching(match_graph)
        # Blossom returns a maximum-cardinality matching, which is only
        # perfect when one exists.  With an odd defect count and defects
        # that cannot reach the boundary, some defect stays unmatched and
        # would previously be dropped silently, corrupting the prediction.
        matched = {node for pair in matching for node in pair}
        unmatched = [defects[i] for i in range(len(defects)) if ("d", i) not in matched]
        if unmatched:
            raise ValueError(
                f"MWPM matching is not perfect: defects {unmatched} have no "
                f"boundary path and no available partner (defect count "
                f"{len(defects)}); the decoding graph cannot explain this "
                "syndrome"
            )
        prediction = 0
        for a, b in matching:
            if a[0] == "b" and b[0] == "b":
                continue
            if a[0] == "d" and b[0] == "d":
                u, v = defects[a[1]], defects[b[1]]
                prediction ^= self._path_obs[u][v]
            else:
                defect_node = a if a[0] == "d" else b
                u = defects[defect_node[1]]
                prediction ^= self._path_obs[u][BOUNDARY]
        return prediction


def _mask(observables, num_observables: int) -> int:
    mask = 0
    for obs in observables:
        if obs >= num_observables:
            raise ValueError(f"observable index {obs} out of range")
        mask |= 1 << obs
    return mask


def _unmask(mask: int, num_observables: int) -> np.ndarray:
    out = np.zeros(num_observables, dtype=np.uint8)
    for i in range(num_observables):
        out[i] = (mask >> i) & 1
    return out
