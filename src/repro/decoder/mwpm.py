"""Minimum-weight perfect-matching decoder on a decoding graph.

Defects (flipped detectors) are matched pairwise or to the boundary along
shortest paths of the decoding graph; the predicted logical flip is the XOR
of observable masks along the matched paths.  Shortest paths are
precomputed once per graph (the experiment graphs are small).

Matching strategy: syndromes with up to :data:`_DP_MATCH_LIMIT` defects --
the overwhelming majority in sub-threshold Monte-Carlo runs -- are matched
exactly by a subset-sum dynamic program over the defect set (O(k 2^k),
microseconds for typical k <= 6), which is the engine's hot path.  Larger
syndromes fall back to networkx's blossom implementation via the standard
defect-graph + boundary-copy construction.  Both are exact minimum-weight
perfect matchings; ``matcher="blossom"`` forces the fallback everywhere
(the pre-engine baseline, kept for benchmarking and cross-checks).

Cluster decomposition: by default the defect set is first split into
clusters under the relation ``d(u, v) < d(u, B) + d(v, B)`` (matching the
pair directly is strictly cheaper than routing both to the boundary).  A
minimum-weight matching never needs a pair that violates it -- replacing
such a pair with two boundary matchings costs no more -- so clusters can
be matched independently without changing the optimal weight.  Each
cluster's observable mask is memoized in a cross-call cache: in
sub-threshold Monte-Carlo runs full syndromes are mostly unique (dedup
stops helping as ``d`` grows) but they are combinations of a *small*
recurring set of local defect clusters, so the cache converts the
per-unique-syndrome O(k 2^k) matching into a few dict lookups.
``decompose=False`` restores the whole-syndrome matcher (the
verification/baseline mode, like ``matcher="blossom"``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.decoder.base import BatchDecoder, SparseTables, _unmask_rows
from repro.decoder.graph import BOUNDARY, DecodingGraph

# Largest defect count handled by the exact subset-DP matcher; beyond it
# the O(k 2^k) table loses to blossom.
_DP_MATCH_LIMIT = 12

# Cluster-mask cache entries kept before the cache is dropped wholesale; at
# sub-threshold noise the reachable cluster population is tiny, so this is
# purely a runaway guard for above-threshold inputs.
_CLUSTER_CACHE_LIMIT = 1 << 18

# Largest defect count solved by subset DP on the *decomposed* path --
# the batched table fill amortizes the 2^k blowup over whole defect-count
# groups, so it stays ahead of blossom notably longer than the scalar
# whole-syndrome limit (measured crossover ~14-15 at d=7 cluster rates).
_VEC_DP_LIMIT = 14
# Vectorized subset-DP is used for a defect-count group when it has at
# least this many clusters (below that, per-cluster scalar DP has less
# overhead) ...
_VEC_DP_MIN_GROUP = 4
# ... and only while observable masks fit an int64 table.
_VEC_DP_MAX_OBS = 62

# Popcount-layer tables for the batched DP, memoized per defect count:
# (lowest-set-bit index, mask minus lowest bit, masks grouped by popcount).
_MASK_TABLES: Dict[int, Tuple[np.ndarray, np.ndarray, List[np.ndarray]]] = {}


def _mask_tables(k: int) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    cached = _MASK_TABLES.get(k)
    if cached is None:
        masks = np.arange(1 << k, dtype=np.int64)
        low = masks & -masks
        low_i = np.zeros(1 << k, dtype=np.int64)
        low_i[1:] = np.round(np.log2(low[1:])).astype(np.int64)
        rest = masks ^ low
        popcount = np.zeros(1 << k, dtype=np.int64)
        tmp = masks.copy()
        while tmp.any():
            popcount += tmp & 1
            tmp >>= 1
        layers = [np.flatnonzero(popcount == c) for c in range(1, k + 1)]
        cached = (low_i, rest, layers)
        _MASK_TABLES[k] = cached
    return cached


class MWPMDecoder(BatchDecoder):
    """Decoder instance bound to one decoding graph.

    Args:
        graph: decoding graph to match on.
        matcher: ``"auto"`` (subset-DP for small defect sets, blossom
            otherwise) or ``"blossom"`` (always blossom).
        decompose: when True (default), split defects into independent
            clusters and memoize per-cluster matchings (see the module
            docstring); ``False`` matches every syndrome whole -- the
            slower baseline kept for verification and benchmarking.
    """

    def __init__(
        self, graph: DecodingGraph, matcher: str = "auto", decompose: bool = True
    ) -> None:
        if matcher not in ("auto", "blossom"):
            raise ValueError(f"unknown matcher {matcher!r}")
        self.graph = graph
        self.matcher = matcher
        self.decompose = decompose
        self._cluster_cache: Dict[Tuple[int, ...], int] = {}
        self._dense: "Tuple[np.ndarray, np.ndarray] | None" = None
        self._sparse: "SparseTables | bool | None" = None
        self._token: "str | None" = None
        self._nx = nx.Graph()
        self._nx.add_node(BOUNDARY)
        for det in range(graph.num_detectors):
            self._nx.add_node(det)
        for edge in graph.edges:
            if len(edge.detectors) == 1:
                u, v = edge.detectors[0], BOUNDARY
            else:
                u, v = edge.detectors
            obs_mask = _mask(edge.observables, graph.num_observables)
            # Keep the lighter of parallel edges (merging already done).
            if self._nx.has_edge(u, v) and self._nx[u][v]["weight"] <= edge.weight:
                continue
            self._nx.add_edge(u, v, weight=edge.weight, obs=obs_mask)
        self._distance: Dict[int, Dict[int, float]] = {}
        self._path_obs: Dict[int, Dict[int, int]] = {}
        self._precompute_paths()

    def _precompute_paths(self) -> None:
        for source in self._nx.nodes:
            lengths, paths = nx.single_source_dijkstra(self._nx, source, weight="weight")
            self._distance[source] = lengths
            obs_map: Dict[int, int] = {}
            for dest, path in paths.items():
                mask = 0
                for a, b in zip(path, path[1:]):
                    mask ^= self._nx[a][b]["obs"]
                obs_map[dest] = mask
            self._path_obs[source] = obs_map

    # -- decoding -----------------------------------------------------------

    @property
    def num_observables(self) -> int:
        return self.graph.num_observables

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Predict observable flips for one shot.

        Args:
            syndrome: uint8 vector over detectors (1 = defect).

        Returns:
            uint8 vector over observables with the predicted flips.
        """
        defects = [int(d) for d in np.flatnonzero(syndrome)]
        prediction = 0
        if defects:
            if self.decompose:
                prediction = self._match_decomposed(defects)
            else:
                prediction = self._match(defects)
        return _unmask(prediction, self.graph.num_observables)

    def _cluster_split(self, defects: List[int]) -> List[Tuple[int, ...]]:
        """Split defects into independently-matchable clusters.

        Clusters are the connected components of the relation
        ``d(u, v) < d(u, B) + d(v, B)``; cutting every other pair is
        weight-neutral (route both ends to the boundary instead), so the
        per-cluster optima compose into a global minimum-weight matching.
        """
        k = len(defects)
        if k == 1:
            if defects[0] not in self._distance:
                raise ValueError(
                    f"defects outside the decoding graph: {defects}"
                )
            return [(defects[0],)]
        dist, _ = self._dense_tables()
        n = dist.shape[0] - 1
        defs = np.asarray(defects, dtype=np.intp)
        if np.isinf(dist[defs, defs]).any():
            unreachable = [d for d in defects if d not in self._distance]
            raise ValueError(f"defects outside the decoding graph: {unreachable}")
        bc = dist[defs, n]
        linked = dist[defs[:, None], defs[None, :]] < bc[:, None] + bc[None, :]
        parent = list(range(k))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i, j in np.argwhere(np.triu(linked, 1)):
            ri, rj = find(int(i)), find(int(j))
            if ri != rj:
                parent[rj] = ri
        clusters: Dict[int, List[int]] = {}
        for i in range(k):
            clusters.setdefault(find(i), []).append(defects[i])
        return [tuple(members) for members in clusters.values()]

    def _cluster_split_batch(
        self, defs: np.ndarray
    ) -> List[List[Tuple[int, ...]]]:
        """:meth:`_cluster_split` for many same-count defect rows at once.

        The linkage test and transitive closure run vectorized over the
        whole ``(rows, k)`` batch; only the final member grouping walks
        rows in Python.  Produces exactly the clusters (and ordering) of
        the scalar splitter.
        """
        rows, k = defs.shape
        dist, _ = self._dense_tables()
        n = dist.shape[0] - 1
        if np.isinf(dist[defs, defs]).any():
            # Rare path: re-raise with the scalar splitter's message.
            for row in defs:
                self._cluster_split([int(d) for d in row])
        if k == 1:
            return [[(int(row[0]),)] for row in defs]
        bc = dist[defs, n]
        linked = dist[defs[:, :, None], defs[:, None, :]] < (
            bc[:, :, None] + bc[:, None, :]
        )
        # Shortest pair paths may route *through* the boundary node, where
        # d(u, v) equals d(u, B) + d(v, B) up to float associativity and
        # the strict comparison can come out asymmetric.  The scalar
        # splitter reads only i < j entries; mirror the upper triangle so
        # both splitters link exactly the same pairs.
        upper = np.triu(linked, 1)
        reach = upper | upper.transpose(0, 2, 1) | np.eye(k, dtype=bool)
        for _ in range(max(1, int(np.ceil(np.log2(k))))):
            reach = np.matmul(reach.astype(np.uint8), reach.astype(np.uint8)) > 0
        # Component label = lowest member index reaching each defect
        # (reach is symmetric, so labels are consistent per component).
        labels = np.argmax(reach, axis=1)
        out: List[List[Tuple[int, ...]]] = []
        for r in range(rows):
            groups: Dict[int, List[int]] = {}
            row_defs = defs[r]
            row_labels = labels[r]
            for i in range(k):
                groups.setdefault(int(row_labels[i]), []).append(int(row_defs[i]))
            out.append([tuple(members) for members in groups.values()])
        return out

    def _match_decomposed(self, defects: List[int]) -> int:
        prediction = 0
        for cluster in self._cluster_split(defects):
            prediction ^= self._cluster_mask(cluster)
        return prediction

    def _cluster_mask(self, cluster: Tuple[int, ...]) -> int:
        cached = self._cluster_cache.get(cluster)
        if cached is None:
            self._solve_clusters([cluster])
            cached = self._cluster_cache[cluster]
        return cached

    def _cache_cluster(self, cluster: Tuple[int, ...], mask: int) -> None:
        if len(self._cluster_cache) >= _CLUSTER_CACHE_LIMIT:
            self._cluster_cache.clear()
        self._cluster_cache[cluster] = mask

    # -- sparse fast path / cache hooks -------------------------------------

    def _cache_token(self) -> str:
        """Content fingerprint keying the cross-batch syndrome cache."""
        if self._token is None:
            self._token = (
                f"mwpm:{self.matcher}:{int(self.decompose)}:"
                f"{self.graph.digest()}"
            )
        return self._token

    def _sparse_tables(self) -> "SparseTables | None":
        """Closed-form <= 2-defect corrections from the dense path tables.

        A single defect matches the boundary (``bobs[u]``); a pair matches
        directly iff ``d(u, v) < d(u, B) + d(v, B)`` -- the cluster
        relation *and* the subset DP's strict-improvement rule, so ties
        resolve exactly as in :meth:`_match_dp` -- and otherwise routes
        both ends to the boundary.  Only valid for the DP matcher (blossom
        breaks degenerate ties arbitrarily); infeasible entries fall
        through to the full path, which raises the usual error.
        """
        if self._sparse is None:
            if (
                self.matcher != "auto"
                or self.graph.num_observables > _VEC_DP_MAX_OBS
            ):
                self._sparse = False
            else:
                dist, obs = self._dense_tables()
                n = dist.shape[0] - 1
                num_obs = self.graph.num_observables
                bc = dist[:n, n]
                bobs = obs[:n, n]
                singles_ok = np.isfinite(bc)
                singles = _unmask_rows(bobs, num_obs)
                singles[~singles_ok] = 0
                bsum = bc[:, None] + bc[None, :]
                use_pair = dist[:n, :n] < bsum
                pair_mask = np.where(
                    use_pair, obs[:n, :n], bobs[:, None] ^ bobs[None, :]
                )
                pair_ok = use_pair | np.isfinite(bsum)
                self._sparse = SparseTables(
                    singles=singles,
                    singles_ok=singles_ok,
                    pair_mask=pair_mask,
                    pair_ok=pair_ok,
                )
        return self._sparse or None

    # -- batched decoding ---------------------------------------------------

    def _decode_unique(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode unique syndrome rows with cross-row cluster batching.

        All rows are decomposed first, the union of their uncached
        clusters is solved in defect-count groups (vectorized subset DP
        over every group member at once), and the per-row predictions are
        composed from the cluster cache.  The cluster masks are identical
        to the scalar path's, so the output does not depend on how rows
        are batched.
        """
        if not self.decompose:
            return super()._decode_unique(syndromes)
        num_obs = self.graph.num_observables
        row_clusters: List[List[Tuple[int, ...]]] = [
            [] for _ in range(syndromes.shape[0])
        ]
        pending: Dict[Tuple[int, ...], None] = {}
        counts = syndromes.sum(axis=1)
        for k in np.unique(counts):
            k = int(k)
            if k == 0:
                continue
            rows = np.flatnonzero(counts == k)
            # np.nonzero walks rows in order with ascending columns, so
            # the reshape yields each row's sorted defect list.
            defs = np.nonzero(syndromes[rows])[1].reshape(rows.size, k)
            for row, clusters in zip(rows, self._cluster_split_batch(defs)):
                row_clusters[row] = clusters
                for cluster in clusters:
                    if cluster not in self._cluster_cache:
                        pending[cluster] = None
        self._solve_clusters(list(pending))
        out = np.zeros((syndromes.shape[0], num_obs), dtype=np.uint8)
        cache = self._cluster_cache
        for i, clusters in enumerate(row_clusters):
            mask = 0
            for cluster in clusters:
                cached = cache.get(cluster)
                if cached is None:
                    # The runaway guard may have dropped the whole cache
                    # mid-batch (above-threshold inputs); re-solve.
                    cached = self._cluster_mask(cluster)
                mask ^= cached
            if mask:
                out[i] = _unmask(mask, num_obs)
        return out

    def _solve_clusters(self, clusters: List[Tuple[int, ...]]) -> None:
        """Match uncached clusters, vectorizing defect-count groups.

        The solve strategy depends only on the defect count (DP up to
        :data:`_VEC_DP_LIMIT`, blossom beyond), never on the group size:
        the vectorized and scalar DPs resolve ties identically, so a
        cluster's cached mask is independent of how -- and with what
        batch-mates -- it was first solved.
        """
        by_size: Dict[int, List[Tuple[int, ...]]] = {}
        for cluster in clusters:
            by_size.setdefault(len(cluster), []).append(cluster)
        for k, group in sorted(by_size.items()):
            dp = (
                self.matcher == "auto"
                and k <= _VEC_DP_LIMIT
                and self.graph.num_observables <= _VEC_DP_MAX_OBS
            )
            if dp and len(group) >= _VEC_DP_MIN_GROUP:
                defs = np.asarray(group, dtype=np.intp)
                masks = self._match_dp_batch(defs)
                for cluster, mask in zip(group, masks):
                    self._cache_cluster(cluster, int(mask))
            elif dp:
                for cluster in group:
                    self._cache_cluster(cluster, self._match_dp(list(cluster)))
            elif self.matcher == "auto":
                for cluster in group:
                    self._cache_cluster(
                        cluster, self._match_blossom_reduced(list(cluster))
                    )
            else:
                for cluster in group:
                    self._cache_cluster(cluster, self._match(list(cluster)))

    def _dense_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """(distance, path-observable-mask) matrices over detectors+boundary.

        Row/column ``num_detectors`` is the boundary; unreachable pairs
        hold ``inf`` distance and mask 0.  Built lazily on the first
        batched decode.
        """
        if self._dense is None:
            n = self.graph.num_detectors
            dist = np.full((n + 1, n + 1), math.inf)
            # Observable masks only fit the int64 table up to
            # _VEC_DP_MAX_OBS observables (the sequential decoder's
            # pseudo-observable graphs exceed it); the vectorized DP is
            # disabled beyond that, so the mask table is never read.
            with_obs = self.graph.num_observables <= _VEC_DP_MAX_OBS
            obs = np.zeros((n + 1, n + 1), dtype=np.int64) if with_obs else None
            for u, lengths in self._distance.items():
                ui = n if u == BOUNDARY else u
                obs_row = self._path_obs[u]
                for v, length in lengths.items():
                    vi = n if v == BOUNDARY else v
                    dist[ui, vi] = length
                    if with_obs:
                        obs[ui, vi] = obs_row[v]
            self._dense = (dist, obs)
        return self._dense

    def _match_dp_batch(self, defs: np.ndarray) -> List[int]:
        """Subset DP over every row of ``defs`` (shape (B, k)) at once.

        The table is filled popcount layer by popcount layer, with each
        update vectorized over *both* the batch rows and the layer's
        masks, so the Python overhead is O(k^2) numpy calls regardless of
        batch size.  The recurrence, candidate order (boundary first,
        then partners in ascending defect order), and strict-improvement
        rule are the same as :meth:`_match_dp`, so each row's matching
        (including tie resolution) is identical to the scalar path's.
        """
        batch, k = defs.shape
        dist, obs = self._dense_tables()
        n = dist.shape[0] - 1
        bcost = dist[defs, n]
        bobs = obs[defs, n]
        pcost = dist[defs[:, :, None], defs[:, None, :]]
        pobs = obs[defs[:, :, None], defs[:, None, :]]
        size = 1 << k
        low_i, rest_of, layers = _mask_tables(k)
        cost = np.full((batch, size), math.inf)
        choice = np.full((batch, size), -1, dtype=np.int8)
        cost[:, 0] = 0.0
        for layer in layers:
            i_l = low_i[layer]
            rest_l = rest_of[layer]
            best = bcost[:, i_l] + cost[:, rest_l]
            best_j = np.full((batch, layer.size), -1, dtype=np.int8)
            for j in range(k):
                has = ((rest_l >> j) & 1) == 1
                if not has.any():
                    continue
                i_s = i_l[has]
                rest_s = rest_l[has]
                candidate = pcost[:, i_s, j] + cost[:, rest_s ^ (1 << j)]
                current = best[:, has]
                better = candidate < current
                if better.any():
                    best[:, has] = np.where(better, candidate, current)
                    chosen = best_j[:, has]
                    chosen[better] = j
                    best_j[:, has] = chosen
            cost[:, layer] = best
            choice[:, layer] = best_j
        full = size - 1
        infeasible = np.isinf(cost[:, full])
        if infeasible.any():
            row = int(np.flatnonzero(infeasible)[0])
            raise ValueError(
                f"MWPM matching is not perfect: defects "
                f"{[int(d) for d in defs[row]]} cannot all be paired or "
                "routed to the boundary; the decoding graph cannot "
                "explain this syndrome"
            )
        out: List[int] = []
        for r in range(batch):
            prediction = 0
            mask = full
            row_choice = choice[r]
            while mask:
                i = (mask & -mask).bit_length() - 1
                j = int(row_choice[mask])
                if j < 0:
                    prediction ^= int(bobs[r, i])
                    mask ^= 1 << i
                else:
                    prediction ^= int(pobs[r, i, j])
                    mask ^= (1 << i) | (1 << j)
            out.append(prediction)
        return out

    def _match(self, defects: List[int]) -> int:
        """Exact minimum-weight matching of the defect set."""
        unreachable = [d for d in defects if d not in self._distance]
        if unreachable:
            raise ValueError(f"defects outside the decoding graph: {unreachable}")
        if self.matcher == "auto" and len(defects) <= _DP_MATCH_LIMIT:
            return self._match_dp(defects)
        return self._match_blossom(defects)

    def _match_dp(self, defects: List[int]) -> int:
        """Subset DP: each defect pairs with a partner or the boundary.

        ``cost[mask]`` is the minimal weight to resolve the defect subset
        ``mask``; the lowest defect in the subset either matches the
        boundary or one of the remaining defects.  Exact for any defect
        count (the boundary absorbs arbitrarily many), and detects
        infeasible syndromes as an infinite total cost.
        """
        k = len(defects)
        boundary_cost = [
            self._distance[u].get(BOUNDARY, math.inf) for u in defects
        ]
        pair_cost = [
            [self._distance[u].get(v, math.inf) for v in defects] for u in defects
        ]
        size = 1 << k
        cost = [math.inf] * size
        choice: List[Tuple[int, int]] = [(-1, -1)] * size
        cost[0] = 0.0
        for mask in range(1, size):
            i = (mask & -mask).bit_length() - 1
            rest = mask ^ (1 << i)
            best = boundary_cost[i] + cost[rest]
            best_choice = (i, -1)
            row = pair_cost[i]
            submask = rest
            while submask:
                j = (submask & -submask).bit_length() - 1
                submask &= submask - 1
                candidate = row[j] + cost[rest ^ (1 << j)]
                if candidate < best:
                    best = candidate
                    best_choice = (i, j)
            cost[mask] = best
            choice[mask] = best_choice
        full = size - 1
        if math.isinf(cost[full]):
            raise ValueError(
                f"MWPM matching is not perfect: defects {defects} cannot all "
                "be paired or routed to the boundary; the decoding graph "
                "cannot explain this syndrome"
            )
        prediction = 0
        mask = full
        while mask:
            i, j = choice[mask]
            if j < 0:
                prediction ^= self._path_obs[defects[i]][BOUNDARY]
                mask ^= 1 << i
            else:
                prediction ^= self._path_obs[defects[i]][defects[j]]
                mask ^= (1 << i) | (1 << j)
        return prediction

    def _match_blossom_reduced(self, defects: List[int]) -> int:
        """Boundary-reduced blossom for large decomposed clusters.

        With every defect boundary-reachable, minimizing
        ``sum_pairs d(u,v) + sum_unmatched d(u,B)`` equals maximizing the
        *gain* ``d(u,B) + d(v,B) - d(u,v)`` over a (possibly partial)
        matching -- unmatched defects route to the boundary.  That is a
        max-weight matching on just ``k`` defect nodes with only
        positive-gain edges (the cluster relation's edges), a much
        smaller graph than :meth:`_match_blossom`'s boundary-copy
        construction, which stays in-tree as the historical baseline.
        Exact minimum weight either way; degenerate ties may resolve
        differently.
        """
        boundary_dist = [
            self._distance[u].get(BOUNDARY, math.inf) for u in defects
        ]
        if any(math.isinf(b) for b in boundary_dist):
            # Boundaryless defects break the reduction; use the copy
            # construction (it also reports infeasibility properly).
            return self._match_blossom(defects)
        match_graph = nx.Graph()
        match_graph.add_nodes_from(range(len(defects)))
        for i, u in enumerate(defects):
            row = self._distance[u]
            for j in range(i + 1, len(defects)):
                dist = row.get(defects[j])
                if dist is None:
                    continue
                gain = boundary_dist[i] + boundary_dist[j] - dist
                if gain > 0:
                    match_graph.add_edge(i, j, weight=gain)
        matching = nx.algorithms.matching.max_weight_matching(match_graph)
        prediction = 0
        matched = set()
        for i, j in matching:
            prediction ^= self._path_obs[defects[i]][defects[j]]
            matched.add(i)
            matched.add(j)
        for i, u in enumerate(defects):
            if i not in matched:
                prediction ^= self._path_obs[u][BOUNDARY]
        return prediction

    def _match_blossom(self, defects: List[int]) -> int:
        """Blossom matching on the defect graph with boundary copies.

        Defect-defect edges no cheaper than routing both ends to the
        boundary are pruned up front: a minimum-weight matching never
        needs them (replace the pair with its two boundary matchings), and
        they dominate the blossom run time on large defect sets.
        """
        boundary_dist = [
            self._distance[u].get(BOUNDARY, math.inf) for u in defects
        ]
        match_graph = nx.Graph()
        for i, u in enumerate(defects):
            match_graph.add_node(("d", i))
            match_graph.add_node(("b", i))
            if not math.isinf(boundary_dist[i]):
                match_graph.add_edge(("d", i), ("b", i), weight=boundary_dist[i])
            for j in range(i + 1, len(defects)):
                v = defects[j]
                dist = self._distance[u].get(v)
                if dist is not None and dist < boundary_dist[i] + boundary_dist[j]:
                    match_graph.add_edge(("d", i), ("d", j), weight=dist)
        for i in range(len(defects)):
            for j in range(i + 1, len(defects)):
                match_graph.add_edge(("b", i), ("b", j), weight=0.0)
        matching = nx.algorithms.matching.min_weight_matching(match_graph)
        # Blossom returns a maximum-cardinality matching, which is only
        # perfect when one exists.  With an odd defect count and defects
        # that cannot reach the boundary, some defect stays unmatched and
        # would previously be dropped silently, corrupting the prediction.
        matched = {node for pair in matching for node in pair}
        unmatched = [defects[i] for i in range(len(defects)) if ("d", i) not in matched]
        if unmatched:
            raise ValueError(
                f"MWPM matching is not perfect: defects {unmatched} have no "
                f"boundary path and no available partner (defect count "
                f"{len(defects)}); the decoding graph cannot explain this "
                "syndrome"
            )
        prediction = 0
        for a, b in matching:
            if a[0] == "b" and b[0] == "b":
                continue
            if a[0] == "d" and b[0] == "d":
                u, v = defects[a[1]], defects[b[1]]
                prediction ^= self._path_obs[u][v]
            else:
                defect_node = a if a[0] == "d" else b
                u = defects[defect_node[1]]
                prediction ^= self._path_obs[u][BOUNDARY]
        return prediction


def _mask(observables, num_observables: int) -> int:
    mask = 0
    for obs in observables:
        if obs >= num_observables:
            raise ValueError(f"observable index {obs} out of range")
        mask |= 1 << obs
    return mask


def _unmask(mask: int, num_observables: int) -> np.ndarray:
    out = np.zeros(num_observables, dtype=np.uint8)
    for i in range(num_observables):
        out[i] = (mask >> i) & 1
    return out
