"""Sequential correlated decoder for transversal-CNOT circuits.

Implements the iterative strategy of the transversal-CNOT decoding
literature (paper Refs. [68, 70]): with all CNOTs directed control ->
target, the control patch's syndrome in a given CSS sector is untouched by
the target, so it is decoded first on its ordinary (marginal) matching
graph; every matched error mechanism also records the *remote* detector
flips its propagated copy produces on the target patch.  The target's
syndrome is corrected by those remote flips and then decoded on its own
marginal graph.  Both passes are plain MWPM, so the scheme retains full
code distance while accounting for cross-patch correlations.

Implementation note: remote detector flips are encoded as pseudo-observables
of the control-patch graph, reusing :class:`~repro.decoder.mwpm.MWPMDecoder`
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.decoder.base import BatchDecoder
from repro.decoder.graph import DecodingGraph
from repro.decoder.mwpm import MWPMDecoder
from repro.noise.dem import DetectorErrorModel

DetectorMeta = Tuple[int, str, int, int]  # (patch, basis, check, round)


@dataclass
class _SectorMechanism:
    probability: float
    control_dets: Tuple[int, ...]  # local control-sector indices
    target_dets: Tuple[int, ...]  # local target-sector indices
    observables: Tuple[int, ...]


class SequentialCNOTDecoder(BatchDecoder):
    """Two-pass decoder for one-directional transversal-CNOT experiments.

    Args:
        dem: detector error model of the full two-patch circuit.
        detector_meta: per-detector (patch, basis, check, round) tuples from
            :class:`~repro.sim.memory.MemoryExperimentBuilder`.
        basis: CSS sector to decode ('Z' decodes X-type errors and the
            logical-Z observables of a memory-Z experiment).
        control_patch / target_patch: patch roles; every CNOT in the circuit
            must use this orientation for the sequential pass to be exact.
    """

    def __init__(
        self,
        dem: DetectorErrorModel,
        detector_meta: Sequence[DetectorMeta],
        basis: str = "Z",
        control_patch: int = 0,
        target_patch: int = 1,
    ) -> None:
        if len(detector_meta) != dem.num_detectors:
            raise ValueError("detector metadata does not match the DEM")
        self.basis = basis
        self.num_observables = dem.num_observables
        self._control_ids: List[int] = []
        self._target_ids: List[int] = []
        for det, (patch, det_basis, _check, _round) in enumerate(detector_meta):
            if det_basis != basis:
                continue
            if patch == control_patch:
                self._control_ids.append(det)
            elif patch == target_patch:
                self._target_ids.append(det)
        control_local = {g: i for i, g in enumerate(self._control_ids)}
        target_local = {g: i for i, g in enumerate(self._target_ids)}
        sector = set(control_local) | set(target_local)
        mechanisms: List[_SectorMechanism] = []
        for mech in dem.mechanisms:
            dets = [d for d in mech.detectors if d in sector]
            if not dets and not mech.observables:
                continue
            ctrl = tuple(sorted(control_local[d] for d in dets if d in control_local))
            targ = tuple(sorted(target_local[d] for d in dets if d in target_local))
            if not ctrl and not targ:
                continue
            mechanisms.append(
                _SectorMechanism(mech.probability, ctrl, targ, mech.observables)
            )
        self._control_decoder = self._build_control_decoder(mechanisms)
        self._target_decoder = self._build_target_decoder(mechanisms)

    # -- graph construction -------------------------------------------------

    def _build_control_decoder(self, mechanisms: List[_SectorMechanism]) -> MWPMDecoder:
        """Control marginal graph; remote target flips ride as pseudo-obs."""
        offset = self.num_observables
        graph = DecodingGraph(
            num_detectors=len(self._control_ids),
            num_observables=offset + len(self._target_ids),
        )
        best: Dict[Tuple[int, ...], float] = {}
        for mech in mechanisms:
            if not mech.control_dets:
                continue
            if len(mech.control_dets) > 2:
                # Cannot occur for one-directional CNOTs; skip defensively.
                continue
            payload = frozenset(mech.observables) | frozenset(
                offset + t for t in mech.target_dets
            )
            graph.add_mechanism(mech.control_dets, mech.probability, payload)
        return MWPMDecoder(graph)

    def _build_target_decoder(self, mechanisms: List[_SectorMechanism]) -> MWPMDecoder:
        """Target marginal graph from mechanisms local to the target."""
        graph = DecodingGraph(
            num_detectors=len(self._target_ids),
            num_observables=self.num_observables,
        )
        for mech in mechanisms:
            if mech.control_dets or not mech.target_dets:
                continue
            if len(mech.target_dets) > 2:
                continue
            graph.add_mechanism(
                mech.target_dets, mech.probability, frozenset(mech.observables)
            )
        return MWPMDecoder(graph)

    # -- decoding ---------------------------------------------------------------

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Predict observable flips for one shot over all circuit detectors."""
        control_syndrome = syndrome[self._control_ids]
        first = self._control_decoder.decode(control_syndrome)
        prediction = first[: self.num_observables].copy()
        remote = first[self.num_observables :]
        target_syndrome = syndrome[self._target_ids] ^ remote
        second = self._target_decoder.decode(target_syndrome)
        prediction ^= second
        return prediction
