"""Shared decoder interface and batched decoding with syndrome dedup.

All decoders in :mod:`repro.decoder` are pure functions of a single
syndrome row, so batches can be decoded once per *unique* syndrome and the
predictions scattered back to every duplicate shot.  In the low-``p``
regimes the paper's Monte-Carlo runs live in (Fig. 6(a)), the all-zero
syndrome alone covers the overwhelming majority of shots, so deduplication
turns an O(shots) decode loop into an O(unique) one.

:class:`BatchDecoder` hoists the previously-triplicated per-shot loops of
the MWPM, union-find, and sequential decoders into one place.  Batches
arrive in one of two layouts:

* :meth:`~BatchDecoder.decode_batch` -- uint8 one-byte-per-bit rows; the
  rows are bit-packed internally to build fixed-width dedup keys.
* :meth:`~BatchDecoder.decode_packed` -- rows *already* bit-packed per
  shot, exactly what :meth:`repro.sim.frame.FrameSimulator.sample_packed`
  emits.  The packed rows are the dedup keys directly, so the packed
  pipeline never materializes (or re-packs) a byte-per-bit syndrome table;
  only the unique rows are unpacked for decoding.

Subclasses implement ``decode`` (one shot) and expose
``num_observables``; they may override :meth:`~BatchDecoder._decode_unique`
to decode the unique syndrome set as a batch (the MWPM decoder vectorizes
its subset-DP matcher this way).
"""

from __future__ import annotations

import time
from typing import NamedTuple, Optional, Protocol, runtime_checkable

import numpy as np

from repro.obs import metrics as _metrics

# One observation per *batch* (not per shot), so the recording cost is
# amortized over shard_shots decodes; `repro_decode_seconds` percentiles
# are the measured latency input for ROADMAP item 2's ReactionTiming.
# The shots/unique pair is the dedup ratio; batch-unique counts are
# deterministic per (seed, shard_shots) and so extend the worker-count
# invariance contract to telemetry.
_DECODE_SECONDS = _metrics.histogram(
    "repro_decode_seconds",
    "Batch decode latency (dedup + unique-row decode) by decoder class.",
    ("decoder",),
)
_DECODE_SHOTS = _metrics.counter(
    "repro_decode_shots_total",
    "Shots decoded (before deduplication) by decoder class.",
    ("decoder",),
)
_DECODE_UNIQUE = _metrics.counter(
    "repro_decode_unique_total",
    "Unique syndrome rows decoded by decoder class.",
    ("decoder",),
)
_DECODE_BATCH_UNIQUE = _metrics.histogram(
    "repro_decode_batch_unique",
    "Unique syndrome rows per decode batch by decoder class.",
    ("decoder",),
    bounds=_metrics.COUNT_BUCKETS,
)


@runtime_checkable
class Decoder(Protocol):
    """Structural interface every registered decoder satisfies.

    A decoder maps one uint8 syndrome row over the circuit's detectors to a
    uint8 prediction row over its logical observables, and decodes batches
    of shots with :meth:`decode_batch` (byte-per-bit rows) or
    :meth:`decode_packed` (bit-packed per-shot rows).
    """

    @property
    def num_observables(self) -> int: ...

    def decode(self, syndrome: np.ndarray) -> np.ndarray: ...

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray: ...

    def decode_packed(
        self, packed: np.ndarray, num_detectors: int
    ) -> np.ndarray: ...


class SparseTables(NamedTuple):
    """Closed-form correction tables for syndromes with <= 2 defects.

    Built once per decoder from its shortest-path (MWPM) or cluster-growth
    (union-find) structure; rows whose ``*_ok`` entry is False fall
    through to the decoder's full batch path (and raise its usual
    infeasibility error there).
    """

    singles: np.ndarray  # (num_detectors, num_observables) uint8 rows
    singles_ok: np.ndarray  # (num_detectors,) bool
    pair_mask: Optional[np.ndarray] = None  # (N, N) int64 observable masks
    pair_ok: Optional[np.ndarray] = None  # (N, N) bool


class BatchDecoder:
    """Base class providing batched decoding via syndrome deduplication.

    Subclasses implement :meth:`decode` (one shot) and expose
    ``num_observables`` (as an attribute or property); batching, dedup,
    and scatter-back live here.  Two optional hooks extend the packed
    pipeline:

    * :meth:`_sparse_tables` -- closed-form correction tables for
      syndromes with <= 2 defects (:class:`SparseTables`); rows they
      cover bypass :meth:`_decode_unique` entirely.
    * :meth:`_cache_token` -- a content fingerprint of the decoder; when
      non-None, unique rows are served from / inserted into the
      cross-batch syndrome cache (:mod:`repro.decoder.cache`).

    Both are pure optimizations: their outputs are certified/constructed
    bit-identical to the full path, so enabling them never changes a
    decoded row.
    """

    num_observables: int

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _decode_unique(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode deduplicated syndrome rows; hook for batch-aware subclasses."""
        out = np.zeros((syndromes.shape[0], self.num_observables), dtype=np.uint8)
        for i in range(syndromes.shape[0]):
            out[i] = self.decode(syndromes[i])
        return out

    def _sparse_tables(self) -> Optional[SparseTables]:
        """Closed-form <= 2-defect tables, or None (no fast path)."""
        return None

    def _cache_token(self) -> Optional[str]:
        """Fingerprint keying the syndrome cache, or None (no caching).

        Must change whenever the decoder could produce a different row
        for the same syndrome (graph content, matcher configuration).
        """
        return None

    def _decode_unique_rows(self, syndromes: np.ndarray) -> np.ndarray:
        """Sparse-defect fast path in front of :meth:`_decode_unique`.

        Syndromes with <= 2 defects -- the overwhelming majority of
        unique rows at sub-threshold noise -- are read from the
        precomputed tables; only the dense residue reaches the full
        decoder.
        """
        tables = self._sparse_tables()
        if tables is None:
            return np.asarray(self._decode_unique(syndromes), dtype=np.uint8)
        num_obs = self.num_observables
        out = np.zeros((syndromes.shape[0], num_obs), dtype=np.uint8)
        counts = syndromes.sum(axis=1, dtype=np.int64)
        handled = counts == 0
        ones = np.flatnonzero(counts == 1)
        if ones.size:
            det = np.argmax(syndromes[ones], axis=1)
            ok = tables.singles_ok[det]
            out[ones[ok]] = tables.singles[det[ok]]
            handled[ones[ok]] = True
        if tables.pair_mask is not None:
            twos = np.flatnonzero(counts == 2)
            if twos.size:
                # np.nonzero walks rows in order with ascending columns,
                # so each reshaped row is one syndrome's sorted defect pair.
                pairs = np.nonzero(syndromes[twos])[1].reshape(twos.size, 2)
                u, v = pairs[:, 0], pairs[:, 1]
                ok = tables.pair_ok[u, v]
                out[twos[ok]] = _unmask_rows(
                    tables.pair_mask[u[ok], v[ok]], num_obs
                )
                handled[twos[ok]] = True
        dense = np.flatnonzero(~handled)
        if dense.size:
            out[dense] = np.asarray(
                self._decode_unique(syndromes[dense]), dtype=np.uint8
            )
        return out

    def _decode_unique_packed(
        self, unique_packed: np.ndarray, num_detectors: int
    ) -> np.ndarray:
        """Decode unique packed rows through the cache + fast-path stack."""
        from repro.decoder import cache as _syndrome_cache

        token = self._cache_token()
        if token is None or not _syndrome_cache.cache_enabled():
            return self._decode_unique_rows(
                _unpack_rows(unique_packed, num_detectors)
            )
        out, pending = _syndrome_cache.lookup_rows(
            token, unique_packed, self.num_observables, type(self).__name__
        )
        if pending.size:
            sub_packed = unique_packed[pending]
            decoded = self._decode_unique_rows(
                _unpack_rows(sub_packed, num_detectors)
            )
            out[pending] = decoded
            _syndrome_cache.insert_rows(token, sub_packed, decoded)
        return out

    def decode_batch(self, syndromes: np.ndarray, *, dedup: bool = True) -> np.ndarray:
        """Decode many shots; returns (shots, num_observables) flips.

        Args:
            syndromes: uint8 array of shape (shots, num_detectors).
            dedup: when True (default), decode each unique syndrome row
                once and scatter predictions back to duplicate shots.  The
                output is bit-identical either way; ``dedup=False`` is the
                per-shot baseline kept for benchmarking and verification.
        """
        syndromes = np.asarray(syndromes, dtype=np.uint8)
        num_obs = self.num_observables
        if syndromes.shape[0] == 0:
            return np.zeros((0, num_obs), dtype=np.uint8)
        if not dedup:
            out = np.zeros((syndromes.shape[0], num_obs), dtype=np.uint8)
            for i in range(syndromes.shape[0]):
                out[i] = self.decode(syndromes[i])
            return out
        if syndromes.shape[1] == 0:
            packed = np.zeros((syndromes.shape[0], 0), dtype=np.uint8)
        else:
            packed = np.packbits(syndromes, axis=1)
        return self.decode_packed(packed, syndromes.shape[1])

    def decode_packed(
        self, packed: np.ndarray, num_detectors: int, *, dedup: bool = True
    ) -> np.ndarray:
        """Decode bit-packed per-shot syndromes; returns byte-per-bit flips.

        Args:
            packed: uint8 array of shape (shots, ceil(num_detectors/8));
                each row is one shot's detector bits packed with
                ``np.packbits`` (big bit order) -- the layout
                :meth:`repro.sim.frame.FrameSimulator.sample_packed`
                returns.  The rows double as the dedup keys, so no
                pack/unpack round trip happens on the batch; only unique
                rows are unpacked for the decoder.
            num_detectors: number of valid bits per row.
            dedup: as in :meth:`decode_batch`.

        Returns:
            uint8 array of shape (shots, num_observables).
        """
        packed = np.ascontiguousarray(packed, dtype=np.uint8)
        shots = packed.shape[0]
        num_obs = self.num_observables
        if shots == 0:
            return np.zeros((0, num_obs), dtype=np.uint8)
        if not dedup:
            syndromes = _unpack_rows(packed, num_detectors)
            out = np.zeros((shots, num_obs), dtype=np.uint8)
            for i in range(shots):
                out[i] = self.decode(syndromes[i])
            return out
        start = time.perf_counter() if _metrics.enabled() else 0.0
        first_index, inverse = _unique_packed_rows(packed)
        unique_out = self._decode_unique_packed(packed[first_index], num_detectors)
        out = unique_out[inverse]
        if _metrics.enabled():
            label = type(self).__name__
            _DECODE_SECONDS.labels(decoder=label).observe(
                time.perf_counter() - start
            )
            _DECODE_SHOTS.labels(decoder=label).inc(shots)
            _DECODE_UNIQUE.labels(decoder=label).inc(len(first_index))
            _DECODE_BATCH_UNIQUE.labels(decoder=label).observe(len(first_index))
        return out


def _unmask_rows(masks: np.ndarray, num_observables: int) -> np.ndarray:
    """Expand int64 observable bitmasks to byte-per-bit prediction rows.

    Vectorized replacement for the per-observable ``(mask >> i) & 1``
    Python loops the decoders used to carry; one broadcasted shift covers
    the whole batch.
    """
    masks = np.asarray(masks, dtype=np.int64).reshape(-1)
    if num_observables == 0:
        return np.zeros((masks.shape[0], 0), dtype=np.uint8)
    shifts = np.arange(num_observables, dtype=np.int64)
    return ((masks[:, None] >> shifts) & 1).astype(np.uint8)


def _unpack_rows(packed: np.ndarray, num_detectors: int) -> np.ndarray:
    """Bit-packed rows back to byte-per-bit rows (trailing pad dropped)."""
    if num_detectors == 0:
        return np.zeros((packed.shape[0], 0), dtype=np.uint8)
    return np.unpackbits(packed, axis=1, count=num_detectors)


def _unique_packed_rows(packed: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """(first_index, inverse) of the unique rows of a bit-packed matrix.

    Rows are compared as fixed-width byte strings, which is substantially
    faster than ``np.unique(..., axis=0)`` sorting full-width rows -- this
    sits on the Monte-Carlo hot path.
    """
    if packed.shape[1] == 0:
        # Zero-width rows (a circuit with no detectors) are all identical.
        return (
            np.zeros(1, dtype=np.intp),
            np.zeros(packed.shape[0], dtype=np.intp),
        )
    keys = packed.view(np.dtype((np.void, packed.shape[1]))).reshape(-1)
    _, first_index, inverse = np.unique(keys, return_index=True, return_inverse=True)
    return first_index, np.asarray(inverse).reshape(-1)
