"""Shared decoder interface and batched decoding with syndrome dedup.

All decoders in :mod:`repro.decoder` are pure functions of a single
syndrome row, so batches can be decoded once per *unique* syndrome and the
predictions scattered back to every duplicate shot.  In the low-``p``
regimes the paper's Monte-Carlo runs live in (Fig. 6(a)), the all-zero
syndrome alone covers the overwhelming majority of shots, so deduplication
turns an O(shots) decode loop into an O(unique) one.

:class:`BatchDecoder` hoists the previously-triplicated per-shot loops of
the MWPM, union-find, and sequential decoders into one place and routes
them through :func:`numpy.unique`.  Subclasses implement ``decode`` and
expose ``num_observables``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Decoder(Protocol):
    """Structural interface every registered decoder satisfies.

    A decoder maps one uint8 syndrome row over the circuit's detectors to a
    uint8 prediction row over its logical observables, and decodes batches
    of shots with :meth:`decode_batch`.
    """

    @property
    def num_observables(self) -> int: ...

    def decode(self, syndrome: np.ndarray) -> np.ndarray: ...

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray: ...


class BatchDecoder:
    """Base class providing ``decode_batch`` via syndrome deduplication.

    Subclasses implement :meth:`decode` (one shot) and expose
    ``num_observables`` (as an attribute or property); batching, dedup,
    and scatter-back live here.
    """

    num_observables: int

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def decode_batch(self, syndromes: np.ndarray, *, dedup: bool = True) -> np.ndarray:
        """Decode many shots; returns (shots, num_observables) flips.

        Args:
            syndromes: uint8 array of shape (shots, num_detectors).
            dedup: when True (default), decode each unique syndrome row
                once and scatter predictions back to duplicate shots.  The
                output is bit-identical either way; ``dedup=False`` is the
                per-shot baseline kept for benchmarking and verification.
        """
        syndromes = np.asarray(syndromes, dtype=np.uint8)
        num_obs = self.num_observables
        if syndromes.shape[0] == 0:
            return np.zeros((0, num_obs), dtype=np.uint8)
        if not dedup:
            out = np.zeros((syndromes.shape[0], num_obs), dtype=np.uint8)
            for i in range(syndromes.shape[0]):
                out[i] = self.decode(syndromes[i])
            return out
        first_index, inverse = _unique_rows(syndromes)
        unique_out = np.zeros((first_index.shape[0], num_obs), dtype=np.uint8)
        for i, row in enumerate(first_index):
            unique_out[i] = self.decode(syndromes[row])
        return unique_out[inverse]


def _unique_rows(rows: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """(first_index, inverse) of the unique rows of a uint8 bit matrix.

    Rows are bit-packed and compared as fixed-width byte strings, which is
    substantially faster than ``np.unique(..., axis=0)`` sorting full-width
    rows -- this sits on the Monte-Carlo hot path.
    """
    if rows.shape[1] == 0:
        # Zero-width rows (a circuit with no detectors) are all identical.
        return (
            np.zeros(1, dtype=np.intp),
            np.zeros(rows.shape[0], dtype=np.intp),
        )
    packed = np.ascontiguousarray(np.packbits(rows, axis=1))
    keys = packed.view(np.dtype((np.void, packed.shape[1]))).reshape(-1)
    _, first_index, inverse = np.unique(keys, return_index=True, return_inverse=True)
    return first_index, np.asarray(inverse).reshape(-1)
