"""Transversal H and S on the rotated surface code (paper Secs. II.4, IV.1).

H is permutation-transversal: physical H on every data qubit implements
logical H up to reflecting the patch across its main diagonal (X and Z
boundaries swap); the reflection is an atom-move permutation.  S is
fold-transversal: a layer of physical S/CZ along the fold followed by the
fold permutation.  The paper assumes both permutations take the same time
as a transversal entangling-gate step; this module constructs the actual
move sets, validates them against the AOD constraints (diagonal
reflections must be split into two rectified batches), and confirms the
timing assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.atoms.aod import BatchMove, Move
from repro.core.params import PhysicalParams

Site = Tuple[int, int]


@dataclass(frozen=True)
class FoldPermutation:
    """The diagonal reflection (r, c) -> (c, r) of a d x d patch."""

    code_distance: int

    def moves(self) -> List[Move]:
        """Moves for all off-diagonal atoms (diagonal atoms stay)."""
        d = self.code_distance
        out: List[Move] = []
        for r in range(d):
            for c in range(d):
                if r != c:
                    out.append(Move((r, c), (c, r)))
        return out

    def batches(self) -> List[BatchMove]:
        """AOD-executable decomposition of the reflection.

        A transposition swaps row/column orders, so one grab cannot do it;
        the standard trick stages the upper triangle through a parked copy
        of the patch: (1) translate the upper-triangle atoms one patch
        pitch sideways, (2) move them to their reflected rows (pure row
        move, order-preserving because row r -> row c with c > r mapping
        distinct rows to distinct rows monotonically per column group),
        done column-group by column-group; mirrored for the lower
        triangle.  We model it as one staging batch plus one return batch
        per triangle, each a rigid translation combined with a
        row-monotone shear, and validate each batch.
        """
        d = self.code_distance
        batches: List[BatchMove] = []
        # Stage both triangles out first (the returns land on each other's
        # vacated sites, so both must be clear before any return).
        upper = [(r, c) for r in range(d) for c in range(d) if c > r]
        batches.append(BatchMove([Move(s, (s[0], s[1] + d)) for s in upper]))
        lower = [(r, c) for r in range(d) for c in range(d) if c < r]
        batches.append(BatchMove([Move(s, (s[0] + d, s[1])) for s in lower]))
        # Bring each staged diagonal back to its transposed position.  Atoms
        # on source diagonal k = c - r land k rows down and k columns back;
        # grouping by k keeps every batch a rigid translation.
        for k in range(1, d):
            diagonal = [(r, r + k + d) for r in range(d - k)]
            batches.append(
                BatchMove([Move(s, (s[0] + k, s[1] - k - d)) for s in diagonal])
            )
        for k in range(1, d):
            diagonal = [(c + k + d, c) for c in range(d - k)]
            batches.append(
                BatchMove([Move(s, (s[0] - k - d, s[1] + k)) for s in diagonal])
            )
        return batches

    def validate(self) -> None:
        """Every batch must satisfy the AOD constraints."""
        for batch in self.batches():
            batch.validate()

    def duration(self, physical: PhysicalParams) -> float:
        """Serial duration of the staged reflection."""
        return sum(batch.duration(physical) for batch in self.batches())

    def max_move_sites(self) -> float:
        return max(
            (batch.max_length_sites for batch in self.batches()), default=0.0
        )


def transversal_h_time(code_distance: int, physical: PhysicalParams) -> float:
    """Physical-H layer plus the fold permutation."""
    fold = FoldPermutation(code_distance)
    return physical.gate_time + fold.duration(physical)


def transversal_s_time(code_distance: int, physical: PhysicalParams) -> float:
    """Fold-transversal S: S/CZ layer along the fold plus the permutation."""
    fold = FoldPermutation(code_distance)
    return 2 * physical.gate_time + fold.duration(physical)


def permutation_is_correct(code_distance: int) -> bool:
    """The staged batches compose to the transposition (r,c) -> (c,r)."""
    position = {
        (r, c): (r, c) for r in range(code_distance) for c in range(code_distance)
    }
    fold = FoldPermutation(code_distance)
    current = dict(position)
    for batch in fold.batches():
        sources = {m.source: m for m in batch.moves}
        updated = {}
        for origin, where in current.items():
            if where in sources:
                updated[origin] = sources[where].destination
            else:
                updated[origin] = where
        current = updated
    return all(current[(r, c)] == (c, r) for r, c in position)
