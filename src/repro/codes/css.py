"""CSS stabilizer codes specified by X/Z parity-check matrices.

A CSS code is given by binary matrices Hx (X-type stabilizers) and Hz
(Z-type stabilizers) with orthogonal row spaces: Hx @ Hz.T = 0 (mod 2).
The class validates the structure, computes k = n - rank(Hx) - rank(Hz),
and finds logical operator representatives by linear algebra over GF(2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.codes.pauli import Pauli, pauli


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a binary matrix over GF(2)."""
    m = (np.asarray(matrix, dtype=np.uint8) % 2).copy()
    rows, cols = m.shape if m.ndim == 2 else (0, 0)
    rank = 0
    for col in range(cols):
        pivot = None
        for row in range(rank, rows):
            if m[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        for row in range(rows):
            if row != rank and m[row, col]:
                m[row] ^= m[rank]
        rank += 1
        if rank == rows:
            break
    return rank


def gf2_rowspace_contains(matrix: np.ndarray, vector: np.ndarray) -> bool:
    """True if ``vector`` lies in the GF(2) row space of ``matrix``."""
    m = np.asarray(matrix, dtype=np.uint8) % 2
    if m.size == 0:
        return not np.any(np.asarray(vector, dtype=np.uint8) % 2)
    stacked = np.vstack([m, np.asarray(vector, dtype=np.uint8) % 2])
    return gf2_rank(stacked) == gf2_rank(m)


def gf2_nullspace(matrix: np.ndarray) -> np.ndarray:
    """Basis (rows) of the GF(2) null space {v : M v = 0}."""
    m = (np.asarray(matrix, dtype=np.uint8) % 2).copy()
    rows, cols = m.shape
    pivots: List[int] = []
    rank = 0
    for col in range(cols):
        pivot = None
        for row in range(rank, rows):
            if m[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        for row in range(rows):
            if row != rank and m[row, col]:
                m[row] ^= m[rank]
        pivots.append(col)
        rank += 1
        if rank == rows:
            break
    free_cols = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_cols), cols), dtype=np.uint8)
    for i, free in enumerate(free_cols):
        basis[i, free] = 1
        for row, piv in enumerate(pivots):
            if m[row, free]:
                basis[i, piv] = 1
    return basis


@dataclass
class CSSCode:
    """A CSS code with explicit check matrices and derived logicals.

    Attributes:
        hx: X-stabilizer check matrix (rows = stabilizers).
        hz: Z-stabilizer check matrix.
        name: human-readable label.
    """

    hx: np.ndarray
    hz: np.ndarray
    name: str = "css"
    _logical_xs: List[np.ndarray] = field(default_factory=list, repr=False)
    _logical_zs: List[np.ndarray] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.hx = np.asarray(self.hx, dtype=np.uint8) % 2
        self.hz = np.asarray(self.hz, dtype=np.uint8) % 2
        if self.hx.ndim != 2 or self.hz.ndim != 2:
            raise ValueError("check matrices must be 2-D")
        if self.hx.shape[1] != self.hz.shape[1]:
            raise ValueError("Hx and Hz must act on the same number of qubits")
        if np.any((self.hx @ self.hz.T) % 2):
            raise ValueError("CSS condition violated: Hx @ Hz.T != 0 (mod 2)")
        self._compute_logicals()

    # -- parameters ------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return int(self.hx.shape[1])

    @property
    def num_logical(self) -> int:
        return self.num_qubits - gf2_rank(self.hx) - gf2_rank(self.hz)

    @property
    def distance_upper_bound(self) -> int:
        """Minimum weight over the stored logical representatives."""
        weights = [int(v.sum()) for v in self._logical_xs + self._logical_zs]
        return min(weights) if weights else 0

    # -- stabilizers and logicals ----------------------------------------

    def x_stabilizers(self) -> List[Pauli]:
        """X-type stabilizer generators as Pauli objects."""
        return [
            pauli(self.num_qubits, xs=np.flatnonzero(row)) for row in self.hx
        ]

    def z_stabilizers(self) -> List[Pauli]:
        """Z-type stabilizer generators as Pauli objects."""
        return [
            pauli(self.num_qubits, zs=np.flatnonzero(row)) for row in self.hz
        ]

    def logical_x(self, index: int) -> Pauli:
        """Representative of the index-th logical X operator."""
        return pauli(self.num_qubits, xs=np.flatnonzero(self._logical_xs[index]))

    def logical_z(self, index: int) -> Pauli:
        """Representative of the index-th logical Z operator."""
        return pauli(self.num_qubits, zs=np.flatnonzero(self._logical_zs[index]))

    def is_x_logical(self, support: np.ndarray) -> bool:
        """True if an X operator on ``support`` commutes with all Z checks
        but is not a product of X stabilizers (i.e. acts non-trivially)."""
        v = np.asarray(support, dtype=np.uint8) % 2
        if np.any((self.hz @ v) % 2):
            return False
        return not gf2_rowspace_contains(self.hx, v)

    def is_z_logical(self, support: np.ndarray) -> bool:
        """Mirror of :meth:`is_x_logical` for Z operators."""
        v = np.asarray(support, dtype=np.uint8) % 2
        if np.any((self.hx @ v) % 2):
            return False
        return not gf2_rowspace_contains(self.hz, v)

    def _compute_logicals(self) -> None:
        """Pick pairwise-anticommuting logical X/Z representative pairs."""
        k = self.num_logical
        self._logical_xs = []
        self._logical_zs = []
        if k == 0:
            return
        x_candidates = [
            v for v in gf2_nullspace(self.hz) if not gf2_rowspace_contains(self.hx, v)
        ]
        z_candidates = [
            v for v in gf2_nullspace(self.hx) if not gf2_rowspace_contains(self.hz, v)
        ]
        used_z: List[int] = []
        for xv in x_candidates:
            if len(self._logical_xs) == k:
                break
            # Skip if dependent on stabilizers + already chosen logicals.
            span = np.vstack([self.hx] + self._logical_xs) if self._logical_xs else self.hx
            if gf2_rowspace_contains(span, xv):
                continue
            partner = None
            for j, zv in enumerate(z_candidates):
                if j in used_z:
                    continue
                if int(np.dot(xv, zv)) % 2 == 1:
                    partner = j
                    break
            if partner is None:
                continue
            zv = z_candidates[partner].copy()
            # Symplectically clean previous pairs so the basis is canonical:
            # each new pair must commute with all earlier pairs.
            for i in range(len(self._logical_xs)):
                if int(np.dot(zv, self._logical_xs[i])) % 2:
                    zv ^= self._logical_zs[i]
                if int(np.dot(xv, self._logical_zs[i])) % 2:
                    xv = xv ^ self._logical_xs[i]
            used_z.append(partner)
            self._logical_xs.append(xv % 2)
            self._logical_zs.append(zv % 2)
        if len(self._logical_xs) != k:
            raise ValueError(
                f"failed to construct {k} logical pairs for code {self.name}"
            )

    def validate(self) -> None:
        """Re-check all structural invariants; raises on violation."""
        if np.any((self.hx @ self.hz.T) % 2):
            raise AssertionError("stabilizers do not commute")
        for i, xv in enumerate(self._logical_xs):
            if np.any((self.hz @ xv) % 2):
                raise AssertionError(f"logical X{i} anticommutes with a Z check")
            for j, zv in enumerate(self._logical_zs):
                expected = 1 if i == j else 0
                if int(np.dot(xv, zv)) % 2 != expected:
                    raise AssertionError(f"bad symplectic pairing X{i}, Z{j}")
        for i, zv in enumerate(self._logical_zs):
            if np.any((self.hx @ zv) % 2):
                raise AssertionError(f"logical Z{i} anticommutes with an X check")
