"""QEC codes: Pauli algebra, CSS codes, surface code, [[8,3,2]] colour code."""

from repro.codes.color_832 import Color832Code
from repro.codes.css import CSSCode, gf2_nullspace, gf2_rank, gf2_rowspace_contains
from repro.codes.pauli import Pauli, commutation_matrix, mutually_commuting, pauli
from repro.codes.surface_code import Plaquette, RotatedSurfaceCode
from repro.codes.transversal_clifford import (
    FoldPermutation,
    permutation_is_correct,
    transversal_h_time,
    transversal_s_time,
)

__all__ = [
    "CSSCode",
    "FoldPermutation",
    "Color832Code",
    "Pauli",
    "Plaquette",
    "RotatedSurfaceCode",
    "commutation_matrix",
    "gf2_nullspace",
    "gf2_rank",
    "gf2_rowspace_contains",
    "mutually_commuting",
    "pauli",
    "permutation_is_correct",
    "transversal_h_time",
    "transversal_s_time",
]
