"""Pauli-string algebra over n qubits.

A Pauli string is represented in the symplectic convention: boolean vectors
``x`` and ``z`` of length n, where qubit q carries X if ``x[q]`` only,
Z if ``z[q]`` only, Y if both.  Global phase is tracked modulo 4 (powers of
i) so products compose exactly; most QEC uses only the +/-1 sector.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

_CHAR_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_XZ_TO_CHAR = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}


class Pauli:
    """An n-qubit Pauli operator with phase i^phase_power.

    Construction from a string ("XIZZY"), from x/z bit vectors, or via the
    :func:`pauli` helper with sparse supports.
    """

    __slots__ = ("x", "z", "phase_power")

    def __init__(
        self,
        x: Sequence[int] | np.ndarray,
        z: Sequence[int] | np.ndarray,
        phase_power: int = 0,
    ) -> None:
        self.x = np.asarray(x, dtype=np.uint8) % 2
        self.z = np.asarray(z, dtype=np.uint8) % 2
        if self.x.shape != self.z.shape or self.x.ndim != 1:
            raise ValueError("x and z must be equal-length 1-D vectors")
        self.phase_power = phase_power % 4

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_string(cls, label: str) -> "Pauli":
        """Parse e.g. "XIZY" (optionally prefixed by '+', '-', 'i', '-i')."""
        phase = 0
        body = label
        if body.startswith("-i"):
            phase, body = 3, body[2:]
        elif body.startswith("i"):
            phase, body = 1, body[1:]
        elif body.startswith("-"):
            phase, body = 2, body[1:]
        elif body.startswith("+"):
            body = body[1:]
        try:
            bits = [_CHAR_TO_XZ[c] for c in body]
        except KeyError as exc:
            raise ValueError(f"invalid Pauli character in {label!r}") from exc
        xs = [b[0] for b in bits]
        zs = [b[1] for b in bits]
        return cls(xs, zs, phase)

    @classmethod
    def identity(cls, num_qubits: int) -> "Pauli":
        """The identity operator on ``num_qubits`` qubits."""
        return cls(np.zeros(num_qubits), np.zeros(num_qubits))

    # -- properties ------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return int(self.x.shape[0])

    @property
    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return int(np.count_nonzero(self.x | self.z))

    @property
    def support(self) -> tuple[int, ...]:
        """Indices of non-identity tensor factors."""
        return tuple(int(q) for q in np.flatnonzero(self.x | self.z))

    def is_identity(self) -> bool:
        return self.weight == 0 and self.phase_power == 0

    # -- algebra ---------------------------------------------------------

    def commutes_with(self, other: "Pauli") -> bool:
        """True if the two operators commute (symplectic inner product 0)."""
        self._check_compatible(other)
        inner = int(np.dot(self.x, other.z) + np.dot(self.z, other.x)) % 2
        return inner == 0

    def __mul__(self, other: "Pauli") -> "Pauli":
        """Operator product self * other with exact phase tracking."""
        self._check_compatible(other)
        # i^delta from reordering: each site contributes via the symplectic
        # convention P = i^(x.z) X^x Z^z.
        phase = self.phase_power + other.phase_power
        phase += 2 * int(np.dot(self.z, other.x))  # Z past X picks up (-1)
        # Normalization of Y factors: count created/destroyed XZ overlaps.
        phase += _y_normalization(self, other)
        return Pauli(self.x ^ other.x, self.z ^ other.z, phase)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pauli):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and bool(np.all(self.x == other.x))
            and bool(np.all(self.z == other.z))
            and self.phase_power == other.phase_power
        )

    def __hash__(self) -> int:
        return hash((self.x.tobytes(), self.z.tobytes(), self.phase_power))

    def equal_up_to_phase(self, other: "Pauli") -> bool:
        """True if the unsigned Pauli parts coincide."""
        return bool(np.all(self.x == other.x) and np.all(self.z == other.z))

    def __repr__(self) -> str:
        prefix = {0: "+", 1: "i", 2: "-", 3: "-i"}[self.phase_power]
        body = "".join(
            _XZ_TO_CHAR[(int(a), int(b))] for a, b in zip(self.x, self.z)
        )
        return f"{prefix}{body}"

    def _check_compatible(self, other: "Pauli") -> None:
        if self.num_qubits != other.num_qubits:
            raise ValueError(
                f"qubit-count mismatch: {self.num_qubits} vs {other.num_qubits}"
            )


def _y_normalization(a: Pauli, b: Pauli) -> int:
    """Phase correction (power of i) from combining X/Z into Y factors.

    Using the convention P = i^(x.z) X^x Z^z per qubit, the product picks up
    i^(a.x*a.z + b.x*b.z - c.x*c.z) with c = a XOR b, evaluated per site.
    """
    cx = a.x ^ b.x
    cz = a.z ^ b.z
    before = int(np.dot(a.x, a.z)) + int(np.dot(b.x, b.z))
    after = int(np.dot(cx, cz))
    return (before - after) % 4


def pauli(num_qubits: int, xs: Iterable[int] = (), zs: Iterable[int] = ()) -> Pauli:
    """Sparse constructor: X on ``xs``, Z on ``zs`` (Y where both)."""
    x = np.zeros(num_qubits, dtype=np.uint8)
    z = np.zeros(num_qubits, dtype=np.uint8)
    for q in xs:
        _check_index(q, num_qubits)
        x[q] ^= 1
    for q in zs:
        _check_index(q, num_qubits)
        z[q] ^= 1
    return Pauli(x, z)


def _check_index(q: int, n: int) -> None:
    if not 0 <= q < n:
        raise ValueError(f"qubit index {q} out of range for {n} qubits")


def commutation_matrix(group: Sequence[Pauli]) -> np.ndarray:
    """Pairwise symplectic inner products (0 = commute, 1 = anticommute)."""
    size = len(group)
    out = np.zeros((size, size), dtype=np.uint8)
    for i in range(size):
        for j in range(size):
            out[i, j] = 0 if group[i].commutes_with(group[j]) else 1
    return out


def mutually_commuting(group: Sequence[Pauli]) -> bool:
    """True if every pair in ``group`` commutes."""
    return not commutation_matrix(group).any()
