"""Rotated surface code [[d^2, 1, d]] (paper Sec. II.3, Fig. 4).

Data qubits live on a d x d grid at integer coordinates (row, col).
Stabilizer plaquettes live on the (d+1) x (d+1) corner grid; a corner (r, c)
touches the data qubits {(r-1, c-1), (r-1, c), (r, c-1), (r, c)} that exist.
Interior corners host weight-4 checks, alternating X/Z on a checkerboard
(X where r + c is even).  Weight-2 X checks close the top/bottom boundaries
and weight-2 Z checks close the left/right boundaries; corner plaquettes are
dropped.  Logical X is a vertical column of X, logical Z a horizontal row of
Z, intersecting in one qubit.

The class also exposes the matching-graph geometry used by the decoders: for
each data qubit, the (<= 2) X checks and (<= 2) Z checks containing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.codes.css import CSSCode

Coord = Tuple[int, int]


@dataclass(frozen=True)
class Plaquette:
    """One stabilizer: corner position, basis ('X' or 'Z'), data support."""

    position: Coord
    basis: str
    data: Tuple[int, ...]

    @property
    def weight(self) -> int:
        return len(self.data)


class RotatedSurfaceCode:
    """Rotated surface code of odd distance d."""

    def __init__(self, distance: int) -> None:
        if distance < 2:
            raise ValueError(f"distance must be >= 2, got {distance}")
        if distance % 2 == 0:
            raise ValueError(f"rotated code needs odd distance, got {distance}")
        self.distance = distance
        self._data_index: Dict[Coord, int] = {}
        for row in range(distance):
            for col in range(distance):
                self._data_index[(row, col)] = row * distance + col
        self.x_plaquettes: List[Plaquette] = []
        self.z_plaquettes: List[Plaquette] = []
        self._build_plaquettes()
        self._css = self._build_css()

    # -- construction ----------------------------------------------------

    def _corner_support(self, r: int, c: int) -> Tuple[int, ...]:
        touched = []
        for dr, dc in ((-1, -1), (-1, 0), (0, -1), (0, 0)):
            coord = (r + dr, c + dc)
            if coord in self._data_index:
                touched.append(self._data_index[coord])
        return tuple(sorted(touched))

    def _build_plaquettes(self) -> None:
        d = self.distance
        for r in range(d + 1):
            for c in range(d + 1):
                support = self._corner_support(r, c)
                basis = "X" if (r + c) % 2 == 0 else "Z"
                if len(support) == 4:
                    self._add(Plaquette((r, c), basis, support))
                elif len(support) == 2:
                    on_top_bottom = r in (0, d)
                    on_left_right = c in (0, d)
                    if on_top_bottom and not on_left_right and basis == "X":
                        self._add(Plaquette((r, c), basis, support))
                    if on_left_right and not on_top_bottom and basis == "Z":
                        self._add(Plaquette((r, c), basis, support))

    def _add(self, plaq: Plaquette) -> None:
        if plaq.basis == "X":
            self.x_plaquettes.append(plaq)
        else:
            self.z_plaquettes.append(plaq)

    def _build_css(self) -> CSSCode:
        n = self.num_data
        hx = np.zeros((len(self.x_plaquettes), n), dtype=np.uint8)
        hz = np.zeros((len(self.z_plaquettes), n), dtype=np.uint8)
        for i, plaq in enumerate(self.x_plaquettes):
            hx[i, list(plaq.data)] = 1
        for i, plaq in enumerate(self.z_plaquettes):
            hz[i, list(plaq.data)] = 1
        return CSSCode(hx, hz, name=f"rotated_surface_d{self.distance}")

    # -- parameters --------------------------------------------------------

    @property
    def num_data(self) -> int:
        """d^2 data qubits."""
        return self.distance**2

    @property
    def num_ancilla(self) -> int:
        """d^2 - 1 measure qubits, one per stabilizer (Sec. II.3)."""
        return len(self.x_plaquettes) + len(self.z_plaquettes)

    @property
    def num_physical(self) -> int:
        """Data plus ancilla qubits for an active patch: 2 d^2 - 1."""
        return self.num_data + self.num_ancilla

    @property
    def css(self) -> CSSCode:
        """The underlying CSS code (checks + logicals)."""
        return self._css

    def data_index(self, row: int, col: int) -> int:
        """Linear index of the data qubit at (row, col)."""
        return self._data_index[(row, col)]

    # -- logical operators -------------------------------------------------

    def logical_x_support(self, col: int = 0) -> Tuple[int, ...]:
        """Vertical column of X operators (weight d)."""
        return tuple(self.data_index(r, col) for r in range(self.distance))

    def logical_z_support(self, row: int = 0) -> Tuple[int, ...]:
        """Horizontal row of Z operators (weight d)."""
        return tuple(self.data_index(row, c) for c in range(self.distance))

    # -- matching-graph geometry -------------------------------------------

    def checks_on_data(self, basis: str) -> List[Tuple[int, ...]]:
        """For each data qubit, indices of ``basis`` checks containing it.

        Entries have length 2 in the bulk and length 1 on the boundary the
        complementary error can terminate on; they form the edges of the
        matching graph (length-1 entries are boundary edges).
        """
        plaqs = self.x_plaquettes if basis == "X" else self.z_plaquettes
        incidence: List[List[int]] = [[] for _ in range(self.num_data)]
        for check_idx, plaq in enumerate(plaqs):
            for q in plaq.data:
                incidence[q].append(check_idx)
        return [tuple(lst) for lst in incidence]

    def validate(self) -> None:
        """Structural invariants: counts, commutation, logical weights."""
        d = self.distance
        if len(self.x_plaquettes) + len(self.z_plaquettes) != d * d - 1:
            raise AssertionError("wrong stabilizer count")
        if self._css.num_logical != 1:
            raise AssertionError("rotated surface code must encode 1 qubit")
        self._css.validate()
        for support in self.checks_on_data("X") + self.checks_on_data("Z"):
            if not 1 <= len(support) <= 2:
                raise AssertionError("each data qubit must touch 1 or 2 checks per basis")
