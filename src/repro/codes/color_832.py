"""The [[8,3,2]] colour code (paper Sec. III.6, Fig. 8).

Qubits sit on the 8 vertices of a cube, indexed by 3-bit strings
v = (b2 b1 b0).  Stabilizers: the global X^(x8) and Z on four independent
faces.  Logical X_i is X on the face {v : bit_i(v) = 1}; logical Z_i is Z on
the edge where the other two bits are 1.  The code has distance 2: it
*detects* any single error, which is exactly what the 8T-to-CCZ factory
post-selects on.

The magic of this code is its transversal non-Clifford gate: applying
T on even-parity vertices and T^dagger on odd-parity vertices implements a
logical CCZ on the three encoded qubits.  ``ccz_phase_check`` verifies this
exactly on all 8 logical basis states.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.codes.css import CSSCode


def _bit(v: int, i: int) -> int:
    return (v >> i) & 1


def _parity(v: int) -> int:
    return _bit(v, 0) ^ _bit(v, 1) ^ _bit(v, 2)


class Color832Code:
    """The [[8,3,2]] 'smallest interesting colour code'."""

    num_qubits = 8
    num_logical = 3
    distance = 2

    def __init__(self) -> None:
        hx = np.ones((1, 8), dtype=np.uint8)  # X^{x8}
        hz = np.zeros((4, 8), dtype=np.uint8)
        # Four independent faces: bit_i = 0 for i in {0,1,2}, plus bit_0 = 1.
        for row, (bit, value) in enumerate(((0, 0), (1, 0), (2, 0), (0, 1))):
            for v in range(8):
                if _bit(v, bit) == value:
                    hz[row, v] = 1
        self._css = CSSCode(hx, hz, name="color_832")

    @property
    def css(self) -> CSSCode:
        return self._css

    # -- logical operators -------------------------------------------------

    def logical_x_support(self, i: int) -> Tuple[int, ...]:
        """Face {v : bit_i = 1}, weight 4."""
        self._check_logical_index(i)
        return tuple(v for v in range(8) if _bit(v, i) == 1)

    def logical_z_support(self, i: int) -> Tuple[int, ...]:
        """Edge {v : bit_j = bit_k = 1 for j, k != i}, weight 2."""
        self._check_logical_index(i)
        others = [j for j in range(3) if j != i]
        return tuple(
            v for v in range(8) if all(_bit(v, j) == 1 for j in others)
        )

    # -- transversal T pattern ----------------------------------------------

    def t_pattern(self) -> Tuple[int, ...]:
        """Sign pattern of the transversal gate: +1 -> T, -1 -> T^dagger.

        Even-parity vertices get T, odd-parity get T^dagger (matching the
        2 T / 4 T-dagger / 2 T input pattern of the factory circuit in the
        paper's Fig. 8(a) up to vertex labelling).
        """
        return tuple(1 if _parity(v) == 0 else -1 for v in range(8))

    def codeword_support(self, logical_bits: Tuple[int, int, int]) -> List[int]:
        """Computational-basis strings of the logical codeword |b2 b1 b0>_L.

        Codewords are (|r> + X^{x8}|r>)/sqrt(2) with r the XOR of logical-X
        face masks for the set bits.  Returns the two 8-bit strings.
        """
        r = 0
        for i, bit in enumerate(reversed(logical_bits)):  # bits ordered (b2,b1,b0)
            if bit:
                for v in self.logical_x_support(i):
                    r ^= 1 << v
        return [r, r ^ 0xFF]

    def ccz_phase_check(self) -> bool:
        """Exact check that the T pattern implements logical CCZ.

        For each logical basis state |abc>_L, the transversal pattern applies
        a phase exp(i pi/4 * sum_v s_v * bit_v) to each branch of the
        codeword superposition.  The gate is logical CCZ iff both branches
        acquire the same phase and that phase equals (-1)^(a b c).
        """
        pattern = self.t_pattern()
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    expected = -1.0 if (a and b and c) else 1.0
                    branch_phases = []
                    for string in self.codeword_support((a, b, c)):
                        eighth_turns = sum(
                            pattern[v] for v in range(8) if (string >> v) & 1
                        )
                        branch_phases.append(
                            complex(np.exp(1j * np.pi / 4 * eighth_turns))
                        )
                    if not np.allclose(branch_phases[0], branch_phases[1]):
                        return False
                    if not np.allclose(branch_phases[0], expected):
                        return False
        return True

    # -- error detection for the factory model ------------------------------

    def z_error_detected(self, error_mask: int) -> bool:
        """Whether a Z-error pattern (bit mask) flips the X^{x8} stabilizer.

        Z errors anticommute with X^{x8} iff the pattern has odd weight, so
        every single faulty T gate is caught by the factory's post-selection.
        """
        return bin(error_mask & 0xFF).count("1") % 2 == 1

    def z_error_is_logical(self, error_mask: int) -> bool:
        """Whether an undetected Z-error pattern corrupts the logical state.

        The pattern is harmless iff it is a product of Z stabilizers
        (membership in the row space of Hz).
        """
        vec = np.array([(error_mask >> v) & 1 for v in range(8)], dtype=np.uint8)
        from repro.codes.css import gf2_rowspace_contains

        return not gf2_rowspace_contains(self._css.hz, vec)

    def _check_logical_index(self, i: int) -> None:
        if not 0 <= i < 3:
            raise ValueError(f"logical index must be 0..2, got {i}")
