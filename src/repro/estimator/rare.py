"""Rare-event Monte Carlo: importance-sampled DEM shots.

At the logical error rates the paper's larger code distances reach, brute
force is hopeless: a point at ``p_L ~ 1e-9`` needs ``~1e11`` shots for a
10% relative error.  This module samples shots *directly from the
detector error model* under a reweighted proposal so that failures are
common, then corrects each shot with a likelihood ratio so the estimate
is still taken under the original model.

**Estimator.**  The DEM is a product of independent Bernoulli mechanisms
``k`` with probabilities ``p_k``; a shot is a firing subset ``F``, its
detector/observable symptoms the XOR of the fired mechanisms' symptoms.
Sampling firings from a proposal ``q_k`` instead and weighting each shot
by the likelihood ratio

    w(F) = prod_{k in F} (p_k / q_k) * prod_{k not in F} ((1-p_k)/(1-q_k))

makes ``E_q[w * fail]  =  E_p[fail]  =  p_L`` exactly: the weighted
failure mean is an unbiased estimate of the failure probability under the
original model, for *any* proposal with ``q_k > 0`` wherever ``p_k > 0``.
The sampler accumulates ``log w`` as a per-shot sum (one base constant
plus a ``delta_k`` per fired mechanism) for numerical stability.

**Proposal.**  :meth:`repro.noise.dem.DetectorErrorModel.reweighted`
inflates every ``p_k`` uniformly, capped at 0.5.  Uniform inflation ``s``
tilts the firing-count distribution upward: a failure needs roughly
``k_min ~ ceil(d/2)`` specific mechanisms to fire, so its probability
under the proposal grows like ``s**k_min`` while the weight spread only
costs ``exp(T (s-1)^2 / s)`` with ``T = sum_k p_k``, giving a variance
gain of order ``s**k_min * exp(-T (s-1)^2 / s)``.
:func:`suggested_inflation` maximizes that expression.

**Diagnostics.**  A bad proposal does not crash -- it silently biases or
destabilizes the estimate -- so construction is gated: the proposal runs
through :func:`repro.analysis.verify_dem` (probabilities in range, no
mechanism above 0.5) and the (original, proposal) pair through
:func:`repro.analysis.check_reweight` (topology preserved, support
preserved).  At run time, watch ``EngineResult.ess``: a Kish effective
sample size well below ``0.1 * shots`` means a few heavy weights dominate
and the inflation should come down.

The sampler plugs into :class:`repro.decoder.engine.DecodingEngine` as
its ``sampler`` argument (see :func:`rare_engine`): shards draw symptoms
in the packed dedup-key layout, the decoder decodes them against the
*original* DEM, and the per-shot weights ride home with each shard's
sufficient statistics, preserving worker-count invariance.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Tuple, Union

import numpy as np

from repro.analysis.diagnostics import DiagnosticReport, VerificationError
from repro.analysis.passes import verify_dem
from repro.analysis.reweight_passes import check_reweight
from repro.noise.dem import DetectorErrorModel
from repro.obs import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.decoder.base import Decoder
    from repro.decoder.engine import DecodingEngine
    from repro.sim.circuit import Circuit

_RARE_SHOTS = _metrics.counter(
    "repro_rare_shots_total",
    "Shots drawn from a reweighted DEM proposal by ImportanceSampler.",
)
_RARE_FIRINGS = _metrics.counter(
    "repro_rare_firings_total",
    "Mechanism firings sampled by ImportanceSampler.",
)

# Mechanisms are processed in chunks of this many rows per uniform draw:
# bounds the (chunk, shots) scratch block while consuming the rng stream
# in the same C order as one (num_mechanisms, shots) draw would, so the
# chunk size never changes the sampled shots.
_CHUNK_MECHS = 256


class ImportanceSampler:
    """Draws weighted DEM shots in the engine's packed dedup-key layout.

    Args:
        original: the circuit's DEM; weights (and the decoder) refer to
            this model.
        proposal: the reweighted DEM to *sample* from, typically
            ``original.reweighted(inflation)``.
        verify: gate construction through :func:`verify_dem` on the
            proposal plus :func:`check_reweight` on the pair, raising
            :class:`~repro.analysis.diagnostics.VerificationError` on any
            error-severity finding.  Disable only in tests that build
            deliberately-broken pairs.

    Instances hold plain numpy arrays (packed symptom rows, per-mechanism
    log-likelihood deltas), so they pickle cheaply into worker pools.
    """

    def __init__(
        self,
        original: DetectorErrorModel,
        proposal: Optional[DetectorErrorModel] = None,
        *,
        inflation: Optional[float] = None,
        verify: bool = True,
    ) -> None:
        if proposal is None:
            if inflation is None:
                raise ValueError("provide either a proposal DEM or an inflation")
            proposal = original.reweighted(inflation)
        elif inflation is not None:
            raise ValueError("provide a proposal DEM or an inflation, not both")
        if verify:
            verify_dem(proposal)
            report = DiagnosticReport(
                tuple(check_reweight(original, proposal))
            )
            if not report.ok("error"):
                raise VerificationError(report, "error")
        self.original = original
        self.proposal = proposal
        # The uniform inflation this sampler was built from; None when an
        # arbitrary proposal DEM was handed over instead.
        self.inflation = inflation
        self.num_detectors = original.num_detectors
        self.num_observables = original.num_observables
        self._det_width = (self.num_detectors + 7) // 8
        self._obs_width = (self.num_observables + 7) // 8

        p = np.array(
            [m.probability for m in original.mechanisms], dtype=np.float64
        )
        q = np.array(
            [m.probability for m in proposal.mechanisms], dtype=np.float64
        )
        self._q = q
        # log w(F) = base + sum_{k in F} delta_k:
        #   base    = sum_k log((1-p_k)/(1-q_k))        (nothing fires)
        #   delta_k = log(p_k/q_k) - log((1-p_k)/(1-q_k))  (k fires)
        # Mechanisms with q_k = 0 never fire (p_k = 0 too, or verification
        # rejected the pair), so their delta is irrelevant; keep it 0.
        not_term = np.log1p(-p) - np.log1p(-q)
        self._base_llr = float(not_term.sum())
        with np.errstate(divide="ignore", invalid="ignore"):
            fire_term = np.log(p) - np.log(q)
        delta = np.where(q > 0, fire_term - not_term, 0.0)
        self._delta_llr = np.nan_to_num(delta, nan=0.0, neginf=-np.inf)

        # One bit-packed symptom row per mechanism (np.packbits big bit
        # order -- the decode_packed key layout); a shot's symptoms are
        # the XOR of its fired mechanisms' rows.
        det_bits = np.zeros(
            (len(p), self.num_detectors), dtype=np.uint8
        )
        obs_bits = np.zeros(
            (len(p), self.num_observables), dtype=np.uint8
        )
        for k, mech in enumerate(original.mechanisms):
            for d in mech.detectors:
                det_bits[k, d] = 1
            for o in mech.observables:
                obs_bits[k, o] = 1
        self._det_rows = np.packbits(det_bits, axis=1).reshape(
            len(p), self._det_width
        )
        self._obs_rows = np.packbits(obs_bits, axis=1).reshape(
            len(p), self._obs_width
        )

    def sample_weighted(
        self, shots: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``shots`` weighted shots from the proposal model.

        Returns:
            (det_keys, obs_keys, log_weights): bit-packed detector and
            observable key arrays of shapes ``(shots, ceil(nd/8))`` /
            ``(shots, ceil(no/8))`` plus the per-shot log likelihood
            ratio under the original model.  The draw consumes the rng
            stream as one ``(num_mechanisms, shots)`` uniform block, so
            a shard's shots depend only on its seed.
        """
        det = np.zeros((shots, self._det_width), dtype=np.uint8)
        obs = np.zeros((shots, self._obs_width), dtype=np.uint8)
        llr = np.full(shots, self._base_llr, dtype=np.float64)
        total_firings = 0
        q = self._q
        for start in range(0, len(q), _CHUNK_MECHS):
            stop = min(start + _CHUNK_MECHS, len(q))
            fired = rng.random((stop - start, shots)) < q[start:stop, None]
            mech_idx, shot_idx = np.nonzero(fired)
            if not mech_idx.size:
                continue
            total_firings += mech_idx.size
            mech_idx = mech_idx + start
            np.bitwise_xor.at(det, shot_idx, self._det_rows[mech_idx])
            if self._obs_width:
                np.bitwise_xor.at(obs, shot_idx, self._obs_rows[mech_idx])
            llr += np.bincount(
                shot_idx, weights=self._delta_llr[mech_idx], minlength=shots
            )
        if _metrics.enabled():
            _RARE_SHOTS.inc(shots)
            _RARE_FIRINGS.inc(total_firings)
        return det, obs, llr


def suggested_inflation(
    dem: DetectorErrorModel, min_failure_weight: int
) -> float:
    """Inflation factor maximizing the estimated variance gain.

    With total mechanism mass ``T = sum_k p_k`` and a minimum failure
    weight ``k`` (mechanism firings needed for a logical failure, roughly
    ``ceil(d/2)`` for a distance-``d`` memory), uniform inflation ``s``
    improves the failure-estimate variance by about
    ``s**k * exp(-T (s-1)^2 / s)``; the maximizer solves
    ``k = T (s - 1/s)``, i.e. ``s = (k + sqrt(k^2 + 4 T^2)) / (2 T)``.
    Clamped to at least 1 (never *deflate*).  The cap at 0.5 in
    :meth:`~repro.noise.dem.DetectorErrorModel.reweighted` still applies
    on top, so a large suggestion is safe.
    """
    if min_failure_weight < 1:
        raise ValueError("min_failure_weight must be >= 1")
    total = sum(m.probability for m in dem.mechanisms)
    if total <= 0:
        return 1.0
    k = float(min_failure_weight)
    s = (k + math.sqrt(k * k + 4.0 * total * total)) / (2.0 * total)
    return max(s, 1.0)


def rare_engine(
    circuit: "Circuit",
    decoder: Union[str, "Decoder"] = "mwpm",
    *,
    inflation: float = 0.0,
    min_failure_weight: Optional[int] = None,
    observable: Optional[int] = 0,
    shard_shots: int = 1024,
    workers: int = 1,
    verify: bool = True,
) -> "DecodingEngine":
    """Build an importance-sampled :class:`DecodingEngine` for a circuit.

    Extracts the circuit's DEM once, builds the decoder against the
    *original* model, and wires an :class:`ImportanceSampler` over the
    reweighted proposal into the engine.  ``engine.run(...)`` /
    ``run_until_rel_error(...)`` then return weighted
    :class:`~repro.decoder.engine.EngineResult`\\ s whose
    ``weighted_rate`` estimates the logical failure probability under the
    original model.

    Args:
        circuit: the noisy circuit (its DEM is the sampled model; the
            circuit itself is never simulated).
        decoder: registry name or built decoder instance.
        inflation: uniform proposal inflation; ``0`` (default) picks
            :func:`suggested_inflation` from the DEM and
            ``min_failure_weight``.
        min_failure_weight: minimum mechanism firings for a logical
            failure, used by the default inflation; defaults to
            ``max(ceil(sqrt(num_detectors) / 2), 2)`` -- a deliberately
            conservative floor when the caller does not know the code
            distance.
        observable / shard_shots / workers: as for
            :class:`~repro.decoder.engine.DecodingEngine`.
        verify: gate the (original, proposal) pair through the
            ``dem_reweight`` checks (see :class:`ImportanceSampler`).
    """
    from repro.decoder.engine import DecodingEngine, make_decoder
    from repro.noise.dem import extract_dem

    dem = extract_dem(circuit)
    if inflation == 0.0:
        if min_failure_weight is None:
            min_failure_weight = max(
                int(math.ceil(math.sqrt(max(circuit.num_detectors, 1)) / 2.0)),
                2,
            )
        inflation = suggested_inflation(dem, min_failure_weight)
    sampler = ImportanceSampler(dem, inflation=inflation, verify=verify)
    if isinstance(decoder, str):
        decoder = make_decoder(decoder, dem)
    return DecodingEngine(
        circuit,
        decoder,
        observable=observable,
        shard_shots=shard_shots,
        workers=workers,
        sampler=sampler,
    )
