"""Declarative grid-sweep engine for the estimation pipeline.

Every analytic figure/table of the paper is a sweep of a pure point
function over a small named grid.  Instead of each driver hand-rolling a
serial loop, this module provides:

* **Named axes** -- :func:`grid` takes ``axis=values`` keywords and builds
  the cartesian product; :func:`zipped` aligns axes element-wise (for
  pre-paired parameter lists).  Point order is deterministic: cartesian
  products iterate the *last* axis fastest, like nested for-loops.
* **Worker-invariant sharding** -- points are split into fixed-size shards
  and mapped over a ``multiprocessing`` pool.  The shard layout depends
  only on ``shard_size`` (PR 1's decoder-engine idiom), and shard results
  are concatenated in shard order, so the output is identical for 1 or N
  workers -- the point functions are deterministic, and each worker
  process simply warms its own sub-model cache.
* **Measured serial fallback** -- spawning a pool costs real wall time
  (process forks, initializer shipping); on grids whose total work is
  smaller than that overhead, ``jobs > 1`` used to *lose* to serial on
  every small scenario.  ``sweep`` now probes the first two points
  inline, extrapolates the remaining serial cost from the cheaper probe
  (the first point also pays cold sub-model caches), and only spawns the
  pool when the measured per-process overhead
  (:func:`measured_pool_overhead`, calibrated once per process per
  worker count) is projected to pay for itself.  The fallback never
  changes results -- only where they are computed.
* **Pruning hooks** -- :func:`minimize` runs branch-and-bound over the
  grid: a cheap, *sound* ``lower_bound(point)`` (never exceeding the true
  objective) lets dominated grid points be skipped without changing the
  argmin, which is how the Table II optimizer avoids evaluating most of
  its window/runway grid.

Point functions receive one ``dict`` mapping axis names to values and
return either a ``dict`` of result fields (merged into the point record)
or any other value (stored under ``"value"``).  For ``jobs > 1`` the
function must be picklable: a module-level function, or a
``functools.partial`` of one over picklable fixed arguments.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs.spans import span

PointFn = Callable[[Dict[str, Any]], Any]
Record = Dict[str, Any]

DEFAULT_SHARD_SIZE = 16

# Per-point timing lands in one histogram regardless of where the point
# ran (inline probe, serial fallback, or pool worker shipping deltas), so
# the sweep cost distribution is comparable across execution modes; the
# mode counter records which path the auto-serial decision took, and the
# evaluated/pruned counters quantify branch-and-bound effectiveness.
_POINT_SECONDS = _metrics.histogram(
    "repro_sweep_point_seconds", "Per-point evaluation latency in sweeps."
)
_POINTS = _metrics.counter(
    "repro_sweep_points_total", "Sweep grid points evaluated."
)
_SWEEP_RUNS = _metrics.counter(
    "repro_sweep_runs_total",
    "Sweep invocations by execution mode.",
    ("mode",),
)
_MINIMIZE_EVALUATED = _metrics.counter(
    "repro_sweep_evaluated_total",
    "Grid points evaluated by branch-and-bound minimize().",
)
_MINIMIZE_PRUNED = _metrics.counter(
    "repro_sweep_pruned_total",
    "Grid points pruned by branch-and-bound minimize().",
)
_ADAPTIVE_WAVES = _metrics.counter(
    "repro_sweep_adaptive_waves_total",
    "Shot waves dispatched by adaptive_shots().",
)
_ADAPTIVE_SHOTS = _metrics.counter(
    "repro_sweep_adaptive_shots_total",
    "Shots allocated by adaptive_shots().",
)
_ADAPTIVE_MAX_CI = _metrics.gauge(
    "repro_sweep_adaptive_last_max_ci_width",
    "Widest per-point failure-rate CI at the end of the most recent "
    "adaptive_shots() run.",
)


@dataclass(frozen=True)
class Axis:
    """One named sweep dimension."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be non-empty")
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


@dataclass(frozen=True)
class GridSpec:
    """A sweep grid: named axes combined as a cartesian or zipped product."""

    axes: Tuple[Axis, ...]
    mode: str = "product"

    def __post_init__(self) -> None:
        if self.mode not in ("product", "zip"):
            raise ValueError(f"unknown grid mode {self.mode!r}")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        if self.mode == "zip":
            lengths = {len(axis.values) for axis in self.axes}
            if len(lengths) > 1:
                raise ValueError(
                    "zipped axes must have equal lengths, got "
                    f"{[len(a.values) for a in self.axes]}"
                )

    def __len__(self) -> int:
        if not self.axes:
            return 0
        if self.mode == "zip":
            return len(self.axes[0].values)
        return math.prod(len(axis.values) for axis in self.axes)

    def points(self) -> List[Dict[str, Any]]:
        """Enumerate grid points in deterministic order."""
        if not self.axes:
            return []
        names = [axis.name for axis in self.axes]
        if self.mode == "zip":
            combos = zip(*(axis.values for axis in self.axes))
        else:
            combos = itertools.product(*(axis.values for axis in self.axes))
        return [dict(zip(names, combo)) for combo in combos]


def grid(**axes: Sequence[Any]) -> GridSpec:
    """Cartesian-product grid from ``axis_name=values`` keywords."""
    return GridSpec(tuple(Axis(n, tuple(v)) for n, v in axes.items()))


def zipped(**axes: Sequence[Any]) -> GridSpec:
    """Element-wise aligned grid (all axes advance together)."""
    return GridSpec(
        tuple(Axis(n, tuple(v)) for n, v in axes.items()), mode="zip"
    )


def _as_record(point: Dict[str, Any], result: Any) -> Record:
    if isinstance(result, dict):
        return {**point, **result}
    return {**point, "value": result}


# Per-worker state, installed once by the pool initializer so shard tasks
# only ship the point dicts instead of the function at every call.
_WORKER: dict = {}


def _worker_init(fn: PointFn) -> None:
    _WORKER["fn"] = fn


def _run_shard(points: List[Dict[str, Any]]) -> List[Record]:
    fn: PointFn = _WORKER["fn"]
    if not _metrics.enabled():
        return [_as_record(point, fn(point)) for point in points]
    records: List[Record] = []
    for point in points:
        start = time.perf_counter()
        records.append(_as_record(point, fn(point)))
        _POINT_SECONDS.observe(time.perf_counter() - start)
        _POINTS.inc()
    return records


def _run_shard_metered(points: List[Dict[str, Any]]):
    """Pool-side wrapper: evaluate the shard, ship its metric delta home.

    Mirrors the decoding engine's metered shard protocol so counters and
    histograms recorded inside pool workers (per-point timings, decoder
    metrics of nested engines) merge into the parent registry and sweeps
    stay worker-count invariant in what they report.
    """
    base = _metrics.snapshot()
    records = _run_shard(points)
    return records, _metrics.delta_since(base)


def _shards(points: List[Dict[str, Any]], shard_size: int) -> List[List[Dict[str, Any]]]:
    return [
        points[i : i + shard_size] for i in range(0, len(points), shard_size)
    ]


# Measured pool-spawn overhead per worker count, calibrated at most once
# per process (the calibration itself costs one pool spawn, amortized over
# every later sweep in the process).  Tests may pre-seed this to force a
# fallback decision either way.
_CALIBRATION: Dict[int, float] = {}

# Points probed inline before deciding serial vs pool.  Two probes let the
# extrapolation use the cheaper one: the first probe also pays the cold
# sub-model caches, which a parallel run would pay per worker anyway.
_PROBE_POINTS = 2


def _calibration_point(point: Dict[str, Any]) -> Dict[str, Any]:
    return {}


def measured_pool_overhead(jobs: int) -> float:
    """Wall-clock seconds to spawn a ``jobs``-worker pool and drain one
    no-op shard per worker, measured once per process per worker count.

    This is the break-even threshold the serial fallback compares the
    projected sweep cost against -- a measurement on this machine, not a
    magic constant.
    """
    if jobs not in _CALIBRATION:
        start = time.perf_counter()
        with multiprocessing.Pool(
            jobs, initializer=_worker_init, initargs=(_calibration_point,)
        ) as pool:
            pool.map(_run_shard, [[{}] for _ in range(jobs)])
        _CALIBRATION[jobs] = time.perf_counter() - start
    return _CALIBRATION[jobs]


def sweep(
    fn: PointFn,
    spec: GridSpec,
    *,
    jobs: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    auto_serial: bool = True,
) -> List[Record]:
    """Evaluate ``fn`` at every grid point; returns one record per point.

    Records preserve grid order regardless of ``jobs``: the shard layout is
    a function of ``shard_size`` only and shard outputs are concatenated in
    shard order, so serial and sharded runs are identical.

    With ``jobs > 1`` and ``auto_serial`` (the default), the first
    :data:`_PROBE_POINTS` points are evaluated inline and the rest of the
    grid only goes to a worker pool when its projected serial cost exceeds
    the measured pool-spawn overhead (:func:`measured_pool_overhead`);
    below that threshold the pool can only lose wall time.  The records
    are identical either way.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    points = spec.points()
    if not points:
        return []
    with span("sweep", points=len(points), jobs=jobs):
        if jobs == 1:
            _SWEEP_RUNS.labels(mode="serial").inc()
            _worker_init(fn)
            return _run_shard(points)
        if not auto_serial:
            _SWEEP_RUNS.labels(mode="pooled").inc()
            return _pooled(fn, points, jobs, shard_size)
        _worker_init(fn)
        records: List[Record] = []
        per_point = math.inf
        for point in points[:_PROBE_POINTS]:
            start = time.perf_counter()
            records.extend(_run_shard([point]))
            per_point = min(per_point, time.perf_counter() - start)
        rest = points[_PROBE_POINTS:]
        if not rest:
            _SWEEP_RUNS.labels(mode="serial").inc()
            return records
        if per_point * len(rest) <= measured_pool_overhead(jobs):
            _SWEEP_RUNS.labels(mode="serial").inc()
            return records + _run_shard(rest)
        _SWEEP_RUNS.labels(mode="pooled").inc()
        return records + _pooled(fn, rest, jobs, shard_size)


def _pooled(
    fn: PointFn, points: List[Dict[str, Any]], jobs: int, shard_size: int
) -> List[Record]:
    shards = _shards(points, shard_size)
    with multiprocessing.Pool(
        min(jobs, len(shards)), initializer=_worker_init, initargs=(fn,)
    ) as pool:
        if _metrics.enabled():
            shard_results = []
            for records, delta in pool.map(_run_shard_metered, shards):
                _metrics.merge(delta)
                shard_results.append(records)
        else:
            shard_results = pool.map(_run_shard, shards)
    return [record for shard in shard_results for record in shard]


RunPointFn = Callable[[Dict[str, Any], int, np.random.SeedSequence], Any]


def adaptive_shots(
    run_point: RunPointFn,
    spec: GridSpec,
    *,
    total_shots: int,
    wave_shots: int,
    initial_shots: Optional[int] = None,
    level: float = 0.95,
    seed: int = 0,
) -> List[Record]:
    """Spend a shared shot budget where the failure estimate is loosest.

    A fixed-shots sweep wastes most of its budget: points deep below
    threshold need orders of magnitude more shots than points near it to
    reach the same confidence.  ``adaptive_shots`` seeds every grid point
    with ``initial_shots``, then repeatedly dispatches one ``wave_shots``
    wave to the point whose failure-rate confidence interval
    (:meth:`~repro.decoder.engine.EngineResult.failure_rate_ci` at
    ``level``) is currently *widest* -- ties break to the lowest grid
    index -- until ``total_shots`` have been allocated.

    Args:
        run_point: ``run_point(point, shots, seed_seq) -> EngineResult``
            (or any object with the same sufficient-statistic fields,
            ``failure_rate_ci`` and ``__add__``).  Waves for one point
            are merged with ``+``, so the function may be importance
            sampled (:func:`repro.estimator.rare.rare_engine`) or brute
            force per point.
        spec: the sweep grid; one record per point, in grid order.
        total_shots: total budget across all points (the last wave is
            truncated to land exactly on it).
        wave_shots: shots per adaptive wave.
        initial_shots: shots of the seeding round every point gets
            before adaptation starts (default ``wave_shots``).
        level: CI level driving the allocation (and reported bounds).
        seed: root entropy.  The wave for (point ``i``, wave ``j``) is
            seeded ``SeedSequence(entropy=seed, spawn_key=(i, j))`` -- a
            pure function of the point and its wave ordinal, never of
            the global allocation order, so per-point shot streams are
            reproducible even if the allocation policy changes.

    Returns:
        One record per grid point: the point's axes plus ``shots``,
        ``failures``, ``rate``, ``weighted_rate``, ``std_error``,
        ``ess``, ``ci_low``, ``ci_high``, and ``waves`` (seeding round
        included).
    """
    if total_shots < 1:
        raise ValueError("total_shots must be >= 1")
    if wave_shots < 1:
        raise ValueError("wave_shots must be >= 1")
    if initial_shots is None:
        initial_shots = wave_shots
    if initial_shots < 1:
        raise ValueError("initial_shots must be >= 1")
    points = spec.points()
    if not points:
        return []
    if initial_shots * len(points) > total_shots:
        raise ValueError(
            f"initial_shots * points = {initial_shots * len(points)} "
            f"exceeds total_shots = {total_shots}"
        )

    def dispatch(index: int, shots: int) -> None:
        seq = np.random.SeedSequence(
            entropy=seed, spawn_key=(index, waves[index])
        )
        result = run_point(points[index], shots, seq)
        results[index] = (
            result if results[index] is None else results[index] + result
        )
        waves[index] += 1
        _ADAPTIVE_WAVES.inc()
        _ADAPTIVE_SHOTS.inc(shots)

    results: List[Any] = [None] * len(points)
    waves = [0] * len(points)
    remaining = total_shots
    with span(
        "sweep.adaptive_shots", points=len(points), total_shots=total_shots
    ):
        for index in range(len(points)):
            dispatch(index, initial_shots)
            remaining -= initial_shots
        while remaining > 0:
            widths = [
                high - low
                for low, high in (
                    res.failure_rate_ci(level) for res in results
                )
            ]
            index = max(range(len(points)), key=lambda i: (widths[i], -i))
            shots = min(wave_shots, remaining)
            dispatch(index, shots)
            remaining -= shots
    final_widths = []
    records: List[Record] = []
    for index, (point, res) in enumerate(zip(points, results)):
        low, high = res.failure_rate_ci(level)
        final_widths.append(high - low)
        records.append({
            **point,
            "shots": res.shots,
            "failures": res.failures,
            "rate": res.rate,
            "weighted_rate": res.weighted_rate,
            "std_error": res.std_error,
            "ess": res.ess,
            "ci_low": low,
            "ci_high": high,
            "waves": waves[index],
        })
    _ADAPTIVE_MAX_CI.set(max(final_widths))
    return records


@dataclass(frozen=True)
class MinimizeResult:
    """Outcome of a pruned sweep minimization."""

    best: Record
    best_objective: float
    trace: Tuple[Tuple[Record, float], ...]
    evaluated: int
    pruned: int


def minimize(
    fn: PointFn,
    spec: GridSpec,
    objective: Callable[[Record], float],
    *,
    lower_bound: Optional[Callable[[Dict[str, Any]], float]] = None,
) -> MinimizeResult:
    """Branch-and-bound minimization of ``objective`` over the grid.

    ``lower_bound(point)``, when given, must be a cheap *sound* bound: it
    never exceeds the true objective at that point.  Points whose bound is
    already >= the best objective seen are skipped without evaluating
    ``fn``, leaving the argmin unchanged.  The scan is serial (pruning
    state is inherently ordered); the per-point sub-model calls still share
    the process-wide memoization cache.
    """
    points = spec.points()
    if not points:
        raise ValueError("empty sweep grid")
    best: Optional[Record] = None
    best_objective = math.inf
    trace: List[Tuple[Record, float]] = []
    pruned = 0
    for point in points:
        if (
            lower_bound is not None
            and best is not None
            and lower_bound(point) >= best_objective
        ):
            pruned += 1
            continue
        record = _as_record(point, fn(point))
        value = objective(record)
        trace.append((record, value))
        if value < best_objective:
            best_objective = value
            best = record
    if best is None:
        # Every evaluated objective was inf (or NaN): nothing to rank.
        raise ValueError(
            f"no grid point produced a finite objective "
            f"({len(trace)} evaluated)"
        )
    _MINIMIZE_EVALUATED.inc(len(trace))
    _MINIMIZE_PRUNED.inc(pruned)
    return MinimizeResult(
        best=best,
        best_objective=best_objective,
        trace=tuple(trace),
        evaluated=len(trace),
        pruned=pruned,
    )
