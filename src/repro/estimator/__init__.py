"""Unified estimation pipeline: sweeps, caching, and the scenario registry.

The paper's evaluation is a family of parameter sweeps over one expensive
estimator.  This subsystem gives every figure/table driver one engine:

* :mod:`repro.estimator.sweep` -- declarative grid sweeps (named axes,
  cartesian or zipped), worker-invariant ``multiprocessing`` sharding,
  branch-and-bound pruning for optimizers, and CI-width-driven adaptive
  shot budgeting (:func:`adaptive_shots`).
* :mod:`repro.estimator.rare` -- rare-event Monte Carlo: importance
  sampling of DEM shots from a reweighted proposal with per-shot
  likelihood-ratio weights (:class:`ImportanceSampler`,
  :func:`rare_engine`, :func:`suggested_inflation`).
* :mod:`repro.estimator.registry` -- a string-keyed registry of
  :class:`Scenario` objects returning structured records, driving the
  ``python -m repro`` CLI so new scenarios need zero CLI edits.
* :mod:`repro.estimator.serialize` -- the one JSON serialization shared by
  the CLI, the HTTP service and the persistent store, so every surface
  emits byte-identical documents.
* :mod:`repro.core.cache` (re-exported here) -- memoization of pure
  sub-model calls keyed on frozen dataclass inputs, shared by every sweep,
  plus the :func:`code_version` fingerprint the result store keys on.
"""

from repro.core.cache import (
    cache_stats,
    caching_disabled,
    clear_caches,
    code_version,
    memoized,
)
from repro.estimator.registry import (
    Scenario,
    ScenarioResult,
    UnknownParamsError,
    all_sections,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
)
from repro.estimator.serialize import (
    dumps_results,
    finite,
    parse_override_value,
)
from repro.estimator.rare import (
    ImportanceSampler,
    rare_engine,
    suggested_inflation,
)
from repro.estimator.sweep import (
    Axis,
    GridSpec,
    MinimizeResult,
    adaptive_shots,
    grid,
    minimize,
    sweep,
    zipped,
)

__all__ = [
    "Axis",
    "GridSpec",
    "ImportanceSampler",
    "MinimizeResult",
    "Scenario",
    "ScenarioResult",
    "UnknownParamsError",
    "adaptive_shots",
    "all_sections",
    "available_scenarios",
    "cache_stats",
    "caching_disabled",
    "clear_caches",
    "code_version",
    "dumps_results",
    "finite",
    "get_scenario",
    "grid",
    "memoized",
    "minimize",
    "parse_override_value",
    "rare_engine",
    "register_scenario",
    "run_scenario",
    "suggested_inflation",
    "sweep",
    "zipped",
]
