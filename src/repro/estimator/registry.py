"""String-keyed scenario registry driving the evaluation CLI.

Mirrors the decoder registry of :mod:`repro.decoder.engine`: each figure or
table of the paper registers a :class:`Scenario` under a stable name, and
the ``python -m repro`` CLI dispatches purely through the registry --
adding a scenario requires zero CLI edits.

A scenario's ``build`` callable returns a :class:`ScenarioResult`:
structured records (a list of flat dicts, one per data point) plus
metadata, instead of the ad-hoc dict shapes the drivers used to print
directly.  ``render`` turns a result back into the CLI's text form; the
``--json`` flag serializes the result instead.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.cache import code_version


@dataclass(frozen=True)
class ScenarioResult:
    """Structured output of one scenario run."""

    scenario: str
    records: Tuple[Dict[str, Any], ...]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """JSON-serializable form (records and metadata must be plain data)."""
        return {
            "scenario": self.scenario,
            "metadata": dict(self.metadata),
            "records": [dict(record) for record in self.records],
        }


class UnknownParamsError(ValueError):
    """A parameter override names keys the scenario does not accept.

    The single source of the "does not accept parameter(s)" message: the
    CLI maps it to ``parser.error`` (exit 2), the HTTP API to a 400 body,
    and the job engine lets it propagate to the submitter.
    """

    def __init__(self, scenario: str, keys, supported) -> None:
        self.scenario = scenario
        self.keys = list(keys)
        self.supported = list(supported)
        named = ", ".join(repr(k) for k in self.keys)
        accepted = ", ".join(self.supported) or "(none)"
        super().__init__(
            f"scenario {scenario!r} does not accept parameter(s) {named}; "
            f"supported: {accepted}"
        )


@dataclass(frozen=True)
class Scenario:
    """One registered figure/table generator.

    Attributes:
        name: registry key (CLI section name).
        description: one-line summary shown by ``--list``.
        build: ``build(jobs=1, **params) -> ScenarioResult``; ``params``
            are CLI ``--param`` overrides, validated by the callable's own
            keyword signature (unknown keys raise ``TypeError``).
        render: formats a result as the CLI's text output.
        order: position in the canonical ``all`` sequence.
        in_all: whether ``python -m repro all`` includes this scenario.
        lint_circuits: optional zero-argument callable returning a
            ``{label: Circuit}`` mapping of small representative (noisy)
            circuits for ``python -m repro lint`` to verify.  Scenarios
            without circuits (analytic resource tables) leave it ``None``
            and are still covered by the ``registry_contract`` pass.
    """

    name: str
    description: str
    build: Callable[..., ScenarioResult]
    render: Callable[[ScenarioResult], str]
    order: int = 1000
    in_all: bool = True
    lint_circuits: Optional[Callable[[], Dict[str, Any]]] = None

    def run(self, jobs: int = 1, **params: Any) -> ScenarioResult:
        result = self.build(jobs=jobs, **params)
        # Stamp the code fingerprint so every surface (CLI --json, HTTP
        # API, persistent store) can tell which source tree produced the
        # numbers.  setdefault keeps a build's own version field, if any.
        result.metadata.setdefault("version", code_version())
        return result

    def accepted_params(self) -> Optional[frozenset]:
        """Override names ``build`` accepts, or ``None`` if it takes any.

        Lets callers (the CLI) reject unknown ``--param`` keys up front,
        before any scenario runs, instead of crashing mid-invocation.
        """
        sig = inspect.signature(self.build)
        if any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in sig.parameters.values()
        ):
            return None
        return frozenset(sig.parameters) - {"jobs"}

    def validate_params(self, params: Dict[str, Any]) -> None:
        """Raise :class:`UnknownParamsError` for keys ``build`` rejects."""
        accepted = self.accepted_params()
        if accepted is None:
            return
        unknown = sorted(set(params) - accepted)
        if unknown:
            raise UnknownParamsError(self.name, unknown, sorted(accepted))


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Register a scenario under its name; duplicate names are an error."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def _ensure_loaded() -> None:
    # The builtin scenarios self-register when their driver modules import;
    # pulling in repro.experiments loads all of them.
    import repro.experiments  # noqa: F401


def available_scenarios() -> Tuple[str, ...]:
    """Registered scenario names, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def get_scenario(name: str) -> Scenario:
    """Look up a scenario; raises ``KeyError`` naming the alternatives."""
    _ensure_loaded()
    scenario = _REGISTRY.get(name)
    if scenario is None:
        raise KeyError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )
    return scenario


def run_scenario(name: str, jobs: int = 1, **params: Any) -> ScenarioResult:
    """Build a registered scenario's result."""
    return get_scenario(name).run(jobs=jobs, **params)


def all_sections() -> Tuple[str, ...]:
    """Canonical `all` order: paper tables first, then figures."""
    _ensure_loaded()
    members = [s for s in _REGISTRY.values() if s.in_all]
    return tuple(s.name for s in sorted(members, key=lambda s: (s.order, s.name)))


def describe_scenarios() -> Tuple[Tuple[str, str], ...]:
    """(name, description) pairs for ``--list``, sorted by name."""
    _ensure_loaded()
    return tuple(
        (name, _REGISTRY[name].description) for name in sorted(_REGISTRY)
    )
