"""Shared JSON serialization for the CLI and the estimation service.

The ``python -m repro --json`` output is the contract every other surface
must match byte-for-byte: the HTTP API (``GET /estimate``), the persistent
result store, and the golden tests all funnel through the helpers here so
there is exactly one place where scenario results become JSON text.

* :func:`finite` -- replace non-finite floats with ``None`` so the emitted
  JSON is RFC-valid.  Infeasible sweep points legitimately carry
  ``math.inf`` (e.g. no distance meets the fig11_idle rate target at short
  periods); strict JSON consumers reject the bare ``Infinity`` token
  Python would otherwise emit.
* :func:`dumps_results` -- the exact serialization the CLI prints: a list
  of ``ScenarioResult.to_json()`` dicts, sanitized, ``indent=2``.
* :func:`parse_override_value` -- the CLI's ``--param KEY=VALUE`` value
  parsing (Python literal when possible, raw string otherwise), reused by
  the HTTP API's query parameters so ``?target_error=1e-11`` means the
  same thing as ``--param target_error=1e-11``.
"""

from __future__ import annotations

import ast
import json
import math
from typing import Any, Dict, List


def finite(obj: Any) -> Any:
    """Recursively replace non-finite floats with ``None`` (RFC-valid JSON).

    Tuples flatten to lists -- ``json.dumps`` would emit them as arrays
    anyway, so the serialized text is unchanged, but callers can follow
    this with ``allow_nan=False`` knowing nothing non-finite survives at
    any nesting depth.
    """
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    if isinstance(obj, dict):
        return {key: finite(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [finite(value) for value in obj]
    return obj


def dumps_results(results: List[Dict[str, Any]]) -> str:
    """Serialize scenario results exactly as ``python -m repro --json`` does.

    The returned string has no trailing newline; the CLI adds one via
    ``print`` and the HTTP API appends one explicitly, so both emit
    byte-identical documents.
    """
    return json.dumps(finite(results), indent=2, allow_nan=False)


def parse_override_value(raw: str) -> Any:
    """Parse one parameter-override value the way the CLI does.

    Python literals (``1e-11``, ``3``, ``(1, 2)``, ``True``) become their
    value; anything else stays a string.
    """
    try:
        return ast.literal_eval(raw)
    except (SyntaxError, ValueError):
        return raw
