"""Bell-pair bridge parallelization (paper Sec. III.5, Fig. 7).

A Bell pair bends a qubit's worldline backward in time: sequential circuit
segments execute concurrently, with a Bell-basis measurement stitching them
together.  Non-Clifford gates impose sequential measurement-basis
dependencies, so consecutive blocks are offset by the reaction time t_r;
a block of duration t_block therefore admits t_block / t_r concurrent
copies.  Because not every qubit is active for the whole block, the copy
count is weighted by the active fraction when computing qubit usage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def parallel_copies(block_time: float, reaction_time: float) -> int:
    """Number of block copies executable concurrently (>= 1)."""
    if block_time <= 0 or reaction_time <= 0:
        raise ValueError("times must be positive")
    return max(1, math.floor(block_time / reaction_time))


@dataclass(frozen=True)
class BridgedExecution:
    """Concurrent execution of a sequence of identical blocks.

    Attributes:
        num_blocks: sequential blocks to execute.
        block_time: duration of one block.
        reaction_time: dependency offset between consecutive blocks.
        qubits_per_block: logical qubits a single block occupies.
        active_fraction: fraction of the block during which a qubit is
            actually busy (idle tails are reclaimed, Sec. III.5).
    """

    num_blocks: int
    block_time: float
    reaction_time: float
    qubits_per_block: float
    active_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if not 0 < self.active_fraction <= 1:
            raise ValueError("active_fraction must be in (0, 1]")

    @property
    def copies(self) -> int:
        """Concurrent copies bounded by available work."""
        return min(parallel_copies(self.block_time, self.reaction_time), self.num_blocks)

    @property
    def makespan(self) -> float:
        """Wall-clock: pipeline fill + drain at one block per reaction slot.

        With c copies in flight the n blocks complete in n/c block-times
        plus the initial reaction-offset ramp.
        """
        c = self.copies
        waves = math.ceil(self.num_blocks / c)
        return waves * self.block_time + (c - 1) * self.reaction_time

    @property
    def speedup(self) -> float:
        """Serial time over bridged makespan."""
        serial = self.num_blocks * self.block_time
        return serial / self.makespan

    @property
    def peak_qubits(self) -> float:
        """Logical qubits in flight, including Bell-bridge overhead.

        Each concurrent copy needs its working set; each stitch adds one
        Bell pair (2 qubits).
        """
        c = self.copies
        working = c * self.qubits_per_block * self.active_fraction
        bridges = 2 * max(c - 1, 0)
        return working + bridges

    @property
    def qubit_seconds(self) -> float:
        return self.peak_qubits * self.makespan
