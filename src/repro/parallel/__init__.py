"""Parallelization: bridge qubits, reaction timing, AutoCCZ gadget."""

from repro.parallel.autoccz import (
    AutoCCZTiming,
    teleported_ccz_circuit,
    verify_autoccz_branch,
)
from repro.parallel.bridge import BridgedExecution, parallel_copies
from repro.parallel.reaction import ReactionModel

__all__ = [
    "AutoCCZTiming",
    "BridgedExecution",
    "ReactionModel",
    "parallel_copies",
    "teleported_ccz_circuit",
    "verify_autoccz_branch",
]
