"""Auto-corrected CCZ consumption (paper Secs. III.5, III.7, Ref. [53]).

Teleporting a Toffoli through a |CCZ> resource state produces conditional
CZ corrections.  The auto-corrected variant adds three CZ-ancilla qubits
prepared alongside the resource state so the corrections reduce to
*measurement-basis choices* resolved by the decoder -- the quantum
operations never wait on each other, only the classical reaction time.

The state-vector construction here verifies the gadget: consuming the
resource state applies exactly CCZ to the data, for every measurement
branch, when the conditional CZs dictated by the outcomes are applied --
and the conditional layer depends only on *earlier* outcomes, which is the
reaction-limited property the timing model uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sim.circuit import Circuit
from repro.sim.statevector import StateVector


def teleported_ccz_circuit(outcomes: Tuple[int, int, int]) -> Circuit:
    """CCZ teleportation onto data qubits 0..2 with forced branch.

    Qubits 0..2: data; 3..5: the |CCZ> resource state.  Each data qubit is
    fused with its resource qubit by a CNOT + Z-measurement; outcome m_i = 1
    requires a conditional CZ on the other two data qubits (the correction
    the AutoCCZ ancillae absorb).  The returned circuit applies the
    corrections explicitly for the forced branch, so running it must equal
    CCZ on the data for any input.
    """
    circuit = Circuit()
    circuit.append("RX", (3, 4, 5))
    circuit.ccz(3, 4, 5)
    # Fuse each data qubit with its resource leg and measure the leg.
    for i in range(3):
        circuit.cx(i, 3 + i)
    for i in range(3):
        circuit.measure(3 + i)
    # Exact correction from expanding (a^m1)(b^m2)(c^m3) ^ abc:
    # each set outcome contributes a CZ on the other two data qubits and
    # each *pair* of set outcomes a Z on the remaining qubit.
    for i, outcome in enumerate(outcomes):
        if outcome:
            others = [j for j in range(3) if j != i]
            circuit.cz(others[0], others[1])
    for i in range(3):
        others = [j for j in range(3) if j != i]
        if outcomes[others[0]] and outcomes[others[1]]:
            circuit.z(i)
    return circuit


def verify_autoccz_branch(outcomes: Tuple[int, int, int], trials: int = 4) -> bool:
    """Check the gadget equals CCZ on random product inputs for a branch."""
    rng = np.random.default_rng(hash(outcomes) % (2**32))
    for _ in range(trials):
        angles = rng.uniform(0, 2 * np.pi, size=(3, 2))
        prep = Circuit()
        reference = StateVector(6, rng=np.random.default_rng(1))
        test = StateVector(6, rng=np.random.default_rng(1))
        # Random product input on the data qubits via H/T-generated states.
        for sv in (reference, test):
            for q in range(3):
                sv.apply_1q(_random_su2(angles[q]), q)
        reference.run(Circuit().ccz(0, 1, 2))
        gadget = teleported_ccz_circuit(outcomes)
        forced = {i: outcomes[i] for i in range(3)}
        try:
            test.run(gadget, forced_measurements=forced)
        except ValueError:
            continue  # branch has zero probability for this input
        # Compare reduced data states: resource legs are in definite states.
        if not _data_states_match(reference, test):
            return False
    return True


@dataclass(frozen=True)
class AutoCCZTiming:
    """Timing of reaction-limited CCZ consumption."""

    reaction_time: float

    def steps_time(self, num_sequential_toffolis: int) -> float:
        """Dependent Toffolis resolve one reaction time apart."""
        if num_sequential_toffolis < 0:
            raise ValueError("count must be non-negative")
        return num_sequential_toffolis * self.reaction_time


def _random_su2(params) -> np.ndarray:
    theta, phi = params
    return np.array(
        [
            [np.cos(theta / 2), -np.exp(1j * phi) * np.sin(theta / 2)],
            [np.exp(-1j * phi) * np.sin(theta / 2), np.cos(theta / 2)],
        ],
        dtype=np.complex128,
    )


def _data_states_match(reference: StateVector, test: StateVector) -> bool:
    """Fidelity of the data-qubit (0..2) reduced states, up to phase.

    The reference leaves resource qubits in |0>; the test collapses them to
    computational states.  Compare the normalized data blocks.
    """
    ref_block = reference.amplitudes.reshape(8, 8)  # [resource, data]
    test_block = test.amplitudes.reshape(8, 8)
    ref_vec = _dominant_block(ref_block)
    test_vec = _dominant_block(test_block)
    overlap = abs(np.vdot(ref_vec, test_vec))
    return overlap > 1 - 1e-9


def _dominant_block(block: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(block, axis=1)
    vec = block[int(np.argmax(norms))]
    return vec / np.linalg.norm(vec)
