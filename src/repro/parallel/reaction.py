"""Reaction-time model (paper Secs. II.2, IV.2).

The reaction time is the measurement -> decode -> feed-forward round trip
that paces every sequentially-dependent non-Clifford gate.  The paper
assumes 1 ms (500 us measurement + 500 us decoding with matching-based
correlated decoders [71, 72]); Fig. 14(c) sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import PhysicalParams


@dataclass(frozen=True)
class ReactionModel:
    """Components of the classical feedback loop."""

    measure_time: float = 500e-6
    decode_time: float = 500e-6
    feedforward_time: float = 0.0

    @property
    def reaction_time(self) -> float:
        return self.measure_time + self.decode_time + self.feedforward_time

    @classmethod
    def from_physical(cls, physical: PhysicalParams) -> "ReactionModel":
        return cls(physical.measure_time, physical.decode_time)

    def with_decoder_speedup(self, factor: float) -> "ReactionModel":
        """Faster decoding (FPGA/ASIC decoders, Refs. [49, 50])."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ReactionModel(
            self.measure_time, self.decode_time / factor, self.feedforward_time
        )

    def with_readout(self, measure_time: float) -> "ReactionModel":
        """Alternative readout technology (cavity-assisted, etc.)."""
        if measure_time <= 0:
            raise ValueError("measure_time must be positive")
        return ReactionModel(measure_time, self.decode_time, self.feedforward_time)

    def reaction_limited_rate(self) -> float:
        """Dependent non-Clifford gates per second."""
        return 1.0 / self.reaction_time
