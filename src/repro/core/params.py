"""Physical and error-model parameters for the transversal atom-array architecture.

This module encodes Table I of the paper (typical parameters for
dynamically-reconfigurable neutral atom arrays) together with the
circuit-level error-model constants used throughout Sec. III.4.

All times are in seconds, distances in metres, rates dimensionless.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class PhysicalParams:
    """Hardware parameters of the neutral-atom platform (paper Table I).

    Attributes:
        site_spacing: distance between neighbouring trap sites (``l``), metres.
        acceleration: effective AOD acceleration/deceleration ``a``, m/s^2.
            Calibrated in the paper from moving 55 um in 200 us.
        gate_time: duration of a parallel physical entangling-gate pulse.
        measure_time: qubit measurement (imaging) duration.
        decode_time: classical decoding latency per decision.
        coherence_time: characteristic idle coherence time (T2-like), used for
            the idle-error model of Sec. IV.2 (default 10 s).
    """

    site_spacing: float = 12e-6
    acceleration: float = 5500.0
    gate_time: float = 1e-6
    measure_time: float = 500e-6
    decode_time: float = 500e-6
    coherence_time: float = 10.0

    @property
    def reaction_time(self) -> float:
        """Round-trip reaction time: measure, decode, feed-forward (Sec. II.2).

        The paper assumes a 1 ms reaction time from a 500 us measurement and
        500 us decoding latency; feed-forward is absorbed into decode_time.
        """
        return self.measure_time + self.decode_time

    def rescaled(self, **changes: float) -> "PhysicalParams":
        """Return a copy with some fields replaced (for sensitivity sweeps)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ErrorParams:
    """Logical-error-model constants of Sec. III.4.

    The memory logical error rate per qubit per syndrome-extraction round is

        p_L = C * (1 / Lambda)^((d + 1) / 2),    Lambda = p_thres / p_phys

    (Eq. 2).  ``alpha`` is the decoding factor: how much one transversal CNOT
    per SE round inflates the effective noise seen by the decoder (Eq. 4).
    The paper's MLE fit gives alpha ~= 1/6; matching-style decoders give
    larger values (Fig. 13(a)).
    """

    p_phys: float = 1e-3
    p_thres: float = 1e-2
    prefactor_c: float = 0.1
    alpha: float = 1.0 / 6.0

    @property
    def lam(self) -> float:
        """Error-suppression factor Lambda = p_thres / p_phys."""
        return self.p_thres / self.p_phys

    def rescaled(self, **changes: float) -> "ErrorParams":
        """Return a copy with some fields replaced (for sensitivity sweeps)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ArchitectureConfig:
    """Top-level knobs of the transversal architecture evaluation.

    Attributes:
        physical: hardware timing/geometry parameters.
        error: logical-error-model constants.
        se_rounds_per_gate: syndrome-extraction rounds after each transversal
            gate (the paper settles on 1, Sec. IV.2).
        storage_se_period: period between SE rounds on idle storage qubits
            (the paper uses 8 ms for a 10 s coherence time).
        target_total_error: acceptable total algorithm failure probability.
    """

    physical: PhysicalParams = PhysicalParams()
    error: ErrorParams = ErrorParams()
    se_rounds_per_gate: float = 1.0
    storage_se_period: float = 8e-3
    target_total_error: float = 0.1

    def rescaled(self, **changes) -> "ArchitectureConfig":
        """Return a copy with some fields replaced."""
        return dataclasses.replace(self, **changes)


DEFAULT_PHYSICAL = PhysicalParams()
DEFAULT_ERROR = ErrorParams()
DEFAULT_CONFIG = ArchitectureConfig()
