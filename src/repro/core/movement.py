"""Atom-movement time model (paper Sec. II.1, Eq. 1).

Moving an atom a distance ``L`` while keeping thermal excitation constant
takes time scaling with the square root of the distance:

    t = 2 * sqrt(L / a)

where ``a`` is the effective acceleration during the first half of the
trajectory and deceleration during the second half.  The paper's parameters
(Table I) give ~93 us to cross one 12 um site and ~500 us to cross a
d = 27 logical-patch pitch, which sets the QEC-cycle pipelining.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.core.params import PhysicalParams


def move_time(distance: float, acceleration: float) -> float:
    """Time to move an atom ``distance`` metres (Eq. 1).

    Accelerate for the first half, decelerate for the second half:
    each half covers L/2 = a t_half^2 / 2, so t = 2 sqrt(L / a).

    Args:
        distance: move length in metres (non-negative).
        acceleration: effective acceleration in m/s^2 (positive).

    Returns:
        Move duration in seconds.  Zero distance takes zero time.
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    if acceleration <= 0:
        raise ValueError(f"acceleration must be positive, got {acceleration}")
    return 2.0 * math.sqrt(distance / acceleration)


def move_time_sites(num_sites: float, physical: PhysicalParams) -> float:
    """Move time for a displacement of ``num_sites`` trap-site pitches."""
    return move_time(num_sites * physical.site_spacing, physical.acceleration)


def patch_move_time(code_distance: int, physical: PhysicalParams) -> float:
    """Time to move a surface-code patch across one logical-qubit pitch.

    A d x d patch moved by d sites: L = d * l.  For Table I parameters and
    d = 27 this is ~0.5 ms, matching the paper's Sec. IV.2 statement that a
    patch move equals the measurement time, enabling pipelining.
    """
    return move_time_sites(code_distance, physical)


def batch_move_time(distances: Iterable[float], acceleration: float) -> float:
    """Duration of a parallel AOD batch move.

    All atoms grabbed by one AOD pattern move simultaneously; the batch takes
    as long as its longest individual move.
    """
    longest = 0.0
    for distance in distances:
        longest = max(longest, distance)
    return move_time(longest, acceleration)


def max_move_distance(duration: float, acceleration: float) -> float:
    """Inverse of :func:`move_time`: distance coverable within ``duration``."""
    if duration < 0:
        raise ValueError(f"duration must be non-negative, got {duration}")
    return acceleration * (duration / 2.0) ** 2
