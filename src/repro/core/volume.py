"""Space-time volume accounting (Sec. II.2).

The optimization objective throughout the paper is the space-time volume of a
computation: physical-qubit count times run time (qubit-seconds), often
broken down by architectural component (storage, factories, fan-out, ...).
This module provides small accounting types shared by the gadget models,
algorithm estimators and experiment drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

SECONDS_PER_DAY = 86400.0
MEGAQUBIT = 1e6


@dataclass(frozen=True)
class SpaceTime:
    """A rectangle of space-time: ``qubits`` held for ``seconds``."""

    qubits: float
    seconds: float

    def __post_init__(self) -> None:
        if self.qubits < 0 or self.seconds < 0:
            raise ValueError(f"negative space-time block: {self}")

    @property
    def volume(self) -> float:
        """Qubit-seconds occupied by this block."""
        return self.qubits * self.seconds

    def scaled(self, copies: float) -> "SpaceTime":
        """Space-time of ``copies`` concurrent replicas (same duration)."""
        return SpaceTime(self.qubits * copies, self.seconds)

    def repeated(self, times: float) -> "SpaceTime":
        """Space-time of ``times`` sequential repetitions (same footprint)."""
        return SpaceTime(self.qubits, self.seconds * times)


@dataclass
class VolumeLedger:
    """Accumulates qubit-seconds per named component.

    Components are free-form labels ("storage", "factories", "fanout", ...).
    The ledger records concurrent footprints, so the peak qubit count is the
    maximum over phases, while volume adds across phases.
    """

    entries: Dict[str, float] = field(default_factory=dict)

    def add(self, component: str, block: SpaceTime) -> None:
        """Charge a space-time block to a component."""
        self.entries[component] = self.entries.get(component, 0.0) + block.volume

    def add_volume(self, component: str, qubit_seconds: float) -> None:
        """Charge raw qubit-seconds to a component."""
        if qubit_seconds < 0:
            raise ValueError("volume must be non-negative")
        self.entries[component] = self.entries.get(component, 0.0) + qubit_seconds

    @property
    def total(self) -> float:
        """Total qubit-seconds across all components."""
        return sum(self.entries.values())

    def fractions(self) -> Dict[str, float]:
        """Per-component fraction of the total volume."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in self.entries}
        return {name: value / total for name, value in self.entries.items()}

    def merged(self, other: "VolumeLedger") -> "VolumeLedger":
        """Combine two ledgers component-wise."""
        merged = VolumeLedger(dict(self.entries))
        for name, value in other.entries.items():
            merged.entries[name] = merged.entries.get(name, 0.0) + value
        return merged


@dataclass(frozen=True)
class ResourceEstimate:
    """Headline output of an algorithm resource estimation.

    Attributes:
        physical_qubits: peak physical-qubit footprint.
        runtime_seconds: wall-clock run time of one algorithm execution.
        breakdown: qubit-seconds per component.
        logical_error: estimated total logical failure probability.
        metadata: free-form extra outputs (counts, chosen parameters, ...).
    """

    physical_qubits: float
    runtime_seconds: float
    breakdown: Mapping[str, float] = field(default_factory=dict)
    logical_error: float = 0.0
    metadata: Mapping[str, float] = field(default_factory=dict)

    @property
    def runtime_days(self) -> float:
        """Run time in days."""
        return self.runtime_seconds / SECONDS_PER_DAY

    @property
    def megaqubits(self) -> float:
        """Footprint in millions of physical qubits."""
        return self.physical_qubits / MEGAQUBIT

    @property
    def spacetime_volume(self) -> float:
        """Footprint x run time, in qubit-seconds."""
        return self.physical_qubits * self.runtime_seconds

    @property
    def megaqubit_days(self) -> float:
        """Space-time volume in megaqubit-days, the paper's Fig. 2 unit."""
        return self.spacetime_volume / (MEGAQUBIT * SECONDS_PER_DAY)


def peak_footprint(footprints: Iterable[float]) -> float:
    """Peak qubit usage over a set of concurrent phase footprints."""
    peak = 0.0
    for value in footprints:
        if value < 0:
            raise ValueError("footprints must be non-negative")
        peak = max(peak, value)
    return peak
