"""Timing model for syndrome extraction and logical operations (Sec. IV.2).

Derives, from the movement law and Table I parameters:

* the duration of one syndrome-extraction (SE) round -- four ancilla moves of
  about one site pitch plus four entangling pulses, with ancilla readout
  pipelined against the next round's moves (~400 us for Table I);
* the duration of one transversal logical gate step -- a patch move across
  one logical pitch (~500 us at d = 27, equal to the measurement time, so
  ancilla measurement pipelines with the move) followed by an SE round;
* the reaction-limited step time for dependent non-Clifford gates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import movement
from repro.core.cache import memoized
from repro.core.params import PhysicalParams

# Number of entangling layers in one surface-code SE round (weight-4
# stabilizers measured with a single ancilla each, Fig. 4(a)).
SE_CNOT_LAYERS = 4

# Ancilla step length between consecutive SE CNOT layers, in site pitches.
# The measure qubit visits its four neighbouring data qubits (Fig. 4(a)).
SE_STEP_SITES = 1.0


@dataclass(frozen=True)
class TimingModel:
    """Derived time constants for a given hardware parameter set.

    Attributes:
        physical: underlying hardware parameters.
    """

    physical: PhysicalParams = PhysicalParams()

    @property
    def se_move_time(self) -> float:
        """Single ancilla hop between neighbouring data qubits."""
        return movement.move_time_sites(SE_STEP_SITES, self.physical)

    @property
    def se_round_time(self) -> float:
        """One SE round: 4 ancilla hops + 4 gate pulses, readout pipelined.

        The ancilla measurement (500 us) of round k overlaps the data-qubit
        idle/move period of round k+1 in the reconfigurable architecture
        (Sec. IV.1: "the syndrome extraction can be pipelined"), so it does
        not extend the round beyond max(moves+gates, measurement).
        """
        active = SE_CNOT_LAYERS * (self.se_move_time + self.physical.gate_time)
        return max(active, self.physical.measure_time)

    def logical_gate_time(self, code_distance: int) -> float:
        """One transversal logical gate step at distance d.

        The patch move across one logical pitch (~500 us at d = 27) overlaps
        with the previous round's ancilla measurement; the transversal pulse
        and the following SE round complete the step.
        """
        move = movement.patch_move_time(code_distance, self.physical)
        interleave = max(move, self.physical.measure_time)
        return interleave + self.physical.gate_time + self.se_round_time

    @property
    def reaction_time(self) -> float:
        """Measure -> decode -> feed-forward latency (1 ms for Table I)."""
        return self.physical.reaction_time

    def reaction_limited_step(self, code_distance: int) -> float:
        """Time per sequentially-dependent non-Clifford step.

        Dependent measurement bases resolve one reaction time apart
        (Sec. III.5); the transversal moves and SE of the step execute inside
        that window whenever the reaction time dominates.
        """
        return max(self.reaction_time, self.logical_gate_time(code_distance))

    def storage_round_time(self) -> float:
        """Duration of an SE round on densely-packed storage (no patch move)."""
        return self.se_round_time


@memoized
def timing_model(physical: PhysicalParams = PhysicalParams()) -> TimingModel:
    """Shared :class:`TimingModel` for a parameter set.

    Sweeps construct timing models at every grid point; the instances are
    frozen and pure, so points with the same :class:`PhysicalParams` share
    one object (and `lru_cache` makes repeat construction free).
    """
    return TimingModel(physical)
