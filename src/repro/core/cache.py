"""Memoization of pure sub-model calls (estimation-pipeline cache layer).

The paper's evaluation is a family of parameter sweeps over one expensive
estimator; at every grid point the same pure sub-models (timing laws,
distance search, factory/cultivation cycle models, the [[8,3,2]] code
construction) are re-derived from identical frozen-dataclass inputs.  This
module provides the process-wide cache those sweeps share:

* :func:`memoized` -- an ``lru_cache`` wrapper for pure functions whose
  arguments are hashable (frozen dataclasses, scalars).  Unhashable calls
  fall through to the raw function instead of raising.
* :func:`cache_stats` -- per-function hit/miss/size counters, used by the
  sweep-engine tests and the benchmark runner.
* :func:`clear_caches` -- reset every registered cache (cold-start timing).
* :func:`caching_disabled` -- context manager bypassing every cache, for
  honest cached-vs-uncached A/B measurements.

Caches are per-process: ``multiprocessing`` sweep workers each build their
own, which keeps results independent of the worker count.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Tuple, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

# All memoized functions, keyed by qualified name, for stats/clearing.
_CACHES: Dict[str, Callable[..., Any]] = {}

# Process-wide bypass switch (see caching_disabled()).
_DISABLED = False


def _hashable(args: tuple, kwargs: dict) -> bool:
    try:
        hash(args)
        hash(tuple(sorted(kwargs.items())))
    except TypeError:
        return False
    return True


def memoized(fn: F) -> F:
    """Memoize a pure function keyed on its (hashable) arguments.

    The decorated function must be deterministic and return a value that is
    safe to share between callers (immutable, or only ever read).  Calls
    with unhashable arguments (e.g. an explicit list of sweep periods)
    bypass the cache silently.
    """
    cached = functools.lru_cache(maxsize=None)(fn)

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if _DISABLED or not _hashable(args, kwargs):
            return fn(*args, **kwargs)
        return cached(*args, **kwargs)

    wrapper.cache_info = cached.cache_info  # type: ignore[attr-defined]
    wrapper.cache_clear = cached.cache_clear  # type: ignore[attr-defined]
    name = f"{fn.__module__}.{fn.__qualname__}"
    _CACHES[name] = wrapper
    return wrapper  # type: ignore[return-value]


def cache_stats() -> Dict[str, Tuple[int, int, int]]:
    """Per-function ``(hits, misses, currsize)`` for every registered cache."""
    out: Dict[str, Tuple[int, int, int]] = {}
    for name, fn in _CACHES.items():
        info = fn.cache_info()
        out[name] = (info.hits, info.misses, info.currsize)
    return out


def clear_caches() -> None:
    """Empty every registered cache (for cold-start benchmarks and tests)."""
    for fn in _CACHES.values():
        fn.cache_clear()


@contextmanager
def caching_disabled() -> Iterator[None]:
    """Temporarily bypass every cache built with :func:`memoized`.

    Used by the benchmark runner to measure the uncached baseline of a
    sweep without reverting the refactor.  Not thread-safe (flips a
    process-wide flag), which is fine for the serial benchmark loop.
    """
    global _DISABLED
    previous = _DISABLED
    _DISABLED = True
    try:
        yield
    finally:
        _DISABLED = previous
