"""Memoization of pure sub-model calls (estimation-pipeline cache layer).

The paper's evaluation is a family of parameter sweeps over one expensive
estimator; at every grid point the same pure sub-models (timing laws,
distance search, factory/cultivation cycle models, the [[8,3,2]] code
construction) are re-derived from identical frozen-dataclass inputs.  This
module provides the process-wide cache those sweeps share:

* :func:`memoized` -- an ``lru_cache`` wrapper for pure functions whose
  arguments are hashable (frozen dataclasses, scalars).  Unhashable calls
  fall through to the raw function instead of raising.
* :func:`register_cache` -- hook for hand-rolled caches (e.g. the
  fingerprint-keyed compiled-program cache of :mod:`repro.sim.periodic`,
  whose keys are derived rather than argument tuples) to join the same
  stats/clearing machinery by exposing ``lru_cache``-style ``cache_info``
  / ``cache_clear``.
* :func:`cache_stats` -- per-function hit/miss/size counters, used by the
  sweep-engine tests and the benchmark runner.  The same counters are
  exported as ``repro_cache_{hits,misses,entries}{cache=...}`` gauges by
  a scrape-time collector that :mod:`repro.obs` registers (obs depends on
  this module, never the reverse); ``cache_stats()`` remains the stable
  programmatic API.
* :func:`clear_caches` -- reset every registered cache (cold-start timing).
* :func:`caching_disabled` -- context manager bypassing every cache, for
  honest cached-vs-uncached A/B measurements.
* :func:`code_version` -- a fingerprint of the installed ``repro`` source
  tree, used by the persistent result store to invalidate entries computed
  by older code and stamped into every ``ScenarioResult``'s metadata.

Caches are per-process: ``multiprocessing`` sweep workers each build their
own, which keeps results independent of the worker count.  Within a
process the layer is thread-safe: the bypass switch is thread-local (one
thread measuring uncached timings does not stampede the service's worker
threads), and the underlying ``lru_cache`` is safe under the GIL.
"""

from __future__ import annotations

import functools
import hashlib
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

# All memoized functions, keyed by qualified name, for stats/clearing.
_CACHES: Dict[str, Callable[..., Any]] = {}

# Per-thread bypass switch (see caching_disabled()).  Thread-local rather
# than a module global so a benchmark thread measuring the uncached
# baseline cannot disable caching for concurrent service requests.
_LOCAL = threading.local()

# Lazily computed source-tree fingerprint (see code_version()); guarded by
# _FINGERPRINT_LOCK and reset by clear_caches().
_FINGERPRINT: Optional[str] = None
_FINGERPRINT_LOCK = threading.Lock()


def _bypassed() -> bool:
    return getattr(_LOCAL, "disabled", False)


def bypassed() -> bool:
    """True while :func:`caching_disabled` is active on this thread.

    Public probe for hand-rolled caches (see :func:`register_cache`) that
    implement their own lookup path and must honor the same bypass switch
    as :func:`memoized` wrappers.
    """
    return _bypassed()


def _hashable(args: tuple, kwargs: dict) -> bool:
    try:
        hash(args)
        hash(tuple(sorted(kwargs.items())))
    except TypeError:
        return False
    return True


def memoized(fn: F) -> F:
    """Memoize a pure function keyed on its (hashable) arguments.

    The decorated function must be deterministic and return a value that is
    safe to share between callers (immutable, or only ever read).  Calls
    with unhashable arguments (e.g. an explicit list of sweep periods)
    bypass the cache silently.
    """
    cached = functools.lru_cache(maxsize=None)(fn)

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if _bypassed() or not _hashable(args, kwargs):
            return fn(*args, **kwargs)
        return cached(*args, **kwargs)

    wrapper.cache_info = cached.cache_info  # type: ignore[attr-defined]
    wrapper.cache_clear = cached.cache_clear  # type: ignore[attr-defined]
    name = f"{fn.__module__}.{fn.__qualname__}"
    _CACHES[name] = wrapper
    return wrapper  # type: ignore[return-value]


def register_cache(name: str, cache: Any) -> None:
    """Register a hand-rolled cache for :func:`cache_stats`/:func:`clear_caches`.

    ``cache`` must expose ``lru_cache``-style ``cache_info()`` (an object
    with ``hits``/``misses``/``currsize`` attributes) and ``cache_clear()``.
    Used by caches whose keys are computed (content fingerprints) rather
    than taken from hashable call arguments, which :func:`memoized` cannot
    express.
    """
    if name in _CACHES:
        raise ValueError(f"cache {name!r} is already registered")
    for attr in ("cache_info", "cache_clear"):
        if not callable(getattr(cache, attr, None)):
            raise TypeError(f"cache {name!r} must provide {attr}()")
    _CACHES[name] = cache


def cache_stats() -> Dict[str, Tuple[int, int, int]]:
    """Per-function ``(hits, misses, currsize)`` for every registered cache."""
    out: Dict[str, Tuple[int, int, int]] = {}
    for name, fn in _CACHES.items():
        info = fn.cache_info()
        out[name] = (info.hits, info.misses, info.currsize)
    return out


def clear_caches() -> None:
    """Empty every registered cache (for cold-start benchmarks and tests).

    Also drops the memoized :func:`code_version` fingerprint so the next
    caller re-hashes the source tree -- a test that monkeypatches the
    fingerprint (or an embedder that hot-reloads modules) gets a coherent
    value after clearing.
    """
    global _FINGERPRINT
    for fn in _CACHES.values():
        fn.cache_clear()
    with _FINGERPRINT_LOCK:
        _FINGERPRINT = None


@contextmanager
def caching_disabled() -> Iterator[None]:
    """Temporarily bypass every cache built with :func:`memoized`.

    Used by the benchmark runner to measure the uncached baseline of a
    sweep without reverting the refactor.  The switch is thread-local:
    only the calling thread bypasses its caches, so concurrent service
    worker threads keep their hits.
    """
    previous = _bypassed()
    _LOCAL.disabled = True
    try:
        yield
    finally:
        _LOCAL.disabled = previous


def code_version() -> str:
    """Fingerprint of the installed ``repro`` source tree (16 hex chars).

    A stable hash over every ``*.py`` file under the package root, in
    sorted relative-path order.  The persistent result store bakes it into
    every entry's key so results computed by older code can never be
    served by newer code, and :class:`~repro.estimator.registry.Scenario`
    stamps it into result metadata (visible in ``--json`` output and the
    HTTP API).  Computed once per process and cached; reset by
    :func:`clear_caches`.
    """
    global _FINGERPRINT
    with _FINGERPRINT_LOCK:
        if _FINGERPRINT is None:
            import repro

            root = Path(repro.__file__).resolve().parent
            digest = hashlib.sha256()
            for path in sorted(root.rglob("*.py")):
                digest.update(str(path.relative_to(root)).encode())
                digest.update(b"\0")
                digest.update(path.read_bytes())
                digest.update(b"\0")
            _FINGERPRINT = digest.hexdigest()[:16]
        return _FINGERPRINT
