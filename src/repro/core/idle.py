"""Idle-storage syndrome-extraction scheduling (paper Fig. 11(c,d)).

Idle qubits accumulate coherence errors at rate ~1/T_coh; each SE round adds
gate errors but removes entropy.  Running SE too often wastes volume and adds
gate noise; too rarely lets idle errors swamp the code.  The paper finds the
optimum SE period is roughly where the accumulated idle error matches the
per-round gate error, is nearly independent of code distance, and lands at
~8 ms for a 10 s coherence time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.cache import memoized
from repro.core.params import ErrorParams, PhysicalParams

# Effective error locations per data qubit per SE round.  The paper's
# Eq. (2) convention folds the whole SE round's circuit noise into a single
# p_phys against the 1% threshold (that is how C = 0.1, Lambda = 10
# reproduce standard memory numbers), so the SE contribution enters with
# weight 1 and idle noise adds on top of it in Eq. (3).
SE_ERROR_LOCATIONS = 1.0


def idle_error_per_period(period: float, physical: PhysicalParams) -> float:
    """Physical idle error accumulated by one qubit over ``period`` seconds.

    Linearized decoherence: p_idle = period / T_coh (valid for period << T).
    """
    if period < 0:
        raise ValueError("period must be non-negative")
    return min(period / physical.coherence_time, 1.0)


def storage_error_per_round(
    distance: int,
    period: float,
    error: ErrorParams,
    physical: PhysicalParams,
) -> float:
    """Logical error per storage qubit per SE round at a given SE period.

    Applies Eq. (3) with two sources: SE gate noise (weight 1) and idle noise
    accumulated since the previous round.
    """
    effective = SE_ERROR_LOCATIONS * error.p_phys + idle_error_per_period(period, physical)
    return error.prefactor_c * (effective / error.p_thres) ** ((distance + 1) / 2.0)


def storage_error_rate(
    distance: int,
    period: float,
    error: ErrorParams,
    physical: PhysicalParams,
) -> float:
    """Logical error per storage qubit per second at a given SE period."""
    if period <= 0:
        raise ValueError("period must be positive")
    return storage_error_per_round(distance, period, error, physical) / period


@dataclass(frozen=True)
class IdleOptimum:
    """Result of optimizing the storage SE period."""

    period: float
    error_rate: float
    idle_error: float
    gate_error: float


def optimal_storage_period(
    distance: int,
    error: ErrorParams,
    physical: PhysicalParams,
    periods: Sequence[float] | None = None,
) -> IdleOptimum:
    """SE period minimizing logical error per storage qubit per second.

    Sweeps a logarithmic grid (0.1 ms .. 1 s by default).  For Table I
    parameters and a 10 s coherence time the optimum is in the several-ms
    range, nearly independent of distance (paper Fig. 11(c)), and sits where
    idle error is comparable to the SE gate error (Fig. 11(d)).
    """
    if periods is None:
        periods = [10 ** (-4 + 4 * i / 199) for i in range(200)]
    best_period = None
    best_rate = math.inf
    for period in periods:
        rate = storage_error_rate(distance, period, error, physical)
        if rate < best_rate:
            best_rate = rate
            best_period = period
    if best_period is None:
        raise ValueError("empty period grid")
    return IdleOptimum(
        period=best_period,
        error_rate=best_rate,
        idle_error=idle_error_per_period(best_period, physical),
        gate_error=SE_ERROR_LOCATIONS * error.p_phys,
    )


def analytic_optimal_period(
    distance: int, error: ErrorParams, physical: PhysicalParams
) -> float:
    """Closed-form optimum of the per-second storage error.

    Minimizing ((g + t/T)^k)/t with k = (d+1)/2 gives t* = g T / (k - 1):
    the idle error at the optimum equals the gate error divided by (k - 1),
    confirming the "idle ~ gate error" heuristic up to an O(1/d) factor.
    """
    k = (distance + 1) / 2.0
    if k <= 1:
        raise ValueError("distance too small for an interior optimum")
    gate = SE_ERROR_LOCATIONS * error.p_phys
    return gate * physical.coherence_time / (k - 1.0)


@memoized
def optimal_storage_period_volume(
    error: ErrorParams,
    physical: PhysicalParams,
    error_rate_target: float = 1e-13,
    periods: Sequence[float] | None = None,
    max_distance: int = 201,
) -> IdleOptimum:
    """SE period minimizing storage *space-time volume* (paper Fig. 11(c)).

    For each period, the smallest distance meeting a per-qubit-per-second
    error target is found; the storage cost per qubit per second scales as
    d^2 / period (atoms times SE work).  This optimization -- rather than
    the raw error-rate minimum -- sets the paper's 8 ms operating point,
    and its optimum is largely independent of the distance regime.
    """
    if periods is None:
        periods = [10 ** (-4 + 4 * i / 99) for i in range(100)]
    best = None
    best_cost = math.inf
    for period in periods:
        distance = None
        for d in range(3, max_distance + 1, 2):
            if storage_error_rate(d, period, error, physical) <= error_rate_target:
                distance = d
                break
        if distance is None:
            continue
        cost = distance**2 / period
        if cost < best_cost:
            best_cost = cost
            best = period
    if best is None:
        raise ValueError("no period meets the target below max_distance")
    return IdleOptimum(
        period=best,
        error_rate=error_rate_target,
        idle_error=idle_error_per_period(best, physical),
        gate_error=SE_ERROR_LOCATIONS * error.p_phys,
    )
