"""Heuristic logical-error model for transversal architectures (Sec. III.4).

Implements Eqs. (2)-(6) of the paper:

* Eq. (2): surface-code memory error per qubit per SE round,
  ``p_L = C (1/Lambda)^((d+1)/2)``.
* Eq. (3): generalized error with weighted noise sources.
* Eq. (4): per-CNOT logical error with ``x`` transversal CNOTs per SE round,
  ``p_L,CNOT = (2C/x) ((alpha x + 1)/Lambda)^((d+1)/2)``.
* Eq. (5): effective threshold ``p_thres,eff = p_thres / (alpha x + 1)``.
* Eq. (6): space-time volume per logical CNOT, used to pick the optimal
  SE frequency.

All probabilities are per-qubit unless stated otherwise, matching the paper's
additive treatment across qubits and rounds.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.cache import memoized
from repro.core.params import ErrorParams


def memory_error_per_round(distance: int, error: ErrorParams) -> float:
    """Eq. (2): logical error per qubit per SE round for an idle patch."""
    _check_distance(distance)
    return error.prefactor_c * (1.0 / error.lam) ** ((distance + 1) / 2.0)


def weighted_error_per_round(
    distance: int,
    error: ErrorParams,
    source_rates: Sequence[float],
    source_weights: Sequence[float],
) -> float:
    """Eq. (3): error per qubit per round with weighted noise sources.

    Args:
        distance: code distance d.
        error: model constants (threshold, prefactor).
        source_rates: physical error rate p_j of each source in the round.
        source_weights: weight beta_j of each source.
    """
    _check_distance(distance)
    if len(source_rates) != len(source_weights):
        raise ValueError("source_rates and source_weights must align")
    effective = sum(b * p for b, p in zip(source_weights, source_rates))
    return error.prefactor_c * (effective / error.p_thres) ** ((distance + 1) / 2.0)


def transversal_cnot_error(distance: int, error: ErrorParams, cnots_per_round: float) -> float:
    """Eq. (4): logical error per qubit per transversal CNOT.

    ``cnots_per_round`` is x, the number of transversal CNOTs executed between
    consecutive SE rounds.  The limit x -> 0 recovers the memory cost per
    CNOT: gates spaced many rounds apart each pay 2/x rounds of memory error.

    Returns the per-CNOT (two-qubit) logical error probability.
    """
    _check_distance(distance)
    if cnots_per_round <= 0:
        raise ValueError(f"cnots_per_round must be positive, got {cnots_per_round}")
    x = cnots_per_round
    base = (error.alpha * x + 1.0) / error.lam
    return (2.0 * error.prefactor_c / x) * base ** ((distance + 1) / 2.0)


def effective_threshold(error: ErrorParams, cnots_per_round: float) -> float:
    """Eq. (5): threshold reduction from extra transversal-gate noise.

    With alpha = 1/6 and one CNOT per round this gives ~0.86%, consistent
    with the >= 0.87% observed in Ref. [17]; alpha = 1/2 gives ~0.67%.
    """
    if cnots_per_round < 0:
        raise ValueError("cnots_per_round must be non-negative")
    return error.p_thres / (error.alpha * cnots_per_round + 1.0)


@memoized
def required_distance(
    target_error: float,
    error: ErrorParams,
    cnots_per_round: float = 1.0,
    max_distance: int = 201,
) -> int:
    """Smallest odd distance meeting a per-qubit per-CNOT error target.

    Inverts Eq. (4).  Raises ``ValueError`` if even ``max_distance`` falls
    short (i.e. the physical error rate is above the effective threshold).
    """
    if target_error <= 0:
        raise ValueError("target_error must be positive")
    x = cnots_per_round
    base = (error.alpha * x + 1.0) / error.lam
    if base >= 1.0:
        raise ValueError(
            "physical error rate above effective threshold; "
            f"base {base:.3f} >= 1, no distance suffices"
        )
    for distance in range(3, max_distance + 1, 2):
        if transversal_cnot_error(distance, error, x) <= target_error:
            return distance
    raise ValueError(f"no distance <= {max_distance} reaches {target_error}")


@memoized
def required_distance_memory(
    target_error_per_round: float, error: ErrorParams, max_distance: int = 201
) -> int:
    """Smallest odd distance whose Eq. (2) memory error meets a target."""
    if target_error_per_round <= 0:
        raise ValueError("target_error_per_round must be positive")
    for distance in range(3, max_distance + 1, 2):
        if memory_error_per_round(distance, error) <= target_error_per_round:
            return distance
    raise ValueError(f"no distance <= {max_distance} reaches {target_error_per_round}")


def cnot_spacetime_volume(
    cnots_per_round: float,
    error: ErrorParams,
    target_error: float = 1e-12,
) -> float:
    """Eq. (6): relative space-time volume per logical CNOT.

    Picks the (continuous) distance meeting ``target_error`` at the given SE
    frequency, then charges d^2 * (4/x + 1) physical-CNOT-equivalents: each
    SE round contributes 4 CNOTs of syndrome extraction amortized over x
    logical CNOTs, plus the transversal CNOT layer itself.

    Returns an arbitrary-units volume suitable for comparing SE frequencies
    (paper Fig. 6(b)).
    """
    x = cnots_per_round
    if x <= 0:
        raise ValueError("cnots_per_round must be positive")
    base = (error.alpha * x + 1.0) / error.lam
    if base >= 1.0:
        return math.inf
    # Continuous solution of Eq. (4) for (d+1)/2.
    exponent = math.log(x * target_error / (2.0 * error.prefactor_c)) / math.log(base)
    distance = max(2.0 * exponent - 1.0, 1.0)
    return distance**2 * (4.0 / x + 1.0)


def optimal_cnots_per_round(
    error: ErrorParams,
    target_error: float = 1e-12,
    candidates: Sequence[float] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0),
) -> float:
    """SE-frequency choice minimizing Eq. (6) over a candidate grid.

    The paper finds the optimum at >= 1 CNOT per SE round for its parameters
    (Fig. 6(b)) and fixes 1 round per gate for simplicity.
    """
    best = None
    best_volume = math.inf
    for x in candidates:
        volume = cnot_spacetime_volume(x, error, target_error)
        if volume < best_volume:
            best_volume = volume
            best = x
    if best is None:
        raise ValueError("no feasible SE frequency among candidates")
    return best


def _check_distance(distance: int) -> None:
    if distance < 1:
        raise ValueError(f"distance must be >= 1, got {distance}")
