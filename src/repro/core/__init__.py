"""Core models: parameters, movement, timing, logical errors, volume."""

from repro.core.idle import (
    IdleOptimum,
    optimal_storage_period,
    optimal_storage_period_volume,
    storage_error_rate,
)
from repro.core.logical_error import (
    cnot_spacetime_volume,
    effective_threshold,
    memory_error_per_round,
    optimal_cnots_per_round,
    required_distance,
    required_distance_memory,
    transversal_cnot_error,
)
from repro.core.movement import (
    batch_move_time,
    max_move_distance,
    move_time,
    move_time_sites,
    patch_move_time,
)
from repro.core.params import (
    DEFAULT_CONFIG,
    DEFAULT_ERROR,
    DEFAULT_PHYSICAL,
    ArchitectureConfig,
    ErrorParams,
    PhysicalParams,
)
from repro.core.timing import TimingModel
from repro.core.volume import ResourceEstimate, SpaceTime, VolumeLedger, peak_footprint

__all__ = [
    "ArchitectureConfig",
    "DEFAULT_CONFIG",
    "DEFAULT_ERROR",
    "DEFAULT_PHYSICAL",
    "ErrorParams",
    "IdleOptimum",
    "PhysicalParams",
    "ResourceEstimate",
    "SpaceTime",
    "TimingModel",
    "VolumeLedger",
    "batch_move_time",
    "cnot_spacetime_volume",
    "effective_threshold",
    "max_move_distance",
    "memory_error_per_round",
    "move_time",
    "move_time_sites",
    "optimal_cnots_per_round",
    "optimal_storage_period",
    "optimal_storage_period_volume",
    "patch_move_time",
    "peak_footprint",
    "required_distance",
    "required_distance_memory",
    "storage_error_rate",
    "transversal_cnot_error",
]
