"""Command-line entry point: regenerate the paper's evaluation.

Registry-driven: sections are looked up in the scenario registry
(:mod:`repro.estimator.registry`), so adding a scenario requires zero CLI
edits.

Usage:
    python -m repro                   # headline estimate + Fig. 2 comparison
    python -m repro all               # every analytic table/figure
    python -m repro fig11 table2      # specific sections
    python -m repro --list            # registered scenarios
    python -m repro --json fig13      # structured records instead of text
    python -m repro --jobs 4 fig11    # shard sweeps over worker processes
    python -m repro fig13 --param target_error=1e-11
"""

from __future__ import annotations

import argparse
import ast
import json
import math
import sys
from typing import Any, Dict, List

from repro.estimator.registry import (
    all_sections,
    available_scenarios,
    describe_scenarios,
    get_scenario,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "sections",
        nargs="*",
        metavar="SECTION",
        help="scenario names (see --list), or 'all'; default: headline",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit structured JSON records instead of rendered text",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sharded sweeps (results are identical "
        "for any N)",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="scenario parameter override (repeatable); values are parsed "
        "as Python literals when possible",
    )
    return parser


def _parse_params(pairs: List[str], parser: argparse.ArgumentParser) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            parser.error(f"--param expects KEY=VALUE, got {pair!r}")
        if key == "jobs":
            parser.error("use --jobs N instead of --param jobs=N")
        try:
            params[key] = ast.literal_eval(raw)
        except (SyntaxError, ValueError):
            params[key] = raw
    return params


def _resolve_sections(
    sections: List[str], parser: argparse.ArgumentParser
) -> List[str]:
    """Expand 'all' and validate every name up front via the registry.

    Validating before running anything means a typo cannot fail a
    multi-section invocation partway through, after earlier sections have
    already printed.
    """
    if not sections:
        return ["headline"]
    resolved: List[str] = []
    for name in sections:
        if name == "all":
            resolved.extend(all_sections())
        else:
            resolved.append(name)
    known = set(available_scenarios())
    unknown = sorted({name for name in resolved if name not in known})
    if unknown:
        names = ", ".join(repr(name) for name in unknown)
        parser.error(
            f"unknown section(s): {names}; available: "
            + ", ".join(available_scenarios())
        )
    return resolved


def _validate_params(
    sections: List[str],
    params: Dict[str, Any],
    parser: argparse.ArgumentParser,
) -> None:
    """Reject --param keys any requested scenario doesn't accept, up front.

    Like section names, overrides are validated before anything runs so a
    bad key cannot abort a multi-section invocation partway through.
    """
    if not params:
        return
    for name in sections:
        accepted = get_scenario(name).accepted_params()
        if accepted is None:
            continue
        unknown = sorted(set(params) - accepted)
        if unknown:
            keys = ", ".join(repr(k) for k in unknown)
            supported = ", ".join(sorted(accepted)) or "(none)"
            parser.error(
                f"section {name!r} does not accept parameter(s) {keys}; "
                f"supported: {supported}"
            )


def _finite(obj: Any) -> Any:
    """Replace non-finite floats with None so the emitted JSON is RFC-valid.

    Infeasible sweep points legitimately carry ``math.inf`` (e.g. no
    distance meets the fig11_idle rate target at short periods); strict
    JSON consumers reject the bare ``Infinity`` token Python would emit.
    """
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    if isinstance(obj, dict):
        return {key: _finite(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_finite(value) for value in obj]
    return obj


def main(argv: List[str]) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.list:
        for name, description in describe_scenarios():
            print(f"  {name:12s} {description}")
        return

    params = _parse_params(args.param, parser)
    sections = _resolve_sections(args.sections, parser)
    _validate_params(sections, params, parser)
    banners = bool(args.sections) and "all" in args.sections and not args.json

    results = []
    for name in sections:
        scenario = get_scenario(name)
        result = scenario.run(jobs=args.jobs, **params)
        if args.json:
            results.append(result.to_json())
            continue
        if banners:
            print(f"\n===== {name} =====")
        print(scenario.render(result))

    if args.json:
        print(json.dumps(_finite(results), indent=2, allow_nan=False))


if __name__ == "__main__":
    try:
        main(sys.argv[1:])
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(1)
