"""Command-line entry point: regenerate the paper's evaluation.

Usage:
    python -m repro                 # headline estimate + Fig. 2 comparison
    python -m repro all             # every analytic table/figure
    python -m repro fig2|fig6b|fig11|fig12|fig13|fig14|table1|table2
"""

from __future__ import annotations

import sys

from repro.algorithms.factoring import estimate_factoring
from repro.experiments import fig2, fig6, fig11, fig12, fig13, fig14, tables


def run_headline() -> None:
    est = estimate_factoring()
    print("== 2048-bit factoring, transversal architecture ==")
    print(f"  {est.physical_qubits / 1e6:.1f} M qubits, "
          f"{est.runtime_seconds / 86400:.2f} days, "
          f"{est.num_factories} factories")
    print()
    print("== Fig. 2 comparison ==")
    print(fig2.render(fig2.generate()))
    print(f"  speed-up vs GE19 @900us: {fig2.speedup_vs_ge():.0f}x")


def run_section(name: str) -> None:
    if name == "fig2":
        print(fig2.render(fig2.generate()))
    elif name == "fig6b":
        print(fig6.render_fig6b(fig6.generate_fig6b()))
    elif name == "fig11":
        for alpha in (1 / 6, 1 / 2):
            curve = fig11.factory_volume_vs_se_rounds(alpha)
            print(f"alpha = {alpha:.3f}:")
            for rounds, vol in sorted(curve.items()):
                print(f"  {rounds:5.2f} SE rounds/gate -> {vol:10.1f} qubit*s")
    elif name == "fig12":
        print(fig12.render(fig12.generate()))
    elif name == "fig13":
        for alpha, vol in sorted(fig13.volume_vs_alpha().items()):
            print(f"  alpha {alpha:.3f}: {vol:8.1f} Mq*days")
        for t, vol in sorted(fig13.volume_vs_coherence().items()):
            print(f"  T_coh {t:6.1f} s: {vol:8.1f} Mq*days")
    elif name == "fig14":
        for factor, vol in sorted(fig14.volume_vs_acceleration().items()):
            print(f"  a x {factor:4.2f}: {vol:8.1f} Mq*days")
        for mq, days in fig14.qubit_time_tradeoff():
            print(f"  {mq:6.1f} Mq -> {days:6.2f} days")
    elif name == "table1":
        for key, value in tables.table_i().items():
            print(f"  {key:20s} {value:10.1f}")
    elif name == "table2":
        print(tables.render_table_ii(tables.table_ii_rows()))
    else:
        raise SystemExit(f"unknown section {name!r}")


def main(argv: list[str]) -> None:
    if not argv:
        run_headline()
        return
    if argv[0] == "all":
        for section in ("table1", "table2", "fig2", "fig6b", "fig11",
                        "fig12", "fig13", "fig14"):
            print(f"\n===== {section} =====")
            run_section(section)
        return
    for name in argv:
        run_section(name)


if __name__ == "__main__":
    main(sys.argv[1:])
