"""Command-line entry point: regenerate the paper's evaluation.

Registry-driven: sections are looked up in the scenario registry
(:mod:`repro.estimator.registry`), so adding a scenario requires zero CLI
edits.

Usage:
    python -m repro                   # headline estimate + Fig. 2 comparison
    python -m repro all               # every analytic table/figure
    python -m repro fig11 table2      # specific sections
    python -m repro --list            # registered scenarios
    python -m repro --json fig13      # structured records instead of text
    python -m repro --jobs 4 fig11    # shard sweeps over worker processes
    python -m repro fig13 --param target_error=1e-11
    python -m repro serve --port 8000 # HTTP estimation service
    python -m repro lint --all        # diagnostics over every scenario
    python -m repro metrics fig11     # run a scenario, dump Prometheus text
    python -m repro --trace out.json fig11  # Chrome trace + span tree

With ``REPRO_STORE_DIR`` set (or ``--store-dir`` given), results are
warm-started from -- and persisted to -- the on-disk result store shared
with ``python -m repro serve``, so repeated invocations skip recomputation
entirely.  Store entries are invalidated automatically when the installed
source changes (content-addressed on the code fingerprint), so a warm run
is always bit-identical to a cold one.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List

from repro.estimator.registry import (
    UnknownParamsError,
    all_sections,
    available_scenarios,
    describe_scenarios,
    get_scenario,
)
from repro.estimator.serialize import dumps_results, parse_override_value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "sections",
        nargs="*",
        metavar="SECTION",
        help="scenario names (see --list), or 'all'; default: headline",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit structured JSON records instead of rendered text",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sharded sweeps (results are identical "
        "for any N)",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="scenario parameter override (repeatable); values are parsed "
        "as Python literals when possible",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="warm-start from (and persist to) the on-disk result store "
        "at DIR; defaults to $REPRO_STORE_DIR when that is set",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record spans to a Chrome trace-event JSON at PATH "
        "(viewable in Perfetto) and print a span tree to stderr",
    )
    return parser


def _parse_params(pairs: List[str], parser: argparse.ArgumentParser) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            parser.error(f"--param expects KEY=VALUE, got {pair!r}")
        if key == "jobs":
            parser.error("use --jobs N instead of --param jobs=N")
        params[key] = parse_override_value(raw)
    return params


def _resolve_sections(
    sections: List[str], parser: argparse.ArgumentParser
) -> List[str]:
    """Expand 'all' and validate every name up front via the registry.

    Validating before running anything means a typo cannot fail a
    multi-section invocation partway through, after earlier sections have
    already printed.
    """
    if not sections:
        return ["headline"]
    resolved: List[str] = []
    for name in sections:
        if name == "all":
            resolved.extend(all_sections())
        else:
            resolved.append(name)
    known = set(available_scenarios())
    unknown = sorted({name for name in resolved if name not in known})
    if unknown:
        names = ", ".join(repr(name) for name in unknown)
        parser.error(
            f"unknown section(s): {names}; available: "
            + ", ".join(available_scenarios())
        )
    return resolved


def _validate_params(
    sections: List[str],
    params: Dict[str, Any],
    parser: argparse.ArgumentParser,
) -> None:
    """Reject --param keys any requested scenario doesn't accept, up front.

    Like section names, overrides are validated before anything runs so a
    bad key cannot abort a multi-section invocation partway through.
    """
    if not params:
        return
    for name in sections:
        try:
            get_scenario(name).validate_params(params)
        except UnknownParamsError as exc:
            parser.error(str(exc))


def _open_store(store_dir: str | None):
    """The persistent result store, when enabled; ``None`` otherwise.

    Enabled by ``--store-dir DIR`` or the ``REPRO_STORE_DIR`` env var.
    Imported lazily so the plain CLI never pays for the service layer.
    """
    store_dir = store_dir or os.environ.get("REPRO_STORE_DIR")
    if not store_dir:
        return None
    from repro.service.store import ResultStore

    return ResultStore(store_dir)


def main(argv: List[str]) -> None:
    if argv and argv[0] == "serve":
        from repro.service.api import serve

        serve(argv[1:])
        return
    if argv and argv[0] == "lint":
        from repro.analysis.lint import lint_main

        sys.exit(lint_main(argv[1:]))
    if argv and argv[0] == "metrics":
        from repro.obs.cli import metrics_main

        sys.exit(metrics_main(argv[1:]))

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.list:
        for name, description in describe_scenarios():
            print(f"  {name:12s} {description}")
        return

    params = _parse_params(args.param, parser)
    sections = _resolve_sections(args.sections, parser)
    _validate_params(sections, params, parser)
    banners = bool(args.sections) and "all" in args.sections and not args.json
    store = _open_store(args.store_dir)

    if args.trace:
        from repro.obs import enable_tracing

        enable_tracing(args.trace)

    results = []
    for name in sections:
        scenario = get_scenario(name)
        if store is not None:
            from repro.service.store import run_with_store

            result = run_with_store(
                name, jobs=args.jobs, store=store, **params
            )
        else:
            result = scenario.run(jobs=args.jobs, **params)
        if args.json:
            results.append(result.to_json())
            continue
        if banners:
            print(f"\n===== {name} =====")
        print(scenario.render(result))

    if args.json:
        print(dumps_results(results))

    if args.trace:
        from repro.obs import render_trace_tree, write_trace

        write_trace(args.trace)
        print(render_trace_tree(), file=sys.stderr)


if __name__ == "__main__":
    try:
        main(sys.argv[1:])
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(1)
