"""Windowed arithmetic for modular exponentiation (paper Sec. III.2, Ref. [65]).

Shor's modular exponentiation decomposes into controlled modular multiplies,
each into lookup-additions: groups of ``window_exp`` exponent bits and
``window_mul`` multiplicand bits select a classically pre-computed constant
that a QROM loads and an adder accumulates.  This module counts the
lookup-additions, Toffolis and register sizes as functions of the window
parameters -- the quantities the architecture-level optimizer trades off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arithmetic.runways import RunwayConfig


@dataclass(frozen=True)
class WindowedExpConfig:
    """Parameters of a windowed modular exponentiation.

    Attributes:
        modulus_bits: n, the RSA modulus size (2048 for the paper's target).
        exponent_bits: total exponent length n_e; Ekera-Hastad uses ~1.5 n.
        window_exp: exponent window w_exp (paper Table II: 3).
        window_mul: multiplication window w_mul (paper Table II: 4).
        runway: carry-runway layout of the target register.
    """

    modulus_bits: int
    exponent_bits: int
    window_exp: int
    window_mul: int
    runway: RunwayConfig

    def __post_init__(self) -> None:
        if self.modulus_bits < 2:
            raise ValueError("modulus_bits must be >= 2")
        if self.exponent_bits < 1:
            raise ValueError("exponent_bits must be >= 1")
        if self.window_exp < 1 or self.window_mul < 1:
            raise ValueError("window sizes must be >= 1")

    # -- counts ------------------------------------------------------------

    @property
    def lookup_address_bits(self) -> int:
        """QROM address width: both windows address the table."""
        return self.window_exp + self.window_mul

    @property
    def lookup_entries(self) -> int:
        """Table size per lookup: 2^(w_exp + w_mul)."""
        return 2**self.lookup_address_bits

    @property
    def num_multiplications(self) -> int:
        """Controlled modular multiplies: two per exponent window.

        Each windowed group performs a multiply and its inverse to
        uncompute, following the standard reversible construction [8, 65].
        """
        return 2 * -(-self.exponent_bits // self.window_exp)

    @property
    def lookup_additions_per_multiplication(self) -> int:
        """One lookup-addition per multiplicand window."""
        return -(-self.modulus_bits // self.window_mul)

    @property
    def num_lookup_additions(self) -> int:
        """Total lookup-additions of the whole algorithm.

        For the paper's parameters (n = 2048, n_e ~ 1.5 n, w_exp = 3,
        w_mul = 4) this is ~1.07e6, each taking one table lookup and one
        padded addition.
        """
        return self.num_multiplications * self.lookup_additions_per_multiplication

    @property
    def adder_width(self) -> int:
        """Bits rippled per addition: the runway-padded target register."""
        return self.runway.padded_width

    @property
    def toffolis_per_lookup(self) -> int:
        """Unary iteration: one AND per table entry (minus the trivial two)."""
        return max(self.lookup_entries - 2, 1)

    @property
    def toffolis_per_unlookup(self) -> int:
        """Measurement-based unlookup: ~sqrt of the table size [65]."""
        return 2 * math.isqrt(self.lookup_entries)

    @property
    def toffolis_per_addition(self) -> int:
        """Sequential Toffoli steps: MAJ + UMA over every padded bit."""
        return 2 * self.adder_width

    @property
    def ccz_per_addition(self) -> int:
        """Magic states per addition: one per MAJ.

        The UMA Toffoli undoes a known AND, so it is performed by X-basis
        measurement plus a Clifford fix-up (Gidney's temporary-AND
        uncomputation) and consumes no |CCZ> state.
        """
        return self.adder_width

    @property
    def total_ccz(self) -> float:
        """|CCZ> count of the algorithm; ~3e9 for 2048-bit RSA (Sec. III.6)."""
        per_la = (
            self.toffolis_per_lookup
            + self.toffolis_per_unlookup
            + self.ccz_per_addition
        )
        return float(self.num_lookup_additions) * per_la

    @property
    def total_toffolis(self) -> float:
        """Sequential Toffoli steps over the whole algorithm (depth proxy)."""
        per_la = (
            self.toffolis_per_lookup
            + self.toffolis_per_unlookup
            + self.toffolis_per_addition
        )
        return float(self.num_lookup_additions) * per_la

    # -- registers ------------------------------------------------------------

    @property
    def register_logical_qubits(self) -> int:
        """Persistent logical data qubits.

        Two n-bit modular registers (value and product workspace), the
        runway extensions, the n-bit lookup output register, and the small
        exponent/multiplicand windows.
        """
        runway_bits = self.runway.extra_qubits
        return (
            2 * self.modulus_bits
            + 2 * runway_bits
            + self.modulus_bits
            + self.window_exp
            + self.window_mul
        )


def ekera_hastad_exponent_bits(modulus_bits: int) -> int:
    """Exponent length of the Ekera-Hastad variant: ~1.5 n total.

    For RSA integers the short-discrete-logarithm reduction needs n/2 + 2
    runs of... a single run with n/2 * 3 = 1.5 n exponent bits (Refs. [74,
    75] as used by Ref. [8]).
    """
    if modulus_bits < 4:
        raise ValueError("modulus too small")
    return (3 * modulus_bits) // 2
