"""Reaction-limited timing of windowed additions (paper Secs. III.5, III.7).

With auto-corrected |CCZ> states, every MAJ/UMA Toffoli resolves its
conditional Clifford correction one reaction time after the previous one;
runway segments ripple in parallel, so an addition takes

    t_add = 2 * (r_sep + r_pad) * t_step,   t_step = max(t_r, t_gate-cycle)

which evaluates to ~0.28 s for the paper's r_sep = 96, r_pad = 43 and
1 ms reaction time.  CCZ consumption is one state per segment per step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arithmetic.maj_layout import MajBlockLayout
from repro.arithmetic.runways import RunwayConfig
from repro.core.params import PhysicalParams
from repro.core.timing import timing_model


@dataclass(frozen=True)
class AdditionTiming:
    """Timing/throughput summary of one runway-segmented addition."""

    runway: RunwayConfig
    code_distance: int
    physical: PhysicalParams = PhysicalParams()

    @property
    def step_time(self) -> float:
        """Per-Toffoli step: reaction-limited for Table I parameters."""
        timing = timing_model(self.physical)
        return timing.reaction_limited_step(self.code_distance)

    @property
    def duration(self) -> float:
        """Wall-clock of one addition: the sequential segment ripple."""
        return self.runway.toffoli_depth * self.step_time

    @property
    def ccz_per_step(self) -> float:
        """CCZ states consumed per step: one per active segment."""
        return float(self.runway.num_segments)

    @property
    def ccz_consumption_rate(self) -> float:
        """CCZ states per second while the addition runs."""
        return self.ccz_per_step / self.step_time

    @property
    def total_ccz(self) -> int:
        """CCZ states per addition: 2 Toffolis per padded bit."""
        return 2 * self.runway.padded_width

    def active_logical_qubits(self) -> int:
        """Logical qubits busy during the addition.

        Per segment: the 3 x 2 MAJ working set plus bridges; plus the
        padded target register itself.
        """
        block = MajBlockLayout(self.code_distance)
        return (
            self.runway.num_segments * block.logical_qubits
            + self.runway.padded_width
        )
