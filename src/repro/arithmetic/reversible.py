"""Classical reversible-circuit simulator.

Quantum arithmetic circuits (paper Sec. III.7) are classical reversible
logic run on superpositions; their functional correctness can therefore be
verified exhaustively/randomly on computational basis states.  This module
simulates circuits built from X / CX / CCX / SWAP over named bit registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Gate:
    """One reversible gate: NOT / CNOT / TOFFOLI / SWAP."""

    name: str  # "X" | "CX" | "CCX" | "SWAP"
    targets: Tuple[int, ...]

    def __post_init__(self) -> None:
        arity = {"X": 1, "CX": 2, "CCX": 3, "SWAP": 2}
        if self.name not in arity:
            raise ValueError(f"unknown reversible gate {self.name}")
        if len(self.targets) != arity[self.name]:
            raise ValueError(f"{self.name} expects {arity[self.name]} targets")
        if len(set(self.targets)) != len(self.targets):
            raise ValueError(f"repeated target in {self}")


class ReversibleCircuit:
    """Ordered gate list over ``num_bits`` wires."""

    def __init__(self, num_bits: int) -> None:
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        self.num_bits = num_bits
        self.gates: List[Gate] = []

    def x(self, a: int) -> "ReversibleCircuit":
        return self._add("X", (a,))

    def cx(self, control: int, target: int) -> "ReversibleCircuit":
        return self._add("CX", (control, target))

    def ccx(self, c1: int, c2: int, target: int) -> "ReversibleCircuit":
        return self._add("CCX", (c1, c2, target))

    def swap(self, a: int, b: int) -> "ReversibleCircuit":
        return self._add("SWAP", (a, b))

    def _add(self, name: str, targets: Tuple[int, ...]) -> "ReversibleCircuit":
        for t in targets:
            if not 0 <= t < self.num_bits:
                raise ValueError(f"wire {t} out of range")
        self.gates.append(Gate(name, targets))
        return self

    def extend(self, other: "ReversibleCircuit") -> "ReversibleCircuit":
        if other.num_bits != self.num_bits:
            raise ValueError("wire-count mismatch")
        self.gates.extend(other.gates)
        return self

    def inverse(self) -> "ReversibleCircuit":
        """The exact inverse circuit (all gates are involutions)."""
        inv = ReversibleCircuit(self.num_bits)
        inv.gates = list(reversed(self.gates))
        return inv

    # -- execution -----------------------------------------------------------

    def run(self, bits: Sequence[int]) -> List[int]:
        """Apply to a bit vector; returns the output bits."""
        if len(bits) != self.num_bits:
            raise ValueError("input width mismatch")
        state = [int(b) & 1 for b in bits]
        for gate in self.gates:
            if gate.name == "X":
                state[gate.targets[0]] ^= 1
            elif gate.name == "CX":
                c, t = gate.targets
                state[t] ^= state[c]
            elif gate.name == "CCX":
                c1, c2, t = gate.targets
                state[t] ^= state[c1] & state[c2]
            else:  # SWAP
                a, b = gate.targets
                state[a], state[b] = state[b], state[a]
        return state

    # -- cost metrics -----------------------------------------------------------

    def toffoli_count(self) -> int:
        return sum(1 for g in self.gates if g.name == "CCX")

    def cnot_count(self) -> int:
        return sum(1 for g in self.gates if g.name == "CX")

    def toffoli_depth(self) -> int:
        """Sequential Toffoli layers (greedy ASAP scheduling on wires)."""
        ready = [0] * self.num_bits
        depth = 0
        for gate in self.gates:
            start = max(ready[t] for t in gate.targets)
            finish = start + (1 if gate.name == "CCX" else 0)
            for t in gate.targets:
                ready[t] = finish
            depth = max(depth, finish)
        return depth


@dataclass
class RegisterFile:
    """Named, contiguous bit registers over one wire space."""

    widths: Dict[str, int]
    offsets: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cursor = 0
        for name, width in self.widths.items():
            if width < 1:
                raise ValueError(f"register {name!r} must have positive width")
            self.offsets[name] = cursor
            cursor += width
        self.total_bits = cursor

    def bit(self, register: str, index: int) -> int:
        """Wire index of bit ``index`` (LSB = 0) of a register."""
        if not 0 <= index < self.widths[register]:
            raise ValueError(f"bit {index} out of range for {register!r}")
        return self.offsets[register] + index

    def bits(self, register: str) -> List[int]:
        return [self.bit(register, i) for i in range(self.widths[register])]

    def encode(self, values: Dict[str, int]) -> List[int]:
        """Pack register values (little-endian) into a full bit vector."""
        state = [0] * self.total_bits
        for name, value in values.items():
            width = self.widths[name]
            if value < 0 or value >= (1 << width):
                raise ValueError(f"value {value} does not fit register {name!r}")
            for i in range(width):
                state[self.bit(name, i)] = (value >> i) & 1
        return state

    def decode(self, state: Sequence[int], register: str) -> int:
        """Read one register's integer value from a bit vector."""
        value = 0
        for i in range(self.widths[register]):
            value |= (state[self.bit(register, i)] & 1) << i
        return value
