"""Quantum arithmetic: reversible sim, Cuccaro adders, runways, windows."""

from repro.arithmetic.cuccaro import AdderSpec, add, cuccaro_adder, maj, registers, uma
from repro.arithmetic.maj_layout import MajBlockLayout
from repro.arithmetic.modexp import MultiplyAddSpec, multiply_add, multiply_add_circuit
from repro.arithmetic.reversible import Gate, RegisterFile, ReversibleCircuit
from repro.arithmetic.runways import RunwayConfig, minimum_padding
from repro.arithmetic.timing import AdditionTiming
from repro.arithmetic.windowed import WindowedExpConfig, ekera_hastad_exponent_bits

__all__ = [
    "AdderSpec",
    "AdditionTiming",
    "Gate",
    "MajBlockLayout",
    "MultiplyAddSpec",
    "RegisterFile",
    "ReversibleCircuit",
    "RunwayConfig",
    "WindowedExpConfig",
    "add",
    "cuccaro_adder",
    "ekera_hastad_exponent_bits",
    "maj",
    "minimum_padding",
    "multiply_add",
    "multiply_add_circuit",
    "registers",
    "uma",
]
