"""Spatial layout and timing of the MAJ/UMA block (paper Fig. 9(b,c)).

The MAJ block occupies a 3 x 2 arrangement of logical tiles holding the
carry c_i, the addend bits a_i / b_i and the three |CCZ> ancillae, plus two
bridge qubits (B0, B1) chaining consecutive blocks.  The choreography below
interleaves interacting patches tile-by-tile; every individual move is at
most one diagonal tile pitch, reproducing the paper's claim that the
maximal move distance is sqrt(2) * d * l.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.atoms.aod import BatchMove, Move
from repro.atoms.scheduler import MoveSchedule
from repro.core.params import PhysicalParams

# Logical-tile coordinates (row, col) inside the 3 x 2 block, in units of
# one patch pitch (d sites).  Mirrors the layout sketch of Fig. 9(c).
MAJ_TILES: Dict[str, Tuple[int, int]] = {
    "carry": (0, 0),
    "b": (0, 1),
    "a": (1, 0),
    "ccz0": (1, 1),
    "ccz1": (2, 0),
    "ccz2": (2, 1),
}
BRIDGE_TILES: Dict[str, Tuple[int, int]] = {"bridge0": (0, 2), "bridge1": (1, 2)}

# (mover, partner, meeting tile): the mover's patch interleaves onto the
# meeting tile (where the partner sits or simultaneously arrives), one
# entangling pulse fires, and the mover returns.  Every displacement in
# this choreography is at most one diagonal tile.
_CHOREOGRAPHY: List[Tuple[str, str, Tuple[int, int]]] = [
    ("a", "b", (0, 1)),        # CNOT a -> b
    ("a", "carry", (0, 0)),    # CNOT a -> carry
    ("ccz0", "carry", (0, 0)),  # teleported-Toffoli CNOTs
    ("ccz1", "a", (1, 0)),
    ("ccz2", "ccz0", (1, 1)),  # CZ-ancilla interactions stay in-row
    ("b", "ccz0", (1, 1)),     # conditional CZ correction
]


@dataclass(frozen=True)
class MajBlockLayout:
    """Geometry + timing of one MAJ (or UMA) block at distance d."""

    code_distance: int

    @property
    def footprint_tiles(self) -> Tuple[int, int]:
        """(rows, cols) of logical tiles, excluding bridges: 3 x 2."""
        return (3, 2)

    @property
    def logical_qubits(self) -> int:
        """Tiles in use: carry/a/b + 3 CCZ ancillae + 2 bridges."""
        return len(MAJ_TILES) + len(BRIDGE_TILES)

    def tile_site(self, name: str) -> Tuple[int, int]:
        """Site coordinates of a tile's corner (tiles are d x d sites)."""
        tiles = {**MAJ_TILES, **BRIDGE_TILES}
        row, col = tiles[name]
        d = self.code_distance
        return (row * d, col * d)

    def choreography(self) -> List[Tuple[str, Tuple[int, int], Tuple[int, int]]]:
        """(mover, from_tile, to_tile) for each interaction step."""
        out = []
        for mover, _partner, meeting in _CHOREOGRAPHY:
            out.append((mover, MAJ_TILES[mover], meeting))
        return out

    def max_move_sites(self) -> float:
        """Longest single move across the choreography, in site pitches."""
        d = self.code_distance
        longest = 0.0
        for _mover, src, dst in self.choreography():
            longest = max(
                longest, math.hypot(d * (src[0] - dst[0]), d * (src[1] - dst[1]))
            )
        return longest

    def schedule(self) -> MoveSchedule:
        """Validated move schedule: out-move + pulse + return per step."""
        d = self.code_distance
        schedule = MoveSchedule()
        for mover, src_tile, dst_tile in self.choreography():
            if src_tile == dst_tile:
                schedule.add_gates(f"{mover}:pulse", 1)
                continue
            src_corner = (src_tile[0] * d, src_tile[1] * d)
            d_row = (dst_tile[0] - src_tile[0]) * d
            d_col = (dst_tile[1] - src_tile[1]) * d
            sources = [
                (src_corner[0] + r, src_corner[1] + c)
                for r in range(d)
                for c in range(d)
            ]
            out = BatchMove([Move(s, (s[0] + d_row, s[1] + d_col)) for s in sources])
            schedule.add_move(f"{mover}:out", out, gate_pulses=1)
            back = BatchMove([Move((s[0] + d_row, s[1] + d_col), s) for s in sources])
            schedule.add_move(f"{mover}:back", back)
        return schedule

    def step_time(self, physical: PhysicalParams) -> float:
        """Duration of the movement/gate portion of one block."""
        return self.schedule().duration(physical)

    def max_move_is_sqrt2_d(self) -> bool:
        """Paper claim: the maximal move distance is sqrt(2) * d sites."""
        expected = math.sqrt(2.0) * self.code_distance
        return self.max_move_sites() <= expected + 1e-9
