"""Cuccaro ripple-carry adder (paper Sec. III.7, Fig. 9).

Builds the MAJ/UMA adder transforming |a>|b> -> |a>|a+b>, with an input
carry and an output carry bit.  Chosen by the paper for its low T count,
small workspace and steady magic-state consumption: one Toffoli per MAJ and
one per UMA, i.e. 2n Toffolis for an n-bit addition, consumed at a constant
rate along the ripple.

Wire layout (RegisterFile): ``cin`` (1) | ``a`` (n) | ``b`` (n) | ``cout`` (1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arithmetic.reversible import RegisterFile, ReversibleCircuit


@dataclass(frozen=True)
class AdderSpec:
    """Shape of one ripple-carry adder instance."""

    width: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("adder width must be positive")

    @property
    def toffoli_count(self) -> int:
        """One per MAJ + one per UMA block."""
        return 2 * self.width

    @property
    def toffoli_depth(self) -> int:
        """The ripple is fully sequential: 2n dependent Toffolis."""
        return 2 * self.width

    @property
    def workspace_qubits(self) -> int:
        """Input carry + output carry."""
        return 2


def registers(width: int) -> RegisterFile:
    """Standard register layout for an adder of the given width."""
    return RegisterFile({"cin": 1, "a": width, "b": width, "cout": 1})


def maj(circuit: ReversibleCircuit, c: int, b: int, a: int) -> None:
    """MAJ block: (c, b, a) -> (c^a, b^a, MAJ(a,b,c)).

    After MAJ, wire ``a`` carries the next carry bit c_{i+1}.
    """
    circuit.cx(a, b)
    circuit.cx(a, c)
    circuit.ccx(c, b, a)


def uma(circuit: ReversibleCircuit, c: int, b: int, a: int) -> None:
    """UMA block: inverse of MAJ followed by the sum update on ``b``."""
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def cuccaro_adder(width: int) -> ReversibleCircuit:
    """|cin>|a>|b>|0> -> |cin>|a>|a+b+cin mod 2^n>|carry_out>."""
    spec = AdderSpec(width)
    regs = registers(width)
    circuit = ReversibleCircuit(regs.total_bits)
    carry = regs.bit("cin", 0)
    # Ripple the carries up with MAJ blocks.
    chain = [carry]
    for i in range(width):
        a_i = regs.bit("a", i)
        b_i = regs.bit("b", i)
        maj(circuit, chain[-1], b_i, a_i)
        chain.append(a_i)
    # Copy out the final carry.
    circuit.cx(chain[-1], regs.bit("cout", 0))
    # Unwind with UMA blocks, leaving sums on b.
    for i in reversed(range(width)):
        a_i = regs.bit("a", i)
        b_i = regs.bit("b", i)
        maj_carry = chain[i]
        uma(circuit, maj_carry, b_i, a_i)
    assert circuit.toffoli_count() == spec.toffoli_count
    return circuit


def add(width: int, a: int, b: int, carry_in: int = 0) -> tuple[int, int]:
    """Run the adder classically: returns (sum mod 2^n, carry_out)."""
    regs = registers(width)
    circuit = cuccaro_adder(width)
    state = circuit.run(regs.encode({"a": a, "b": b, "cin": carry_in}))
    return regs.decode(state, "b"), regs.decode(state, "cout")
