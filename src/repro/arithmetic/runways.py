"""Oblivious carry runways (paper Sec. III.7, Ref. [66]).

A long ripple-carry addition is broken into segments of ``separation`` bits;
each segment boundary gets a ``padding``-bit runway register that absorbs
the carry obliviously, letting all segments ripple in parallel.  The price
is extra qubits (one runway per boundary) and an approximation error per
runway that decays as 2^-padding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.cache import memoized


@dataclass(frozen=True)
class RunwayConfig:
    """Runway layout for an n-bit adder.

    Attributes:
        register_width: total bits of the addition target (n).
        separation: bits between runway insertions (r_sep; paper: 96).
        padding: runway length in bits (r_pad; paper: 43).
    """

    register_width: int
    separation: int
    padding: int

    def __post_init__(self) -> None:
        if self.register_width < 1:
            raise ValueError("register_width must be positive")
        if self.separation < 1:
            raise ValueError("separation must be positive")
        if self.padding < 1:
            raise ValueError("padding must be positive")

    @property
    def num_segments(self) -> int:
        """Parallel ripple segments (ceil division)."""
        return -(-self.register_width // self.separation)

    @property
    def num_runways(self) -> int:
        """Runway registers: one per internal segment boundary."""
        return max(self.num_segments - 1, 0)

    @property
    def extra_qubits(self) -> int:
        """Logical qubits added by the runways."""
        return self.num_runways * self.padding

    @property
    def padded_width(self) -> int:
        """Register plus runway bits."""
        return self.register_width + self.extra_qubits

    @property
    def segment_ripple_length(self) -> int:
        """Sequential ripple length of the longest segment (bits).

        Each segment ripples through its own bits plus its runway padding.
        """
        return min(self.separation, self.register_width) + (
            self.padding if self.num_runways else 0
        )

    @property
    def toffoli_depth(self) -> int:
        """Sequential Toffolis per addition: MAJ + UMA over the segment."""
        return 2 * self.segment_ripple_length

    def runway_error_per_addition(self) -> float:
        """Probability a runway fails to absorb the carry pattern.

        Each oblivious runway deviates from the exact adder with probability
        ~2^-padding per use (Ref. [66]).
        """
        return self.num_runways * 2.0 ** (-self.padding)

    def additions_supported(self, budget: float) -> float:
        """How many additions fit in an approximation-error ``budget``."""
        per = self.runway_error_per_addition()
        return math.inf if per == 0 else budget / per


@memoized
def minimum_padding(num_additions: float, budget: float, num_runways: int) -> int:
    """Smallest padding keeping total runway error under ``budget``.

    Solves num_additions * num_runways * 2^-pad <= budget.
    """
    if num_additions <= 0 or num_runways <= 0:
        return 1
    if budget <= 0:
        raise ValueError("budget must be positive")
    return max(1, math.ceil(math.log2(num_additions * num_runways / budget)))
