"""Windowed modular multiply-add, functionally verified (Sec. III.2).

Builds the actual reversible circuit for one windowed multiply-accumulate

    |x> |t>  ->  |x> |t + c * x mod 2^n>

from the repo's own QROM and Cuccaro adder gadgets: the multiplicand x is
scanned in windows of w bits; each window's contribution
(c * window_value << offset) mod 2^n is precomputed classically into a
look-up table, loaded by the QROM, added into the target, and unloaded by
the inverse QROM.  This is exactly the inner loop of the paper's factoring
pipeline (Fig. 5(b)), executable end-to-end on the reversible simulator
for small instances, which pins down the lookup-addition counting used by
the resource estimates.

True *modular* reduction additionally uses runway/comparison tricks the
paper inherits from Ref. [65]; here the 2^n wrap-around of the adder plays
the role of the modulus, which preserves the gadget structure and count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arithmetic.cuccaro import cuccaro_adder
from repro.arithmetic.reversible import RegisterFile, ReversibleCircuit
from repro.lookup.qrom import qrom_circuit


@dataclass(frozen=True)
class MultiplyAddSpec:
    """One windowed multiply-accumulate instance.

    Attributes:
        width: register width n (arithmetic modulo 2^n).
        window: multiplicand window size w_mul.
        constant: the classical constant c.
    """

    width: int
    window: int
    constant: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.window < 1:
            raise ValueError("width and window must be positive")
        if not 0 <= self.constant < 2**self.width:
            raise ValueError("constant must fit the register")

    @property
    def num_windows(self) -> int:
        return -(-self.width // self.window)

    def window_table(self, index: int) -> List[int]:
        """Classical table for window ``index``: entry v = c*v << offset."""
        offset = index * self.window
        return [
            (self.constant * value << offset) % 2**self.width
            for value in range(2**self.window)
        ]

    @property
    def num_lookup_additions(self) -> int:
        """One per window -- the quantity the resource model counts."""
        return self.num_windows


def multiply_add_registers(spec: MultiplyAddSpec) -> RegisterFile:
    """Wires: x | target | adder scratch (cin/addend/cout) | QROM scratch."""
    scratch = max(spec.window - 1, 1)
    return RegisterFile(
        {
            "x": spec.width,
            "target": spec.width,
            "cin": 1,
            "addend": spec.width,
            "cout": 1,
            "scratch": scratch,
            "zero": spec.window,
        }
    )


def multiply_add_circuit(spec: MultiplyAddSpec) -> ReversibleCircuit:
    """|x>|t>|0...> -> |x>|t + c x mod 2^n>|0...> via lookup-additions."""
    regs = multiply_add_registers(spec)
    circuit = ReversibleCircuit(regs.total_bits)
    adder = cuccaro_adder(spec.width)

    def embed_adder() -> None:
        """Map the standalone adder's wires into this register file.

        Adder layout: cin | a(width) | b(width) | cout.  Here a = addend
        (the looked-up constant), b = target.
        """
        wire_map = {0: regs.bit("cin", 0)}
        for i in range(spec.width):
            wire_map[1 + i] = regs.bit("addend", i)
            wire_map[1 + spec.width + i] = regs.bit("target", i)
        wire_map[1 + 2 * spec.width] = regs.bit("cout", 0)
        for gate in adder.gates:
            mapped = tuple(wire_map[t] for t in gate.targets)
            circuit._add(gate.name, mapped)

    for index in range(spec.num_windows):
        table = spec.window_table(index)
        window_bits = min(spec.window, spec.width - index * spec.window)
        qrom = qrom_circuit(spec.window, table, spec.width)
        wire_map = {}
        for i in range(spec.window):
            if i < window_bits:
                wire_map[i] = regs.bit("x", index * spec.window + i)
            else:
                # Address bits beyond the register read as constant zero;
                # park them on dedicated always-zero wires.
                wire_map[i] = regs.bit("zero", i)
        for i in range(max(spec.window - 1, 1)):
            wire_map[spec.window + i] = regs.bit("scratch", i)
        for i in range(spec.width):
            wire_map[spec.window + max(spec.window - 1, 1) + i] = regs.bit(
                "addend", i
            )
        remapped = _remap(qrom, wire_map, circuit.num_bits)
        circuit.extend(remapped)
        embed_adder()
        circuit.extend(_remap(qrom.inverse(), wire_map, circuit.num_bits))
        # The shared cout wire accumulates the XOR of per-window carries;
        # modulo-2^n arithmetic discards it, and the adder's carry copy is
        # a plain CX, so a dirty cout never perturbs later windows.
    return circuit


def _remap(circuit: ReversibleCircuit, wire_map, num_bits: int) -> ReversibleCircuit:
    out = ReversibleCircuit(num_bits)
    for gate in circuit.gates:
        out._add(gate.name, tuple(wire_map[t] for t in gate.targets))
    return out


def multiply_add(spec: MultiplyAddSpec, x: int, target: int) -> int:
    """Execute the circuit classically; returns t + c*x mod 2^n.

    Raises AssertionError if the workspace fails to return to zero.
    """
    regs = multiply_add_registers(spec)
    circuit = multiply_add_circuit(spec)
    state = circuit.run(regs.encode({"x": x, "target": target}))
    cleaned = (
        regs.decode(state, "addend") == 0
        and regs.decode(state, "scratch") == 0
        and regs.decode(state, "zero") == 0
    )
    if not cleaned:
        raise AssertionError("workspace not cleaned")
    if regs.decode(state, "x") != x:
        raise AssertionError("multiplicand corrupted")
    return regs.decode(state, "target")
