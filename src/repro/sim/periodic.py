"""Periodic round-compilation: compile one SE round, replay it r times.

A d-distance, r-round memory experiment is one syndrome-extraction round
replayed r times, yet the linear compiler (:mod:`repro.sim.compiled`)
lowers all r copies and dispatches every noise op's RNG block separately,
so compile time and RNG dispatch overhead scale O(rounds) when the
underlying structure is O(1).  This module exploits the periodicity:

* :func:`detect_period` finds the longest repeated op-stream window --
  the same op sequence where the only change per repetition is a constant
  shift of every measurement-record reference (qubit indices and gate
  structure must match exactly).  Memory experiments match with the round
  body = one SE round; random circuits, transversal gadgets and r=1 runs
  fall back to the linear :class:`~repro.sim.compiled.CompiledProgram`.
* :class:`PeriodicProgram` lowers {prologue, round body, epilogue} once
  and replays the body r times over the same bit-packed planes, rebasing
  the body's measurement slots and sparse GF(2) detector/observable COO
  per replay by (r_index * measurements_per_round, r_index *
  detectors_per_round) instead of materializing r lowered copies.
* **RNG draw-order contract**: noise draws are *fused* -- one
  ``rng.random(count)`` dispatch covers many noise steps (up to
  :data:`DRAW_CHUNK_DOUBLES` uniforms), and the steps consume consecutive
  slices.  Because numpy's ``Generator.random`` fills a buffer from the
  same bit stream element by element, splitting one fused dispatch into
  per-op slices yields exactly the values the linear compiler's per-op
  dispatches produce, in the same order: the permutation of stream
  positions is the *identity*, and ``sample_packed`` stays bit-identical
  per seed (property-tested in ``tests/test_sim_periodic.py``).
* :func:`compile_program` picks the periodic path automatically and
  memoizes both program kinds per circuit fingerprint (registered with
  :func:`repro.core.cache.register_cache`), so the decoding engine's
  repeated ``run_until`` batches and repeated engines over the same
  circuit stop recompiling.
"""

from __future__ import annotations

import hashlib
import time
from collections import Counter, namedtuple
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.cache import register_cache
from repro.obs import metrics as _metrics
from repro.obs.spans import span
from repro.sim.circuit import Circuit
from repro.sim.compiled import (
    CompiledProgram,
    draw_count,
    execute_steps,
    lower_ops,
    sampling_noise,
)
from repro.sim.ops import MEASUREMENTS

# Ops whose targets are measurement-record indices (and therefore shift
# by the per-round measurement count between replays).
_RECORD_OPS = ("DETECTOR", "OBSERVABLE_INCLUDE")

# Upper bound on uniforms pre-drawn per fused RNG dispatch (~32 MB of
# float64).  Bounds peak memory; the replay loop re-fills the buffer as
# many times as needed.  Tests shrink it to force multi-chunk replays.
DRAW_CHUNK_DOUBLES = 4 * 1024 * 1024

# How many period candidates (distinct token-recurrence gaps) to scan.
_CANDIDATE_GAPS = 5

# Compile vs replay is the trade this module exists to win: compiles are
# counted by the kind actually produced ("periodic", "linear", or
# "linear_fallback" when auto wanted periodic but found no round), and
# replay time is separated from compile time so the amortization is
# visible in /metrics.
_COMPILES = _metrics.counter(
    "repro_periodic_compiles_total",
    "Packed-program compilations (cache misses) by produced kind.",
    ("kind",),
)
_COMPILE_SECONDS = _metrics.counter(
    "repro_periodic_compile_seconds_total",
    "Wall-clock seconds spent compiling packed programs, by produced kind.",
    ("kind",),
)
_REPLAY_SECONDS = _metrics.counter(
    "repro_periodic_replay_seconds_total",
    "Wall-clock seconds spent replaying periodic programs (run_packed).",
)


@dataclass(frozen=True)
class PeriodSpec:
    """A detected repetition window ``ops[start : start + length * reps]``.

    Within the window, repetition ``j`` equals repetition ``0`` except
    that every measurement-record reference is shifted by
    ``j * meas_per_rep``.  ``meas_start`` / ``det_start`` count the
    measurements and detectors emitted before the window.
    """

    start: int
    length: int
    reps: int
    meas_per_rep: int
    det_per_rep: int
    meas_start: int
    det_start: int

    @property
    def savings(self) -> int:
        """Ops the periodic lowering avoids re-lowering."""
        return (self.reps - 1) * self.length


def detect_period(circuit: Circuit) -> Optional[PeriodSpec]:
    """Find the best repeated round in a circuit's op stream, if any.

    Two ops match at stride L when they are equal except that
    DETECTOR / OBSERVABLE_INCLUDE record targets are shifted by exactly
    the number of measurements between the two positions.  Candidate
    strides are the most common recurrence gaps of identical op tokens;
    for each, one scan finds the longest run of matching positions.
    Returns the spec with the largest savings, or ``None`` when nothing
    repeats (non-memory circuits, single-round experiments).
    """
    ops = circuit.operations
    n = len(ops)
    if n < 2:
        return None

    # Token per op: record ops tokenize without their targets (those are
    # expected to shift); everything else must match exactly.
    tokens: List[tuple] = []
    for op in ops:
        if op.name in _RECORD_OPS:
            tokens.append((op.name, op.arg, len(op.targets)))
        else:
            tokens.append((op.name, op.arg, op.args, op.targets))

    meas_prefix = [0]
    det_prefix = [0]
    for op in ops:
        is_meas = op.name in MEASUREMENTS
        meas_prefix.append(meas_prefix[-1] + (len(op.targets) if is_meas else 0))
        det_prefix.append(det_prefix[-1] + (1 if op.name == "DETECTOR" else 0))

    # Candidate strides: gaps at which identical tokens recur most often.
    last_seen: Dict[tuple, int] = {}
    gaps: Counter = Counter()
    for i, token in enumerate(tokens):
        previous = last_seen.get(token)
        if previous is not None:
            gaps[i - previous] += 1
        last_seen[token] = i

    def matches(i: int, stride: int) -> bool:
        if tokens[i] != tokens[i + stride]:
            return False
        a, b = ops[i], ops[i + stride]
        if a.name in _RECORD_OPS:
            delta = meas_prefix[i + stride] - meas_prefix[i]
            return all(tb == ta + delta for ta, tb in zip(a.targets, b.targets))
        return True

    best: Optional[PeriodSpec] = None
    for stride, _ in gaps.most_common(_CANDIDATE_GAPS):
        if 2 * stride > n:
            continue
        i = 0
        while i < n - stride:
            if not matches(i, stride):
                i += 1
                continue
            run_start = i
            while i < n - stride and matches(i, stride):
                i += 1
            # A run of m matching positions covers m + stride ops, i.e.
            # 1 + m // stride full repetitions of the stride window.
            reps = (i - run_start) // stride + 1
            if reps >= 2:
                spec = PeriodSpec(
                    start=run_start,
                    length=stride,
                    reps=reps,
                    meas_per_rep=(
                        meas_prefix[run_start + stride] - meas_prefix[run_start]
                    ),
                    det_per_rep=(
                        det_prefix[run_start + stride] - det_prefix[run_start]
                    ),
                    meas_start=meas_prefix[run_start],
                    det_start=det_prefix[run_start],
                )
                if best is None or spec.savings > best.savings:
                    best = spec
            i += 1
    return best


class _FusedDraws:
    """Sequential slice server over fused ``rng.random`` dispatches.

    ``load(count)`` draws ``count`` uniforms in one dispatch; calls then
    hand out consecutive ``(targets, shots)`` views.  ``Generator.random``
    consumes its bit stream element by element, so the fused buffer holds
    exactly the values the equivalent per-op dispatches would return, in
    the same order -- slicing it is a pure no-op on the stream.
    """

    def __init__(self, rng: np.random.Generator, shots: int) -> None:
        self._rng = rng
        self._shots = shots
        self._buffer: Optional[np.ndarray] = None
        self._position = 0

    def load(self, count: int) -> None:
        self._buffer = self._rng.random(count) if count else None
        self._position = 0

    def __call__(self, targets: int) -> np.ndarray:
        size = targets * self._shots
        if size == 0:
            return np.empty((targets, self._shots))
        view = self._buffer[self._position : self._position + size]
        self._position += size
        return view.reshape(targets, self._shots)


class PeriodicProgram:
    """{prologue, round body x reps, epilogue} over bit-packed planes.

    The round body is lowered once; :meth:`run_packed` executes it
    ``reps`` times with per-replay measurement-slot offsets and rebases
    its detector/observable COO per replay.  Noise draws are fused across
    steps and replays (see the module docstring for the stream contract).
    Public surface mirrors :class:`~repro.sim.compiled.CompiledProgram`.
    """

    def __init__(self, circuit: Circuit, spec: Optional[PeriodSpec] = None) -> None:
        if spec is None:
            spec = detect_period(circuit)
        if spec is None:
            raise ValueError(
                "circuit has no repeated round; use CompiledProgram instead"
            )
        self.num_qubits = circuit.num_qubits
        self.num_measurements = circuit.num_measurements
        self.num_detectors = circuit.num_detectors
        self.num_observables = circuit.num_observables
        self.spec = spec
        ops = circuit.operations
        start, length, reps = spec.start, spec.length, spec.reps
        self._prologue = lower_ops(ops[:start])
        self._body = lower_ops(
            ops[start : start + length], spec.meas_start, spec.det_start
        )
        self._epilogue = lower_ops(
            ops[start + reps * length :],
            spec.meas_start + reps * spec.meas_per_rep,
            spec.det_start + reps * spec.det_per_rep,
        )
        if (
            self._prologue.meas_count != spec.meas_start
            or self._body.meas_count != spec.meas_per_rep
            or self._body.det_count != spec.det_per_rep
        ):  # pragma: no cover - detect_period guarantees consistency
            raise ValueError("periodic lowering disagrees with detected spec")

    def run_packed(
        self, shots: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``shots`` noisy shots; see ``CompiledProgram.run_packed``.

        Bit-identical per seed to the linear program's output: the fused
        draws preserve stream order exactly, and replaying the body with
        offset record bases applies the same updates the linear steps
        encode explicitly.
        """
        if shots < 0:
            raise ValueError("shots must be >= 0")
        replay_start = time.perf_counter() if _metrics.enabled() else 0.0
        words = (shots + 7) // 8
        padded = 8 * ((words + 7) // 8)  # rows double as uint64 word views
        x = np.zeros((self.num_qubits, padded), dtype=np.uint8)
        z = np.zeros((self.num_qubits, padded), dtype=np.uint8)
        flips = np.zeros((self.num_measurements, padded), dtype=np.uint8)
        x64 = x.view(np.uint64)
        z64 = z.view(np.uint64)
        f64 = flips.view(np.uint64)
        xw = x[:, :words]
        zw = z[:, :words]

        draws = _FusedDraws(rng, shots)
        noise = sampling_noise(draws)
        spec = self.spec
        reps = spec.reps
        meas_per_rep = spec.meas_per_rep

        draws.load(draw_count(self._prologue.steps, shots))
        execute_steps(self._prologue.steps, x64, z64, f64, xw, zw, noise)

        per_rep = draw_count(self._body.steps, shots)
        reps_per_chunk = (
            reps if per_rep == 0 else max(1, DRAW_CHUNK_DOUBLES // per_rep)
        )
        rep = 0
        while rep < reps:
            batch = min(reps_per_chunk, reps - rep)
            draws.load(batch * per_rep)
            for j in range(rep, rep + batch):
                execute_steps(
                    self._body.steps, x64, z64, f64, xw, zw, noise,
                    slot_offset=j * meas_per_rep,
                )
            rep += batch

        draws.load(draw_count(self._epilogue.steps, shots))
        execute_steps(self._epilogue.steps, x64, z64, f64, xw, zw, noise)

        detectors = np.zeros((self.num_detectors, padded), dtype=np.uint8)
        observables = np.zeros((self.num_observables, padded), dtype=np.uint8)
        self._scatter_records(detectors, observables, flips)
        if _metrics.enabled():
            _REPLAY_SECONDS.inc(time.perf_counter() - replay_start)
        return detectors[:, :words], observables[:, :words]

    def _scatter_records(
        self, detectors: np.ndarray, observables: np.ndarray, flips: np.ndarray
    ) -> None:
        """XOR-reduce measurement flips into detector/observable rows.

        The body's COO is stored once for replay 0; replaying rebases it
        by broadcasting the per-replay (measurement, detector) offsets --
        observable rows are global and never shift.
        """
        spec = self.spec
        reps = spec.reps
        offsets = np.arange(reps, dtype=np.intp)[:, None]
        for segment in (self._prologue, self._epilogue):
            if segment.det_meas.size:
                np.bitwise_xor.at(
                    detectors, segment.det_row, flips[segment.det_meas]
                )
            if segment.obs_meas.size:
                np.bitwise_xor.at(
                    observables, segment.obs_row, flips[segment.obs_meas]
                )
        body = self._body
        if body.det_meas.size:
            rows = (body.det_row[None, :] + spec.det_per_rep * offsets).ravel()
            meas = (body.det_meas[None, :] + spec.meas_per_rep * offsets).ravel()
            np.bitwise_xor.at(detectors, rows, flips[meas])
        if body.obs_meas.size:
            rows = np.tile(body.obs_row, reps)
            meas = (body.obs_meas[None, :] + spec.meas_per_rep * offsets).ravel()
            np.bitwise_xor.at(observables, rows, flips[meas])


Program = Union[CompiledProgram, PeriodicProgram]


def circuit_fingerprint(circuit: Circuit) -> str:
    """Content hash of a circuit's op stream (the program-cache key).

    Two circuits with equal fingerprints lower to identical programs:
    the hash covers every op's name, targets and probability arguments
    (float ``repr`` is exact round-trip in Python 3).
    """
    digest = hashlib.sha256()
    for op in circuit.operations:
        digest.update(repr((op.name, op.targets, op.arg, op.args)).encode())
        digest.update(b"\0")
    return digest.hexdigest()


_CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize", "currsize"])


class _ProgramCache:
    """Fingerprint-keyed program store with ``lru_cache``-style counters.

    Keys are content hashes rather than argument identities, so equal
    circuits built independently (e.g. every ``run_until`` batch, every
    engine over the same experiment) share one compiled program.
    Programs are immutable after compilation, safe to share.  Registered
    with :func:`repro.core.cache.register_cache` so the repo-wide
    ``cache_stats()`` / ``clear_caches()`` cover it.
    """

    def __init__(self) -> None:
        self._programs: Dict[Tuple[str, str], Program] = {}
        self._hits = 0
        self._misses = 0

    def get(self, circuit: Circuit, mode: str) -> Program:
        key = (circuit_fingerprint(circuit), mode)
        program = self._programs.get(key)
        if program is not None:
            self._hits += 1
            return program
        self._misses += 1
        program = _compile_uncached(circuit, mode)
        self._programs[key] = program
        return program

    def cache_info(self) -> "_CacheInfo":
        return _CacheInfo(self._hits, self._misses, None, len(self._programs))

    def cache_clear(self) -> None:
        self._programs.clear()
        self._hits = 0
        self._misses = 0


_PROGRAM_CACHE = _ProgramCache()
register_cache("repro.sim.periodic.compile_program", _PROGRAM_CACHE)


def _compile_uncached(circuit: Circuit, mode: str) -> Program:
    start = time.perf_counter()
    with span("periodic.compile", mode=mode):
        if mode == "linear":
            program: Program = CompiledProgram(circuit)
            kind = "linear"
        else:
            spec = detect_period(circuit)
            if spec is not None:
                program = PeriodicProgram(circuit, spec)
                kind = "periodic"
            elif mode == "periodic":
                raise ValueError(
                    "compile mode 'periodic' requires a repeated round, but "
                    "detect_period found none"
                )
            else:
                program = CompiledProgram(circuit)
                kind = "linear_fallback"
    if _metrics.enabled():
        _COMPILES.labels(kind=kind).inc()
        _COMPILE_SECONDS.labels(kind=kind).inc(time.perf_counter() - start)
    return program


def compile_program(circuit: Circuit, mode: str = "auto") -> Program:
    """Compile a circuit to its packed program, memoized by fingerprint.

    Args:
        circuit: the circuit to lower.
        mode: ``"auto"`` picks :class:`PeriodicProgram` when a period is
            detected and falls back to the linear
            :class:`~repro.sim.compiled.CompiledProgram` otherwise;
            ``"linear"`` / ``"periodic"`` force a path (``"periodic"``
            raises when the circuit has no repeated round).

    All modes produce programs whose ``run_packed`` output is
    bit-identical per seed.
    """
    if mode not in ("auto", "linear", "periodic"):
        raise ValueError(f"unknown compile mode {mode!r}")
    return _PROGRAM_CACHE.get(circuit, mode)
