"""Surface-code memory and transversal-CNOT experiment builders.

Generates circuits in the IR of :mod:`repro.sim.circuit` with DETECTOR
and OBSERVABLE_INCLUDE annotations, in the style of standard QEC memory
experiments:

* :func:`memory_circuit` -- one rotated patch, ``rounds`` SE rounds,
  memory in the Z or X basis.
* :func:`transversal_cnot_circuit` -- two patches with transversal CNOTs
  applied between chosen SE rounds (paper Fig. 4(b)); detector definitions
  are re-routed through the gate so they stay deterministic, which is the
  essence of correlated decoding of transversal algorithms [17].

The builders emit *clean* circuits -- gates, SPAM, detectors, and the
``IDLE``/``FENCE`` noise-location markers of :mod:`repro.sim.ops` -- and
:meth:`MemoryExperimentBuilder.finalize` applies a pluggable
:class:`~repro.noise.models.NoiseModel` as a pure circuit transformation.
The default :class:`~repro.noise.models.UniformDepolarizing` model (the
scalar ``p=`` remains sugar for it) reproduces the historical hand-emitted
Sec. III.4 stream token for token (golden-pinned in
``tests/golden/emission_*.txt``); pass ``noise=`` to run the same
experiment under biased or movement-aware noise instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.codes.surface_code import RotatedSurfaceCode
from repro.noise.models import NoiseModel, resolve_noise_model
from repro.sim.circuit import Circuit

# CNOT scheduling offsets (relative to the plaquette corner).  X ancillas
# sweep a "Z" pattern (NE, NW, SE, SW) and Z ancillas an "N" pattern
# (NE, SE, NW, SW) -- the standard compatible pair that keeps hook errors
# benign; chosen empirically as the best of the valid schedules (see
# tests/test_decoder_montecarlo.py for the distance-suppression check).
_X_ORDER = ((-1, 0), (-1, -1), (0, 0), (0, -1))
_Z_ORDER = ((-1, 0), (0, 0), (-1, -1), (0, -1))

NoiseLike = Union[None, str, NoiseModel]


def _strict_default() -> bool:
    """Builder strict-verification default: the ``REPRO_STRICT`` env var.

    The test suite turns it on globally (``tests/conftest.py``), so every
    circuit a test builds is statically verified at construction; regular
    library use keeps verification opt-in.
    """
    return os.environ.get("REPRO_STRICT", "") not in ("", "0")


@dataclass
class _PatchLayout:
    """Qubit-index bookkeeping for one surface-code patch."""

    code: RotatedSurfaceCode
    data_offset: int
    ancilla_offset: int

    def data(self, index: int) -> int:
        return self.data_offset + index

    def x_ancilla(self, index: int) -> int:
        return self.ancilla_offset + index

    def z_ancilla(self, index: int) -> int:
        return self.ancilla_offset + len(self.code.x_plaquettes) + index


@dataclass
class _SyndromeHistory:
    """Records whose XOR reproduces each check's previous syndrome value."""

    previous: List[Optional[List[int]]]

    @classmethod
    def undefined(cls, count: int) -> "_SyndromeHistory":
        return cls([None] * count)

    @classmethod
    def zero(cls, count: int) -> "_SyndromeHistory":
        return cls([[] for _ in range(count)])


class MemoryExperimentBuilder:
    """Builds (multi-)patch memory circuits with transversal CNOT layers.

    Args:
        distance: code distance of every patch.
        num_patches: patches laid out side by side.
        basis: memory basis, 'Z' or 'X'.
        p: physical error rate handed to the noise model (kept as sugar
            for ``noise="uniform_depolarizing"``).
        noise: a :class:`~repro.noise.models.NoiseModel` instance or a
            registry name; ``None`` selects uniform depolarizing at ``p``.
            Registry names are resolved with this builder's ``distance``,
            so ``noise="movement_aware"`` derives its move duration from
            the actual patch size.
        strict: run the structural verifier passes of
            :mod:`repro.analysis` on the clean circuit (before the noise
            transform) and on the finalized noisy circuit, raising
            :class:`~repro.analysis.VerificationError` on error-severity
            diagnostics.  ``None`` (the default) reads the ``REPRO_STRICT``
            environment variable, which the test suite sets.
    """

    def __init__(
        self,
        distance: int,
        num_patches: int = 1,
        basis: str = "Z",
        p: float = 1e-3,
        noise: NoiseLike = None,
        strict: Optional[bool] = None,
    ) -> None:
        if basis not in ("Z", "X"):
            raise ValueError(f"basis must be 'Z' or 'X', got {basis}")
        if not 0 <= p < 1:
            raise ValueError(f"noise probability out of range: {p}")
        self.basis = basis
        self.p = p
        self.strict = _strict_default() if strict is None else strict
        self.noise = resolve_noise_model(noise, p, distance=distance)
        self.code = RotatedSurfaceCode(distance)
        self.circuit = Circuit()
        self.patches: List[_PatchLayout] = []
        per_patch = self.code.num_data + self.code.num_ancilla
        for i in range(num_patches):
            self.patches.append(
                _PatchLayout(
                    code=self.code,
                    data_offset=i * per_patch,
                    ancilla_offset=i * per_patch + self.code.num_data,
                )
            )
        self._x_history = [
            _SyndromeHistory.undefined(len(self.code.x_plaquettes))
            for _ in range(num_patches)
        ]
        self._z_history = [
            _SyndromeHistory.undefined(len(self.code.z_plaquettes))
            for _ in range(num_patches)
        ]
        self._round = 0
        # Parallel to detector emission order: (patch, basis, check, round);
        # round = -1 marks the final data-measurement detectors.
        self.detector_meta: List[Tuple[int, str, int, int]] = []
        self._initialize()

    # -- construction steps -------------------------------------------------

    def _initialize(self) -> None:
        reset = "R" if self.basis == "Z" else "RX"
        for patch_index, patch in enumerate(self.patches):
            qubits = [patch.data(i) for i in range(self.code.num_data)]
            self.circuit.append(reset, qubits)
            # Each patch's reset noise is emitted right after its reset op;
            # the fence keeps the model from coalescing across patches.
            self.circuit.fence()
            # The memory-basis checks start deterministic (value 0); the
            # conjugate checks are random in round 1.
            if self.basis == "Z":
                self._z_history[patch_index] = _SyndromeHistory.zero(
                    len(self.code.z_plaquettes)
                )
            else:
                self._x_history[patch_index] = _SyndromeHistory.zero(
                    len(self.code.x_plaquettes)
                )

    def se_round(self) -> None:
        """One syndrome-extraction round on every patch, with detectors."""
        records: Dict[Tuple[int, str, int], int] = {}
        for patch_index, patch in enumerate(self.patches):
            x_anc = [patch.x_ancilla(i) for i in range(len(self.code.x_plaquettes))]
            z_anc = [patch.z_ancilla(i) for i in range(len(self.code.z_plaquettes))]
            self.circuit.append("RX", x_anc)
            self.circuit.append("R", z_anc)
            for step in range(4):
                pairs: List[int] = []
                for i, plaq in enumerate(self.code.x_plaquettes):
                    neighbor = self._neighbor(plaq.position, _X_ORDER[step])
                    if neighbor is not None:
                        pairs += [patch.x_ancilla(i), patch.data(neighbor)]
                for i, plaq in enumerate(self.code.z_plaquettes):
                    neighbor = self._neighbor(plaq.position, _Z_ORDER[step])
                    if neighbor is not None:
                        pairs += [patch.data(neighbor), patch.z_ancilla(i)]
                if pairs:
                    self.circuit.cx(*pairs)
            # Data qubits idle through ancilla readout once per round.
            self.circuit.idle([patch.data(i) for i in range(self.code.num_data)])
            for i, anc in enumerate(x_anc):
                records[(patch_index, "X", i)] = self.circuit.num_measurements
                self.circuit.measure_x(anc)
            for i, anc in enumerate(z_anc):
                records[(patch_index, "Z", i)] = self.circuit.num_measurements
                self.circuit.measure(anc)
        # Emit detectors after all measurements of the round are recorded.
        self._round += 1
        for (patch_index, check_basis, i), rec in sorted(records.items(), key=lambda kv: kv[1]):
            history = (
                self._x_history[patch_index]
                if check_basis == "X"
                else self._z_history[patch_index]
            )
            prev = history.previous[i]
            if prev is not None:
                self.circuit.detector([rec] + prev)
                self.detector_meta.append((patch_index, check_basis, i, self._round))
            history.previous[i] = [rec]

    def transversal_cnot(self, control_patch: int, target_patch: int) -> None:
        """Transversal CX between two patches, re-routing detector history.

        Backward through CX: X_control -> X_control X_target (so the
        control's X syndrome expectation gains the target's previous X
        syndrome) and Z_target -> Z_control Z_target.
        """
        if control_patch == target_patch:
            raise ValueError("control and target patches must differ")
        control = self.patches[control_patch]
        target = self.patches[target_patch]
        pairs: List[int] = []
        for i in range(self.code.num_data):
            pairs += [control.data(i), target.data(i)]
        self.circuit.cx(*pairs)
        for i in range(len(self.code.x_plaquettes)):
            self._x_history[control_patch].previous[i] = _merge(
                self._x_history[control_patch].previous[i],
                self._x_history[target_patch].previous[i],
            )
        for i in range(len(self.code.z_plaquettes)):
            self._z_history[target_patch].previous[i] = _merge(
                self._z_history[target_patch].previous[i],
                self._z_history[control_patch].previous[i],
            )

    def finalize(self) -> Circuit:
        """Final data measurement, detectors, observables; then apply noise."""
        final_records: List[List[int]] = []
        for patch in self.patches:
            start = self.circuit.num_measurements
            qubits = [patch.data(i) for i in range(self.code.num_data)]
            if self.basis == "Z":
                self.circuit.measure(*qubits)
            else:
                self.circuit.measure_x(*qubits)
            # Per-patch measurement flips stay separate ops, as emitted
            # historically.
            self.circuit.fence()
            final_records.append(list(range(start, start + len(qubits))))
        plaqs = (
            self.code.z_plaquettes if self.basis == "Z" else self.code.x_plaquettes
        )
        for patch_index in range(len(self.patches)):
            history = (
                self._z_history[patch_index]
                if self.basis == "Z"
                else self._x_history[patch_index]
            )
            for i, plaq in enumerate(plaqs):
                prev = history.previous[i]
                if prev is None:
                    continue
                recs = [final_records[patch_index][q] for q in plaq.data] + prev
                self.circuit.detector(recs)
                self.detector_meta.append((patch_index, self.basis, i, -1))
        # Observables: each patch's own final logical operator.  For CNOT
        # circuits on product initial states this is always a product of
        # current stabilizers, hence noiselessly deterministic; its flip is
        # exactly "this patch's logical output was corrupted".
        logical = (
            self.code.logical_z_support()
            if self.basis == "Z"
            else self.code.logical_x_support()
        )
        for obs_index in range(len(self.patches)):
            recs = [final_records[obs_index][q] for q in logical]
            self.circuit.observable_include(obs_index, recs)
        if self.strict:
            self._verify(self.circuit, expect_clean=True)
        self.circuit = self.noise.apply(self.circuit)
        if self.strict:
            self._verify(self.circuit, expect_clean=False)
        return self.circuit

    @staticmethod
    def _verify(circuit: Circuit, *, expect_clean: bool) -> None:
        """Strict-mode structural verification (cheap op-list walks only).

        The DEM/graph consistency pass is deliberately excluded here: it
        re-runs extraction, which every decoding consumer performs -- and
        can gate via ``extract_dem(..., verify=True)`` -- anyway.
        """
        from repro.analysis import STRUCTURAL_PASSES, verify

        verify(
            circuit,
            passes=STRUCTURAL_PASSES,
            expect_clean=expect_clean,
            fail_on="error",
        )

    def _neighbor(self, corner: Tuple[int, int], offset: Tuple[int, int]) -> Optional[int]:
        coord = (corner[0] + offset[0], corner[1] + offset[1])
        d = self.code.distance
        if 0 <= coord[0] < d and 0 <= coord[1] < d:
            return self.code.data_index(*coord)
        return None


def _merge(a: Optional[List[int]], b: Optional[List[int]]) -> Optional[List[int]]:
    """XOR-merge two record lists; undefined poisons the result."""
    if a is None or b is None:
        return None
    return a + b


def memory_circuit(
    distance: int,
    rounds: int,
    p: float,
    basis: str = "Z",
    noise: NoiseLike = None,
    strict: Optional[bool] = None,
) -> Circuit:
    """Standard single-patch memory experiment."""
    if rounds < 1:
        raise ValueError("need at least one SE round")
    builder = MemoryExperimentBuilder(
        distance, num_patches=1, basis=basis, p=p, noise=noise, strict=strict
    )
    for _ in range(rounds):
        builder.se_round()
    return builder.finalize()


def transversal_cnot_experiment(
    distance: int,
    rounds: int,
    p: float,
    cnot_after_rounds: Sequence[int],
    basis: str = "Z",
    alternate_direction: bool = False,
    noise: NoiseLike = None,
    strict: Optional[bool] = None,
) -> MemoryExperimentBuilder:
    """Two-patch memory with transversal CNOTs after the listed rounds.

    ``cnot_after_rounds`` uses 1-based round numbers; a CNOT after round k
    sits between SE rounds k and k+1, matching the paper's "x CNOTs per SE
    round" with x = len(cnot_after_rounds)/rounds.  By default all CNOTs
    run patch 0 -> patch 1 (the configuration the sequential correlated
    decoder handles exactly); ``alternate_direction`` flips control/target
    every gate.

    Returns the builder (finalized); read ``builder.circuit`` and
    ``builder.detector_meta``.
    """
    if rounds < 2:
        raise ValueError("need at least two SE rounds around a CNOT")
    builder = MemoryExperimentBuilder(
        distance, num_patches=2, basis=basis, p=p, noise=noise, strict=strict
    )
    cnot_set = set(cnot_after_rounds)
    direction = 0
    for round_index in range(1, rounds + 1):
        builder.se_round()
        if round_index in cnot_set and round_index < rounds:
            if alternate_direction and direction % 2:
                builder.transversal_cnot(1, 0)
            else:
                builder.transversal_cnot(0, 1)
            direction += 1
    builder.finalize()
    return builder


def transversal_cnot_circuit(
    distance: int,
    rounds: int,
    p: float,
    cnot_after_rounds: Sequence[int],
    basis: str = "Z",
    noise: NoiseLike = None,
    strict: Optional[bool] = None,
) -> Circuit:
    """Circuit-only wrapper around :func:`transversal_cnot_experiment`."""
    return transversal_cnot_experiment(
        distance, rounds, p, cnot_after_rounds, basis, noise=noise,
        strict=strict,
    ).circuit
