"""Gate-level circuit IR shared by all simulators.

A :class:`Circuit` is an ordered list of operations.  Supported names:

* Clifford gates: ``H``, ``S``, ``S_DAG``, ``X``, ``Y``, ``Z``, ``CX``,
  ``CZ``, ``SWAP`` (two-qubit gates take qubit pairs).
* Non-Clifford gates (state-vector simulator only): ``T``, ``T_DAG``,
  ``CCZ``, ``CCX``.
* Resets/measurements: ``R`` (reset to |0>), ``RX`` (reset to |+>),
  ``M`` (measure Z), ``MX`` (measure X).  Measurements append to a global
  record; operations address records by absolute index.
* Noise channels: ``X_ERROR``, ``Z_ERROR``, ``Y_ERROR``, ``DEPOLARIZE1``
  (probability ``arg``), ``DEPOLARIZE2`` on qubit pairs.
* Annotations: ``DETECTOR`` (XOR of measurement records, deterministic
  under no noise), ``OBSERVABLE_INCLUDE`` (adds records to a logical
  observable, ``arg`` = observable index), ``TICK`` (no-op marker).

The IR is deliberately stim-like so the detector/observable machinery of
:mod:`repro.sim.frame` can mirror standard QEC workflows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

CLIFFORD_1Q = ("H", "S", "S_DAG", "X", "Y", "Z")
CLIFFORD_2Q = ("CX", "CZ", "SWAP")
NON_CLIFFORD = ("T", "T_DAG", "CCZ", "CCX")
RESETS = ("R", "RX")
MEASUREMENTS = ("M", "MX")
NOISE_1Q = ("X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1")
NOISE_2Q = ("DEPOLARIZE2",)
ANNOTATIONS = ("DETECTOR", "OBSERVABLE_INCLUDE", "TICK")

ALL_NAMES = (
    CLIFFORD_1Q
    + CLIFFORD_2Q
    + NON_CLIFFORD
    + RESETS
    + MEASUREMENTS
    + NOISE_1Q
    + NOISE_2Q
    + ANNOTATIONS
)


@dataclass(frozen=True)
class Operation:
    """One circuit instruction.

    Attributes:
        name: one of ``ALL_NAMES``.
        targets: qubit indices (gates/noise) or measurement-record indices
            (annotations).
        arg: probability for noise, observable index for
            ``OBSERVABLE_INCLUDE``; unused otherwise.
    """

    name: str
    targets: Tuple[int, ...] = ()
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.name not in ALL_NAMES:
            raise ValueError(f"unknown operation {self.name!r}")
        if self.name in NOISE_1Q + NOISE_2Q and not 0.0 <= self.arg <= 1.0:
            raise ValueError(f"noise probability out of range: {self.arg}")
        if self.name in CLIFFORD_2Q + NOISE_2Q and len(self.targets) % 2:
            raise ValueError(f"{self.name} needs qubit pairs, got {self.targets}")
        if self.name in ("CCZ", "CCX") and len(self.targets) % 3:
            raise ValueError(f"{self.name} needs qubit triples, got {self.targets}")


class Circuit:
    """Mutable ordered operation list with a builder API."""

    def __init__(self) -> None:
        self.operations: List[Operation] = []
        self._num_measurements = 0

    # -- builder ----------------------------------------------------------

    def append(self, name: str, targets: Iterable[int] = (), arg: float = 0.0) -> "Circuit":
        """Append one operation; returns self for chaining.

        DETECTOR / OBSERVABLE_INCLUDE targets must address measurement
        records that already exist (``0 <= record < num_measurements`` at
        append time).  Forward or negative record references would make
        the eager reference sampler and the compiled bit-packed pipeline
        (which extracts detectors in one deferred XOR-reduce) disagree, so
        they are rejected at construction instead.
        """
        op = Operation(name, tuple(int(t) for t in targets), arg)
        if name in ("DETECTOR", "OBSERVABLE_INCLUDE"):
            for rec in op.targets:
                if not 0 <= rec < self._num_measurements:
                    raise ValueError(
                        f"{name} references measurement record {rec}, but "
                        f"only records [0, {self._num_measurements}) exist "
                        f"at this point in the circuit"
                    )
        self.operations.append(op)
        if name in MEASUREMENTS:
            self._num_measurements += len(op.targets)
        return self

    def h(self, *qubits: int) -> "Circuit":
        return self.append("H", qubits)

    def s(self, *qubits: int) -> "Circuit":
        return self.append("S", qubits)

    def t(self, *qubits: int) -> "Circuit":
        return self.append("T", qubits)

    def t_dag(self, *qubits: int) -> "Circuit":
        return self.append("T_DAG", qubits)

    def x(self, *qubits: int) -> "Circuit":
        return self.append("X", qubits)

    def z(self, *qubits: int) -> "Circuit":
        return self.append("Z", qubits)

    def cx(self, *qubits: int) -> "Circuit":
        return self.append("CX", qubits)

    def cz(self, *qubits: int) -> "Circuit":
        return self.append("CZ", qubits)

    def swap(self, *qubits: int) -> "Circuit":
        return self.append("SWAP", qubits)

    def ccz(self, a: int, b: int, c: int) -> "Circuit":
        return self.append("CCZ", (a, b, c))

    def ccx(self, a: int, b: int, target: int) -> "Circuit":
        return self.append("CCX", (a, b, target))

    def reset(self, *qubits: int) -> "Circuit":
        return self.append("R", qubits)

    def reset_x(self, *qubits: int) -> "Circuit":
        return self.append("RX", qubits)

    def measure(self, *qubits: int) -> "Circuit":
        return self.append("M", qubits)

    def measure_x(self, *qubits: int) -> "Circuit":
        return self.append("MX", qubits)

    def tick(self) -> "Circuit":
        return self.append("TICK")

    def depolarize1(self, qubits: Iterable[int], p: float) -> "Circuit":
        return self.append("DEPOLARIZE1", qubits, p)

    def depolarize2(self, qubit_pairs: Iterable[int], p: float) -> "Circuit":
        return self.append("DEPOLARIZE2", qubit_pairs, p)

    def x_error(self, qubits: Iterable[int], p: float) -> "Circuit":
        return self.append("X_ERROR", qubits, p)

    def z_error(self, qubits: Iterable[int], p: float) -> "Circuit":
        return self.append("Z_ERROR", qubits, p)

    def detector(self, record_indices: Iterable[int]) -> "Circuit":
        """Declare that the XOR of these records is noiselessly constant."""
        return self.append("DETECTOR", record_indices)

    def observable_include(self, observable: int, record_indices: Iterable[int]) -> "Circuit":
        """Add measurement records into logical observable ``observable``."""
        return self.append("OBSERVABLE_INCLUDE", record_indices, float(observable))

    # -- inspection --------------------------------------------------------

    @property
    def num_measurements(self) -> int:
        return self._num_measurements

    @property
    def num_qubits(self) -> int:
        """1 + highest qubit index touched by a gate/noise/reset/measure."""
        highest = -1
        for op in self.operations:
            if op.name in ANNOTATIONS:
                continue
            for t in op.targets:
                highest = max(highest, t)
        return highest + 1

    @property
    def num_detectors(self) -> int:
        return sum(1 for op in self.operations if op.name == "DETECTOR")

    @property
    def num_observables(self) -> int:
        indices = [int(op.arg) for op in self.operations if op.name == "OBSERVABLE_INCLUDE"]
        return max(indices) + 1 if indices else 0

    def count(self, name: str) -> int:
        """Total targets count of ops with this name (e.g. CX pair count)."""
        width = 2 if name in CLIFFORD_2Q + NOISE_2Q else 3 if name in ("CCZ", "CCX") else 1
        return sum(len(op.targets) // width for op in self.operations if op.name == name)

    def __iadd__(self, other: "Circuit") -> "Circuit":
        for op in other.operations:
            self.append(op.name, op.targets, op.arg)
        return self

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:
        return f"Circuit({len(self.operations)} ops, {self.num_qubits} qubits)"

    def without_noise(self) -> "Circuit":
        """Copy with all noise channels removed."""
        clean = Circuit()
        for op in self.operations:
            if op.name in NOISE_1Q + NOISE_2Q:
                continue
            clean.append(op.name, op.targets, op.arg)
        return clean
