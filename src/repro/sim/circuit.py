"""Gate-level circuit IR shared by all simulators.

A :class:`Circuit` is an ordered list of operations.  Supported names:

* Clifford gates: ``H``, ``S``, ``S_DAG``, ``X``, ``Y``, ``Z``, ``CX``,
  ``CZ``, ``SWAP`` (two-qubit gates take qubit pairs).
* Non-Clifford gates (state-vector simulator only): ``T``, ``T_DAG``,
  ``CCZ``, ``CCX``.
* Resets/measurements: ``R`` (reset to |0>), ``RX`` (reset to |+>),
  ``M`` (measure Z), ``MX`` (measure X).  Measurements append to a global
  record; operations address records by absolute index.
* Noise channels: ``X_ERROR``, ``Z_ERROR``, ``Y_ERROR``, ``DEPOLARIZE1``
  (probability ``arg``), ``DEPOLARIZE2`` on qubit pairs, and the biased
  ``PAULI_CHANNEL_1`` / ``PAULI_CHANNEL_2`` whose per-Pauli outcome
  probabilities live in ``args`` (3 and 15 entries, ordered like
  :data:`repro.sim.ops.PAULI_1Q` / :data:`repro.sim.ops.PAULI_2Q`).
* Annotations: ``DETECTOR`` (XOR of measurement records, deterministic
  under no noise), ``OBSERVABLE_INCLUDE`` (adds records to a logical
  observable, ``arg`` = observable index), ``TICK`` (no-op marker), and
  the noise-model markers ``IDLE`` / ``FENCE`` placed by clean builders
  for :meth:`repro.noise.models.NoiseModel.apply` to consume.

The IR is deliberately stim-like so the detector/observable machinery of
:mod:`repro.sim.frame` can mirror standard QEC workflows.  Op-name
classification is single-sourced in :mod:`repro.sim.ops`; the historical
tuple names re-exported here stay importable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.sim.ops import (
    ALL_NAMES,
    ANNOTATIONS,
    CHANNEL_ARGS,
    CLIFFORD_1Q,
    CLIFFORD_2Q,
    MEASUREMENTS,
    NOISE,
    NOISE_1Q,
    NOISE_2Q,
    NON_CLIFFORD,
    PAIR_TARGETS,
    RESETS,
)

__all__ = [
    "ALL_NAMES",
    "ANNOTATIONS",
    "CLIFFORD_1Q",
    "CLIFFORD_2Q",
    "MEASUREMENTS",
    "NOISE_1Q",
    "NOISE_2Q",
    "NON_CLIFFORD",
    "RESETS",
    "Circuit",
    "Operation",
]


@dataclass(frozen=True)
class Operation:
    """One circuit instruction.

    Attributes:
        name: one of ``repro.sim.ops.ALL_NAMES``.
        targets: qubit indices (gates/noise) or measurement-record indices
            (annotations).
        arg: probability for noise (the *total* firing probability for the
            multi-outcome Pauli channels), observable index for
            ``OBSERVABLE_INCLUDE``; unused otherwise.
        args: per-outcome probabilities for ``PAULI_CHANNEL_1`` (px, py,
            pz) and ``PAULI_CHANNEL_2`` (15 entries in ``PAULI_2Q``
            order); empty for every other op.
    """

    name: str
    targets: Tuple[int, ...] = ()
    arg: float = 0.0
    args: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in ALL_NAMES:
            raise ValueError(f"unknown operation {self.name!r}")
        if self.name in NOISE and not 0.0 <= self.arg <= 1.0:
            raise ValueError(f"noise probability out of range: {self.arg}")
        expected_args = CHANNEL_ARGS.get(self.name)
        if expected_args is not None:
            if len(self.args) != expected_args:
                raise ValueError(
                    f"{self.name} needs {expected_args} outcome "
                    f"probabilities, got {len(self.args)}"
                )
            if any(p < 0.0 for p in self.args) or sum(self.args) > 1.0 + 1e-12:
                raise ValueError(
                    f"{self.name} outcome probabilities invalid: {self.args}"
                )
            if not math.isclose(self.arg, sum(self.args), abs_tol=1e-12):
                raise ValueError(
                    f"{self.name} total {self.arg} != sum(args) {sum(self.args)}"
                )
        elif self.args:
            raise ValueError(f"{self.name} takes no outcome probabilities")
        if self.name in PAIR_TARGETS and len(self.targets) % 2:
            raise ValueError(f"{self.name} needs qubit pairs, got {self.targets}")
        if self.name in ("CCZ", "CCX") and len(self.targets) % 3:
            raise ValueError(f"{self.name} needs qubit triples, got {self.targets}")


class Circuit:
    """Mutable ordered operation list with a builder API."""

    def __init__(self) -> None:
        self.operations: List[Operation] = []
        self._num_measurements = 0

    # -- builder ----------------------------------------------------------

    def append(
        self,
        name: str,
        targets: Iterable[int] = (),
        arg: float = 0.0,
        args: Tuple[float, ...] = (),
    ) -> "Circuit":
        """Append one operation; returns self for chaining.

        DETECTOR / OBSERVABLE_INCLUDE targets must address measurement
        records that already exist (``0 <= record < num_measurements`` at
        append time).  Forward or negative record references would make
        the eager reference sampler and the compiled bit-packed pipeline
        (which extracts detectors in one deferred XOR-reduce) disagree, so
        they are rejected at construction instead.
        """
        op = Operation(name, tuple(int(t) for t in targets), arg, tuple(args))
        if name in ("DETECTOR", "OBSERVABLE_INCLUDE"):
            for rec in op.targets:
                if not 0 <= rec < self._num_measurements:
                    raise ValueError(
                        f"{name} references measurement record {rec}, but "
                        f"only records [0, {self._num_measurements}) exist "
                        f"at this point in the circuit"
                    )
        self.operations.append(op)
        if name in MEASUREMENTS:
            self._num_measurements += len(op.targets)
        return self

    def h(self, *qubits: int) -> "Circuit":
        return self.append("H", qubits)

    def s(self, *qubits: int) -> "Circuit":
        return self.append("S", qubits)

    def t(self, *qubits: int) -> "Circuit":
        return self.append("T", qubits)

    def t_dag(self, *qubits: int) -> "Circuit":
        return self.append("T_DAG", qubits)

    def x(self, *qubits: int) -> "Circuit":
        return self.append("X", qubits)

    def z(self, *qubits: int) -> "Circuit":
        return self.append("Z", qubits)

    def cx(self, *qubits: int) -> "Circuit":
        return self.append("CX", qubits)

    def cz(self, *qubits: int) -> "Circuit":
        return self.append("CZ", qubits)

    def swap(self, *qubits: int) -> "Circuit":
        return self.append("SWAP", qubits)

    def ccz(self, a: int, b: int, c: int) -> "Circuit":
        return self.append("CCZ", (a, b, c))

    def ccx(self, a: int, b: int, target: int) -> "Circuit":
        return self.append("CCX", (a, b, target))

    def reset(self, *qubits: int) -> "Circuit":
        return self.append("R", qubits)

    def reset_x(self, *qubits: int) -> "Circuit":
        return self.append("RX", qubits)

    def measure(self, *qubits: int) -> "Circuit":
        return self.append("M", qubits)

    def measure_x(self, *qubits: int) -> "Circuit":
        return self.append("MX", qubits)

    def tick(self) -> "Circuit":
        return self.append("TICK")

    def idle(self, qubits: Iterable[int]) -> "Circuit":
        """Mark ``qubits`` as idling through this moment (noise-model hook)."""
        return self.append("IDLE", qubits)

    def fence(self) -> "Circuit":
        """Layer boundary for noise insertion (consumed by noise models)."""
        return self.append("FENCE")

    def depolarize1(self, qubits: Iterable[int], p: float) -> "Circuit":
        return self.append("DEPOLARIZE1", qubits, p)

    def depolarize2(self, qubit_pairs: Iterable[int], p: float) -> "Circuit":
        return self.append("DEPOLARIZE2", qubit_pairs, p)

    def x_error(self, qubits: Iterable[int], p: float) -> "Circuit":
        return self.append("X_ERROR", qubits, p)

    def z_error(self, qubits: Iterable[int], p: float) -> "Circuit":
        return self.append("Z_ERROR", qubits, p)

    def pauli_channel_1(
        self, qubits: Iterable[int], px: float, py: float, pz: float
    ) -> "Circuit":
        """Biased single-qubit Pauli channel (X, Y, Z probabilities)."""
        return self.append(
            "PAULI_CHANNEL_1", qubits, px + py + pz, (px, py, pz)
        )

    def pauli_channel_2(
        self, qubit_pairs: Iterable[int], probabilities: Sequence[float]
    ) -> "Circuit":
        """Biased two-qubit Pauli channel (15 probabilities, PAULI_2Q order)."""
        probs = tuple(float(p) for p in probabilities)
        return self.append("PAULI_CHANNEL_2", qubit_pairs, sum(probs), probs)

    def detector(self, record_indices: Iterable[int]) -> "Circuit":
        """Declare that the XOR of these records is noiselessly constant."""
        return self.append("DETECTOR", record_indices)

    def observable_include(self, observable: int, record_indices: Iterable[int]) -> "Circuit":
        """Add measurement records into logical observable ``observable``."""
        return self.append("OBSERVABLE_INCLUDE", record_indices, float(observable))

    # -- inspection --------------------------------------------------------

    @property
    def num_measurements(self) -> int:
        return self._num_measurements

    @property
    def num_qubits(self) -> int:
        """1 + highest qubit index touched by a gate/noise/reset/measure."""
        highest = -1
        for op in self.operations:
            if op.name in ANNOTATIONS:
                continue
            for t in op.targets:
                highest = max(highest, t)
        return highest + 1

    @property
    def num_detectors(self) -> int:
        return sum(1 for op in self.operations if op.name == "DETECTOR")

    @property
    def num_observables(self) -> int:
        indices = [int(op.arg) for op in self.operations if op.name == "OBSERVABLE_INCLUDE"]
        return max(indices) + 1 if indices else 0

    def count(self, name: str) -> int:
        """Total targets count of ops with this name (e.g. CX pair count)."""
        width = 2 if name in PAIR_TARGETS else 3 if name in ("CCZ", "CCX") else 1
        return sum(len(op.targets) // width for op in self.operations if op.name == name)

    def __iadd__(self, other: "Circuit") -> "Circuit":
        for op in other.operations:
            self.append(op.name, op.targets, op.arg, op.args)
        return self

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:
        return f"Circuit({len(self.operations)} ops, {self.num_qubits} qubits)"

    def without_noise(self) -> "Circuit":
        """Copy with all noise channels removed."""
        clean = Circuit()
        for op in self.operations:
            if op.name in NOISE:
                continue
            clean.append(op.name, op.targets, op.arg, op.args)
        return clean
