"""Compiled, bit-packed circuit programs for the Pauli-frame sampler.

The reference sampler (:meth:`repro.sim.frame.FrameSimulator.sample`)
stores one uint8 per (shot, qubit) and walks every op target in a Python
loop, so its cost is O(ops * targets * shots) interpreted work over a
byte-per-bit representation.  This module closes that gap the way
SIMD-style stabilizer samplers do:

* **Compile once** -- :class:`CompiledProgram` lowers a
  :class:`~repro.sim.circuit.Circuit` into a flat program of fused steps.
  Consecutive gates with the same semantics are merged (``S``/``S_DAG``
  and ``R``/``RX`` are canonicalized, repeated involutions parity-reduced)
  and their target lists are precomputed as numpy index arrays, split into
  conflict-free chunks so fancy-indexed whole-row updates are exactly
  equivalent to the sequential per-target loop.
* **Bit-packed frames** -- X/Z frames are ``(num_qubits, ceil(shots/8))``
  uint8 bitplanes, padded so each row is also viewable as uint64 words.
  H/S/CX/CZ/SWAP/R/M become whole-row XORs/swaps/copies over packed words,
  processing 64 shots per ALU op instead of one.
* **Sparse GF(2) record maps** -- DETECTOR / OBSERVABLE_INCLUDE
  annotations are lowered to COO index arrays over measurement records;
  detector extraction is one unbuffered XOR-reduce
  (:func:`numpy.bitwise_xor.at`) at the end of the pass instead of per-op
  column loops.
* **Bit-identical noise** -- noise steps draw exactly one
  ``rng.random((shots, targets))`` block per op, in op order, mirroring
  the reference sampler's stream exactly; the hit masks are bit-packed
  and XORed into the frame rows.  ``DEPOLARIZE2`` derives its Pauli-pair
  outcome from the *same* uniform draw as the hit decision
  (:func:`depolarize2_pauli_indices`), so for the same seed the packed
  pipeline produces *bit-identical* detector/observable samples.  The
  equivalence is property-tested in ``tests/test_sim_compiled.py``; the
  unpacked sampler remains the reference oracle.

Shot-major vs detector-major: frames pack shots along rows so gate ops are
contiguous; decoders key on per-shot syndromes.  :func:`transpose_packed`
converts between the two layouts once per sample at the decoder boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.sim.circuit import Circuit
from repro.sim.ops import (
    CANONICAL_FRAME_GATE as _CANONICAL,
    DROPPED_BY_COMPILER as _DROPPED,
    FUSABLE as _FUSABLE,
    NOISE as _NOISE,
    PAULI_1Q,
    PAULI_1Q_CODES,
    PAULI_2Q,
    PAULI_2Q_CODES,
)

# Flip-code lookup tables for the biased Pauli channels, indexed by the
# searchsorted outcome; the trailing identity entry (code 0) is the miss.
PC1_CODE_TABLE = np.array(PAULI_1Q_CODES + (0,), dtype=np.uint8)
PC2_CODE_TABLE = np.array(PAULI_2Q_CODES + (0,), dtype=np.uint8)


def _index_array(values: Sequence[int]) -> np.ndarray:
    return np.asarray(list(values), dtype=np.intp)


def _parity_reduced(targets: Sequence[int]) -> np.ndarray:
    """Qubits hit an odd number of times, for involution gates (H, S)."""
    counts: Dict[int, int] = {}
    for q in targets:
        counts[q] = counts.get(q, 0) + 1
    return _index_array(sorted(q for q, c in counts.items() if c % 2))


def _disjoint_pair_chunks(
    pairs: Sequence[Tuple[int, int]]
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split a pair list into chunks whose flattened qubits are unique.

    Within such a chunk, a simultaneous fancy-indexed row update is exactly
    equivalent to applying the pairs one at a time (no read/write overlap
    and no dropped XOR accumulation on repeated indices).
    """
    chunks: List[Tuple[np.ndarray, np.ndarray]] = []
    first: List[int] = []
    second: List[int] = []
    used: set = set()
    for a, b in pairs:
        if a in used or b in used or a == b:
            chunks.append((_index_array(first), _index_array(second)))
            first, second, used = [], [], set()
        first.append(a)
        second.append(b)
        used.add(a)
        used.add(b)
    if first:
        chunks.append((_index_array(first), _index_array(second)))
    return chunks


@dataclass
class LoweredSegment:
    """A slice of a circuit lowered to fused steps plus its record COO.

    ``meas_count`` / ``det_count`` are the measurements and detectors the
    slice itself emits; the COO arrays and ``M``/``MX`` record slots are
    *absolute* (offset by the ``meas_start`` / ``det_start`` the slice was
    lowered at), so a segment can be executed in place inside a larger
    program -- the basis of :class:`repro.sim.periodic.PeriodicProgram`.
    """

    steps: List[tuple]
    det_meas: np.ndarray
    det_row: np.ndarray
    obs_meas: np.ndarray
    obs_row: np.ndarray
    meas_count: int
    det_count: int


def lower_ops(ops, meas_start: int = 0, det_start: int = 0) -> LoweredSegment:
    """Lower an op sequence to fused steps and sparse GF(2) record maps.

    Fusion never crosses the sequence boundary (the buffer is flushed at
    the end), so lowering a circuit in segments and executing them in
    order is exactly equivalent to lowering it whole -- per-step payloads
    may fuse differently across a cut, but the applied frame updates are
    identical.
    """
    steps: List[tuple] = []
    det_meas: List[int] = []  # COO: measurement record index ...
    det_row: List[int] = []  # ... feeding this detector row
    obs_meas: List[int] = []
    obs_row: List[int] = []
    meas_cursor = meas_start
    det_cursor = det_start
    pending_kind: str = ""
    pending: List[tuple] = []  # buffered (targets, slot) runs to fuse

    def flush() -> None:
        nonlocal pending_kind, pending
        if not pending:
            return
        kind = pending_kind
        targets: List[int] = []
        for op_targets, _ in pending:
            targets.extend(op_targets)
        if kind in ("H", "S"):
            qs = _parity_reduced(targets)
            if qs.size:
                steps.append((kind, qs))
        elif kind == "R":
            steps.append(("R", _index_array(sorted(set(targets)))))
        elif kind in ("CX", "CZ", "SWAP"):
            pairs = list(zip(targets[0::2], targets[1::2]))
            for first, second in _disjoint_pair_chunks(pairs):
                steps.append((kind, first, second))
        elif kind in ("M", "MX"):
            # Consecutive measurements occupy contiguous record slots.
            steps.append((kind, _index_array(targets), pending[0][1]))
        pending_kind, pending = "", []

    for op in ops:
        name = _CANONICAL.get(op.name, op.name)
        if name in _DROPPED:
            continue
        if name == "DETECTOR":
            for rec in op.targets:
                det_meas.append(rec)
                det_row.append(det_cursor)
            det_cursor += 1
            continue
        if name == "OBSERVABLE_INCLUDE":
            index = int(op.arg)
            for rec in op.targets:
                obs_meas.append(rec)
                obs_row.append(index)
            continue
        if name in ("X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1"):
            flush()
            qs = _index_array(op.targets)
            unique = len(set(op.targets)) == len(op.targets)
            steps.append((name, qs, float(op.arg), unique))
            continue
        if name == "PAULI_CHANNEL_1":
            flush()
            qs = _index_array(op.targets)
            unique = len(set(op.targets)) == len(op.targets)
            steps.append((name, qs, np.cumsum(np.asarray(op.args)), unique))
            continue
        if name == "DEPOLARIZE2":
            flush()
            firsts = _index_array(op.targets[0::2])
            seconds = _index_array(op.targets[1::2])
            unique = len(set(op.targets)) == len(op.targets)
            steps.append((name, firsts, seconds, unique, float(op.arg)))
            continue
        if name == "PAULI_CHANNEL_2":
            flush()
            firsts = _index_array(op.targets[0::2])
            seconds = _index_array(op.targets[1::2])
            unique = len(set(op.targets)) == len(op.targets)
            steps.append(
                (name, firsts, seconds, unique, np.cumsum(np.asarray(op.args)))
            )
            continue
        if name not in _FUSABLE:
            # Same contract as FrameSimulator._apply: unsupported ops
            # (non-Clifford gates) fail loudly, never sample wrong.
            raise ValueError(f"frame simulator cannot run {name}")
        # Fusable deterministic op: merge runs of the same kind.
        if name != pending_kind:
            flush()
            pending_kind = name
        pending.append((op.targets, meas_cursor))
        if name in ("M", "MX"):
            meas_cursor += len(op.targets)
    flush()

    return LoweredSegment(
        steps=steps,
        det_meas=_index_array(det_meas),
        det_row=_index_array(det_row),
        obs_meas=_index_array(obs_meas),
        obs_row=_index_array(obs_row),
        meas_count=meas_cursor - meas_start,
        det_count=det_cursor - det_start,
    )


class CompiledProgram:
    """A circuit lowered to fused steps over bit-packed frame bitplanes.

    Steps are ``(kind, *payload)`` tuples with all index arrays
    precomputed; :meth:`run_packed` interprets them with O(ops) Python
    overhead independent of the shot count.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.num_qubits = circuit.num_qubits
        self.num_measurements = circuit.num_measurements
        self.num_detectors = circuit.num_detectors
        self.num_observables = circuit.num_observables
        segment = lower_ops(circuit.operations)
        self.steps: List[tuple] = segment.steps
        self._det_meas = segment.det_meas
        self._det_row = segment.det_row
        self._obs_meas = segment.obs_meas
        self._obs_row = segment.obs_row

    # -- execution -----------------------------------------------------------

    def run_packed(
        self, shots: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``shots`` noisy shots in the packed domain.

        Returns:
            (detectors, observables): shot-bit-packed bitplanes of shapes
            ``(num_detectors, ceil(shots/8))`` and
            ``(num_observables, ceil(shots/8))`` -- bit ``j`` of byte ``w``
            of a row is shot ``8 w + j`` (``np.packbits`` big-bitorder).
        """
        if shots < 0:
            raise ValueError("shots must be >= 0")
        words = (shots + 7) // 8
        padded = 8 * ((words + 7) // 8)  # rows double as uint64 word views
        x = np.zeros((self.num_qubits, padded), dtype=np.uint8)
        z = np.zeros((self.num_qubits, padded), dtype=np.uint8)
        flips = np.zeros((self.num_measurements, padded), dtype=np.uint8)
        x64 = x.view(np.uint64)
        z64 = z.view(np.uint64)
        f64 = flips.view(np.uint64)
        xw = x[:, :words]
        zw = z[:, :words]

        # One direct rng.random dispatch per noise op, in op order -- the
        # reference sampler's exact stream.
        noise = sampling_noise(lambda targets: rng.random((targets, shots)))
        execute_steps(self.steps, x64, z64, f64, xw, zw, noise)

        detectors = np.zeros((self.num_detectors, padded), dtype=np.uint8)
        observables = np.zeros((self.num_observables, padded), dtype=np.uint8)
        # Sparse GF(2) record maps: one unbuffered XOR-reduce scatters every
        # measurement-flip row into the detector/observable rows it feeds.
        if self._det_meas.size:
            np.bitwise_xor.at(detectors, self._det_row, flips[self._det_meas])
        if self._obs_meas.size:
            np.bitwise_xor.at(observables, self._obs_row, flips[self._obs_meas])
        return detectors[:, :words], observables[:, :words]


# -- step execution ------------------------------------------------------------

# Step kinds that are stochastic channels (step[0] for every noise step is
# the canonical op name, so the op table doubles as the step-kind table).
_NOISE_KINDS = frozenset(_NOISE)

# Kinds whose draw block is (len(step[1]), shots): single-qubit channels
# index by target, pair channels by pair (step[1] = first qubits).
_DRAWING_KINDS = (
    "X_ERROR",
    "Z_ERROR",
    "Y_ERROR",
    "DEPOLARIZE1",
    "PAULI_CHANNEL_1",
    "PAULI_CHANNEL_2",
)

NoiseHandler = Callable[[tuple, np.ndarray, np.ndarray], None]


def execute_steps(
    steps: Sequence[tuple],
    x64: np.ndarray,
    z64: np.ndarray,
    f64: np.ndarray,
    xw: np.ndarray,
    zw: np.ndarray,
    noise: NoiseHandler,
    slot_offset: int = 0,
) -> None:
    """Interpret fused steps over packed planes with pluggable noise.

    Deterministic steps update the uint64 word views in place; each noise
    step is delegated to ``noise(step, xw, zw)`` -- a sampling handler
    drawing uniforms (:func:`sampling_noise`) or a deterministic injector
    (:func:`injection_noise`, for DEM mechanism propagation).

    ``slot_offset`` shifts every measurement record slot, which is how a
    periodic program replays one lowered round body into successive
    record windows of the same ``flips`` plane.
    """
    for step in steps:
        kind = step[0]
        if kind == "CX":
            _, cs, ts = step
            x64[ts] ^= x64[cs]
            z64[cs] ^= z64[ts]
        elif kind == "H":
            qs = step[1]
            tmp = x64[qs].copy()
            x64[qs] = z64[qs]
            z64[qs] = tmp
        elif kind == "S":
            qs = step[1]
            z64[qs] ^= x64[qs]
        elif kind == "CZ":
            _, first, second = step
            z64[first] ^= x64[second]
            z64[second] ^= x64[first]
        elif kind == "SWAP":
            _, first, second = step
            tmp = x64[first].copy()
            x64[first] = x64[second]
            x64[second] = tmp
            tmp = z64[first].copy()
            z64[first] = z64[second]
            z64[second] = tmp
        elif kind == "R":
            qs = step[1]
            x64[qs] = 0
            z64[qs] = 0
        elif kind == "M":
            _, qs, slot = step
            slot += slot_offset
            f64[slot : slot + qs.size] = x64[qs]
        elif kind == "MX":
            _, qs, slot = step
            slot += slot_offset
            f64[slot : slot + qs.size] = z64[qs]
        elif kind in _NOISE_KINDS:
            noise(step, xw, zw)
        else:  # pragma: no cover - compile emits only the kinds above
            raise ValueError(f"unknown compiled step kind {kind!r}")


def sampling_noise(draw: Callable[[int], np.ndarray]) -> NoiseHandler:
    """Noise handler applying channels from a uniform-draw source.

    ``draw(targets)`` must return a ``(targets, shots)`` float64 block of
    uniforms.  The handler consumes exactly one block per noise step, in
    step order, with the same shapes and comparisons as the reference
    sampler -- the draw source controls only *where* the uniforms come
    from (a direct ``rng.random`` dispatch, or a slice of a fused
    pre-drawn buffer), never their order or values, which is what keeps
    every execution path bit-identical per seed.
    """

    def apply(step: tuple, xw: np.ndarray, zw: np.ndarray) -> None:
        kind = step[0]
        if kind == "X_ERROR":
            _, qs, p, unique = step
            hit = draw(qs.size) < p
            _xor_packed(xw, qs, np.packbits(hit, axis=1), unique)
        elif kind == "Z_ERROR":
            _, qs, p, unique = step
            hit = draw(qs.size) < p
            _xor_packed(zw, qs, np.packbits(hit, axis=1), unique)
        elif kind == "Y_ERROR":
            _, qs, p, unique = step
            hit = draw(qs.size) < p
            packed = np.packbits(hit, axis=1)
            _xor_packed(xw, qs, packed, unique)
            _xor_packed(zw, qs, packed, unique)
        elif kind == "DEPOLARIZE1":
            _, qs, p, unique = step
            # [0, p) split in thirds X/Y/Z, same comparisons as the
            # reference sampler on the same (targets, shots) draw.
            block = draw(qs.size)
            x_hit = block < 2 * p / 3
            z_hit = (block >= p / 3) & (block < p)
            _xor_packed(xw, qs, np.packbits(x_hit, axis=1), unique)
            _xor_packed(zw, qs, np.packbits(z_hit, axis=1), unique)
        elif kind == "DEPOLARIZE2":
            _, firsts, seconds, unique, p = step
            if p > 0:
                code = depolarize2_codes(draw(firsts.size), p)
                # Code bits are the four flip planes; np.packbits
                # treats any nonzero byte as a set bit.
                _xor_packed(xw, firsts, np.packbits(code & 8, axis=1), unique)
                _xor_packed(zw, firsts, np.packbits(code & 4, axis=1), unique)
                _xor_packed(xw, seconds, np.packbits(code & 2, axis=1), unique)
                _xor_packed(zw, seconds, np.packbits(code & 1, axis=1), unique)
        elif kind == "PAULI_CHANNEL_1":
            _, qs, cum, unique = step
            code = pauli_channel_codes(draw(qs.size), cum, PC1_CODE_TABLE)
            _xor_packed(xw, qs, np.packbits(code & 2, axis=1), unique)
            _xor_packed(zw, qs, np.packbits(code & 1, axis=1), unique)
        elif kind == "PAULI_CHANNEL_2":
            _, firsts, seconds, unique, cum = step
            code = pauli_channel_codes(draw(firsts.size), cum, PC2_CODE_TABLE)
            _xor_packed(xw, firsts, np.packbits(code & 8, axis=1), unique)
            _xor_packed(zw, firsts, np.packbits(code & 4, axis=1), unique)
            _xor_packed(xw, seconds, np.packbits(code & 2, axis=1), unique)
            _xor_packed(zw, seconds, np.packbits(code & 1, axis=1), unique)
        else:  # pragma: no cover - execute_steps routes only noise kinds
            raise ValueError(f"unknown noise step kind {step[0]!r}")

    return apply


def injection_noise(
    injections: Iterable[Tuple[np.ndarray, ...]]
) -> NoiseHandler:
    """Noise handler XORing precomputed deterministic flips, one per step.

    Each injection is ``(x_rows, x_bytes, x_masks, z_rows, z_bytes, z_masks)``
    scattering single bits into the packed X/Z planes.  DEM extraction
    uses this to propagate every error mechanism as one packed bit
    *column*: the deterministic steps conjugate all mechanisms at once
    and each noise step, instead of drawing, plants its mechanisms' Pauli
    flips at the channel's circuit position.
    """
    iterator = iter(injections)

    def apply(step: tuple, xw: np.ndarray, zw: np.ndarray) -> None:
        x_rows, x_bytes, x_masks, z_rows, z_bytes, z_masks = next(iterator)
        if x_rows.size:
            np.bitwise_xor.at(xw, (x_rows, x_bytes), x_masks)
        if z_rows.size:
            np.bitwise_xor.at(zw, (z_rows, z_bytes), z_masks)

    return apply


def draw_count(steps: Sequence[tuple], shots: int) -> int:
    """Uniform doubles :func:`sampling_noise` consumes over these steps.

    Mirrors the handler's dispatch exactly, including the ``DEPOLARIZE2``
    ``p > 0`` guard (a zero-probability channel draws nothing); the fused
    pre-draw of a periodic program sizes its buffers with this.
    """
    total = 0
    for step in steps:
        kind = step[0]
        if kind in _DRAWING_KINDS:
            total += step[1].size * shots
        elif kind == "DEPOLARIZE2":
            if step[4] > 0:
                total += step[1].size * shots
    return total


def _xor_packed(
    frame: np.ndarray, qs: np.ndarray, packed: np.ndarray, unique: bool
) -> None:
    """XOR packed hit rows into frame rows, safely on repeated targets."""
    if unique:
        frame[qs] ^= packed
    else:
        np.bitwise_xor.at(frame, qs, packed)


def pauli_channel_codes(
    draw: np.ndarray, cumulative: np.ndarray, table: np.ndarray
) -> np.ndarray:
    """Biased-channel outcomes as frame-flip bit codes from one draw.

    ``cumulative`` holds the channel's cumulative outcome probabilities
    (``np.cumsum`` of the per-Pauli ``args``); outcome ``k`` fires when
    the uniform lands in ``[cum[k-1], cum[k])``, and a draw past the last
    boundary is a miss, mapped by the lookup ``table``'s trailing identity
    entry to code 0 (no flips).  Both the reference and the compiled
    sampler call this helper on the same ``(targets, shots)`` draw, which
    is what keeps their outputs bit-identical.
    """
    return table[np.searchsorted(cumulative, draw, side="right")]


def depolarize2_codes(draw: np.ndarray, p: float) -> np.ndarray:
    """Two-qubit depolarizing outcomes as frame-flip bit codes.

    One uniform stream drives both the hit decision and the Pauli-pair
    outcome: conditioned on ``draw < p`` (the channel firing),
    ``draw / p`` is uniform on [0, 1), so ``1 + floor(draw * 15 / p)`` is
    uniform over 1..15 -- the 15 non-identity two-qubit Paulis, encoded so
    the code's bits *are* the four frame-flip planes:

        bit 3 = X flip on the first qubit   (code & 8)
        bit 2 = Z flip on the first qubit   (code & 4)
        bit 1 = X flip on the second qubit  (code & 2)
        bit 0 = Z flip on the second qubit  (code & 1)

    Misses (``draw >= p``) map to code 16, whose low four bits are all
    clear -- no flips -- so no separate hit mask is needed.  The draw
    buffer is consumed (scaled in place).  Both the reference and the
    compiled sampler call this helper on the same draw, which is what
    keeps their outputs bit-identical.
    """
    np.multiply(draw, 15.0 / p, out=draw)
    np.minimum(draw, 15.0, out=draw)
    code = draw.astype(np.uint8)
    code += 1
    return code


def transpose_packed(planes: np.ndarray, count: int) -> np.ndarray:
    """Re-pack ``(rows, ceil(count/8))`` bitplanes as per-item keys.

    Args:
        planes: bit-packed matrix whose packed axis holds ``count`` items.
        count: number of valid bits along the packed axis (trailing pad
            bits are discarded).

    Returns:
        ``(count, ceil(rows/8))`` uint8 array: item ``i``'s row holds the
        original column ``i`` bit-packed -- e.g. shot-major detector keys
        ready for dedup, from detector-major sample bitplanes.
    """
    rows = planes.shape[0]
    if rows == 0:
        return np.zeros((count, 0), dtype=np.uint8)
    bits = np.unpackbits(planes, axis=1, count=count)
    return np.packbits(bits.T, axis=1)
