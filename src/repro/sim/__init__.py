"""Circuit IR, simulators, noise sampling and experiment builders."""

from repro.sim.circuit import Circuit, Operation
from repro.sim.compiled import CompiledProgram, transpose_packed
from repro.sim.frame import DetectorErrorModel, ErrorMechanism, FrameSimulator
from repro.sim.periodic import (
    PeriodicProgram,
    PeriodSpec,
    circuit_fingerprint,
    compile_program,
    detect_period,
)
from repro.sim.memory import (
    MemoryExperimentBuilder,
    memory_circuit,
    transversal_cnot_circuit,
    transversal_cnot_experiment,
)
from repro.sim.statevector import StateVector, ccz_state
from repro.sim.tableau import TableauSimulator

__all__ = [
    "Circuit",
    "CompiledProgram",
    "DetectorErrorModel",
    "ErrorMechanism",
    "FrameSimulator",
    "MemoryExperimentBuilder",
    "Operation",
    "PeriodSpec",
    "PeriodicProgram",
    "StateVector",
    "TableauSimulator",
    "ccz_state",
    "circuit_fingerprint",
    "compile_program",
    "detect_period",
    "memory_circuit",
    "transpose_packed",
    "transversal_cnot_circuit",
    "transversal_cnot_experiment",
]
