"""Single-source operation classification tables for the circuit IR.

Every consumer of the IR -- :class:`repro.sim.circuit.Circuit` validation,
the reference frame sampler (:mod:`repro.sim.frame`), the compiled
bit-packed pipeline (:mod:`repro.sim.compiled`), the tableau and
state-vector simulators, and the noise layer (:mod:`repro.noise`) -- used
to string-match op names against private copies of these tuples, which is
exactly how a new op class drifts out of sync: ``Circuit.without_noise()``
keeps a channel the compiler rejects, or the compiler drops an annotation
the sampler still counts.  This module is now the only place an op name is
classified; everyone else imports from here.

Categories:

* ``CLIFFORD_1Q`` / ``CLIFFORD_2Q`` -- deterministic Clifford gates.
* ``NON_CLIFFORD`` -- state-vector-only gates.
* ``RESETS`` / ``MEASUREMENTS`` -- state preparation and readout.
* ``NOISE_1Q`` / ``NOISE_2Q`` -- stochastic channels.  ``PAULI_CHANNEL_1``
  and ``PAULI_CHANNEL_2`` are the biased generalizations of
  ``DEPOLARIZE1``/``DEPOLARIZE2``: their per-Pauli outcome probabilities
  live in ``Operation.args`` (3 and 15 entries, ordered like
  :data:`PAULI_1Q` / :data:`PAULI_2Q`) and ``Operation.arg`` holds the
  total firing probability.
* ``ANNOTATIONS`` -- no-op markers every simulator skips.  ``IDLE`` and
  ``FENCE`` (:data:`NOISE_MARKERS`) are placed by the clean experiment
  builders for :meth:`repro.noise.models.NoiseModel.apply` to consume:
  ``IDLE`` marks qubits idling through a moment (targets = the idle
  qubits), ``FENCE`` breaks a layer so noise insertion cannot coalesce
  across it.  A noise model replaces/strips them; simulators that meet
  them anyway treat them as ``TICK``.
"""

from __future__ import annotations

CLIFFORD_1Q = ("H", "S", "S_DAG", "X", "Y", "Z")
CLIFFORD_2Q = ("CX", "CZ", "SWAP")
NON_CLIFFORD = ("T", "T_DAG", "CCZ", "CCX")
RESETS = ("R", "RX")
MEASUREMENTS = ("M", "MX")
NOISE_1Q = ("X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1", "PAULI_CHANNEL_1")
NOISE_2Q = ("DEPOLARIZE2", "PAULI_CHANNEL_2")
NOISE_MARKERS = ("IDLE", "FENCE")
ANNOTATIONS = ("DETECTOR", "OBSERVABLE_INCLUDE", "TICK") + NOISE_MARKERS

NOISE = NOISE_1Q + NOISE_2Q

ALL_NAMES = (
    CLIFFORD_1Q
    + CLIFFORD_2Q
    + NON_CLIFFORD
    + RESETS
    + MEASUREMENTS
    + NOISE
    + ANNOTATIONS
)

# Channels whose per-outcome probabilities ride in Operation.args; the
# required args length is the outcome count.
CHANNEL_ARGS = {"PAULI_CHANNEL_1": 3, "PAULI_CHANNEL_2": 15}

# Ops addressing qubit *pairs* (targets must come in twos).
PAIR_TARGETS = CLIFFORD_2Q + NOISE_2Q

# Single- and two-qubit Pauli tables as (x, z) flip pairs.  These order
# the outcomes of DEPOLARIZE1 / PAULI_CHANNEL_1 (X, Y, Z) and of
# DEPOLARIZE2 / PAULI_CHANNEL_2 (the 15 non-identity pairs, first qubit
# major), and they are what the DEM extraction enumerates.
PAULI_1Q = ((1, 0), (1, 1), (0, 1))  # X, Y, Z
PAULI_2Q = tuple(
    (a, b)
    for a in ((0, 0), (1, 0), (1, 1), (0, 1))
    for b in ((0, 0), (1, 0), (1, 1), (0, 1))
    if (a, b) != ((0, 0), (0, 0))
)

# 4-bit frame-flip code per PAULI_2Q outcome: bit 3 = X on the first
# qubit, bit 2 = Z on the first, bit 1 = X on the second, bit 0 = Z on
# the second -- the exact code layout of
# :func:`repro.sim.compiled.depolarize2_codes`.
PAULI_2Q_CODES = tuple(
    (xa << 3) | (za << 2) | (xb << 1) | zb for (xa, za), (xb, zb) in PAULI_2Q
)

# 2-bit frame-flip code per PAULI_1Q outcome: bit 1 = X flip, bit 0 = Z.
PAULI_1Q_CODES = tuple((x << 1) | z for x, z in PAULI_1Q)

# -- compiled-pipeline classification ------------------------------------------

# Gate names dropped at compile time: Paulis commute through the frame
# trivially, TICK/IDLE/FENCE are no-op markers.  (DETECTOR and
# OBSERVABLE_INCLUDE are *not* dropped -- they lower to the sparse GF(2)
# record maps.)
DROPPED_BY_COMPILER = ("X", "Y", "Z", "TICK") + NOISE_MARKERS

# Canonical fused kinds (S_DAG folds into S, RX into R: identical frame
# semantics).
CANONICAL_FRAME_GATE = {"S_DAG": "S", "RX": "R"}

# Deterministic ops lowered to fused steps; anything not in this set, the
# noise set, or DROPPED_BY_COMPILER (e.g. non-Clifford T/CCZ) is rejected
# at compile time with the reference sampler's error.
FUSABLE = ("H", "S", "CX", "CZ", "SWAP", "R", "M", "MX")
