"""Dense state-vector simulator for small circuits (<= ~16 qubits).

Used for functional verification of the non-Clifford gadgets: the
8T-to-CCZ factory circuit, AutoCCZ teleportation, and small QROM instances.
Supports the full gate set of :mod:`repro.sim.circuit`; noise channels are
not sampled here (use the frame simulator), but explicit Pauli errors can be
inserted as gates.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim.circuit import Circuit
from repro.sim.ops import ANNOTATIONS

_H = np.array([[1, 1], [1, -1]], dtype=np.complex128) / math.sqrt(2)
_S = np.diag([1, 1j]).astype(np.complex128)
_T = np.diag([1, np.exp(1j * math.pi / 4)]).astype(np.complex128)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_Z = np.diag([1, -1]).astype(np.complex128)

_ONE_QUBIT = {
    "H": _H,
    "S": _S,
    "S_DAG": _S.conj().T,
    "T": _T,
    "T_DAG": _T.conj().T,
    "X": _X,
    "Y": _Y,
    "Z": _Z,
}


class StateVector:
    """State vector on ``num_qubits`` qubits, initialized to |0...0>.

    Qubit 0 is the least-significant bit of the basis-state index.
    """

    def __init__(self, num_qubits: int, rng: Optional[np.random.Generator] = None) -> None:
        if num_qubits < 1 or num_qubits > 24:
            raise ValueError(f"num_qubits out of supported range: {num_qubits}")
        self.num_qubits = num_qubits
        self.amplitudes = np.zeros(2**num_qubits, dtype=np.complex128)
        self.amplitudes[0] = 1.0
        self.record: List[int] = []
        self._rng = rng if rng is not None else np.random.default_rng()

    # -- gate application --------------------------------------------------

    def apply_1q(self, matrix: np.ndarray, qubit: int) -> None:
        """Apply a 2x2 unitary to one qubit."""
        self._check_qubit(qubit)
        psi = self.amplitudes.reshape(-1, 2, 2**qubit)
        self.amplitudes = np.einsum("ab,ibj->iaj", matrix, psi).reshape(-1)

    def apply_cx(self, control: int, target: int) -> None:
        self._apply_controlled(_X, [control], target)

    def apply_cz(self, control: int, target: int) -> None:
        self._apply_controlled(_Z, [control], target)

    def apply_ccz(self, a: int, b: int, c: int) -> None:
        self._apply_controlled(_Z, [a, b], c)

    def apply_ccx(self, a: int, b: int, target: int) -> None:
        self._apply_controlled(_X, [a, b], target)

    def apply_swap(self, a: int, b: int) -> None:
        self.apply_cx(a, b)
        self.apply_cx(b, a)
        self.apply_cx(a, b)

    def _apply_controlled(self, matrix: np.ndarray, controls: Sequence[int], target: int) -> None:
        for q in list(controls) + [target]:
            self._check_qubit(q)
        idx = np.arange(2**self.num_qubits)
        mask = np.ones_like(idx, dtype=bool)
        for c in controls:
            mask &= (idx >> c) & 1 == 1
        t0 = mask & ((idx >> target) & 1 == 0)
        i0 = idx[t0]
        i1 = i0 | (1 << target)
        a0 = self.amplitudes[i0].copy()
        a1 = self.amplitudes[i1].copy()
        self.amplitudes[i0] = matrix[0, 0] * a0 + matrix[0, 1] * a1
        self.amplitudes[i1] = matrix[1, 0] * a0 + matrix[1, 1] * a1

    # -- measurement/reset ---------------------------------------------------

    def probability_of_one(self, qubit: int) -> float:
        """Probability of reading 1 when measuring ``qubit`` in Z."""
        self._check_qubit(qubit)
        idx = np.arange(2**self.num_qubits)
        mask = (idx >> qubit) & 1 == 1
        return float(np.sum(np.abs(self.amplitudes[mask]) ** 2))

    def measure(self, qubit: int, forced: Optional[int] = None) -> int:
        """Projective Z measurement; optionally force an outcome (postselect).

        Forcing an outcome renormalizes; forcing a zero-probability outcome
        raises ``ValueError``.
        """
        p1 = self.probability_of_one(qubit)
        if forced is None:
            outcome = int(self._rng.random() < p1)
        else:
            outcome = int(forced)
        prob = p1 if outcome else 1.0 - p1
        if prob < 1e-12:
            raise ValueError(f"cannot project qubit {qubit} onto outcome {outcome}")
        idx = np.arange(2**self.num_qubits)
        keep = ((idx >> qubit) & 1) == outcome
        self.amplitudes[~keep] = 0.0
        self.amplitudes /= math.sqrt(prob)
        self.record.append(outcome)
        return outcome

    def measure_x(self, qubit: int, forced: Optional[int] = None) -> int:
        """Projective X measurement via H conjugation."""
        self.apply_1q(_H, qubit)
        outcome = self.measure(qubit, forced)
        self.apply_1q(_H, qubit)
        return outcome

    def reset(self, qubit: int) -> None:
        """Reset to |0> (measure, then flip if needed); not recorded."""
        p1 = self.probability_of_one(qubit)
        outcome = int(self._rng.random() < p1)
        prob = p1 if outcome else 1.0 - p1
        if prob < 1e-12:
            outcome = 1 - outcome
            prob = 1.0 - prob
        idx = np.arange(2**self.num_qubits)
        keep = ((idx >> qubit) & 1) == outcome
        self.amplitudes[~keep] = 0.0
        self.amplitudes /= math.sqrt(prob)
        if outcome == 1:
            self.apply_1q(_X, qubit)

    # -- circuit execution ---------------------------------------------------

    def run(self, circuit: Circuit, forced_measurements: Optional[Dict[int, int]] = None) -> None:
        """Execute a circuit (noise channels are rejected).

        Args:
            circuit: the circuit to run.
            forced_measurements: map from measurement-record index to forced
                outcome, for post-selected gadgets.
        """
        forced = forced_measurements or {}
        for op in circuit.operations:
            if op.name in _ONE_QUBIT:
                for q in op.targets:
                    self.apply_1q(_ONE_QUBIT[op.name], q)
            elif op.name == "CX":
                for c, t in _pairs(op.targets):
                    self.apply_cx(c, t)
            elif op.name == "CZ":
                for c, t in _pairs(op.targets):
                    self.apply_cz(c, t)
            elif op.name == "SWAP":
                for a, b in _pairs(op.targets):
                    self.apply_swap(a, b)
            elif op.name == "CCZ":
                for a, b, c in _triples(op.targets):
                    self.apply_ccz(a, b, c)
            elif op.name == "CCX":
                for a, b, c in _triples(op.targets):
                    self.apply_ccx(a, b, c)
            elif op.name == "R":
                for q in op.targets:
                    self.reset(q)
            elif op.name == "RX":
                for q in op.targets:
                    self.reset(q)
                    self.apply_1q(_H, q)
            elif op.name == "M":
                for q in op.targets:
                    self.measure(q, forced.get(len(self.record)))
            elif op.name == "MX":
                for q in op.targets:
                    self.measure_x(q, forced.get(len(self.record)))
            elif op.name in ANNOTATIONS:
                continue
            else:
                raise ValueError(f"state-vector simulator cannot run {op.name}")

    # -- analysis --------------------------------------------------------------

    def fidelity_with(self, other: "StateVector") -> float:
        """|<self|other>|^2 (both normalized)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit-count mismatch")
        return float(abs(np.vdot(self.amplitudes, other.amplitudes)) ** 2)

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit {qubit} out of range")


def _pairs(targets: Sequence[int]):
    return zip(targets[0::2], targets[1::2])


def _triples(targets: Sequence[int]):
    return zip(targets[0::3], targets[1::3], targets[2::3])


def ccz_state(num_extra: int = 0) -> StateVector:
    """The |CCZ> = CCZ |+++> resource state (paper Eq. 7) on 3 (+extra) qubits."""
    sv = StateVector(3 + num_extra)
    for q in range(3):
        sv.apply_1q(_H, q)
    sv.apply_ccz(0, 1, 2)
    return sv
