"""CHP-style stabilizer tableau simulator (Aaronson-Gottesman 2004).

Tracks 2n generators (n destabilizers + n stabilizers) as rows of binary
X/Z matrices plus a sign vector.  Supports H, S, CX (and gates derived from
them), X/Z-basis resets and measurements with correctly-sampled random
outcomes.  Used to verify GHZ-fan-out circuits, surface-code stabilizer
flows, and detector determinism of the transversal-CNOT memory circuits at
small distance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.sim.circuit import Circuit
from repro.sim.ops import ANNOTATIONS


class TableauSimulator:
    """Stabilizer states on ``num_qubits`` qubits, initialized to |0...0>."""

    def __init__(self, num_qubits: int, rng: Optional[np.random.Generator] = None) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be positive")
        self.n = num_qubits
        # Rows 0..n-1: destabilizers; rows n..2n-1: stabilizers.
        self.x = np.zeros((2 * num_qubits, num_qubits), dtype=np.uint8)
        self.z = np.zeros((2 * num_qubits, num_qubits), dtype=np.uint8)
        self.sign = np.zeros(2 * num_qubits, dtype=np.uint8)
        for q in range(num_qubits):
            self.x[q, q] = 1  # destabilizer X_q
            self.z[num_qubits + q, q] = 1  # stabilizer Z_q
        self.record: List[int] = []
        self._rng = rng if rng is not None else np.random.default_rng()

    def copy(self) -> "TableauSimulator":
        """Deep copy sharing nothing (fresh RNG seeded arbitrarily)."""
        dup = TableauSimulator(self.n, rng=np.random.default_rng())
        dup.x = self.x.copy()
        dup.z = self.z.copy()
        dup.sign = self.sign.copy()
        dup.record = list(self.record)
        return dup

    # -- gates --------------------------------------------------------------

    def h(self, q: int) -> None:
        """Hadamard: X <-> Z, sign ^= x & z."""
        self.sign ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        """Phase gate: X -> Y; sign ^= x & z."""
        self.sign ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def s_dag(self, q: int) -> None:
        self.s(q)
        self.s(q)
        self.s(q)

    def x_gate(self, q: int) -> None:
        self.sign ^= self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.sign ^= self.x[:, q]

    def y_gate(self, q: int) -> None:
        self.z_gate(q)
        self.x_gate(q)

    def cx(self, control: int, target: int) -> None:
        """CNOT with the standard CHP sign update."""
        xc, zc = self.x[:, control], self.z[:, control]
        xt, zt = self.x[:, target], self.z[:, target]
        self.sign ^= xc & zt & (xt ^ zc ^ 1)
        self.x[:, target] ^= xc
        self.z[:, control] ^= zt

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cx(a, b)
        self.h(b)

    def swap(self, a: int, b: int) -> None:
        self.cx(a, b)
        self.cx(b, a)
        self.cx(a, b)

    # -- measurement ----------------------------------------------------------

    def is_deterministic(self, q: int) -> bool:
        """True if a Z measurement of ``q`` would have a fixed outcome."""
        return not any(self.x[r, q] for r in range(self.n, 2 * self.n))

    def is_deterministic_x(self, q: int) -> bool:
        """True if an X measurement of ``q`` would have a fixed outcome."""
        self.h(q)
        fixed = self.is_deterministic(q)
        self.h(q)
        return fixed

    def measure(self, q: int, forced: Optional[int] = None) -> int:
        """Projective Z measurement with CHP update; records the outcome."""
        n = self.n
        stab_rows = [r for r in range(n, 2 * n) if self.x[r, q]]
        if stab_rows:
            outcome = int(forced) if forced is not None else int(self._rng.integers(0, 2))
            pivot = stab_rows[0]
            for r in range(2 * n):
                if r != pivot and self.x[r, q]:
                    self._row_mult(r, pivot)
            # Destabilizer inherits the old stabilizer; new stabilizer +-Z_q.
            self.x[pivot - n] = self.x[pivot]
            self.z[pivot - n] = self.z[pivot]
            self.sign[pivot - n] = self.sign[pivot]
            self.x[pivot] = 0
            self.z[pivot] = 0
            self.z[pivot, q] = 1
            self.sign[pivot] = outcome
        else:
            outcome = self._deterministic_outcome(q)
            if forced is not None and forced != outcome:
                raise ValueError(
                    f"cannot force outcome {forced} on a deterministic measurement"
                )
        self.record.append(outcome)
        return outcome

    def measure_x(self, q: int, forced: Optional[int] = None) -> int:
        self.h(q)
        outcome = self.measure(q, forced)
        self.h(q)
        return outcome

    def reset(self, q: int) -> None:
        """Reset to |0> (measure then conditionally flip); not recorded."""
        outcome = self.measure(q)
        self.record.pop()
        if outcome:
            self.x_gate(q)

    def reset_x(self, q: int) -> None:
        self.reset(q)
        self.h(q)

    def _deterministic_outcome(self, q: int) -> int:
        """CHP scratch-row computation of a deterministic Z outcome."""
        n = self.n
        sign = 0
        phase = 0
        x = np.zeros(n, dtype=np.uint8)
        z = np.zeros(n, dtype=np.uint8)
        for r in range(n):
            if self.x[r, q]:
                sign, phase, x, z = _pauli_mult(
                    sign, phase, x, z, int(self.sign[r + n]), self.x[r + n], self.z[r + n]
                )
        if phase:
            raise AssertionError("deterministic outcome acquired imaginary phase")
        return sign

    def _row_mult(self, dst: int, src: int) -> None:
        """Row_dst <- Row_src * Row_dst with phase tracking.

        Destabilizer rows (dst < n) may pick up imaginary phases; their
        signs are never read, so the residual phase is dropped there.
        Stabilizer-group products must stay Hermitian.
        """
        sign, phase, x, z = _pauli_mult(
            int(self.sign[src]), 0, self.x[src], self.z[src],
            int(self.sign[dst]), self.x[dst], self.z[dst],
        )
        if phase and dst >= self.n:
            raise AssertionError("stabilizer product acquired imaginary phase")
        self.sign[dst] = sign
        self.x[dst] = x
        self.z[dst] = z

    # -- state queries ----------------------------------------------------------

    def expectation(self, x_mask: np.ndarray, z_mask: np.ndarray) -> Optional[int]:
        """Sign of a Pauli with supports (x_mask, z_mask) on this state.

        Returns 0 if the Pauli stabilizes the state (+1 eigenvalue), 1 if
        the negated Pauli does (-1), or None if the state is not an
        eigenstate (expectation value zero).

        Implemented by adjoining an ancilla in |+>, applying the
        controlled-Pauli, and measuring the ancilla in X on a copy.
        """
        x_mask = np.asarray(x_mask, dtype=np.uint8)
        z_mask = np.asarray(z_mask, dtype=np.uint8)
        n = self.n
        big = TableauSimulator(n + 1, rng=np.random.default_rng(0))
        big.x[:n, :n] = self.x[:n]
        big.z[:n, :n] = self.z[:n]
        big.x[n + 1 : 2 * n + 1, :n] = self.x[n:]
        big.z[n + 1 : 2 * n + 1, :n] = self.z[n:]
        big.sign[:n] = self.sign[:n]
        big.sign[n + 1 : 2 * n + 1] = self.sign[n:]
        ancilla = n  # fresh |0> with destabilizer X_a (row n), stabilizer Z_a.
        big.x[ancilla] = 0
        big.z[ancilla] = 0
        big.x[ancilla, ancilla] = 1
        big.sign[ancilla] = 0
        big.x[2 * n + 1] = 0
        big.z[2 * n + 1] = 0
        big.z[2 * n + 1, ancilla] = 1
        big.sign[2 * n + 1] = 0
        big.h(ancilla)
        for q in range(n):
            if x_mask[q] and z_mask[q]:
                big.s_dag(q)
                big.cx(ancilla, q)
                big.s(q)
            elif x_mask[q]:
                big.cx(ancilla, q)
            elif z_mask[q]:
                big.cz(ancilla, q)
        if big.is_deterministic_x(ancilla):
            return big.measure_x(ancilla)
        return None

    # -- circuit execution ---------------------------------------------------

    def run(self, circuit: Circuit, forced_measurements: Optional[Dict[int, int]] = None) -> None:
        """Execute the Clifford subset of the IR (noise ops rejected)."""
        forced = forced_measurements or {}
        for op in circuit.operations:
            if op.name == "H":
                for q in op.targets:
                    self.h(q)
            elif op.name == "S":
                for q in op.targets:
                    self.s(q)
            elif op.name == "S_DAG":
                for q in op.targets:
                    self.s_dag(q)
            elif op.name == "X":
                for q in op.targets:
                    self.x_gate(q)
            elif op.name == "Y":
                for q in op.targets:
                    self.y_gate(q)
            elif op.name == "Z":
                for q in op.targets:
                    self.z_gate(q)
            elif op.name == "CX":
                for c, t in zip(op.targets[0::2], op.targets[1::2]):
                    self.cx(c, t)
            elif op.name == "CZ":
                for a, b in zip(op.targets[0::2], op.targets[1::2]):
                    self.cz(a, b)
            elif op.name == "SWAP":
                for a, b in zip(op.targets[0::2], op.targets[1::2]):
                    self.swap(a, b)
            elif op.name == "R":
                for q in op.targets:
                    self.reset(q)
            elif op.name == "RX":
                for q in op.targets:
                    self.reset_x(q)
            elif op.name == "M":
                for q in op.targets:
                    self.measure(q, forced.get(len(self.record)))
            elif op.name == "MX":
                for q in op.targets:
                    self.measure_x(q, forced.get(len(self.record)))
            elif op.name in ANNOTATIONS:
                continue
            else:
                raise ValueError(f"tableau simulator cannot run {op.name}")


def _pauli_mult(sign_a, phase_a, xa, za, sign_b, xb, zb):
    """(-1)^sign_a i^phase_a P_a times (-1)^sign_b P_b, CHP convention.

    Returns (sign, residual_i_phase, x, z).
    """
    g_total = 0
    for xa_i, za_i, xb_i, zb_i in zip(xa, za, xb, zb):
        g_total += _g(int(xa_i), int(za_i), int(xb_i), int(zb_i))
    phase = (2 * sign_a + 2 * sign_b + g_total + phase_a) % 4
    return phase // 2, phase % 2, xa ^ xb, za ^ zb


def _g(x1: int, z1: int, x2: int, z2: int) -> int:
    """Exponent of i when multiplying single-qubit Paulis (CHP paper)."""
    if x1 == 0 and z1 == 0:
        return 0
    if x1 == 1 and z1 == 1:  # Y
        return z2 - x2
    if x1 == 1 and z1 == 0:  # X
        return z2 * (2 * x2 - 1)
    return x2 * (1 - 2 * z2)  # Z
