"""Pauli-frame Monte-Carlo sampler.

The frame simulator propagates only *errors* through a Clifford circuit:
the noiseless circuit is assumed to make every DETECTOR deterministic (the
builders in :mod:`repro.sim.memory` guarantee this; a tableau cross-check is
provided in the tests).  Each shot holds an X/Z frame per qubit; noise ops
flip frame bits with their probabilities, gates conjugate the frame, and a
measurement's outcome flip is the frame's anticommutation with the measured
observable.  Detector values are XORs of measurement flips.

The same propagation engine, run with one "shot" per elementary error
mechanism, yields the detector error model (DEM): for every possible
physical error, the set of detectors and logical observables it flips.
That extraction lives in :mod:`repro.noise.dem` (the
:class:`DetectorErrorModel` / :class:`ErrorMechanism` classes are
re-exported here for compatibility); :meth:`FrameSimulator.detector_error_model`
delegates to it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.noise.dem import DetectorErrorModel, ErrorMechanism  # noqa: F401
from repro.sim.circuit import Circuit
from repro.sim.compiled import (
    PC1_CODE_TABLE,
    PC2_CODE_TABLE,
    depolarize2_codes,
    pauli_channel_codes,
    transpose_packed,
)
from repro.sim.ops import NOISE_MARKERS


class FrameSimulator:
    """Vectorized Pauli-frame propagation over many shots.

    Args:
        circuit: the circuit to sample.
        rng: default noise generator for sampling calls without one.
        compile_mode: packed-program selection passed through to
            :func:`repro.sim.periodic.compile_program` -- ``"auto"``
            (default) replays a detected repeated round periodically,
            ``"linear"`` / ``"periodic"`` force a path.  Every mode
            samples bit-identically per seed.
    """

    def __init__(
        self,
        circuit: Circuit,
        rng: Optional[np.random.Generator] = None,
        compile_mode: str = "auto",
    ) -> None:
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits
        self.compile_mode = compile_mode
        self._rng = rng if rng is not None else np.random.default_rng()
        self._compiled = None

    @property
    def compiled(self):
        """The circuit's packed program (fingerprint-memoized, fetched once).

        A :class:`~repro.sim.periodic.PeriodicProgram` when the circuit
        has a detected repeated round (and the mode allows it), else the
        linear :class:`~repro.sim.compiled.CompiledProgram`.
        """
        if self._compiled is None:
            from repro.sim.periodic import compile_program

            self._compiled = compile_program(self.circuit, mode=self.compile_mode)
        return self._compiled

    # -- sampling --------------------------------------------------------------

    def sample(
        self, shots: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample detector and observable flip tables.

        Args:
            shots: number of Monte-Carlo shots to draw.
            rng: generator to draw noise from; defaults to the simulator's
                own.  Passing an explicit generator lets callers (e.g. the
                sharded decoding engine) sample independent, reproducible
                streams without rebuilding the simulator.

        Returns:
            (detectors, observables): uint8 arrays of shape
            (shots, num_detectors) and (shots, num_observables).
        """
        frame_x = np.zeros((shots, self.num_qubits), dtype=np.uint8)
        frame_z = np.zeros((shots, self.num_qubits), dtype=np.uint8)
        flips = np.zeros((shots, self.circuit.num_measurements), dtype=np.uint8)
        detectors = np.zeros((shots, self.circuit.num_detectors), dtype=np.uint8)
        observables = np.zeros((shots, max(self.circuit.num_observables, 1)), dtype=np.uint8)
        cursor = _Cursor()
        for op in self.circuit.operations:
            self._apply(
                op, frame_x, frame_z, flips, detectors, observables, cursor,
                noisy=True, rng=rng if rng is not None else self._rng,
            )
        return detectors, observables[:, : self.circuit.num_observables]

    def sample_packed(
        self, shots: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample detector/observable tables as bit-packed per-shot keys.

        Runs the compiled bit-packed pipeline (:mod:`repro.sim.compiled`):
        gates operate on packed word rows (8-64 shots per ALU op) and
        detector extraction is one sparse XOR-reduce.  The noise stream is
        drawn in the reference sampler's exact order, so for the same seed
        the unpacked bits equal :meth:`sample`'s output *bit for bit*.

        Returns:
            (detectors, observables): uint8 arrays of shape
            ``(shots, ceil(num_detectors/8))`` and
            ``(shots, ceil(num_observables/8))``; each row is the shot's
            detector/observable bits packed with ``np.packbits`` big-endian
            bit order -- exactly the dedup key format
            :meth:`repro.decoder.base.BatchDecoder.decode_packed` consumes.
        """
        program = self.compiled
        det, obs = program.run_packed(
            shots, rng if rng is not None else self._rng
        )
        return transpose_packed(det, shots), transpose_packed(obs, shots)

    # -- detector error model ----------------------------------------------------

    def detector_error_model(self) -> DetectorErrorModel:
        """Extract the circuit's DEM (see :func:`repro.noise.dem.extract_dem`)."""
        from repro.noise.dem import extract_dem

        return extract_dem(self.circuit)

    # -- op application ------------------------------------------------------------

    def _apply(self, op, frame_x, frame_z, flips, detectors, observables, cursor, noisy, rng=None):
        rng = rng if rng is not None else self._rng
        name = op.name
        if name == "H":
            for q in op.targets:
                frame_x[:, q], frame_z[:, q] = frame_z[:, q].copy(), frame_x[:, q].copy()
        elif name == "S" or name == "S_DAG":
            for q in op.targets:
                frame_z[:, q] ^= frame_x[:, q]
        elif name in ("X", "Y", "Z", "TICK") or name in NOISE_MARKERS:
            return  # Paulis commute through the frame; markers are no-ops.
        elif name == "CX":
            for c, t in zip(op.targets[0::2], op.targets[1::2]):
                frame_x[:, t] ^= frame_x[:, c]
                frame_z[:, c] ^= frame_z[:, t]
        elif name == "CZ":
            for a, b in zip(op.targets[0::2], op.targets[1::2]):
                frame_z[:, a] ^= frame_x[:, b]
                frame_z[:, b] ^= frame_x[:, a]
        elif name == "SWAP":
            for a, b in zip(op.targets[0::2], op.targets[1::2]):
                frame_x[:, [a, b]] = frame_x[:, [b, a]]
                frame_z[:, [a, b]] = frame_z[:, [b, a]]
        elif name == "R":
            for q in op.targets:
                frame_x[:, q] = 0
                frame_z[:, q] = 0
        elif name == "RX":
            for q in op.targets:
                frame_x[:, q] = 0
                frame_z[:, q] = 0
        elif name == "M":
            for q in op.targets:
                flips[:, cursor.measurement] = frame_x[:, q]
                cursor.measurement += 1
        elif name == "MX":
            for q in op.targets:
                flips[:, cursor.measurement] = frame_z[:, q]
                cursor.measurement += 1
        elif name == "DETECTOR":
            value = np.zeros(flips.shape[0], dtype=np.uint8)
            for rec in op.targets:
                value ^= flips[:, rec]
            detectors[:, cursor.detector] = value
            cursor.detector += 1
        elif name == "OBSERVABLE_INCLUDE":
            index = int(op.arg)
            for rec in op.targets:
                observables[:, index] ^= flips[:, rec]
        elif name == "X_ERROR":
            if noisy:
                hit = rng.random((len(op.targets), flips.shape[0])) < op.arg
                for i, q in enumerate(op.targets):
                    frame_x[:, q] ^= hit[i].astype(np.uint8)
        elif name == "Z_ERROR":
            if noisy:
                hit = rng.random((len(op.targets), flips.shape[0])) < op.arg
                for i, q in enumerate(op.targets):
                    frame_z[:, q] ^= hit[i].astype(np.uint8)
        elif name == "Y_ERROR":
            if noisy:
                hit = rng.random((len(op.targets), flips.shape[0])) < op.arg
                for i, q in enumerate(op.targets):
                    frame_x[:, q] ^= hit[i].astype(np.uint8)
                    frame_z[:, q] ^= hit[i].astype(np.uint8)
        elif name == "DEPOLARIZE1":
            if noisy:
                # One (targets, shots) draw per op; row i drives qubit i.
                draw = rng.random((len(op.targets), flips.shape[0]))
                for i, q in enumerate(op.targets):
                    row = draw[i]
                    # Split [0, p) into thirds for X, Y, Z.
                    x_hit = row < 2 * op.arg / 3
                    z_hit = (row >= op.arg / 3) & (row < op.arg)
                    frame_x[:, q] ^= x_hit.astype(np.uint8)
                    frame_z[:, q] ^= z_hit.astype(np.uint8)
        elif name == "PAULI_CHANNEL_1":
            if noisy:
                # Same helper, same draw shape as the compiled pipeline.
                code = pauli_channel_codes(
                    rng.random((len(op.targets), flips.shape[0])),
                    np.cumsum(np.asarray(op.args)),
                    PC1_CODE_TABLE,
                )
                for i, q in enumerate(op.targets):
                    row = code[i]
                    frame_x[:, q] ^= (row >> 1) & 1
                    frame_z[:, q] ^= row & 1
        elif name == "DEPOLARIZE2":
            if noisy and op.arg > 0:
                pairs = list(zip(op.targets[0::2], op.targets[1::2]))
                # One (pairs, shots) draw per op; the same uniform drives
                # both the hit decision and the Pauli-pair outcome, and
                # the outcome code's bits are the four flip planes.  The
                # compiled pipeline calls the same helper on the same
                # draw, keeping the two samplers bit-exact.
                code = depolarize2_codes(
                    rng.random((len(pairs), flips.shape[0])), op.arg
                )
                for i, (a, b) in enumerate(pairs):
                    row = code[i]
                    frame_x[:, a] ^= (row >> 3) & 1
                    frame_z[:, a] ^= (row >> 2) & 1
                    frame_x[:, b] ^= (row >> 1) & 1
                    frame_z[:, b] ^= row & 1
        elif name == "PAULI_CHANNEL_2":
            if noisy:
                pairs = list(zip(op.targets[0::2], op.targets[1::2]))
                code = pauli_channel_codes(
                    rng.random((len(pairs), flips.shape[0])),
                    np.cumsum(np.asarray(op.args)),
                    PC2_CODE_TABLE,
                )
                for i, (a, b) in enumerate(pairs):
                    row = code[i]
                    frame_x[:, a] ^= (row >> 3) & 1
                    frame_z[:, a] ^= (row >> 2) & 1
                    frame_x[:, b] ^= (row >> 1) & 1
                    frame_z[:, b] ^= row & 1
        else:
            raise ValueError(f"frame simulator cannot run {name}")


class _Cursor:
    """Mutable counters for measurement/detector positions during a pass."""

    def __init__(self) -> None:
        self.measurement = 0
        self.detector = 0
