"""Pauli-frame Monte-Carlo sampler and detector-error-model extraction.

The frame simulator propagates only *errors* through a Clifford circuit:
the noiseless circuit is assumed to make every DETECTOR deterministic (the
builders in :mod:`repro.sim.memory` guarantee this; a tableau cross-check is
provided in the tests).  Each shot holds an X/Z frame per qubit; noise ops
flip frame bits with their probabilities, gates conjugate the frame, and a
measurement's outcome flip is the frame's anticommutation with the measured
observable.  Detector values are XORs of measurement flips.

The same propagation engine, run with one "shot" per elementary error
mechanism, yields the detector error model (DEM): for every possible
physical error, the set of detectors and logical observables it flips.
Mechanisms with identical symptoms are merged with XOR-convolved
probabilities.  The DEM is what the matching decoder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.circuit import Circuit
from repro.sim.compiled import (
    PAULI_1Q as _PAULI_1Q,
    PAULI_2Q as _PAULI_2Q,
    CompiledProgram,
    depolarize2_codes,
    transpose_packed,
)


@dataclass(frozen=True)
class ErrorMechanism:
    """One independent error source of the detector error model.

    Attributes:
        probability: chance the mechanism fires in one shot.
        detectors: sorted indices of detectors it flips.
        observables: sorted indices of logical observables it flips.
    """

    probability: float
    detectors: Tuple[int, ...]
    observables: Tuple[int, ...]


@dataclass
class DetectorErrorModel:
    """Collection of independent error mechanisms plus circuit metadata."""

    mechanisms: List[ErrorMechanism]
    num_detectors: int
    num_observables: int

    def merged(self) -> "DetectorErrorModel":
        """Combine mechanisms with identical symptoms.

        Two independent sources with the same symptom act like one source
        firing with probability p = p1 (1 - p2) + p2 (1 - p1).
        """
        combined: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}
        for mech in self.mechanisms:
            key = (mech.detectors, mech.observables)
            prior = combined.get(key, 0.0)
            combined[key] = prior * (1 - mech.probability) + mech.probability * (1 - prior)
        merged = [
            ErrorMechanism(p, dets, obs)
            for (dets, obs), p in sorted(combined.items())
            if p > 0
        ]
        return DetectorErrorModel(merged, self.num_detectors, self.num_observables)


class FrameSimulator:
    """Vectorized Pauli-frame propagation over many shots."""

    def __init__(self, circuit: Circuit, rng: Optional[np.random.Generator] = None) -> None:
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits
        self._rng = rng if rng is not None else np.random.default_rng()
        self._compiled: Optional[CompiledProgram] = None

    @property
    def compiled(self) -> CompiledProgram:
        """The circuit's compiled bit-packed program (built lazily, once)."""
        if self._compiled is None:
            self._compiled = CompiledProgram(self.circuit)
        return self._compiled

    # -- sampling --------------------------------------------------------------

    def sample(
        self, shots: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample detector and observable flip tables.

        Args:
            shots: number of Monte-Carlo shots to draw.
            rng: generator to draw noise from; defaults to the simulator's
                own.  Passing an explicit generator lets callers (e.g. the
                sharded decoding engine) sample independent, reproducible
                streams without rebuilding the simulator.

        Returns:
            (detectors, observables): uint8 arrays of shape
            (shots, num_detectors) and (shots, num_observables).
        """
        frame_x = np.zeros((shots, self.num_qubits), dtype=np.uint8)
        frame_z = np.zeros((shots, self.num_qubits), dtype=np.uint8)
        flips = np.zeros((shots, self.circuit.num_measurements), dtype=np.uint8)
        detectors = np.zeros((shots, self.circuit.num_detectors), dtype=np.uint8)
        observables = np.zeros((shots, max(self.circuit.num_observables, 1)), dtype=np.uint8)
        cursor = _Cursor()
        for op in self.circuit.operations:
            self._apply(
                op, frame_x, frame_z, flips, detectors, observables, cursor,
                noisy=True, rng=rng if rng is not None else self._rng,
            )
        return detectors, observables[:, : self.circuit.num_observables]

    def sample_packed(
        self, shots: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample detector/observable tables as bit-packed per-shot keys.

        Runs the compiled bit-packed pipeline (:mod:`repro.sim.compiled`):
        gates operate on packed word rows (8-64 shots per ALU op) and
        detector extraction is one sparse XOR-reduce.  The noise stream is
        drawn in the reference sampler's exact order, so for the same seed
        the unpacked bits equal :meth:`sample`'s output *bit for bit*.

        Returns:
            (detectors, observables): uint8 arrays of shape
            ``(shots, ceil(num_detectors/8))`` and
            ``(shots, ceil(num_observables/8))``; each row is the shot's
            detector/observable bits packed with ``np.packbits`` big-endian
            bit order -- exactly the dedup key format
            :meth:`repro.decoder.base.BatchDecoder.decode_packed` consumes.
        """
        program = self.compiled
        det, obs = program.run_packed(
            shots, rng if rng is not None else self._rng
        )
        return transpose_packed(det, shots), transpose_packed(obs, shots)

    # -- detector error model ----------------------------------------------------

    def detector_error_model(self) -> DetectorErrorModel:
        """Extract the DEM by propagating one frame per error mechanism."""
        mechanisms = self._enumerate_mechanisms()
        count = len(mechanisms)
        frame_x = np.zeros((count, self.num_qubits), dtype=np.uint8)
        frame_z = np.zeros((count, self.num_qubits), dtype=np.uint8)
        flips = np.zeros((count, self.circuit.num_measurements), dtype=np.uint8)
        detectors = np.zeros((count, self.circuit.num_detectors), dtype=np.uint8)
        observables = np.zeros((count, max(self.circuit.num_observables, 1)), dtype=np.uint8)
        cursor = _Cursor()
        noise_index = 0
        for op in self.circuit.operations:
            if op.name in ("X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1", "DEPOLARIZE2"):
                # Inject the mechanisms tied to this op into their rows.
                while noise_index < count and mechanisms[noise_index][0] is op:
                    _, _, x_flip_qubits, z_flip_qubits, _ = mechanisms[noise_index]
                    row = noise_index
                    for q in x_flip_qubits:
                        frame_x[row, q] ^= 1
                    for q in z_flip_qubits:
                        frame_z[row, q] ^= 1
                    noise_index += 1
            else:
                self._apply(op, frame_x, frame_z, flips, detectors, observables, cursor, noisy=False)
        out = [
            ErrorMechanism(
                probability=prob,
                detectors=tuple(int(d) for d in np.flatnonzero(detectors[row])),
                observables=tuple(int(o) for o in np.flatnonzero(observables[row])),
            )
            for row, (_, prob, _, _, _) in enumerate(mechanisms)
        ]
        dem = DetectorErrorModel(
            [m for m in out if m.detectors or m.observables],
            self.circuit.num_detectors,
            self.circuit.num_observables,
        )
        return dem.merged()

    def _enumerate_mechanisms(self):
        """List (op, probability, x_qubits, z_qubits, tag) for every outcome."""
        mechanisms = []
        for op in self.circuit.operations:
            if op.name == "X_ERROR":
                for q in op.targets:
                    mechanisms.append((op, op.arg, (q,), (), "X"))
            elif op.name == "Z_ERROR":
                for q in op.targets:
                    mechanisms.append((op, op.arg, (), (q,), "Z"))
            elif op.name == "Y_ERROR":
                for q in op.targets:
                    mechanisms.append((op, op.arg, (q,), (q,), "Y"))
            elif op.name == "DEPOLARIZE1":
                for q in op.targets:
                    for x_bit, z_bit in _PAULI_1Q:
                        mechanisms.append(
                            (op, op.arg / 3.0, (q,) if x_bit else (), (q,) if z_bit else (), "D1")
                        )
            elif op.name == "DEPOLARIZE2":
                for a, b in zip(op.targets[0::2], op.targets[1::2]):
                    for (xa, za), (xb, zb) in _PAULI_2Q:
                        xs = tuple(q for q, bit in ((a, xa), (b, xb)) if bit)
                        zs = tuple(q for q, bit in ((a, za), (b, zb)) if bit)
                        mechanisms.append((op, op.arg / 15.0, xs, zs, "D2"))
        return mechanisms

    # -- op application ------------------------------------------------------------

    def _apply(self, op, frame_x, frame_z, flips, detectors, observables, cursor, noisy, rng=None):
        rng = rng if rng is not None else self._rng
        name = op.name
        if name == "H":
            for q in op.targets:
                frame_x[:, q], frame_z[:, q] = frame_z[:, q].copy(), frame_x[:, q].copy()
        elif name == "S" or name == "S_DAG":
            for q in op.targets:
                frame_z[:, q] ^= frame_x[:, q]
        elif name in ("X", "Y", "Z", "TICK"):
            return  # Pauli gates commute through the frame trivially.
        elif name == "CX":
            for c, t in zip(op.targets[0::2], op.targets[1::2]):
                frame_x[:, t] ^= frame_x[:, c]
                frame_z[:, c] ^= frame_z[:, t]
        elif name == "CZ":
            for a, b in zip(op.targets[0::2], op.targets[1::2]):
                frame_z[:, a] ^= frame_x[:, b]
                frame_z[:, b] ^= frame_x[:, a]
        elif name == "SWAP":
            for a, b in zip(op.targets[0::2], op.targets[1::2]):
                frame_x[:, [a, b]] = frame_x[:, [b, a]]
                frame_z[:, [a, b]] = frame_z[:, [b, a]]
        elif name == "R":
            for q in op.targets:
                frame_x[:, q] = 0
                frame_z[:, q] = 0
        elif name == "RX":
            for q in op.targets:
                frame_x[:, q] = 0
                frame_z[:, q] = 0
        elif name == "M":
            for q in op.targets:
                flips[:, cursor.measurement] = frame_x[:, q]
                cursor.measurement += 1
        elif name == "MX":
            for q in op.targets:
                flips[:, cursor.measurement] = frame_z[:, q]
                cursor.measurement += 1
        elif name == "DETECTOR":
            value = np.zeros(flips.shape[0], dtype=np.uint8)
            for rec in op.targets:
                value ^= flips[:, rec]
            detectors[:, cursor.detector] = value
            cursor.detector += 1
        elif name == "OBSERVABLE_INCLUDE":
            index = int(op.arg)
            for rec in op.targets:
                observables[:, index] ^= flips[:, rec]
        elif name == "X_ERROR":
            if noisy:
                hit = rng.random((len(op.targets), flips.shape[0])) < op.arg
                for i, q in enumerate(op.targets):
                    frame_x[:, q] ^= hit[i].astype(np.uint8)
        elif name == "Z_ERROR":
            if noisy:
                hit = rng.random((len(op.targets), flips.shape[0])) < op.arg
                for i, q in enumerate(op.targets):
                    frame_z[:, q] ^= hit[i].astype(np.uint8)
        elif name == "Y_ERROR":
            if noisy:
                hit = rng.random((len(op.targets), flips.shape[0])) < op.arg
                for i, q in enumerate(op.targets):
                    frame_x[:, q] ^= hit[i].astype(np.uint8)
                    frame_z[:, q] ^= hit[i].astype(np.uint8)
        elif name == "DEPOLARIZE1":
            if noisy:
                # One (targets, shots) draw per op; row i drives qubit i.
                draw = rng.random((len(op.targets), flips.shape[0]))
                for i, q in enumerate(op.targets):
                    row = draw[i]
                    # Split [0, p) into thirds for X, Y, Z.
                    x_hit = row < 2 * op.arg / 3
                    z_hit = (row >= op.arg / 3) & (row < op.arg)
                    frame_x[:, q] ^= x_hit.astype(np.uint8)
                    frame_z[:, q] ^= z_hit.astype(np.uint8)
        elif name == "DEPOLARIZE2":
            if noisy and op.arg > 0:
                pairs = list(zip(op.targets[0::2], op.targets[1::2]))
                # One (pairs, shots) draw per op; the same uniform drives
                # both the hit decision and the Pauli-pair outcome, and
                # the outcome code's bits are the four flip planes.  The
                # compiled pipeline calls the same helper on the same
                # draw, keeping the two samplers bit-exact.
                code = depolarize2_codes(
                    rng.random((len(pairs), flips.shape[0])), op.arg
                )
                for i, (a, b) in enumerate(pairs):
                    row = code[i]
                    frame_x[:, a] ^= (row >> 3) & 1
                    frame_z[:, a] ^= (row >> 2) & 1
                    frame_x[:, b] ^= (row >> 1) & 1
                    frame_z[:, b] ^= row & 1
        else:
            raise ValueError(f"frame simulator cannot run {name}")


class _Cursor:
    """Mutable counters for measurement/detector positions during a pass."""

    def __init__(self) -> None:
        self.measurement = 0
        self.detector = 0
