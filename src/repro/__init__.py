"""repro: reproduction of the ISCA 2025 low-overhead transversal architecture paper.

Public entry points:

* :mod:`repro.core` -- platform parameters, movement/timing laws, the
  transversal logical-error model (Eqs. 2-6) and space-time accounting.
* :mod:`repro.codes` -- Pauli algebra, CSS codes, the rotated surface code
  and the [[8,3,2]] colour code.
* :mod:`repro.sim` -- circuit IR, state-vector and stabilizer-tableau
  simulators, and the bit-packed Pauli-frame sampler.
* :mod:`repro.noise` -- pluggable circuit noise models and detector-error
  -model extraction (weighted decoding graphs).
* :mod:`repro.decoder` -- matching decoders and logical-error analysis.
* :mod:`repro.atoms` -- atom-array geometry, AOD move constraints, schedules.
* :mod:`repro.factory` -- magic-state cultivation + 8T-to-CCZ factory.
* :mod:`repro.arithmetic` -- Cuccaro adders, carry runways, windowed
  arithmetic.
* :mod:`repro.lookup` -- QROM look-up tables and GHZ-assisted CNOT fan-out.
* :mod:`repro.parallel` -- bridge-qubit parallelization and reaction timing.
* :mod:`repro.algorithms` -- factoring and quantum-chemistry estimators and
  the architecture-level parameter optimizer.
* :mod:`repro.baselines` -- lattice-surgery baselines (Gidney-Ekera,
  Beverland et al.) and qLDPC dense-storage variant.
* :mod:`repro.experiments` -- generators for every figure and table in the
  paper's evaluation.
"""

__version__ = "1.0.0"

from repro.core import (
    ArchitectureConfig,
    ErrorParams,
    PhysicalParams,
    ResourceEstimate,
    TimingModel,
)

__all__ = [
    "ArchitectureConfig",
    "ErrorParams",
    "PhysicalParams",
    "ResourceEstimate",
    "TimingModel",
    "__version__",
]
