"""Structural verification passes: pure walks over the operation list.

These passes need nothing beyond the circuit itself (no DEM extraction,
no graph lowering), so they are cheap enough for the experiment builders
to run on every construction under the ``strict`` flag.

Registered passes:

* ``record_dataflow`` -- every ``DETECTOR``/``OBSERVABLE_INCLUDE`` record
  reference resolves to a measurement that exists at that point in the
  circuit; measurements no annotation ever reads are warned about.
* ``qubit_liveness`` -- gates/measurements on qubits that were never
  reset, and ill-formed multi-qubit targets (a two-qubit gate pairing a
  qubit with itself, repeated qubits in a CCZ/CCX triple or in one
  reset/measure op).
* ``noise_placement`` -- the builder/noise-model contract: clean circuits
  carry no channels, transformed circuits carry no leftover
  ``IDLE``/``FENCE`` markers, and channel probabilities are sane.
* ``timing_overlap`` -- two deterministic ops touching the same qubit
  between consecutive ``TICK`` markers (skipped entirely for circuits
  that use no ``TICK``s, like the builders' un-scheduled emission).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.passes import PassContext, register_pass
from repro.sim.ops import (
    ANNOTATIONS,
    CLIFFORD_1Q,
    CLIFFORD_2Q,
    MEASUREMENTS,
    NOISE,
    NOISE_MARKERS,
    NON_CLIFFORD,
    PAIR_TARGETS,
    RESETS,
)

_GATES = CLIFFORD_1Q + CLIFFORD_2Q + NON_CLIFFORD


def record_dataflow(ctx: PassContext) -> Iterator[Diagnostic]:
    """Record references resolve; unused measurement records are flagged."""
    name = "record_dataflow"
    cursor = 0
    used: Set[int] = set()
    for index, op in enumerate(ctx.circuit.operations):
        if op.name in MEASUREMENTS:
            cursor += len(op.targets)
            continue
        if op.name not in ("DETECTOR", "OBSERVABLE_INCLUDE"):
            continue
        if not op.targets:
            yield Diagnostic(
                "warning", name,
                f"{op.name} has an empty record list (a constant annotation)",
                op_index=index,
            )
        for rec in op.targets:
            if 0 <= rec < cursor:
                used.add(rec)
            else:
                yield Diagnostic(
                    "error", name,
                    f"{op.name} references measurement record {rec}, but only "
                    f"records [0, {cursor}) exist at this point in the circuit",
                    op_index=index,
                )
    unused = sorted(set(range(cursor)) - used)
    if unused:
        head = ", ".join(str(r) for r in unused[:5])
        more = ", ..." if len(unused) > 5 else ""
        yield Diagnostic(
            "warning", name,
            f"{len(unused)} of {cursor} measurement records are never "
            f"referenced by any DETECTOR/OBSERVABLE_INCLUDE ({head}{more})",
        )


def qubit_liveness(ctx: PassContext) -> Iterator[Diagnostic]:
    """Resets precede use; multi-qubit target lists are well-formed."""
    name = "qubit_liveness"
    live: Set[int] = set()
    warned_unreset: Set[int] = set()
    for index, op in enumerate(ctx.circuit.operations):
        if op.name in RESETS:
            seen: Set[int] = set()
            for q in op.targets:
                if q in seen:
                    yield Diagnostic(
                        "warning", name,
                        f"{op.name} resets qubit {q} more than once in one op",
                        op_index=index,
                    )
                seen.add(q)
            live.update(op.targets)
            continue
        if op.name in PAIR_TARGETS:
            for a, b in zip(op.targets[0::2], op.targets[1::2]):
                if a == b:
                    yield Diagnostic(
                        "error", name,
                        f"{op.name} pairs qubit {a} with itself",
                        op_index=index,
                    )
        elif op.name in ("CCZ", "CCX"):
            for i in range(0, len(op.targets), 3):
                triple = op.targets[i : i + 3]
                if len(set(triple)) != len(triple):
                    yield Diagnostic(
                        "error", name,
                        f"{op.name} triple {triple} repeats a qubit",
                        op_index=index,
                    )
        elif op.name in MEASUREMENTS:
            seen = set()
            for q in op.targets:
                if q in seen:
                    yield Diagnostic(
                        "warning", name,
                        f"{op.name} measures qubit {q} more than once in one op",
                        op_index=index,
                    )
                seen.add(q)
        if op.name in _GATES or op.name in MEASUREMENTS:
            for q in op.targets:
                if q not in live and q not in warned_unreset:
                    warned_unreset.add(q)
                    yield Diagnostic(
                        "warning", name,
                        f"{op.name} acts on qubit {q} before any reset "
                        f"(frame simulation assumes an implicit |0>)",
                        op_index=index,
                    )


def noise_placement(ctx: PassContext) -> Iterator[Diagnostic]:
    """Builder/noise-model contract plus channel-probability sanity."""
    name = "noise_placement"
    circuit = ctx.circuit
    has_noise = any(op.name in NOISE for op in circuit.operations)
    flag_markers = ctx.expect_clean is False or (
        ctx.expect_clean is None and has_noise
    )
    for index, op in enumerate(circuit.operations):
        if op.name in NOISE_MARKERS:
            if flag_markers:
                yield Diagnostic(
                    "error", name,
                    f"leftover {op.name} marker; noise models must consume "
                    f"every IDLE/FENCE they are applied over",
                    op_index=index,
                )
            continue
        if op.name not in NOISE:
            continue
        if ctx.expect_clean is True:
            yield Diagnostic(
                "error", name,
                f"noise channel {op.name} in a clean builder circuit "
                f"(channels are the noise model's job)",
                op_index=index,
            )
        if math.isnan(op.arg):
            yield Diagnostic(
                "error", name, f"{op.name} probability is NaN", op_index=index
            )
        elif op.arg == 0.0:
            yield Diagnostic(
                "warning", name,
                f"{op.name} with zero probability never fires (dead weight)",
                op_index=index,
            )
        elif op.arg > 0.5:
            yield Diagnostic(
                "warning", name,
                f"{op.name} probability {op.arg} exceeds 1/2 (beyond the "
                f"maximally-mixing point; deliberate error injection?)",
                op_index=index,
            )


def timing_overlap(ctx: PassContext) -> Iterator[Diagnostic]:
    """Same qubit touched twice between consecutive TICKs.

    Only meaningful for circuits that carry an explicit ``TICK`` schedule;
    the builders emit un-scheduled streams (no ``TICK`` at all), for which
    this pass is silent rather than flagging every reuse.
    """
    name = "timing_overlap"
    ops = ctx.circuit.operations
    if not any(op.name == "TICK" for op in ops):
        return
    touched: Dict[int, int] = {}
    for index, op in enumerate(ops):
        if op.name == "TICK":
            touched = {}
            continue
        if op.name in ANNOTATIONS or op.name in NOISE:
            continue
        for q in set(op.targets):
            if q in touched:
                yield Diagnostic(
                    "warning", name,
                    f"qubit {q} is touched by ops {touched[q]} and {index} "
                    f"between consecutive TICKs",
                    op_index=index,
                )
            else:
                touched[q] = index


register_pass("record_dataflow", record_dataflow)
register_pass("qubit_liveness", qubit_liveness)
register_pass("noise_placement", noise_placement)
register_pass("timing_overlap", timing_overlap)
