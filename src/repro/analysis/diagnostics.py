"""Diagnostic records for the circuit-IR verifier and lint framework.

A :class:`Diagnostic` is one finding of one verification pass: a severity,
the pass that produced it, a human-readable message, and -- when the
finding is anchored to a specific instruction -- the op index in the
circuit under verification.  Passes *collect* diagnostics instead of
raising at the first defect, so a single :func:`repro.analysis.verify`
call reports every problem of a broken circuit at once; the
:class:`DiagnosticReport` the driver returns is the unit callers filter,
render, or gate on.

Severities, in increasing order of badness:

* ``info`` -- observation, never gates anything.
* ``warning`` -- suspicious but simulatable/decodable (unused measurement
  records, zero-probability channels, boundary-unreachable components).
* ``error`` -- the circuit/DEM/graph violates an invariant some consumer
  relies on; sampling or decoding it would be silently wrong or crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Tuple

SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")
_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity name (higher is worse)."""
    try:
        return _RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one verification pass.

    Attributes:
        severity: one of :data:`SEVERITIES`.
        pass_name: registry name of the pass that produced the finding.
        message: human-readable description of the defect.
        op_index: index into ``circuit.operations`` the finding anchors
            to, or ``None`` for circuit-/DEM-/graph-global findings.
        target: what was being verified (a scenario circuit label, a
            source file path, ...); filled in by drivers that verify many
            targets in one run.
    """

    severity: str
    pass_name: str
    message: str
    op_index: Optional[int] = None
    target: Optional[str] = None

    def __post_init__(self) -> None:
        severity_rank(self.severity)

    @property
    def rank(self) -> int:
        return _RANK[self.severity]

    def with_target(self, target: str) -> "Diagnostic":
        return replace(self, target=target)

    def render(self) -> str:
        where = f" op {self.op_index}" if self.op_index is not None else ""
        prefix = f"{self.target}: " if self.target else ""
        return f"{prefix}{self.severity}[{self.pass_name}]{where}: {self.message}"


@dataclass(frozen=True)
class DiagnosticReport:
    """Every diagnostic collected by one verification run."""

    diagnostics: Tuple[Diagnostic, ...] = field(default_factory=tuple)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return self.at_least("error")

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    def at_least(self, severity: str) -> Tuple[Diagnostic, ...]:
        """Diagnostics at or above ``severity``."""
        floor = severity_rank(severity)
        return tuple(d for d in self.diagnostics if d.rank >= floor)

    def by_pass(self, pass_name: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.pass_name == pass_name)

    def pass_names(self, min_severity: str = "info") -> Tuple[str, ...]:
        """Sorted names of passes that reported at ``min_severity`` or worse."""
        return tuple(sorted({d.pass_name for d in self.at_least(min_severity)}))

    def ok(self, fail_on: str = "error") -> bool:
        """True when nothing at or above ``fail_on`` severity was found."""
        return not self.at_least(fail_on)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> "DiagnosticReport":
        return DiagnosticReport(self.diagnostics + tuple(diagnostics))

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.render() for d in self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)


class VerificationError(ValueError):
    """Raised by verification drivers when a report crosses ``fail_on``.

    Carries the full :class:`DiagnosticReport` (every finding of every
    pass, not just the first), so the exception message shows the complete
    picture of a broken circuit in one shot.
    """

    def __init__(self, report: DiagnosticReport, fail_on: str = "error") -> None:
        self.report = report
        self.fail_on = fail_on
        over = report.at_least(fail_on)
        super().__init__(
            f"verification failed with {len(over)} diagnostic(s) at or above "
            f"{fail_on!r}:\n" + "\n".join(d.render() for d in report.diagnostics)
        )
