"""AST-level source lint guarding the repo's concurrency and RNG idioms.

Two classes of defect have bitten (or nearly bitten) this codebase and are
invisible to tests that pass by luck:

* **Global-RNG use** -- PR 1 fixed a sweep-wide seed-reuse bug by
  threading ``numpy.random.SeedSequence`` streams through every
  Monte-Carlo path.  A single call into the *module-level* legacy RNG
  (``np.random.seed``, ``np.random.randint``, ...) silently breaks
  worker-count invariance and reproducibility; ``np.random.default_rng()``
  with no seed is flagged as a warning (legitimate as a last-resort
  fallback, wrong anywhere results must reproduce).
* **Worker-visible mutable module state** -- the multiprocessing idiom of
  :mod:`repro.decoder.engine` / :mod:`repro.estimator.sweep` allows worker
  processes exactly one piece of module state: the per-process ``_WORKER``
  dict installed by the pool initializer.  Any other module-level name
  written from a function that runs inside a pool worker (a ``global``
  rebind, or mutation of a module-level dict/list) is at best lost on the
  worker and at worst a fork-inherited heisenbug.
* **Bare ``print()`` in library code** -- library modules must route
  diagnostics through :func:`repro.obs.get_logger` and intentional CLI
  output through :func:`repro.obs.echo`; a stray ``print`` in a hot path
  or a pool worker interleaves garbage into stdout that service clients
  and ``--json`` consumers parse.  CLI entry points (``__main__.py``) are
  exempt, as are files outside ``src/repro`` (benchmarks, examples,
  tests).

The linter is intentionally static and conservative: it walks each file's
AST, identifies worker functions as those passed to
``multiprocessing.Pool(initializer=...)`` or to a pool's
``map``/``imap``/``starmap``/``apply_async`` family, and never executes
anything.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Set, Union

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport

_PASS = "source_lint"

# Legacy module-level RNG entry points: calling any of these consumes the
# process-global numpy RNG stream.
GLOBAL_RNG_FUNCTIONS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "random_integers", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "binomial", "poisson", "exponential",
    "bytes", "get_state", "set_state",
})

# Pool methods whose first positional argument runs in a worker process.
_POOL_DISPATCH = frozenset({
    "map", "map_async", "imap", "imap_unordered", "starmap",
    "starmap_async", "apply", "apply_async",
})

# Module-level mutable names a worker function is allowed to touch: the
# per-process worker state installed by the pool initializer.
DEFAULT_WORKER_STATE = ("_WORKER",)

# File names exempt from the print ban: CLI entry points whose stdout IS
# the product.  Library modules use repro.obs.echo / get_logger instead.
PRINT_EXEMPT_FILES = frozenset({"__main__.py"})


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted name of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FileLinter:
    def __init__(
        self,
        path: Path,
        tree: ast.Module,
        worker_state: Sequence[str] = DEFAULT_WORKER_STATE,
    ) -> None:
        self.path = path
        self.tree = tree
        self.worker_state = set(worker_state)
        self.numpy_aliases = self._numpy_aliases()
        self.random_aliases = self._numpy_random_aliases()
        self.module_names = self._module_level_names()

    # -- import resolution ---------------------------------------------------

    def _numpy_aliases(self) -> Set[str]:
        aliases = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        aliases.add(alias.asname or "numpy")
        return aliases

    def _numpy_random_aliases(self) -> Set[str]:
        aliases = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy.random":
                        aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            aliases.add(alias.asname or "random")
        return aliases

    def _module_level_names(self) -> Set[str]:
        names: Set[str] = set()
        for node in self.tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    # -- rule 1: global RNG --------------------------------------------------

    def _lint_rng(self) -> Iterator[Diagnostic]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "numpy.random",
            ):
                for alias in node.names:
                    if alias.name in GLOBAL_RNG_FUNCTIONS:
                        yield self._diag(
                            "error", node,
                            f"imports numpy.random.{alias.name}: the "
                            f"module-level RNG breaks seed/worker-count "
                            f"reproducibility; thread a seeded "
                            f"default_rng/SeedSequence stream instead",
                        )
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            fn = parts[-1]
            prefix = parts[:-1]
            is_np_random = (
                len(prefix) == 2
                and prefix[0] in self.numpy_aliases
                and prefix[1] == "random"
            ) or (len(prefix) == 1 and prefix[0] in self.random_aliases)
            if not is_np_random:
                continue
            if fn in GLOBAL_RNG_FUNCTIONS:
                yield self._diag(
                    "error", node,
                    f"call to np.random.{fn}: the module-level RNG breaks "
                    f"seed/worker-count reproducibility; thread a seeded "
                    f"default_rng/SeedSequence stream instead",
                )
            elif fn == "default_rng" and not node.args and not node.keywords:
                yield self._diag(
                    "warning", node,
                    "np.random.default_rng() without a seed: results are "
                    "not reproducible; accept an rng/seed argument where "
                    "determinism matters",
                )

    # -- rule 2: worker-visible module state ---------------------------------

    def _worker_functions(self) -> Set[str]:
        """Names of module-level functions that run inside pool workers."""
        workers: Set[str] = set()
        defined = {
            node.name
            for node in self.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func) or ""
            if dotted.endswith("Pool") or dotted.endswith("Pool.__init__"):
                for kw in node.keywords:
                    if kw.arg == "initializer" and isinstance(kw.value, ast.Name):
                        workers.add(kw.value.id)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_DISPATCH
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in defined
            ):
                workers.add(node.args[0].id)
        return workers

    def _lint_worker_state(self) -> Iterator[Diagnostic]:
        workers = self._worker_functions()
        if not workers:
            return
        for node in self.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in workers:
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Global):
                    yield self._diag(
                        "error", inner,
                        f"worker function {node.name!r} rebinds module "
                        f"global(s) {', '.join(inner.names)}: writes inside "
                        f"a pool worker never reach the parent process",
                    )
                elif isinstance(inner, (ast.Assign, ast.AugAssign)):
                    targets = (
                        inner.targets
                        if isinstance(inner, ast.Assign)
                        else [inner.target]
                    )
                    for target in targets:
                        base = target
                        while isinstance(base, (ast.Subscript, ast.Attribute)):
                            base = base.value
                        if (
                            isinstance(base, ast.Name)
                            and base.id in self.module_names
                            and base.id not in self.worker_state
                        ):
                            yield self._diag(
                                "error", inner,
                                f"worker function {node.name!r} mutates "
                                f"module-level state {base.id!r}; only the "
                                f"initializer-installed per-worker dict "
                                f"({', '.join(sorted(self.worker_state))}) "
                                f"may be written from a worker",
                            )

    # -- rule 3: bare print() in library code --------------------------------

    def _lint_prints(self) -> Iterator[Diagnostic]:
        if self.path.name in PRINT_EXEMPT_FILES:
            return
        for node in ast.walk(self.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self._diag(
                    "error", node,
                    "bare print() in library code: route intentional CLI "
                    "output through repro.obs.echo and diagnostics through "
                    "repro.obs.get_logger",
                )

    def _diag(self, severity: str, node: ast.AST, message: str) -> Diagnostic:
        line = getattr(node, "lineno", 0)
        return Diagnostic(
            severity, _PASS, f"line {line}: {message}", target=str(self.path)
        )

    def lint(self) -> List[Diagnostic]:
        return (
            list(self._lint_rng())
            + list(self._lint_worker_state())
            + list(self._lint_prints())
        )


def lint_file(
    path: Union[str, Path],
    *,
    worker_state: Sequence[str] = DEFAULT_WORKER_STATE,
) -> List[Diagnostic]:
    """Lint one Python source file; syntax errors become error diagnostics."""
    path = Path(path)
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [Diagnostic(
            "error", _PASS, f"line {exc.lineno}: syntax error: {exc.msg}",
            target=str(path),
        )]
    return _FileLinter(path, tree, worker_state).lint()


def source_root() -> Path:
    """Root of the installed ``repro`` package sources."""
    return Path(__file__).resolve().parent.parent


def lint_source(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    *,
    worker_state: Sequence[str] = DEFAULT_WORKER_STATE,
) -> DiagnosticReport:
    """Lint Python files (default: every module of the repro package)."""
    if paths is None:
        paths = sorted(source_root().rglob("*.py"))
    diagnostics: List[Diagnostic] = []
    for path in paths:
        diagnostics.extend(lint_file(path, worker_state=worker_state))
    return DiagnosticReport(tuple(diagnostics))
