"""Static analysis: circuit-IR verifier, diagnostics passes, source lint.

The compilation pipeline (clean ``Circuit`` IR -> noise transform -> DEM
extraction -> ``DecodingGraph`` -> compiled packed programs) enforces its
invariants here, *before* any shot is sampled: a silent invariant break in
that pipeline shows up as a wrong logical error rate, not a crash.

Public surface:

* :func:`verify` -- run diagnostics passes over a circuit, collecting a
  :class:`DiagnosticReport`; raises :class:`VerificationError` at the
  ``fail_on`` threshold after all passes complete.
* :func:`verify_dem` / :func:`verify_graph` -- the same checks for a
  detector error model / decoding graph in isolation (used by the
  ``verify=True`` entry points of :func:`repro.noise.dem.extract_dem` and
  :meth:`repro.decoder.graph.DecodingGraph.from_dem`).
* pass registry -- :func:`register_pass`, :func:`available_passes`,
  :func:`get_pass`, mirroring the decoder/noise/scenario registries.
* :func:`lint_source` -- AST-level lint of the package sources (global
  RNG use, worker-visible mutable module state).
* ``python -m repro lint`` -- the CLI driver over all of the above.
"""

from repro.analysis.diagnostics import (
    SEVERITIES,
    Diagnostic,
    DiagnosticReport,
    VerificationError,
    severity_rank,
)
from repro.analysis.passes import (
    STRUCTURAL_PASSES,
    Pass,
    PassContext,
    available_passes,
    get_pass,
    register_pass,
    run_passes,
    verify,
    verify_dem,
    verify_graph,
)
from repro.analysis import (  # noqa: F401  (self-registration)
    circuit_passes,
    dem_passes,
    periodic_passes,
    registry_passes,
    reweight_passes,
)
from repro.analysis.dem_passes import check_dem, check_graph
from repro.analysis.periodic_passes import check_dem_periodicity
from repro.analysis.reweight_passes import check_reweight
from repro.analysis.source_lint import lint_file, lint_source

__all__ = [
    "SEVERITIES",
    "STRUCTURAL_PASSES",
    "Diagnostic",
    "DiagnosticReport",
    "Pass",
    "PassContext",
    "VerificationError",
    "available_passes",
    "check_dem",
    "check_dem_periodicity",
    "check_graph",
    "check_reweight",
    "get_pass",
    "lint_file",
    "lint_source",
    "register_pass",
    "run_passes",
    "severity_rank",
    "verify",
    "verify_dem",
    "verify_graph",
]
