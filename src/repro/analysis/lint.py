"""``python -m repro lint``: diagnostics over scenarios, circuits, sources.

One invocation runs, in order:

1. the global ``registry_contract`` pass (every registered decoder, noise
   model, and scenario is constructible and protocol-conformant);
2. the full circuit-verification suite over every selected scenario's
   representative lint circuits (scenarios publish them through
   ``Scenario.lint_circuits``; analytic scenarios with no circuit are
   covered by step 1 alone);
3. with ``--source``, the AST-level source lint of
   :mod:`repro.analysis.source_lint` over the whole package.

Exit status is 1 when any diagnostic at or above ``--fail-on`` (default
``error``) was produced -- the CI gate -- and 0 otherwise; warnings are
rendered either way.
"""

from __future__ import annotations

import argparse
from typing import List

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.analysis.passes import PassContext, available_passes, run_passes
from repro.obs.logs import echo


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically verify registered scenarios' circuits, "
        "registry contracts, and (with --source) the package sources.",
    )
    parser.add_argument(
        "sections",
        nargs="*",
        metavar="SCENARIO",
        help="scenario names to lint (default: every registered scenario)",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="lint every registered scenario (the default when no names "
        "are given; explicit for CI command lines)",
    )
    parser.add_argument(
        "--source",
        action="store_true",
        help="also run the AST source lint over the repro package",
    )
    parser.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default="error",
        help="severity that makes the exit status non-zero (default: error)",
    )
    parser.add_argument(
        "-q", "--quiet",
        action="store_true",
        help="print only gating diagnostics and the summary",
    )
    return parser


def _lint_scenarios(names: List[str]) -> List[Diagnostic]:
    from repro.estimator.registry import get_scenario

    diagnostics: List[Diagnostic] = []
    # Global registry contracts once, not per scenario.
    report = run_passes(PassContext(), available_passes(scope="global"))
    diagnostics.extend(d.with_target("registry") for d in report.diagnostics)
    circuit_passes = available_passes(scope="circuit")
    for name in names:
        scenario = get_scenario(name)
        if scenario.lint_circuits is None:
            continue
        for label, circuit in scenario.lint_circuits().items():
            report = run_passes(
                PassContext(circuit, expect_clean=False), circuit_passes
            )
            diagnostics.extend(
                d.with_target(f"{name}:{label}") for d in report.diagnostics
            )
    return diagnostics


def lint_main(argv: List[str]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.estimator.registry import available_scenarios

    known = available_scenarios()
    if args.sections and args.all:
        parser.error("give scenario names or --all, not both")
    names = list(args.sections) if args.sections else list(known)
    unknown = sorted(set(names) - set(known))
    if unknown:
        parser.error(
            f"unknown scenario(s): {', '.join(map(repr, unknown))}; "
            f"available: {', '.join(known)}"
        )

    diagnostics = _lint_scenarios(names)
    if args.source:
        from repro.analysis.source_lint import lint_source

        diagnostics.extend(lint_source().diagnostics)

    report = DiagnosticReport(tuple(diagnostics))
    shown = report.at_least(args.fail_on) if args.quiet else report.diagnostics
    for diagnostic in shown:
        echo(diagnostic.render())
    gating = report.at_least(args.fail_on)
    echo(
        f"lint: {len(names)} scenario(s), "
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        + (" [source lint included]" if args.source else "")
    )
    return 1 if gating else 0
