"""DEM and decoding-graph consistency checks.

The detector error model is the contract between a noisy circuit and its
decoders; the decoding graph is its matchable lowering.  A defect at
either level -- a detector no mechanism can ever fire, a mechanism that
flips only observables, a graph component that cannot reach the boundary
-- does not crash anything: it silently skews the decoded logical error
rate, which is exactly the failure mode a static verifier exists to catch
before any shot is sampled.

:func:`check_dem` and :func:`check_graph` are plain functions over a DEM /
graph so the verified entry points (``extract_dem(..., verify=True)``,
``DecodingGraph.from_dem(..., verify=True)``) can run them without a
circuit in hand; the registered ``dem_consistency`` pass composes both on
top of a :class:`~repro.analysis.passes.PassContext`'s lazily-extracted
DEM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.passes import PassContext, register_pass

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.decoder.graph import DecodingGraph
    from repro.noise.dem import DetectorErrorModel

_PASS = "dem_consistency"


def check_dem(dem: "DetectorErrorModel") -> List[Diagnostic]:
    """Diagnostics for one detector error model."""
    diags: List[Diagnostic] = []
    if not dem.mechanisms:
        if dem.num_detectors:
            diags.append(Diagnostic(
                "warning", _PASS,
                f"DEM has {dem.num_detectors} detectors but no error "
                f"mechanisms (noiseless circuit?); nothing can ever fire",
            ))
        return diags
    covered: Set[int] = set()
    for k, mech in enumerate(dem.mechanisms):
        covered.update(mech.detectors)
        if not 0.0 <= mech.probability <= 1.0 or mech.probability != mech.probability:
            diags.append(Diagnostic(
                "error", _PASS,
                f"mechanism {k} has invalid probability {mech.probability}",
            ))
        elif mech.probability == 0.0:
            diags.append(Diagnostic(
                "warning", _PASS,
                f"mechanism {k} {mech.detectors} has zero probability "
                f"(dead weight; merged() would drop it)",
            ))
        elif mech.probability > 0.5:
            # An LLR edge weight log((1-p)/p) goes negative above 0.5,
            # inverting the matching metric; reweighted proposals
            # (DetectorErrorModel.reweighted) must cap at 0.5.
            diags.append(Diagnostic(
                "error", _PASS,
                f"mechanism {k} probability {mech.probability} exceeds 0.5 "
                f"(negative LLR weight; over-inflated reweighting?)",
            ))
        if not mech.detectors and mech.observables:
            diags.append(Diagnostic(
                "warning", _PASS,
                f"mechanism {k} flips only observables "
                f"{mech.observables}: an undetectable logical error "
                f"(p={mech.probability:.2e}) no decoder can correct",
            ))
        bad = [d for d in mech.detectors if not 0 <= d < dem.num_detectors]
        if bad:
            diags.append(Diagnostic(
                "error", _PASS,
                f"mechanism {k} references detector(s) {bad} outside "
                f"[0, {dem.num_detectors})",
            ))
    uncovered = sorted(set(range(dem.num_detectors)) - covered)
    if uncovered:
        head = ", ".join(str(d) for d in uncovered[:5])
        more = ", ..." if len(uncovered) > 5 else ""
        diags.append(Diagnostic(
            "error", _PASS,
            f"{len(uncovered)} of {dem.num_detectors} detectors are covered "
            f"by no error mechanism ({head}{more}); they can never fire, so "
            f"the noise model and the detector definitions disagree",
        ))
    return diags


def check_graph(graph: "DecodingGraph") -> List[Diagnostic]:
    """Diagnostics for one lowered decoding graph."""
    from repro.decoder.graph import BOUNDARY

    diags: List[Diagnostic] = []
    adjacency: Dict[int, List[int]] = {}
    for edge in graph.edges:
        nodes = list(edge.detectors)
        if len(nodes) == 1:
            nodes.append(BOUNDARY)
        a, b = nodes
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)
        if not 0.0 < edge.probability < 1.0:
            diags.append(Diagnostic(
                "warning", _PASS,
                f"edge {edge.detectors} probability {edge.probability} is "
                f"outside (0, 1); its LLR weight is railed",
            ))
    isolated = sorted(
        d for d in range(graph.num_detectors) if d not in adjacency
    )
    if isolated:
        head = ", ".join(str(d) for d in isolated[:5])
        more = ", ..." if len(isolated) > 5 else ""
        diags.append(Diagnostic(
            "error", _PASS,
            f"{len(isolated)} of {graph.num_detectors} detectors are "
            f"isolated in the decoding graph ({head}{more}); a defect there "
            f"is unmatchable",
        ))
    # Boundary reachability: a connected component without a boundary edge
    # cannot match an odd number of defects.
    reachable: Set[int] = set()
    frontier = [BOUNDARY]
    while frontier:
        node = frontier.pop()
        if node in reachable:
            continue
        reachable.add(node)
        frontier.extend(adjacency.get(node, ()))
    unreachable = sorted(
        d for d in adjacency if d != BOUNDARY and d not in reachable
    )
    if unreachable:
        head = ", ".join(str(d) for d in unreachable[:5])
        more = ", ..." if len(unreachable) > 5 else ""
        diags.append(Diagnostic(
            "warning", _PASS,
            f"{len(unreachable)} detector(s) cannot reach the boundary "
            f"({head}{more}); odd defect sets in that component are "
            f"unmatchable",
        ))
    return diags


def dem_consistency(ctx: PassContext) -> Iterator[Diagnostic]:
    """Extract the DEM, lower the graph, and check both.

    Extraction/lowering failures surface as error diagnostics rather than
    propagating, so one broken stage never hides the structural passes'
    findings in the same report.
    """
    try:
        dem = ctx.dem()
    except Exception as exc:
        yield Diagnostic("error", _PASS, f"DEM extraction failed: {exc}")
        return
    yield from check_dem(dem)
    try:
        graph = ctx.graph()
    except Exception as exc:
        yield Diagnostic(
            "error", _PASS, f"decoding-graph lowering failed: {exc}"
        )
        return
    yield from check_graph(graph)


register_pass("dem_consistency", dem_consistency)
