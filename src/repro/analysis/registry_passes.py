"""Registry-contract verification: every registered plugin is usable.

The repo's extension points are string registries -- decoders
(:mod:`repro.decoder.engine`), noise models (:mod:`repro.noise.models`),
scenarios (:mod:`repro.estimator.registry`).  A registration that imports
fine but cannot actually be constructed (wrong factory signature, missing
required argument, protocol non-conformance) only explodes when a user
first selects that name.  This pass constructs every registered entry
against a small reference experiment and checks the structural protocols,
so a broken registration fails ``python -m repro lint`` instead of a
production request.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.passes import PassContext, register_pass

_PASS = "registry_contract"

# Reference experiment shared by every constructibility probe, built once
# per process: a d=3, 2-round memory with its DEM and detector metadata.
_FIXTURE: Optional[Tuple] = None


def _fixture():
    global _FIXTURE
    if _FIXTURE is None:
        from repro.noise.dem import extract_dem
        from repro.sim.memory import MemoryExperimentBuilder

        builder = MemoryExperimentBuilder(3, basis="Z", p=1e-3, strict=False)
        builder.se_round()
        builder.se_round()
        circuit = builder.finalize()
        _FIXTURE = (circuit, extract_dem(circuit), builder.detector_meta)
    return _FIXTURE


def _check_decoders() -> Iterator[Diagnostic]:
    from repro.decoder.base import Decoder
    from repro.decoder.engine import available_decoders, make_decoder

    _, dem, meta = _fixture()
    for name in available_decoders():
        try:
            decoder = make_decoder(name, dem, detector_meta=meta, basis="Z")
        except Exception as exc:
            yield Diagnostic(
                "error", _PASS,
                f"decoder {name!r} failed to build from a d=3 memory DEM: "
                f"{exc!r}",
            )
            continue
        if not isinstance(decoder, Decoder):
            missing = [
                attr
                for attr in ("num_observables", "decode", "decode_batch", "decode_packed")
                if not hasattr(decoder, attr)
            ]
            yield Diagnostic(
                "error", _PASS,
                f"decoder {name!r} does not satisfy the Decoder protocol "
                f"(missing {missing})",
            )


def _check_noise_models() -> Iterator[Diagnostic]:
    from repro.noise.models import (
        NoiseModel,
        available_noise_models,
        make_noise_model,
    )
    from repro.sim.ops import NOISE_MARKERS

    for name in available_noise_models():
        try:
            model = make_noise_model(name, p=1e-3)
        except Exception as exc:
            yield Diagnostic(
                "error", _PASS,
                f"noise model {name!r} failed to build with p=1e-3: {exc!r}",
            )
            continue
        if not isinstance(model, NoiseModel):
            yield Diagnostic(
                "error", _PASS,
                f"noise model {name!r} does not satisfy the NoiseModel "
                f"protocol (no apply method)",
            )
            continue
        clean, _, _ = _fixture()
        clean = clean.without_noise()
        try:
            noisy = model.apply(clean)
        except Exception as exc:
            yield Diagnostic(
                "error", _PASS,
                f"noise model {name!r} failed to transform a clean d=3 "
                f"memory circuit: {exc!r}",
            )
            continue
        leftover = sum(
            1 for op in noisy.operations if op.name in NOISE_MARKERS
        )
        if leftover:
            yield Diagnostic(
                "error", _PASS,
                f"noise model {name!r} left {leftover} IDLE/FENCE marker(s) "
                f"in its output circuit",
            )


def _check_scenarios() -> Iterator[Diagnostic]:
    import inspect

    from repro.estimator.registry import available_scenarios, get_scenario

    for name in available_scenarios():
        scenario = get_scenario(name)
        if not scenario.description:
            yield Diagnostic(
                "warning", _PASS, f"scenario {name!r} has no description"
            )
        if not callable(scenario.render):
            yield Diagnostic(
                "error", _PASS, f"scenario {name!r} render is not callable"
            )
        try:
            sig = inspect.signature(scenario.build)
        except (TypeError, ValueError):
            yield Diagnostic(
                "error", _PASS,
                f"scenario {name!r} build is not inspectable (not a "
                f"plain callable?)",
            )
            continue
        takes_jobs = "jobs" in sig.parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in sig.parameters.values()
        )
        if not takes_jobs:
            yield Diagnostic(
                "error", _PASS,
                f"scenario {name!r} build does not accept the jobs= "
                f"keyword every runner passes",
            )
        try:
            scenario.accepted_params()
        except Exception as exc:
            yield Diagnostic(
                "error", _PASS,
                f"scenario {name!r} accepted_params() raised {exc!r}",
            )
        if scenario.lint_circuits is not None and not callable(
            scenario.lint_circuits
        ):
            yield Diagnostic(
                "error", _PASS,
                f"scenario {name!r} lint_circuits is not callable",
            )


def _check_decoder_batch_invariance() -> Iterator[Diagnostic]:
    """Every decoder's ``_decode_unique`` must be batch-order invariant.

    The packed pipeline dedups, reorders, and re-batches syndrome rows
    freely (and the sparse fast path splits batches further), so a
    decoder whose per-row output depends on its batch-mates or their
    order would silently break the engine's worker-count invariance.
    Each decoder decodes the same unique rows as one batch, reversed,
    and split in two; the per-row outputs must agree exactly.
    """
    import numpy as np

    from repro.decoder.base import BatchDecoder
    from repro.decoder.engine import available_decoders, make_decoder
    from repro.sim.frame import FrameSimulator

    circuit, dem, meta = _fixture()
    detectors, _ = FrameSimulator(circuit).sample(
        96, rng=np.random.default_rng(20260808)
    )
    unique = np.unique(np.asarray(detectors, dtype=np.uint8), axis=0)
    half = unique.shape[0] // 2
    for name in available_decoders():
        try:
            decoder = make_decoder(name, dem, detector_meta=meta, basis="Z")
        except Exception:
            continue  # constructibility failures reported by _check_decoders
        if not isinstance(decoder, BatchDecoder):
            continue
        try:
            full = np.asarray(decoder._decode_unique(unique.copy()))
            rev = np.asarray(decoder._decode_unique(unique[::-1].copy()))
            split = np.concatenate([
                np.asarray(decoder._decode_unique(unique[:half].copy())),
                np.asarray(decoder._decode_unique(unique[half:].copy())),
            ])
        except Exception as exc:
            yield Diagnostic(
                "error", _PASS,
                f"decoder {name!r} _decode_unique raised on a d=3 memory "
                f"batch: {exc!r}",
            )
            continue
        if not np.array_equal(full, rev[::-1]):
            yield Diagnostic(
                "error", _PASS,
                f"decoder {name!r} _decode_unique is batch-order "
                f"dependent: reversing the rows changed per-row outputs",
            )
        if not np.array_equal(full, split):
            yield Diagnostic(
                "error", _PASS,
                f"decoder {name!r} _decode_unique is batch-composition "
                f"dependent: splitting the batch changed per-row outputs",
            )


def registry_contract(ctx: PassContext) -> Iterator[Diagnostic]:
    """Construct every registered decoder/noise-model/scenario entry."""
    yield from _check_decoders()
    yield from _check_noise_models()
    yield from _check_scenarios()
    yield from _check_decoder_batch_invariance()


register_pass("registry_contract", registry_contract, scope="global")
