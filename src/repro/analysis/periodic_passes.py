"""Periodic-DEM offset-consistency diagnostics.

A periodically-compiled memory experiment has a shift-invariant DEM
interior: the mechanisms anchored in round j are the round-(j-1)
mechanisms with every detector index shifted by the per-round detector
count.  The fast paths of :mod:`repro.sim.periodic` and the periodic
unrolling of :func:`repro.noise.dem.extract_dem` *rely* on that
invariance -- and an off-by-one in detector rebasing (in either the
replayed COO or a hand-edited DEM) does not crash: it decodes against a
skewed metric and surfaces as logical-error-rate bias.  This pass checks
the invariance statically on the extracted model instead.

:func:`check_dem_periodicity` is a plain function over a DEM plus the
period geometry so tests (and external callers with a known layout) can
run it directly; the registered ``dem_periodicity`` pass derives the
geometry from :func:`repro.sim.periodic.detect_period` on the context's
circuit and info-skips circuits with no usable period.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.passes import PassContext, register_pass

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.noise.dem import DetectorErrorModel

_PASS = "dem_periodicity"

# Rounds excluded from the comparison at each end of the window: the
# leading blocks absorb prologue/time-boundary mechanisms and the
# trailing blocks absorb epilogue/final-readout mechanisms, neither of
# which is expected to be shift-invariant.
_BOUNDARY_ROUNDS = 2


def check_dem_periodicity(
    dem: "DetectorErrorModel",
    *,
    prologue_detectors: int,
    detectors_per_round: int,
    rounds: int,
) -> List[Diagnostic]:
    """Check that a DEM's interior per-round mechanism blocks are offset-
    consistent.

    Mechanisms are bucketed into round blocks by their lowest detector
    index (block ``b`` owns rows ``[prologue_detectors + b * detectors_per_round,
    ...)``), each interior block is normalized by subtracting its block
    offset, and all interior blocks must then be identical as multisets
    of (probability, detectors, observables).  A mismatch means some
    round's mechanisms were rebased wrongly -- exactly the defect a
    replayed-COO off-by-one produces.
    """
    diags: List[Diagnostic] = []
    if detectors_per_round <= 0 or rounds <= 0:
        diags.append(Diagnostic(
            "error", _PASS,
            f"invalid period geometry: detectors_per_round="
            f"{detectors_per_round}, rounds={rounds}",
        ))
        return diags
    interior = range(_BOUNDARY_ROUNDS, rounds - _BOUNDARY_ROUNDS)
    if len(interior) < 2:
        diags.append(Diagnostic(
            "info", _PASS,
            f"only {rounds} round blocks ({len(interior)} interior); too "
            f"few to compare for offset consistency",
        ))
        return diags

    blocks: Dict[int, List[Tuple[float, Tuple[int, ...], Tuple[int, ...]]]] = {
        b: [] for b in interior
    }
    for mech in dem.mechanisms:
        if not mech.detectors:
            continue
        anchor = mech.detectors[0] - prologue_detectors
        if anchor < 0:
            continue
        block = anchor // detectors_per_round
        if block not in blocks:
            continue
        offset = prologue_detectors + block * detectors_per_round
        blocks[block].append((
            mech.probability,
            tuple(d - offset for d in mech.detectors),
            mech.observables,
        ))

    reference_block = interior[0]
    reference = sorted(blocks[reference_block])
    for block in interior[1:]:
        candidate = sorted(blocks[block])
        if candidate == reference:
            continue
        missing = [m for m in reference if m not in candidate]
        extra = [m for m in candidate if m not in reference]
        detail = ""
        if missing:
            detail += f"; e.g. missing {missing[0]}"
        elif extra:
            detail += f"; e.g. extra {extra[0]}"
        diags.append(Diagnostic(
            "error", _PASS,
            f"round block {block} ({len(candidate)} mechanisms) is not an "
            f"offset copy of block {reference_block} "
            f"({len(reference)} mechanisms){detail}; detector rebasing is "
            f"inconsistent across rounds",
        ))
    return diags


def dem_periodicity(ctx: PassContext) -> Iterator[Diagnostic]:
    """Detect the circuit's period and check the DEM's interior blocks."""
    from repro.sim.periodic import detect_period

    if ctx.circuit is None:
        raise ValueError("dem_periodicity requires a circuit")
    spec = detect_period(ctx.circuit)
    if spec is None or spec.det_per_rep <= 0:
        yield Diagnostic(
            "info", _PASS,
            "circuit has no repeated round emitting detectors; nothing to "
            "compare",
        )
        return
    try:
        dem = ctx.dem()
    except Exception as exc:
        yield Diagnostic("error", _PASS, f"DEM extraction failed: {exc}")
        return
    yield from check_dem_periodicity(
        dem,
        prologue_detectors=spec.det_start,
        detectors_per_round=spec.det_per_rep,
        rounds=spec.reps,
    )


register_pass("dem_periodicity", dem_periodicity)
