"""Reweighted-DEM proposal checks: the ``dem_reweight`` pass.

The rare-event sampler (:mod:`repro.estimator.rare`) draws mechanism
firings from a *reweighted* copy of a circuit's DEM and corrects each shot
with a likelihood-ratio weight under the original model.  That estimator
is exact only when the (original, proposal) pair is well formed:

* **Topology preserved** -- same mechanism count, same per-mechanism
  detector/observable symptoms, same detector/observable space.  A
  proposal that drops or re-symptoms a mechanism samples a *different*
  error process; the weights cannot repair that.
* **Probabilities in (0, 0.5]** -- above 0.5 the mechanism's LLR decoding
  weight goes negative (also an error in ``dem_consistency``); at or below
  0 for a mechanism the original can fire, the proposal has no support
  where the target distribution does, so the importance estimate is
  silently *biased low* -- the exact failure mode a static check exists
  to catch before any shot is drawn.

:func:`check_reweight` is a plain function over the pair so the sampler's
construction gate can run it without a circuit in hand; the registered
``dem_reweight`` pass applies a representative inflation
(:data:`LINT_INFLATION`) to a scenario circuit's own DEM, which is how
``python -m repro lint --all`` proves every registered scenario's model
survives reweighting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.passes import PassContext, register_pass

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.noise.dem import DetectorErrorModel

_PASS = "dem_reweight"

# Representative proposal inflation the registered pass applies: large
# enough to exercise the 0.5 cap on any realistic circuit-level channel,
# small enough to stay a plausible rare-event proposal.
LINT_INFLATION = 8.0


def check_reweight(
    original: "DetectorErrorModel", proposal: "DetectorErrorModel"
) -> List[Diagnostic]:
    """Diagnostics for one (original DEM, reweighted proposal) pair."""
    diags: List[Diagnostic] = []
    if (
        proposal.num_detectors != original.num_detectors
        or proposal.num_observables != original.num_observables
    ):
        diags.append(Diagnostic(
            "error", _PASS,
            f"proposal symptom space ({proposal.num_detectors} detectors, "
            f"{proposal.num_observables} observables) differs from the "
            f"original ({original.num_detectors}, "
            f"{original.num_observables})",
        ))
    if len(proposal.mechanisms) != len(original.mechanisms):
        diags.append(Diagnostic(
            "error", _PASS,
            f"proposal has {len(proposal.mechanisms)} mechanisms, original "
            f"has {len(original.mechanisms)}: reweighting must preserve the "
            f"mechanism list one-for-one",
        ))
        return diags
    for k, (orig, prop) in enumerate(
        zip(original.mechanisms, proposal.mechanisms)
    ):
        if (prop.detectors, prop.observables) != (
            orig.detectors, orig.observables
        ):
            diags.append(Diagnostic(
                "error", _PASS,
                f"mechanism {k} symptom changed under reweighting: "
                f"{(orig.detectors, orig.observables)} -> "
                f"{(prop.detectors, prop.observables)}; the proposal "
                f"samples a different error process",
            ))
            continue
        if orig.probability > 0.0 and prop.probability <= 0.0:
            diags.append(Diagnostic(
                "error", _PASS,
                f"mechanism {k} has zero proposal weight (q={prop.probability}"
                f" for p={orig.probability:.2e}): firings possible under the "
                f"original model are unsampleable, biasing the estimate low",
            ))
        elif prop.probability > 0.5:
            diags.append(Diagnostic(
                "error", _PASS,
                f"mechanism {k} proposal probability {prop.probability} "
                f"exceeds 0.5 (negative LLR weight; cap the inflation)",
            ))
        elif orig.probability <= 0.0 and prop.probability > 0.0:
            diags.append(Diagnostic(
                "warning", _PASS,
                f"mechanism {k} inflates a zero-probability mechanism to "
                f"q={prop.probability:.2e}: every firing carries weight 0 "
                f"(wasted proposal mass)",
            ))
    return diags


def dem_reweight(ctx: PassContext) -> Iterator[Diagnostic]:
    """Reweight the circuit's own DEM and check the resulting pair.

    Mirrors ``dem_consistency``'s error handling: an extraction failure
    surfaces as a diagnostic instead of propagating.
    """
    try:
        dem = ctx.dem()
    except Exception as exc:
        yield Diagnostic("error", _PASS, f"DEM extraction failed: {exc}")
        return
    yield from check_reweight(dem, dem.reweighted(LINT_INFLATION))


register_pass("dem_reweight", dem_reweight)
