"""Verification-pass registry and the ``verify`` driver.

Mirrors the repo's other string registries (decoders in
:mod:`repro.decoder.engine`, noise models in :mod:`repro.noise.models`,
scenarios in :mod:`repro.estimator.registry`): a pass registers a callable
under a stable name, and drivers select passes by name.

A pass is ``Callable[[PassContext], Iterable[Diagnostic]]``.  The context
carries the circuit under verification plus lazily-built derived objects
(the DEM and the decoding graph), so expensive extraction happens at most
once per verification run and only when some selected pass asks for it.
Passes come in two scopes:

* ``circuit`` -- verifies one circuit (and/or its DEM/graph); these make
  up the default suite of :func:`verify`.
* ``global`` -- verifies repo-level contracts (the decoder/noise/scenario
  registries); run by the ``python -m repro lint`` driver, not per
  circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    VerificationError,
    severity_rank,
)

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.decoder.graph import DecodingGraph
    from repro.noise.dem import DetectorErrorModel
    from repro.sim.circuit import Circuit


@dataclass
class PassContext:
    """Everything a verification pass may inspect.

    Attributes:
        circuit: the circuit under verification (``None`` for global
            passes).
        expect_clean: the noise-placement contract stage: ``True`` for a
            clean builder circuit (noise channels are defects), ``False``
            for a post-noise-model circuit (leftover ``IDLE``/``FENCE``
            markers are defects), ``None`` when unknown (only the
            marker/channel *coexistence* is a defect).
    """

    circuit: Optional["Circuit"] = None
    expect_clean: Optional[bool] = None
    _dem: Optional["DetectorErrorModel"] = field(default=None, repr=False)
    _graph: Optional["DecodingGraph"] = field(default=None, repr=False)

    def dem(self) -> "DetectorErrorModel":
        """The circuit's DEM, extracted once and cached on the context."""
        if self._dem is None:
            if self.circuit is None:
                raise ValueError("PassContext has no circuit to extract a DEM from")
            from repro.noise.dem import extract_dem

            self._dem = extract_dem(self.circuit)
        return self._dem

    def graph(self) -> "DecodingGraph":
        """The DEM's decoding graph, lowered once and cached."""
        if self._graph is None:
            from repro.decoder.graph import DecodingGraph

            self._graph = DecodingGraph.from_dem(self.dem())
        return self._graph


Pass = Callable[[PassContext], Iterable[Diagnostic]]

_SCOPES = ("circuit", "global")
_REGISTRY: Dict[str, Tuple[Pass, str]] = {}


def register_pass(name: str, fn: Pass, *, scope: str = "circuit") -> None:
    """Register a verification pass under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"verification pass {name!r} is already registered")
    if scope not in _SCOPES:
        raise ValueError(f"unknown pass scope {scope!r}; expected one of {_SCOPES}")
    _REGISTRY[name] = (fn, scope)


def _ensure_loaded() -> None:
    # The builtin passes self-register when their modules import.
    import repro.analysis.circuit_passes  # noqa: F401
    import repro.analysis.dem_passes  # noqa: F401
    import repro.analysis.periodic_passes  # noqa: F401
    import repro.analysis.registry_passes  # noqa: F401
    import repro.analysis.reweight_passes  # noqa: F401


def available_passes(scope: Optional[str] = None) -> Tuple[str, ...]:
    """Registered pass names in registration order, optionally one scope."""
    _ensure_loaded()
    return tuple(
        name for name, (_, s) in _REGISTRY.items() if scope is None or s == scope
    )


def get_pass(name: str) -> Pass:
    """Look up a pass; raises ``ValueError`` naming the alternatives."""
    _ensure_loaded()
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ValueError(
            f"unknown verification pass {name!r}; available: {available_passes()}"
        )
    return entry[0]


# The cheap structural passes (pure walks over the op list).  Builders run
# these under their ``strict`` flag; the DEM/graph passes are deferred to
# the verified extraction entry points and ``python -m repro lint``, so
# strict building never pays for a second DEM extraction.
STRUCTURAL_PASSES: Tuple[str, ...] = (
    "record_dataflow",
    "qubit_liveness",
    "noise_placement",
    "timing_overlap",
)


def run_passes(
    ctx: PassContext, passes: Sequence[str]
) -> DiagnosticReport:
    """Run the named passes over one context, collecting every diagnostic."""
    collected: List[Diagnostic] = []
    for name in passes:
        collected.extend(get_pass(name)(ctx))
    return DiagnosticReport(tuple(collected))


def verify(
    circuit: "Circuit",
    *,
    passes: Optional[Sequence[str]] = None,
    fail_on: Optional[str] = "error",
    expect_clean: Optional[bool] = None,
) -> DiagnosticReport:
    """Statically verify a circuit, collecting diagnostics from every pass.

    Args:
        circuit: the circuit to verify.
        passes: pass names to run; defaults to every registered
            circuit-scoped pass (structural walks plus DEM/graph
            consistency).  Unknown names raise ``ValueError`` up front.
        fail_on: severity at (or above) which the *completed* report is
            raised as :class:`VerificationError`; ``None`` never raises.
            All selected passes run to completion first, so the exception
            carries every finding, not just the first.
        expect_clean: noise-placement stage; see :class:`PassContext`.

    Returns:
        The full :class:`DiagnosticReport` (when below the ``fail_on``
        threshold, or when ``fail_on`` is ``None``).
    """
    if passes is None:
        passes = available_passes(scope="circuit")
    else:
        for name in passes:
            get_pass(name)  # validate every name before running anything
    if fail_on is not None:
        severity_rank(fail_on)
    report = run_passes(PassContext(circuit, expect_clean=expect_clean), passes)
    if fail_on is not None and not report.ok(fail_on):
        raise VerificationError(report, fail_on)
    return report


def verify_dem(
    dem: "DetectorErrorModel", *, fail_on: Optional[str] = "error"
) -> DiagnosticReport:
    """Verify a detector error model in isolation (no circuit needed)."""
    from repro.analysis.dem_passes import check_dem

    report = DiagnosticReport(tuple(check_dem(dem)))
    if fail_on is not None and not report.ok(fail_on):
        raise VerificationError(report, fail_on)
    return report


def verify_graph(
    graph: "DecodingGraph", *, fail_on: Optional[str] = "error"
) -> DiagnosticReport:
    """Verify a lowered decoding graph in isolation."""
    from repro.analysis.dem_passes import check_graph

    report = DiagnosticReport(tuple(check_graph(graph)))
    if fail_on is not None and not report.ok(fail_on):
        raise VerificationError(report, fail_on)
    return report
