"""Detector-error-model extraction and weighted decoding-graph lowering.

The detector error model (DEM) is the contract between a noisy circuit and
its decoders: for every elementary error mechanism -- one Pauli outcome of
one noise channel at one circuit location -- it records which detectors
and logical observables flip when that mechanism fires, together with the
firing probability.  Mechanisms with identical symptoms are merged by XOR
convolution.

Extraction propagates each mechanism through the Clifford circuit with the
Pauli-frame engine of :mod:`repro.sim.frame`, one frame row per mechanism:
the mechanism's Pauli is injected into its row at the channel's position,
all deterministic ops conjugate every row at once, and the row's final
detector/observable flips are the symptom.  This covers every channel of
the op table (:data:`repro.sim.ops.NOISE`), including the biased
``PAULI_CHANNEL_1`` / ``PAULI_CHANNEL_2`` whose per-outcome probabilities
ride in ``Operation.args``.

Lowering: :func:`weighted_graph` turns a DEM into the matching decoders'
:class:`~repro.decoder.graph.DecodingGraph`, whose edges carry
log-likelihood-ratio weights ``log((1-p)/p)`` derived from the merged
mechanism probabilities -- so a biased or movement-aware model reshapes
the decoders' metric with zero decoder changes.  :func:`uniform_graph`
builds the same topology with every edge pinned to one probability: the
hand-built uniform-weight graph the repo's decoders historically matched
on, kept as the verification baseline the weighted graph must beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only; see the lazy imports below
    from repro.sim.circuit import Circuit

# NOTE: this module sits *below* repro.sim in the import graph
# (repro.sim.frame re-exports the DEM classes defined here), so importing
# repro.sim.* at module level would be circular; the op tables are pulled
# in lazily inside the functions instead.


@dataclass(frozen=True)
class ErrorMechanism:
    """One independent error source of the detector error model.

    Attributes:
        probability: chance the mechanism fires in one shot.
        detectors: sorted indices of detectors it flips.
        observables: sorted indices of logical observables it flips.
    """

    probability: float
    detectors: Tuple[int, ...]
    observables: Tuple[int, ...]


@dataclass
class DetectorErrorModel:
    """Collection of independent error mechanisms plus circuit metadata."""

    mechanisms: List[ErrorMechanism]
    num_detectors: int
    num_observables: int

    def merged(self) -> "DetectorErrorModel":
        """Combine mechanisms with identical symptoms.

        Two independent sources with the same symptom act like one source
        firing with probability p = p1 (1 - p2) + p2 (1 - p1).
        """
        combined: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}
        for mech in self.mechanisms:
            key = (mech.detectors, mech.observables)
            prior = combined.get(key, 0.0)
            combined[key] = prior * (1 - mech.probability) + mech.probability * (1 - prior)
        merged = [
            ErrorMechanism(p, dets, obs)
            for (dets, obs), p in sorted(combined.items())
            if p > 0
        ]
        return DetectorErrorModel(merged, self.num_detectors, self.num_observables)


def enumerate_mechanisms(circuit: "Circuit"):
    """List (op, probability, x_qubits, z_qubits, tag) for every outcome.

    One entry per elementary Pauli outcome per channel target, in circuit
    order; the probabilities come straight from the channel parameters
    (``arg`` for the symmetric channels, ``args`` for the biased ones).

    Every op classified as noise by :data:`repro.sim.ops.NOISE` must be
    handled here: an unrecognized channel raises instead of being silently
    skipped, because a skipped channel yields a DEM that underweights the
    true error process -- decoders would quietly decode against the wrong
    metric (a wrong logical error rate, not a crash).
    """
    from repro.sim.ops import NOISE, PAULI_1Q, PAULI_2Q

    mechanisms = []
    for op in circuit.operations:
        if op.name not in NOISE:
            continue
        if op.name == "X_ERROR":
            for q in op.targets:
                mechanisms.append((op, op.arg, (q,), (), "X"))
        elif op.name == "Z_ERROR":
            for q in op.targets:
                mechanisms.append((op, op.arg, (), (q,), "Z"))
        elif op.name == "Y_ERROR":
            for q in op.targets:
                mechanisms.append((op, op.arg, (q,), (q,), "Y"))
        elif op.name in ("DEPOLARIZE1", "PAULI_CHANNEL_1"):
            probs = (
                (op.arg / 3.0,) * 3 if op.name == "DEPOLARIZE1" else op.args
            )
            for q in op.targets:
                for (x_bit, z_bit), p in zip(PAULI_1Q, probs):
                    mechanisms.append(
                        (op, p, (q,) if x_bit else (), (q,) if z_bit else (), "D1")
                    )
        elif op.name in ("DEPOLARIZE2", "PAULI_CHANNEL_2"):
            probs = (
                (op.arg / 15.0,) * 15 if op.name == "DEPOLARIZE2" else op.args
            )
            for a, b in zip(op.targets[0::2], op.targets[1::2]):
                for ((xa, za), (xb, zb)), p in zip(PAULI_2Q, probs):
                    xs = tuple(q for q, bit in ((a, xa), (b, xb)) if bit)
                    zs = tuple(q for q, bit in ((a, za), (b, zb)) if bit)
                    mechanisms.append((op, p, xs, zs, "D2"))
        else:
            raise ValueError(
                f"noise op {op.name!r} has no DEM mechanism enumeration; "
                f"extending repro.sim.ops.NOISE requires extending "
                f"enumerate_mechanisms in lockstep"
            )
    return mechanisms


def extract_dem(circuit: "Circuit", *, verify: bool = False) -> DetectorErrorModel:
    """Extract the DEM by propagating one frame row per error mechanism.

    With ``verify=True`` the extracted model is checked by the
    ``dem_consistency`` diagnostics of :mod:`repro.analysis` (detector
    coverage, probability sanity, undetectable logical mechanisms) and
    error-severity findings raise
    :class:`~repro.analysis.VerificationError` before any consumer can
    decode against a malformed model.
    """
    from repro.sim.frame import FrameSimulator, _Cursor
    from repro.sim.ops import NOISE

    sim = FrameSimulator(circuit)
    mechanisms = enumerate_mechanisms(circuit)
    count = len(mechanisms)
    frame_x = np.zeros((count, sim.num_qubits), dtype=np.uint8)
    frame_z = np.zeros((count, sim.num_qubits), dtype=np.uint8)
    flips = np.zeros((count, circuit.num_measurements), dtype=np.uint8)
    detectors = np.zeros((count, circuit.num_detectors), dtype=np.uint8)
    observables = np.zeros((count, max(circuit.num_observables, 1)), dtype=np.uint8)
    cursor = _Cursor()
    noise_index = 0
    for op in circuit.operations:
        if op.name in NOISE:
            # Inject the mechanisms tied to this op into their rows.
            while noise_index < count and mechanisms[noise_index][0] is op:
                _, _, x_flip_qubits, z_flip_qubits, _ = mechanisms[noise_index]
                row = noise_index
                for q in x_flip_qubits:
                    frame_x[row, q] ^= 1
                for q in z_flip_qubits:
                    frame_z[row, q] ^= 1
                noise_index += 1
        else:
            sim._apply(
                op, frame_x, frame_z, flips, detectors, observables, cursor,
                noisy=False,
            )
    out = [
        ErrorMechanism(
            probability=prob,
            detectors=tuple(int(d) for d in np.flatnonzero(detectors[row])),
            observables=tuple(int(o) for o in np.flatnonzero(observables[row])),
        )
        for row, (_, prob, _, _, _) in enumerate(mechanisms)
    ]
    dem = DetectorErrorModel(
        [m for m in out if m.detectors or m.observables],
        circuit.num_detectors,
        circuit.num_observables,
    )
    dem = dem.merged()
    if verify:
        from repro.analysis import verify_dem

        verify_dem(dem)
    return dem


def weighted_graph(dem: DetectorErrorModel):
    """DEM-weighted decoding graph (LLR edge weights from merged probs)."""
    from repro.decoder.graph import DecodingGraph

    return DecodingGraph.from_dem(dem)


def uniform_graph(dem: DetectorErrorModel, probability: float = 1e-3):
    """Uniform-weight baseline graph: DEM topology, one edge probability.

    This reproduces the hand-built graphs matching decoders used before
    DEM weighting existed: every edge equally likely, so MWPM minimizes
    hop count instead of likelihood.  Kept as the verification baseline
    -- the DEM-weighted graph must never decode *worse* than this.
    """
    from repro.decoder.graph import DecodingGraph

    return DecodingGraph.from_dem_uniform(dem, probability)
