"""Detector-error-model extraction and weighted decoding-graph lowering.

The detector error model (DEM) is the contract between a noisy circuit and
its decoders: for every elementary error mechanism -- one Pauli outcome of
one noise channel at one circuit location -- it records which detectors
and logical observables flip when that mechanism fires, together with the
firing probability.  Mechanisms with identical symptoms are merged by XOR
convolution.

Extraction propagates each mechanism through the Clifford circuit with the
Pauli-frame engine of :mod:`repro.sim.frame`, one frame row per mechanism:
the mechanism's Pauli is injected into its row at the channel's position,
all deterministic ops conjugate every row at once, and the row's final
detector/observable flips are the symptom.  This covers every channel of
the op table (:data:`repro.sim.ops.NOISE`), including the biased
``PAULI_CHANNEL_1`` / ``PAULI_CHANNEL_2`` whose per-outcome probabilities
ride in ``Operation.args``.

Lowering: :func:`weighted_graph` turns a DEM into the matching decoders'
:class:`~repro.decoder.graph.DecodingGraph`, whose edges carry
log-likelihood-ratio weights ``log((1-p)/p)`` derived from the merged
mechanism probabilities -- so a biased or movement-aware model reshapes
the decoders' metric with zero decoder changes.  :func:`uniform_graph`
builds the same topology with every edge pinned to one probability: the
hand-built uniform-weight graph the repo's decoders historically matched
on, kept as the verification baseline the weighted graph must beat.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs.logs import get_logger
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - type-only; see the lazy imports below
    from repro.sim.circuit import Circuit

_LOG = get_logger("repro.noise.dem")

# Every silent auto->linear degradation of the periodic extraction is
# counted by certification-failure reason; last_periodic_fallback() lets
# callers (DecodingEngine debug output) surface the most recent one.
_PERIODIC_FALLBACKS = _metrics.counter(
    "repro_periodic_fallback_total",
    "Periodic DEM extractions that fell back to the linear path, by reason.",
    ("reason",),
)
_EXTRACT_SECONDS = _metrics.counter(
    "repro_dem_extract_seconds_total",
    "Wall-clock seconds spent extracting detector error models, by path.",
    ("method",),
)

_FALLBACK_REASON: Optional[str] = None


def last_periodic_fallback() -> Optional[str]:
    """Reason the most recent ``extract_dem(method="auto")`` went linear.

    ``None`` when the last auto extraction used the periodic path (or
    forced a method explicitly).  Reasons mirror the certification
    failure sites of :func:`_periodic_mechanisms`: ``"no_period"``,
    ``"few_reps"``, ``"no_round_measurements"``,
    ``"epilogue_record_ref"``, ``"uncertified_shift"``,
    ``"span_exceeds_certified"``, ``"prologue_span"``.
    """
    return _FALLBACK_REASON

# NOTE: this module sits *below* repro.sim in the import graph
# (repro.sim.frame re-exports the DEM classes defined here), so importing
# repro.sim.* at module level would be circular; the op tables are pulled
# in lazily inside the functions instead.


@dataclass(frozen=True)
class ErrorMechanism:
    """One independent error source of the detector error model.

    Attributes:
        probability: chance the mechanism fires in one shot.
        detectors: sorted indices of detectors it flips.
        observables: sorted indices of logical observables it flips.
    """

    probability: float
    detectors: Tuple[int, ...]
    observables: Tuple[int, ...]


@dataclass
class DetectorErrorModel:
    """Collection of independent error mechanisms plus circuit metadata."""

    mechanisms: List[ErrorMechanism]
    num_detectors: int
    num_observables: int

    def merged(self) -> "DetectorErrorModel":
        """Combine mechanisms with identical symptoms.

        Two independent sources with the same symptom act like one source
        firing with probability p = p1 (1 - p2) + p2 (1 - p1).
        """
        combined: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}
        for mech in self.mechanisms:
            key = (mech.detectors, mech.observables)
            prior = combined.get(key, 0.0)
            combined[key] = prior * (1 - mech.probability) + mech.probability * (1 - prior)
        merged = [
            ErrorMechanism(p, dets, obs)
            for (dets, obs), p in sorted(combined.items())
            if p > 0
        ]
        return DetectorErrorModel(merged, self.num_detectors, self.num_observables)

    def reweighted(
        self, inflation: float, *, max_probability: float = 0.5
    ) -> "DetectorErrorModel":
        """Uniformly inflate every mechanism probability (importance proposal).

        Each mechanism's firing probability becomes
        ``min(inflation * p, max_probability)``: the proposal model the
        rare-event sampler (:mod:`repro.estimator.rare`) draws shots from.
        The cap keeps the proposal inside (0, 0.5] -- above 0.5 a
        mechanism's LLR decoding weight goes negative and
        ``dem_consistency`` rejects the model.  Capping does not bias the
        estimator: the per-shot likelihood-ratio weight is computed from
        the *actual* capped probabilities, so any proposal with support
        wherever the original has support stays exact; the cap only trades
        a little variance on the capped mechanisms.

        Symptom topology (detector/observable sets, mechanism order) is
        preserved exactly, so for disjoint-symptom models ``reweighted``
        commutes with :meth:`merged`.
        """
        if inflation <= 0:
            raise ValueError("inflation must be > 0")
        if not 0.0 < max_probability <= 0.5:
            raise ValueError("max_probability must be in (0, 0.5]")
        mechanisms = [
            ErrorMechanism(
                min(mech.probability * inflation, max_probability),
                mech.detectors,
                mech.observables,
            )
            for mech in self.mechanisms
        ]
        return DetectorErrorModel(
            mechanisms, self.num_detectors, self.num_observables
        )


def enumerate_mechanisms(circuit: "Circuit"):
    """List (op, probability, x_qubits, z_qubits, tag) for every outcome.

    One entry per elementary Pauli outcome per channel target, in circuit
    order; the probabilities come straight from the channel parameters
    (``arg`` for the symmetric channels, ``args`` for the biased ones).

    Every op classified as noise by :data:`repro.sim.ops.NOISE` must be
    handled here: an unrecognized channel raises instead of being silently
    skipped, because a skipped channel yields a DEM that underweights the
    true error process -- decoders would quietly decode against the wrong
    metric (a wrong logical error rate, not a crash).
    """
    from repro.sim.ops import NOISE, PAULI_1Q, PAULI_2Q

    mechanisms = []
    for op in circuit.operations:
        if op.name not in NOISE:
            continue
        if op.name == "X_ERROR":
            for q in op.targets:
                mechanisms.append((op, op.arg, (q,), (), "X"))
        elif op.name == "Z_ERROR":
            for q in op.targets:
                mechanisms.append((op, op.arg, (), (q,), "Z"))
        elif op.name == "Y_ERROR":
            for q in op.targets:
                mechanisms.append((op, op.arg, (q,), (q,), "Y"))
        elif op.name in ("DEPOLARIZE1", "PAULI_CHANNEL_1"):
            probs = (
                (op.arg / 3.0,) * 3 if op.name == "DEPOLARIZE1" else op.args
            )
            for q in op.targets:
                for (x_bit, z_bit), p in zip(PAULI_1Q, probs):
                    mechanisms.append(
                        (op, p, (q,) if x_bit else (), (q,) if z_bit else (), "D1")
                    )
        elif op.name in ("DEPOLARIZE2", "PAULI_CHANNEL_2"):
            probs = (
                (op.arg / 15.0,) * 15 if op.name == "DEPOLARIZE2" else op.args
            )
            for a, b in zip(op.targets[0::2], op.targets[1::2]):
                for ((xa, za), (xb, zb)), p in zip(PAULI_2Q, probs):
                    xs = tuple(q for q, bit in ((a, xa), (b, xb)) if bit)
                    zs = tuple(q for q, bit in ((a, za), (b, zb)) if bit)
                    mechanisms.append((op, p, xs, zs, "D2"))
        else:
            raise ValueError(
                f"noise op {op.name!r} has no DEM mechanism enumeration; "
                f"extending repro.sim.ops.NOISE requires extending "
                f"enumerate_mechanisms in lockstep"
            )
    return mechanisms


def extract_dem(
    circuit: "Circuit", *, verify: bool = False, method: str = "auto"
) -> DetectorErrorModel:
    """Extract the DEM by propagating one frame row per error mechanism.

    Args:
        circuit: the noisy circuit.
        verify: check the extracted model with the ``dem_consistency``
            diagnostics of :mod:`repro.analysis` (detector coverage,
            probability sanity, undetectable logical mechanisms);
            error-severity findings raise
            :class:`~repro.analysis.VerificationError` before any
            consumer can decode against a malformed model.
        method: ``"auto"`` (default) uses the periodic extraction when the
            circuit has a verified repeated round -- mechanisms are
            enumerated over a few rounds and unrolled by shifting
            detector references, O(1) in the round count -- and falls
            back to the linear propagation otherwise.  ``"linear"`` /
            ``"periodic"`` force a path (``"periodic"`` raises when the
            circuit has no usable period).  Both paths yield *identical*
            models: the periodic unrolling emits mechanisms in linear
            circuit order with the same float probabilities, so the
            XOR-convolution in :meth:`DetectorErrorModel.merged`
            accumulates bit-identically.
    """
    global _FALLBACK_REASON
    if method not in ("auto", "linear", "periodic"):
        raise ValueError(f"unknown DEM extraction method {method!r}")
    mechanisms = None
    fallback_reason = None
    start = time.perf_counter()
    if method in ("auto", "periodic"):
        mechanisms, fallback_reason = _periodic_mechanisms(circuit)
        if mechanisms is None and method == "periodic":
            raise ValueError(
                "DEM method 'periodic' requires a verified repeated round, "
                "but the circuit has none"
            )
    if method == "auto":
        # Forced methods are a caller's choice; only the *silent* auto
        # degradation is tracked and counted.
        _FALLBACK_REASON = fallback_reason
        if fallback_reason is not None:
            _PERIODIC_FALLBACKS.labels(reason=fallback_reason).inc()
            _LOG.debug(
                "periodic DEM extraction fell back to linear: %s",
                fallback_reason,
            )
    used = "periodic" if mechanisms is not None else "linear"
    if mechanisms is None:
        with span("dem.linear_mechanisms"):
            mechanisms = _linear_mechanisms(circuit)
    _EXTRACT_SECONDS.labels(method=used).inc(time.perf_counter() - start)
    dem = DetectorErrorModel(
        [m for m in mechanisms if m.detectors or m.observables],
        circuit.num_detectors,
        circuit.num_observables,
    )
    dem = dem.merged()
    if verify:
        from repro.analysis import verify_dem

        verify_dem(dem)
    return dem


def _linear_mechanisms(circuit: "Circuit") -> List[ErrorMechanism]:
    """Unmerged mechanism list via one frame row per mechanism (reference)."""
    from repro.sim.frame import FrameSimulator, _Cursor
    from repro.sim.ops import NOISE

    sim = FrameSimulator(circuit)
    mechanisms = enumerate_mechanisms(circuit)
    count = len(mechanisms)
    frame_x = np.zeros((count, sim.num_qubits), dtype=np.uint8)
    frame_z = np.zeros((count, sim.num_qubits), dtype=np.uint8)
    flips = np.zeros((count, circuit.num_measurements), dtype=np.uint8)
    detectors = np.zeros((count, circuit.num_detectors), dtype=np.uint8)
    observables = np.zeros((count, max(circuit.num_observables, 1)), dtype=np.uint8)
    cursor = _Cursor()
    noise_index = 0
    for op in circuit.operations:
        if op.name in NOISE:
            # Inject the mechanisms tied to this op into their rows.
            while noise_index < count and mechanisms[noise_index][0] is op:
                _, _, x_flip_qubits, z_flip_qubits, _ = mechanisms[noise_index]
                row = noise_index
                for q in x_flip_qubits:
                    frame_x[row, q] ^= 1
                for q in z_flip_qubits:
                    frame_z[row, q] ^= 1
                noise_index += 1
        else:
            sim._apply(
                op, frame_x, frame_z, flips, detectors, observables, cursor,
                noisy=False,
            )
    return [
        ErrorMechanism(
            probability=prob,
            detectors=tuple(int(d) for d in np.flatnonzero(detectors[row])),
            observables=tuple(int(o) for o in np.flatnonzero(observables[row])),
        )
        for row, (_, prob, _, _, _) in enumerate(mechanisms)
    ]


# -- periodic extraction -------------------------------------------------------
#
# A circuit with a verified repeated round (repro.sim.periodic) has a
# shift-invariant DEM interior: a mechanism in round body replay j flips
# the same detector pattern as its replay-0 twin, offset by j rounds.
# Extraction therefore builds a *surrogate* circuit with only
# _SURROGATE_REPS replays (epilogue record references rebased), computes
# its mechanisms with a packed propagation (one bit column per mechanism
# instead of one byte row), certifies shift invariance inside the
# surrogate, and unrolls: prologue mechanisms verbatim, the certified
# bulk round replicated with shifted detector rows, the trailing
# epilogue-influenced rounds and the epilogue shifted to their full-
# circuit positions.  Any violated certificate falls back to the linear
# path (correctness never depends on the periodic fast path).

# Replays in the surrogate circuit.  Large enough that after the leading
# certified rounds there is room for one epilogue-influenced trailing
# round plus span-guard headroom; small enough that extraction stays
# O(1) in the full round count.
_SURROGATE_REPS = 5


def _periodic_mechanisms(
    circuit: "Circuit",
) -> Tuple[Optional[List[ErrorMechanism]], Optional[str]]:
    """Mechanism list via periodic unrolling: ``(mechanisms, reason)``.

    ``(list, None)`` on success; ``(None, reason)`` when a certification
    failed and the caller must fall back to the linear path (reasons are
    enumerated in :func:`last_periodic_fallback`).

    Emits mechanisms in linear circuit order (prologue, replay 0..k-1,
    epilogue, preserving within-round enumeration order) with the exact
    channel probability floats, so downstream ``merged()`` accumulation
    is bit-identical to the linear path's.
    """
    from repro.sim.circuit import Circuit
    from repro.sim.periodic import detect_period

    spec = detect_period(circuit)
    if spec is None:
        return None, "no_period"
    if spec.reps < _SURROGATE_REPS:
        return None, "few_reps"
    if spec.meas_per_rep <= 0 or spec.det_per_rep <= 0:
        return None, "no_round_measurements"
    reps, surrogate_reps = spec.reps, _SURROGATE_REPS
    ops = circuit.operations
    start, length = spec.start, spec.length
    meas_start = spec.meas_start
    meas_shift = (surrogate_reps - reps) * spec.meas_per_rep

    # Surrogate: prologue + _SURROGATE_REPS replays + epilogue, with
    # epilogue record references into the body window rebased onto the
    # shorter body.  References below the dropped replays cannot be
    # verified in the surrogate -> fall back.
    surrogate = Circuit()
    regions: List[object] = []  # per-op region: "prologue" | replay j | "epilogue"
    try:
        for op in ops[:start]:
            surrogate.append(op.name, op.targets, op.arg, op.args)
            regions.append("prologue")
        for j in range(surrogate_reps):
            offset = j * spec.meas_per_rep
            for op in ops[start : start + length]:
                if op.name in ("DETECTOR", "OBSERVABLE_INCLUDE"):
                    targets = tuple(t + offset for t in op.targets)
                else:
                    targets = op.targets
                surrogate.append(op.name, targets, op.arg, op.args)
                regions.append(j)
        for op in ops[start + reps * length :]:
            if op.name in ("DETECTOR", "OBSERVABLE_INCLUDE"):
                targets = []
                for t in op.targets:
                    if t >= meas_start:
                        if t + meas_shift < meas_start:
                            return None, "epilogue_record_ref"
                        targets.append(t + meas_shift)
                    else:
                        targets.append(t)
                surrogate.append(op.name, tuple(targets), op.arg, op.args)
            else:
                surrogate.append(op.name, op.targets, op.arg, op.args)
            regions.append("epilogue")
    except ValueError:
        return None, "epilogue_record_ref"

    mechanisms = enumerate_mechanisms(surrogate)
    symptoms, mech_regions = _mechanism_symptoms_packed(
        surrogate, mechanisms, regions
    )

    # Group per region, normalizing body detector rows to replay 0.
    prologue_rows = spec.det_start
    det_per_rep = spec.det_per_rep
    prologue_mechs: List[Tuple[float, Tuple[int, ...], Tuple[int, ...]]] = []
    epilogue_mechs: List[Tuple[float, Tuple[int, ...], Tuple[int, ...]]] = []
    replay_seqs: List[List[Tuple[float, Tuple[int, ...], Tuple[int, ...]]]] = [
        [] for _ in range(surrogate_reps)
    ]
    for (_, prob, _, _, _), (dets, obs), region in zip(
        mechanisms, symptoms, mech_regions
    ):
        if region == "prologue":
            prologue_mechs.append((prob, dets, obs))
        elif region == "epilogue":
            epilogue_mechs.append((prob, dets, obs))
        else:
            normalized = tuple(d - region * det_per_rep for d in dets)
            replay_seqs[region].append((prob, normalized, obs))

    # Certify shift invariance: how many leading replays produce the
    # same normalized (probability, detectors, observables) sequence?
    base = replay_seqs[0]
    prefix = 1
    while prefix < surrogate_reps and replay_seqs[prefix] == base:
        prefix += 1
    trailing = surrogate_reps - prefix  # epilogue-influenced replays
    if prefix < 2:
        return None, "uncertified_shift"
    # Span guards: every certified mechanism's detector reach must stay
    # within the rounds whose invariance was directly certified, and
    # prologue effects must not leak into the trailing region.
    certified_limit = prologue_rows + (prefix - 1) * det_per_rep
    if any(d >= certified_limit for _, dets, _ in base for d in dets):
        return None, "span_exceeds_certified"
    if any(d >= certified_limit for _, dets, _ in prologue_mechs for d in dets):
        return None, "prologue_span"

    # Unroll to the full circuit: bulk = certified round replicated over
    # the leading reps - trailing replays; trailing replays and epilogue
    # shift forward by the dropped rounds.
    row_shift = (reps - surrogate_reps) * det_per_rep
    out: List[ErrorMechanism] = []
    for prob, dets, obs in prologue_mechs:
        out.append(ErrorMechanism(prob, dets, obs))
    for j in range(reps - trailing):
        offset = j * det_per_rep
        for prob, dets, obs in base:
            out.append(
                ErrorMechanism(prob, tuple(d + offset for d in dets), obs)
            )
    for j in range(prefix, surrogate_reps):
        offset = j * det_per_rep + row_shift
        for prob, dets, obs in replay_seqs[j]:
            out.append(
                ErrorMechanism(prob, tuple(d + offset for d in dets), obs)
            )
    for prob, dets, obs in epilogue_mechs:
        out.append(
            ErrorMechanism(prob, tuple(d + row_shift for d in dets), obs)
        )
    return out, None


def _mechanism_symptoms_packed(circuit: "Circuit", mechanisms, regions):
    """Symptoms of every mechanism via packed bit-column propagation.

    The packed analogue of :func:`_linear_mechanisms`' row-per-mechanism
    frames: mechanism ``m`` lives in bit column ``m`` of the compiled
    program's planes, deterministic steps conjugate all mechanisms at
    once (64 per ALU op), and each noise step XORs its mechanisms' Pauli
    flips in via a precomputed scatter
    (:func:`repro.sim.compiled.injection_noise`).

    Returns ``(symptoms, mech_regions)``: per-mechanism
    ``(detectors, observables)`` index tuples and the per-mechanism
    region label taken from the per-op ``regions`` list.
    """
    from repro.sim.compiled import (
        CompiledProgram,
        execute_steps,
        injection_noise,
    )
    from repro.sim.ops import NOISE

    program = CompiledProgram(circuit)
    count = len(mechanisms)
    words = (count + 7) // 8
    padded = 8 * ((words + 7) // 8)
    x = np.zeros((program.num_qubits, padded), dtype=np.uint8)
    z = np.zeros((program.num_qubits, padded), dtype=np.uint8)
    flips = np.zeros((program.num_measurements, padded), dtype=np.uint8)

    injections = []
    mech_regions: List[object] = []
    mech_index = 0
    for op, region in zip(circuit.operations, regions):
        if op.name not in NOISE:
            continue
        x_rows: List[int] = []
        x_cols: List[int] = []
        z_rows: List[int] = []
        z_cols: List[int] = []
        while mech_index < count and mechanisms[mech_index][0] is op:
            _, _, x_flip_qubits, z_flip_qubits, _ = mechanisms[mech_index]
            for q in x_flip_qubits:
                x_rows.append(q)
                x_cols.append(mech_index)
            for q in z_flip_qubits:
                z_rows.append(q)
                z_cols.append(mech_index)
            mech_regions.append(region)
            mech_index += 1
        injections.append(_pack_injection(x_rows, x_cols) + _pack_injection(z_rows, z_cols))

    execute_steps(
        program.steps,
        x.view(np.uint64),
        z.view(np.uint64),
        flips.view(np.uint64),
        x[:, :words],
        z[:, :words],
        injection_noise(injections),
    )

    detectors = np.zeros((program.num_detectors, padded), dtype=np.uint8)
    observables = np.zeros((program.num_observables, padded), dtype=np.uint8)
    if program._det_meas.size:
        np.bitwise_xor.at(detectors, program._det_row, flips[program._det_meas])
    if program._obs_meas.size:
        np.bitwise_xor.at(observables, program._obs_row, flips[program._obs_meas])
    det_cols = np.unpackbits(detectors[:, :words], axis=1, count=count).T
    obs_cols = np.unpackbits(observables[:, :words], axis=1, count=count).T
    symptoms = list(zip(_grouped_indices(det_cols), _grouped_indices(obs_cols)))
    return symptoms, mech_regions


def _grouped_indices(table: np.ndarray) -> List[Tuple[int, ...]]:
    """Per-row tuples of set-bit column indices, via one global nonzero.

    One ``np.nonzero`` over the whole (rows, columns) table plus a Python
    grouping pass over the ~2-4 set bits per row is an order of magnitude
    cheaper than a ``flatnonzero`` dispatch per row.
    """
    groups: List[List[int]] = [[] for _ in range(table.shape[0])]
    row_indices, column_indices = np.nonzero(table)
    for row, column in zip(row_indices.tolist(), column_indices.tolist()):
        groups[row].append(column)
    return [tuple(group) for group in groups]


def _pack_injection(rows: List[int], cols: List[int]):
    """COO (plane row, byte, bit mask) arrays for one noise step's flips."""
    row_array = np.asarray(rows, dtype=np.intp)
    col_array = np.asarray(cols, dtype=np.intp)
    return (
        row_array,
        col_array >> 3,
        (np.uint8(128) >> (col_array & 7)).astype(np.uint8),
    )


def weighted_graph(dem: DetectorErrorModel):
    """DEM-weighted decoding graph (LLR edge weights from merged probs)."""
    from repro.decoder.graph import DecodingGraph

    return DecodingGraph.from_dem(dem)


def uniform_graph(dem: DetectorErrorModel, probability: float = 1e-3):
    """Uniform-weight baseline graph: DEM topology, one edge probability.

    This reproduces the hand-built graphs matching decoders used before
    DEM weighting existed: every edge equally likely, so MWPM minimizes
    hop count instead of likelihood.  Kept as the verification baseline
    -- the DEM-weighted graph must never decode *worse* than this.
    """
    from repro.decoder.graph import DecodingGraph

    return DecodingGraph.from_dem_uniform(dem, probability)
