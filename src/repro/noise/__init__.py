"""Pluggable noise-model layer and detector-error-model extraction.

* :mod:`repro.noise.models` -- declarative circuit-level noise models
  applied as pure ``Circuit -> Circuit`` transformations, selected through
  a string registry (``uniform_depolarizing``, ``biased_pauli``,
  ``movement_aware``).
* :mod:`repro.noise.dem` -- detector-error-model extraction: every
  elementary error mechanism of a noisy circuit is propagated to the
  detectors/observables it flips, and the merged model is lowered to a
  log-likelihood-ratio-weighted decoding graph (with a uniform-weight
  hand-built baseline kept for verification).
"""

from repro.noise.dem import (
    DetectorErrorModel,
    ErrorMechanism,
    extract_dem,
    uniform_graph,
    weighted_graph,
)
from repro.noise.models import (
    BiasedPauli,
    MovementAware,
    NoiseModel,
    UniformDepolarizing,
    available_noise_models,
    make_noise_model,
    register_noise_model,
    resolve_noise_model,
    transversal_move_schedule,
)

__all__ = [
    "BiasedPauli",
    "DetectorErrorModel",
    "ErrorMechanism",
    "MovementAware",
    "NoiseModel",
    "UniformDepolarizing",
    "available_noise_models",
    "extract_dem",
    "make_noise_model",
    "register_noise_model",
    "resolve_noise_model",
    "transversal_move_schedule",
    "uniform_graph",
    "weighted_graph",
]
