"""Declarative circuit-level noise models with a string registry.

A :class:`NoiseModel` is a pure ``Circuit -> Circuit`` transformation: the
experiment builders (:mod:`repro.sim.memory`) emit *clean* circuits --
gates, resets, measurements, detectors, plus the ``IDLE``/``FENCE``
markers of :mod:`repro.sim.ops` -- and a noise model inserts the stochastic
channels.  Builders therefore no longer hand-emit noise ops, and swapping
the physical error model never touches circuit construction, simulation,
or decoding: the DEM extraction (:mod:`repro.noise.dem`) reads whatever
channels the model wrote and reweights the decoders automatically.

Insertion rules (shared by every model; hooks decide *which* channel):

* after each run of consecutive resets: one flip channel per reset op, in
  op order (``R`` -> bit flips, ``RX`` -> phase flips);
* after every one-/two-qubit Clifford gate: a gate channel on its targets;
* before each run of consecutive measurements: one flip channel per
  maximal same-name sub-run (``M`` -> bit flips, ``MX`` -> phase flips),
  targets concatenated in op order;
* at every ``IDLE`` marker: an idle channel on the marked qubits;
* ``FENCE`` markers only break the run grouping above.

Both markers are consumed -- they never appear in the returned circuit --
and channels with zero total probability are skipped, so a zero-strength
model returns the clean circuit itself.  Existing noise ops (e.g. injected
deterministic errors in tests) pass through untouched.

Models:

* :class:`UniformDepolarizing` -- the paper's Sec. III.4 model, emitting
  exactly the op stream the builders used to hand-write (golden-pinned in
  ``tests/golden/emission_*.txt``).
* :class:`BiasedPauli` -- per-gate X/Y/Z rates through the
  ``PAULI_CHANNEL_1``/``PAULI_CHANNEL_2`` ops; ``bias`` is the Z:X weight
  ratio (``bias=1`` reduces to depolarizing rates).
* :class:`MovementAware` -- idle error inflated by the physically-validated
  duration of a per-round :class:`~repro.atoms.scheduler.MoveSchedule`
  through the :func:`repro.core.idle.idle_error_per_period` coherence
  model, tying the AOD movement layer to the simulated noise.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.atoms.aod import interleave_patches
from repro.atoms.scheduler import MoveSchedule
from repro.core.idle import idle_error_per_period
from repro.core.params import PhysicalParams

if TYPE_CHECKING:  # pragma: no cover - type-only; see the lazy imports below
    from repro.sim.circuit import Circuit, Operation

# NOTE: repro.sim.memory builds on this module, so importing repro.sim.*
# here at module level would be circular; the IR and its op tables are
# pulled in lazily inside apply() instead.

# One inserted channel: (name, targets, total probability, outcome args).
ChannelSpec = Tuple[str, Tuple[int, ...], float, Tuple[float, ...]]


@runtime_checkable
class NoiseModel(Protocol):
    """Structural interface: a pure circuit-to-circuit noise transformation."""

    def apply(self, circuit: "Circuit") -> "Circuit": ...


class RuleBasedNoiseModel:
    """Shared insertion walk; subclasses choose the channels per location.

    Hooks return lists of :data:`ChannelSpec`; an empty list (or a spec
    with zero probability) inserts nothing at that location.
    """

    # -- hooks ---------------------------------------------------------------

    def after_reset(self, name: str, targets: Tuple[int, ...]) -> List[ChannelSpec]:
        return []

    def after_gate1(self, targets: Tuple[int, ...]) -> List[ChannelSpec]:
        return []

    def after_gate2(self, targets: Tuple[int, ...]) -> List[ChannelSpec]:
        return []

    def before_measurement(self, name: str, targets: Tuple[int, ...]) -> List[ChannelSpec]:
        return []

    def idle(self, targets: Tuple[int, ...]) -> List[ChannelSpec]:
        return []

    # -- transformation ------------------------------------------------------

    def apply(self, circuit: "Circuit") -> "Circuit":
        """Insert this model's channels into a clean circuit."""
        from repro.sim.circuit import Circuit
        from repro.sim.ops import CLIFFORD_1Q, CLIFFORD_2Q, MEASUREMENTS, RESETS

        noisy = Circuit()
        ops = circuit.operations
        n = len(ops)
        i = 0
        while i < n:
            op = ops[i]
            if op.name == "FENCE":
                i += 1
                continue
            if op.name == "IDLE":
                self._emit(noisy, self.idle(op.targets))
                i += 1
                continue
            if op.name in RESETS:
                j = i
                while j < n and ops[j].name in RESETS:
                    _copy(noisy, ops[j])
                    j += 1
                for reset in ops[i:j]:
                    self._emit(noisy, self.after_reset(reset.name, reset.targets))
                i = j
                continue
            if op.name in MEASUREMENTS:
                j = i
                while j < n and ops[j].name in MEASUREMENTS:
                    j += 1
                for name, targets in _name_runs(ops[i:j]):
                    self._emit(noisy, self.before_measurement(name, targets))
                for meas in ops[i:j]:
                    _copy(noisy, meas)
                i = j
                continue
            _copy(noisy, op)
            if op.name in CLIFFORD_2Q:
                self._emit(noisy, self.after_gate2(op.targets))
            elif op.name in CLIFFORD_1Q:
                self._emit(noisy, self.after_gate1(op.targets))
            i += 1
        return noisy

    @staticmethod
    def _emit(circuit: "Circuit", channels: List[ChannelSpec]) -> None:
        for name, targets, arg, args in channels:
            if arg <= 0.0 or not targets:
                continue
            circuit.append(name, targets, arg, args)


def _copy(circuit: "Circuit", op: "Operation") -> None:
    circuit.append(op.name, op.targets, op.arg, op.args)


def _name_runs(ops: Sequence["Operation"]):
    """Maximal same-name sub-runs of an op slice, targets concatenated."""
    runs: List[Tuple[str, List[int]]] = []
    for op in ops:
        if runs and runs[-1][0] == op.name:
            runs[-1][1].extend(op.targets)
        else:
            runs.append((op.name, list(op.targets)))
    return [(name, tuple(targets)) for name, targets in runs]


def _check_probability(p: float) -> float:
    if not 0.0 <= p < 1.0:
        raise ValueError(f"noise probability out of range: {p}")
    return p


def _convolve(p: float, q: float) -> float:
    """Probability that exactly one of two independent flips fires."""
    return p * (1.0 - q) + q * (1.0 - p)


class UniformDepolarizing(RuleBasedNoiseModel):
    """Sec. III.4 circuit noise: depolarize after gates, flip around SPAM.

    Token-identical to the memory builders' historical hand-emitted
    stream: ``X_ERROR``/``Z_ERROR`` after resets and before measurements
    (in the basis that corrupts them), ``DEPOLARIZE2`` after each
    two-qubit gate layer, ``DEPOLARIZE1`` on idling data qubits once per
    SE round.
    """

    def __init__(self, p: float) -> None:
        self.p = _check_probability(p)

    def after_reset(self, name, targets):
        flip = "X_ERROR" if name == "R" else "Z_ERROR"
        return [(flip, targets, self.p, ())]

    def after_gate1(self, targets):
        return [("DEPOLARIZE1", targets, self.p, ())]

    def after_gate2(self, targets):
        return [("DEPOLARIZE2", targets, self.p, ())]

    def before_measurement(self, name, targets):
        flip = "X_ERROR" if name == "M" else "Z_ERROR"
        return [(flip, targets, self.p, ())]

    def idle(self, targets):
        return [("DEPOLARIZE1", targets, self.p, ())]

    def __repr__(self) -> str:
        return f"UniformDepolarizing(p={self.p})"


class BiasedPauli(RuleBasedNoiseModel):
    """Biased Pauli noise: Z errors ``bias`` times likelier than X/Y.

    Gate and idle locations emit ``PAULI_CHANNEL_1`` with rates
    ``p/(2+bias) * (1, 1, bias)`` and ``PAULI_CHANNEL_2`` whose 15
    outcome probabilities are the normalized products of per-qubit weights
    ``w(I)=1, w(X)=w(Y)=1, w(Z)=bias`` (total probability ``p`` either
    way); ``bias=1`` reproduces the depolarizing rates exactly.  Reset and
    measurement flips keep the basis-appropriate ``p`` of the uniform
    model -- SPAM bias is a property of readout, not of the bulk channel.
    """

    def __init__(self, p: float, bias: float = 10.0) -> None:
        self.p = _check_probability(p)
        if bias <= 0:
            raise ValueError(f"bias must be positive, got {bias}")
        self.bias = bias
        total = 2.0 + bias
        self._p1 = (p / total, p / total, p * bias / total)
        weights = []
        single = {0: 1.0, 1: 1.0, 2: 1.0, 3: bias}  # I, X, Y, Z
        for a in range(4):
            for b in range(4):
                if a == b == 0:
                    continue
                weights.append(single[a] * single[b])
        norm = sum(weights)
        self._p2 = tuple(p * w / norm for w in weights)

    def after_reset(self, name, targets):
        flip = "X_ERROR" if name == "R" else "Z_ERROR"
        return [(flip, targets, self.p, ())]

    def after_gate1(self, targets):
        return [("PAULI_CHANNEL_1", targets, self.p, self._p1)]

    def after_gate2(self, targets):
        return [("PAULI_CHANNEL_2", targets, self.p, self._p2)]

    def before_measurement(self, name, targets):
        flip = "X_ERROR" if name == "M" else "Z_ERROR"
        return [(flip, targets, self.p, ())]

    def idle(self, targets):
        return [("PAULI_CHANNEL_1", targets, self.p, self._p1)]

    def __repr__(self) -> str:
        return f"BiasedPauli(p={self.p}, bias={self.bias})"


def transversal_move_schedule(
    distance: int, interleave_offset: Optional[int] = None
) -> MoveSchedule:
    """Per-round movement of the transversal architecture: patch interleave.

    Builds the AOD-validated round trip of Fig. 3(b): pick up a d x d
    patch, land it interleaved onto its partner ``interleave_offset``
    sites away (default: one patch width), pulse, and move it back.  The
    schedule's physical duration is what :class:`MovementAware` converts
    into idle error -- through the same :class:`~repro.atoms.aod.BatchMove`
    validation that guards every gadget timing in :mod:`repro.atoms`.
    """
    offset = distance if interleave_offset is None else interleave_offset
    out = interleave_patches((0, offset), (0, 0), distance)
    schedule = MoveSchedule()
    schedule.add_move("interleave:out", out, gate_pulses=1)
    back = interleave_patches((0, 0), (0, offset), distance)
    schedule.add_move("interleave:back", back)
    return schedule


class MovementAware(UniformDepolarizing):
    """Uniform depolarizing plus movement-induced idle error.

    The per-round idle channel no longer fires at the bare gate rate
    ``p``: the duration of ``schedule`` (the movement executed every SE
    round, validated against the AOD constraints) is converted to a
    decoherence probability ``duration / T_coh`` by
    :func:`repro.core.idle.idle_error_per_period` and XOR-convolved with
    ``p``.  This is the simulation-side counterpart of the estimator's
    Eq. (3) idle accounting in :mod:`repro.core.idle`.
    """

    def __init__(
        self,
        p: float,
        schedule: Optional[MoveSchedule] = None,
        physical: Optional[PhysicalParams] = None,
        distance: int = 3,
    ) -> None:
        super().__init__(p)
        self.physical = physical if physical is not None else PhysicalParams()
        self.schedule = (
            schedule if schedule is not None else transversal_move_schedule(distance)
        )
        self.move_duration = self.schedule.duration(self.physical)
        self.idle_p = _convolve(
            p, idle_error_per_period(self.move_duration, self.physical)
        )

    def idle(self, targets):
        return [("DEPOLARIZE1", targets, self.idle_p, ())]

    def __repr__(self) -> str:
        return (
            f"MovementAware(p={self.p}, idle_p={self.idle_p:.2e}, "
            f"move_duration={self.move_duration:.2e}s)"
        )


# -- registry ------------------------------------------------------------------

NoiseModelFactory = Callable[..., NoiseModel]
_REGISTRY: Dict[str, NoiseModelFactory] = {}


def register_noise_model(name: str, factory: NoiseModelFactory) -> None:
    """Register a noise-model factory under ``name``.

    The factory is called with the keyword arguments handed to
    :func:`make_noise_model` and must return an object satisfying the
    :class:`NoiseModel` protocol.
    """
    if name in _REGISTRY:
        raise ValueError(f"noise model {name!r} is already registered")
    _REGISTRY[name] = factory


def available_noise_models() -> Tuple[str, ...]:
    """Registered noise-model names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_noise_model(name: str, **kwargs) -> NoiseModel:
    """Build a registered noise model (e.g. ``make_noise_model("biased_pauli", p=1e-3)``)."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown noise model {name!r}; available: {available_noise_models()}"
        )
    return factory(**kwargs)


def resolve_noise_model(noise, p: float, **context) -> NoiseModel:
    """Resolve a ``noise=`` argument: instance, registry name, or ``None``.

    ``None`` selects :class:`UniformDepolarizing` at ``p``; an instance
    passes through untouched.  A registry name is built with ``p`` plus
    whichever ``context`` kwargs its factory actually accepts -- the
    experiment builders pass ``distance=`` here, so a name like
    ``"movement_aware"`` gets the *circuit's* distance (and hence the
    right move duration) instead of the factory default, while
    distance-free factories simply never see the kwarg.
    """
    if noise is None:
        return UniformDepolarizing(p)
    if not isinstance(noise, str):
        return noise
    factory = _REGISTRY.get(noise)
    if factory is None:
        raise ValueError(
            f"unknown noise model {noise!r}; available: {available_noise_models()}"
        )
    import inspect

    sig = inspect.signature(factory)
    takes_any = any(
        param.kind is inspect.Parameter.VAR_KEYWORD
        for param in sig.parameters.values()
    )
    kwargs = {"p": p}
    kwargs.update(
        (key, value) for key, value in context.items()
        if takes_any or key in sig.parameters
    )
    return factory(**kwargs)


register_noise_model("uniform_depolarizing", UniformDepolarizing)
register_noise_model("biased_pauli", BiasedPauli)
register_noise_model("movement_aware", MovementAware)
