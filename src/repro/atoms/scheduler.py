"""Move scheduling for gadget layouts (paper Sec. III.1).

A :class:`MoveSchedule` is a sequence of AOD batch moves; its duration is
the sum of batch durations plus any gate/measure steps interleaved.  The
gadget models (MAJ block, GHZ fan-out, factory CNOT stage) construct
schedules and derive their step times, which feed the algorithm-level
timing.  The scheduler validates every batch against the AOD constraints,
so the quoted durations correspond to physically executable moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.atoms.aod import BatchMove
from repro.core.params import PhysicalParams


@dataclass(frozen=True)
class ScheduleStep:
    """One step: an optional batch move plus fixed-duration operations."""

    label: str
    batch: Optional[BatchMove] = None
    gate_pulses: int = 0
    measurements: int = 0

    def duration(self, physical: PhysicalParams) -> float:
        total = 0.0
        if self.batch is not None:
            total += self.batch.duration(physical)
        total += self.gate_pulses * physical.gate_time
        # Parallel measurement: one measurement window regardless of count.
        if self.measurements:
            total += physical.measure_time
        return total

    @property
    def max_move_sites(self) -> float:
        return self.batch.max_length_sites if self.batch is not None else 0.0


@dataclass
class MoveSchedule:
    """Ordered steps; total duration is the serial sum."""

    steps: List[ScheduleStep] = field(default_factory=list)

    def add_move(self, label: str, batch: BatchMove, gate_pulses: int = 0) -> None:
        batch.validate()
        self.steps.append(ScheduleStep(label, batch, gate_pulses))

    def add_gates(self, label: str, gate_pulses: int) -> None:
        self.steps.append(ScheduleStep(label, None, gate_pulses))

    def add_measurement(self, label: str, count: int = 1) -> None:
        self.steps.append(ScheduleStep(label, None, 0, count))

    def duration(self, physical: PhysicalParams) -> float:
        return sum(step.duration(physical) for step in self.steps)

    @property
    def max_move_sites(self) -> float:
        """Longest single-atom move anywhere in the schedule (site pitches)."""
        return max((step.max_move_sites for step in self.steps), default=0.0)

    def move_count(self) -> int:
        return sum(1 for step in self.steps if step.batch is not None)


def round_trip(
    label: str, sources: Sequence[Tuple[int, int]], d_row: int, d_col: int,
    gate_pulses: int = 1,
) -> MoveSchedule:
    """Schedule: move atoms out, pulse, move them back."""
    from repro.atoms.aod import shift_batch

    schedule = MoveSchedule()
    schedule.add_move(f"{label}:out", shift_batch(sources, d_row, d_col), gate_pulses)
    landed = [(s[0] + d_row, s[1] + d_col) for s in sources]
    schedule.add_move(f"{label}:back", shift_batch(landed, -d_row, -d_col))
    return schedule
