"""Atom-array site geometry (paper Sec. II.1, Fig. 3).

Sites live on a rectangular grid with pitch ``site_spacing``; positions are
given in integer site units (row, col) and converted to metres for move-time
computation.  A :class:`Region` is an axis-aligned rectangle of sites, used
to describe gadget footprints (factory 12d x 3d, MAJ block 3 x 2 logical
tiles, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.core.params import PhysicalParams

Site = Tuple[int, int]


def euclidean_sites(a: Site, b: Site) -> float:
    """Distance between two sites, in units of the site pitch."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def distance_metres(a: Site, b: Site, physical: PhysicalParams) -> float:
    """Distance between two sites in metres."""
    return euclidean_sites(a, b) * physical.site_spacing


@dataclass(frozen=True)
class Region:
    """Axis-aligned rectangle of sites: rows [row, row+height), cols alike."""

    row: int
    col: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise ValueError(f"degenerate region: {self}")

    @property
    def num_sites(self) -> int:
        return self.height * self.width

    @property
    def corner(self) -> Site:
        return (self.row, self.col)

    def contains(self, site: Site) -> bool:
        return (
            self.row <= site[0] < self.row + self.height
            and self.col <= site[1] < self.col + self.width
        )

    def overlaps(self, other: "Region") -> bool:
        return not (
            self.row + self.height <= other.row
            or other.row + other.height <= self.row
            or self.col + self.width <= other.col
            or other.col + other.width <= self.col
        )

    def shifted(self, d_row: int, d_col: int) -> "Region":
        return Region(self.row + d_row, self.col + d_col, self.height, self.width)

    def sites(self) -> Iterator[Site]:
        for r in range(self.row, self.row + self.height):
            for c in range(self.col, self.col + self.width):
                yield (r, c)


def patch_region(corner: Site, code_distance: int) -> Region:
    """The d x d data-qubit footprint of a surface-code patch."""
    return Region(corner[0], corner[1], code_distance, code_distance)


def interleaved_distance(code_distance: int) -> float:
    """Max per-atom move (in site pitches) to interleave two adjacent patches.

    Transversal gates bring matching qubits of two logical-pitch-separated
    patches together (Fig. 3(b)); each atom travels about one patch pitch.
    """
    return float(code_distance)
