"""Atom-array geometry, AOD move constraints, schedules and zone plans."""

from repro.atoms.aod import AODViolation, BatchMove, Move, interleave_patches, shift_batch
from repro.atoms.geometry import (
    Region,
    distance_metres,
    euclidean_sites,
    interleaved_distance,
    patch_region,
)
from repro.atoms.scheduler import MoveSchedule, ScheduleStep, round_trip
from repro.atoms.zones import ZonePlan, ZoneSpec, factoring_zone_plan

__all__ = [
    "AODViolation",
    "BatchMove",
    "Move",
    "MoveSchedule",
    "Region",
    "ScheduleStep",
    "ZonePlan",
    "ZoneSpec",
    "distance_metres",
    "euclidean_sites",
    "factoring_zone_plan",
    "interleave_patches",
    "interleaved_distance",
    "patch_region",
    "round_trip",
    "shift_batch",
]
