"""AOD (acousto-optic deflector) batch-move constraints.

One AOD grab addresses a set of atoms at the intersections of a set of row
tones and column tones and displaces them together.  Physical constraints
(paper Sec. II.1, Ref. [103]):

* atoms picked up simultaneously must form a subset of a product grid
  (rows x cols);
* tone order cannot cross during the move: if two atoms start in the same
  row order / column order, they must land in the same order (AOD rows and
  columns move monotonically and may not pass each other);
* all grabbed atoms experience the same duration, set by the longest
  individual displacement (Eq. 1).

:class:`BatchMove` validates these constraints and reports the duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.atoms.geometry import Site, euclidean_sites
from repro.core.movement import move_time
from repro.core.params import PhysicalParams


@dataclass(frozen=True)
class Move:
    """One atom's source and destination, in site coordinates."""

    source: Site
    destination: Site

    @property
    def displacement(self) -> Tuple[int, int]:
        return (
            self.destination[0] - self.source[0],
            self.destination[1] - self.source[1],
        )

    @property
    def length_sites(self) -> float:
        return euclidean_sites(self.source, self.destination)


class AODViolation(ValueError):
    """A batch of moves is not realizable by a single AOD grab."""


@dataclass
class BatchMove:
    """A set of moves performed in one parallel AOD operation."""

    moves: List[Move]

    def validate(self) -> None:
        """Check product-grid structure and order preservation.

        Raises:
            AODViolation: if the batch cannot be performed in one grab.
        """
        if not self.moves:
            return
        self._check_distinct()
        self._check_row_col_consistency()
        self._check_order_preserved()

    def _check_distinct(self) -> None:
        sources = [m.source for m in self.moves]
        if len(set(sources)) != len(sources):
            raise AODViolation("duplicate source sites in batch")
        dests = [m.destination for m in self.moves]
        if len(set(dests)) != len(dests):
            raise AODViolation("duplicate destination sites in batch")

    def _check_row_col_consistency(self) -> None:
        """Atoms sharing a source row tone must share a row displacement.

        Row tones move as a unit (and likewise columns), so every atom in
        source row r must have the same row displacement, and every atom in
        source column c the same column displacement.
        """
        row_shift: Dict[int, int] = {}
        col_shift: Dict[int, int] = {}
        for m in self.moves:
            d_row, d_col = m.displacement
            prior = row_shift.setdefault(m.source[0], d_row)
            if prior != d_row:
                raise AODViolation(
                    f"row {m.source[0]} has inconsistent row shifts {prior} vs {d_row}"
                )
            prior = col_shift.setdefault(m.source[1], d_col)
            if prior != d_col:
                raise AODViolation(
                    f"col {m.source[1]} has inconsistent col shifts {prior} vs {d_col}"
                )

    def _check_order_preserved(self) -> None:
        """Row tones (and column tones) may not cross or merge."""
        row_shift: Dict[int, int] = {}
        col_shift: Dict[int, int] = {}
        for m in self.moves:
            row_shift[m.source[0]] = m.displacement[0]
            col_shift[m.source[1]] = m.displacement[1]
        for shifts in (row_shift, col_shift):
            keys = sorted(shifts)
            landed = [k + shifts[k] for k in keys]
            for a, b in zip(landed, landed[1:]):
                if a >= b:
                    raise AODViolation("tone order not preserved (cross or merge)")

    def duration(self, physical: PhysicalParams) -> float:
        """Batch duration: the longest single move at Eq. (1) scaling."""
        self.validate()
        if not self.moves:
            return 0.0
        longest = max(m.length_sites for m in self.moves)
        return move_time(longest * physical.site_spacing, physical.acceleration)

    @property
    def max_length_sites(self) -> float:
        return max((m.length_sites for m in self.moves), default=0.0)


def shift_batch(sources: Sequence[Site], d_row: int, d_col: int) -> BatchMove:
    """Rigid translation of a set of atoms (always AOD-valid)."""
    return BatchMove([Move(s, (s[0] + d_row, s[1] + d_col)) for s in sources])


def interleave_patches(
    patch_a_corner: Site, patch_b_corner: Site, code_distance: int
) -> BatchMove:
    """Move patch B onto patch A's sites, offset so atoms pair up.

    Models the transversal-CNOT interleave of Fig. 3(b): patch B's d x d
    grid lands displaced to sit between patch A's atoms (here: onto the
    same integer sites, which pairs atoms index-wise in our coarse grid).
    """
    d_row = patch_a_corner[0] - patch_b_corner[0]
    d_col = patch_a_corner[1] - patch_b_corner[1]
    sources = [
        (patch_b_corner[0] + r, patch_b_corner[1] + c)
        for r in range(code_distance)
        for c in range(code_distance)
    ]
    return shift_batch(sources, d_row, d_col)
