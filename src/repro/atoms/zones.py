"""Processor-level zone plan (paper Figs. 3(b), 5(c,d)).

The machine is laid out as rectangular zones of trap sites:

* dense **storage** for idle logical registers (d^2 atoms per logical qubit,
  no interleaved ancillas; SE visits on the storage schedule);
* **compute** tiles for active patches (2 d^2 - 1 atoms: data + ancilla);
* **factory** strips hosting magic-state factories;
* an **entangling** margin where patches are interleaved for transversal
  gates.

The plan computes atom counts and footprints used by the space accounting
of the algorithm estimators, and places zones adjacently so the
input/output interfaces between gadgets stay local (Sec. III.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.atoms.geometry import Region


@dataclass(frozen=True)
class ZoneSpec:
    """One zone: its role and logical capacity."""

    name: str
    role: str  # "storage" | "compute" | "factory" | "entangling"
    logical_capacity: int
    code_distance: int

    def atoms_per_logical(self) -> int:
        """Physical atoms per logical qubit for this role.

        Dense storage packs d^2 data atoms per logical qubit; active compute
        tiles carry d^2 data + (d^2 - 1) ancilla.
        """
        d = self.code_distance
        if self.role == "storage":
            return d * d
        return 2 * d * d - 1

    @property
    def num_atoms(self) -> int:
        return self.logical_capacity * self.atoms_per_logical()


@dataclass
class ZonePlan:
    """A set of named zones with adjacency-aware footprint layout."""

    zones: List[ZoneSpec] = field(default_factory=list)

    def add(self, zone: ZoneSpec) -> None:
        if any(z.name == zone.name for z in self.zones):
            raise ValueError(f"duplicate zone name {zone.name!r}")
        self.zones.append(zone)

    def zone(self, name: str) -> ZoneSpec:
        for z in self.zones:
            if z.name == name:
                return z
        raise KeyError(name)

    @property
    def total_atoms(self) -> int:
        return sum(z.num_atoms for z in self.zones)

    def atoms_by_role(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for z in self.zones:
            out[z.role] = out.get(z.role, 0) + z.num_atoms
        return out

    def layout(self, sites_per_row: int = 4096) -> Dict[str, Region]:
        """Stack zones top-to-bottom as fixed-width rows of sites.

        A coarse floorplan: each zone becomes a horizontal band whose height
        fits its atom count at the given width.  Adjacent bands keep
        inter-zone moves short, matching the paper's local-interface design.
        """
        regions: Dict[str, Region] = {}
        row = 0
        for z in self.zones:
            height = max(1, -(-z.num_atoms // sites_per_row))
            regions[z.name] = Region(row, 0, height, sites_per_row)
            row += height
        return regions


def factoring_zone_plan(
    num_register_logicals: int,
    num_active_logicals: int,
    num_factories: int,
    factory_logicals: int,
    code_distance: int,
) -> ZonePlan:
    """Zone plan for the factoring layout of Fig. 5(c,d)."""
    plan = ZonePlan()
    plan.add(ZoneSpec("registers", "storage", num_register_logicals, code_distance))
    plan.add(ZoneSpec("active", "compute", num_active_logicals, code_distance))
    plan.add(
        ZoneSpec("factories", "factory", num_factories * factory_logicals, code_distance)
    )
    return plan
