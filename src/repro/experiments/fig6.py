"""Fig. 6: logical error model with transversal gates.

(a) Monte-Carlo logical error per CNOT vs code distance and CNOT density,
fitted with Eq. (4) -- our MWPM/sequential-decoder rendition of the
paper's MLE-data fit.  (b) analytic space-time volume per logical CNOT vs
SE rounds per CNOT (Eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.logical_error import cnot_spacetime_volume
from repro.core.params import ErrorParams
from repro.decoder.analysis import (
    AlphaFit,
    MemoryFit,
    cnot_experiment_rate,
    fit_alpha,
    fit_memory_model,
    memory_logical_error,
    per_round_rate,
)


@dataclass(frozen=True)
class Fig6aResult:
    """Monte-Carlo data points and the fitted model constants."""

    memory_fit: MemoryFit
    alpha_fit: AlphaFit
    data: Tuple[Tuple[int, float, float], ...]  # (d, x, per-cnot rate)


def generate_fig6a(
    p: float = 0.003,
    distances: Sequence[int] = (3, 5),
    cnot_every: Sequence[int] = (1, 2),
    shots: int = 1500,
    seed: int = 29,
) -> Fig6aResult:
    """Run the MC experiments and fit Eq. (4)."""
    rates = []
    for d in distances:
        rounds = d + 1
        res = memory_logical_error(d, rounds, p, shots, seed=seed)
        rates.append(per_round_rate(res, rounds))
    memory_fit = fit_memory_model(list(distances), rates)
    data: List[Tuple[int, float, float]] = []
    for d in distances:
        for every in cnot_every:
            res, n = cnot_experiment_rate(d, 6, p, every, shots, seed=seed)
            if res.failures == 0:
                continue
            data.append((d, 1.0 / every, res.rate / n))
    alpha_fit = fit_alpha(data, memory_fit.prefactor_c, memory_fit.lam)
    return Fig6aResult(memory_fit=memory_fit, alpha_fit=alpha_fit, data=tuple(data))


def generate_fig6b(
    error: ErrorParams = ErrorParams(),
    se_rounds_per_cnot: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    target_error: float = 1e-12,
) -> Dict[float, float]:
    """Volume per CNOT vs SE rounds per CNOT (x = 1/rounds)."""
    out: Dict[float, float] = {}
    for rounds in se_rounds_per_cnot:
        out[rounds] = cnot_spacetime_volume(1.0 / rounds, error, target_error)
    return out


def render_fig6b(curve: Dict[float, float]) -> str:
    lines = [f"{'SE rounds/CNOT':>15s} {'rel. volume':>12s}"]
    for rounds, volume in sorted(curve.items()):
        lines.append(f"{rounds:15.2f} {volume:12.1f}")
    return "\n".join(lines)
