"""Fig. 6: logical error model with transversal gates.

(a) Monte-Carlo logical error per CNOT vs code distance and CNOT density,
fitted with Eq. (4) -- our MWPM/sequential-decoder rendition of the
paper's MLE-data fit.  (b) analytic space-time volume per logical CNOT vs
SE rounds per CNOT (Eq. 6).

Seed derivation: ``seed`` is the root of a
:class:`numpy.random.SeedSequence`; every Monte-Carlo point -- each
memory distance and each (distance, cnot_every) pair -- runs on its own
spawned child stream.  Earlier revisions passed the *same* integer seed
to every sweep point, so nominally-independent points shared correlated
noise realizations and the Eq. (2)/(4) fits were biased; spawning
decorrelates the sweep while keeping the whole figure reproducible from
one root seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.logical_error import cnot_spacetime_volume
from repro.core.params import ErrorParams
from repro.estimator.registry import Scenario, ScenarioResult, register_scenario
from repro.estimator.sweep import grid, sweep
from repro.decoder.analysis import (
    AlphaFit,
    MemoryFit,
    cnot_experiment_rate,
    fit_alpha,
    fit_memory_model,
    memory_logical_error,
    per_round_rate,
)


@dataclass(frozen=True)
class Fig6aResult:
    """Monte-Carlo data points and the fitted model constants."""

    memory_fit: MemoryFit
    alpha_fit: AlphaFit
    data: Tuple[Tuple[int, float, float], ...]  # (d, x, per-cnot rate)


def generate_fig6a(
    p: float = 0.003,
    distances: Sequence[int] = (3, 5),
    cnot_every: Sequence[int] = (1, 2),
    shots: int = 1500,
    seed: int = 29,
    workers: int = 1,
    target_failures: Optional[int] = None,
    packed: bool = True,
    noise=None,
) -> Fig6aResult:
    """Run the MC experiments and fit Eq. (4).

    Args:
        shots: shots per point (the cap when ``target_failures`` is set).
        seed: root seed; each point gets its own spawned child stream.
        workers: parallel decoding-engine workers per point.
        target_failures: when set, each point streams shot batches until
            this many failures are observed (or ``shots`` is reached).
        packed: run each point's engine on the bit-packed compiled
            pipeline (default) or the byte-per-bit reference path; the
            sampled noise and the fits are bit-identical either way.
        noise: circuit noise model for every experiment -- a
            :class:`~repro.noise.models.NoiseModel` instance or registry
            name; ``None`` keeps uniform depolarizing at ``p``.
    """
    root = np.random.SeedSequence(seed)
    memory_seeds = root.spawn(len(distances))
    rates = []
    for d, point_seed in zip(distances, memory_seeds):
        rounds = d + 1
        res = memory_logical_error(
            d, rounds, p, shots, seed=point_seed,
            workers=workers, target_failures=target_failures, packed=packed,
            noise=noise,
        )
        rates.append(per_round_rate(res, rounds))
    memory_fit = fit_memory_model(list(distances), rates)
    data: List[Tuple[int, float, float]] = []
    cnot_seeds = iter(root.spawn(len(distances) * len(cnot_every)))
    for d in distances:
        for every in cnot_every:
            res, n = cnot_experiment_rate(
                d, 6, p, every, shots, seed=next(cnot_seeds),
                workers=workers, target_failures=target_failures,
                packed=packed, noise=noise,
            )
            if res.failures == 0:
                continue
            data.append((d, 1.0 / every, res.rate / n))
    alpha_fit = fit_alpha(data, memory_fit.prefactor_c, memory_fit.lam)
    return Fig6aResult(memory_fit=memory_fit, alpha_fit=alpha_fit, data=tuple(data))


DEFAULT_SE_ROUNDS_PER_CNOT = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


def _fig6b_point(point: dict, error: ErrorParams, target_error: float) -> dict:
    rounds = point["se_rounds"]
    return {"volume": cnot_spacetime_volume(1.0 / rounds, error, target_error)}


def generate_fig6b(
    error: ErrorParams = ErrorParams(),
    se_rounds_per_cnot: Sequence[float] = DEFAULT_SE_ROUNDS_PER_CNOT,
    target_error: float = 1e-12,
    jobs: int = 1,
) -> Dict[float, float]:
    """Volume per CNOT vs SE rounds per CNOT (x = 1/rounds)."""
    records = sweep(
        partial(_fig6b_point, error=error, target_error=target_error),
        grid(se_rounds=tuple(se_rounds_per_cnot)),
        jobs=jobs,
    )
    return {r["se_rounds"]: r["volume"] for r in records}


def render_fig6b(curve: Dict[float, float]) -> str:
    lines = [f"{'SE rounds/CNOT':>15s} {'rel. volume':>12s}"]
    for rounds, volume in sorted(curve.items()):
        lines.append(f"{rounds:15.2f} {volume:12.1f}")
    return "\n".join(lines)


# -- scenario ------------------------------------------------------------------


def _build_fig6b(jobs: int = 1, target_error: float = 1e-12) -> ScenarioResult:
    records = sweep(
        partial(_fig6b_point, error=ErrorParams(), target_error=target_error),
        grid(se_rounds=DEFAULT_SE_ROUNDS_PER_CNOT),
        jobs=jobs,
    )
    return ScenarioResult(
        scenario="fig6b",
        records=tuple(records),
        metadata={"target_error": target_error},
    )


def _render_fig6b_result(result: ScenarioResult) -> str:
    return render_fig6b({r["se_rounds"]: r["volume"] for r in result.records})


def _lint_fig6():
    """Smallest instances of the Fig. 6(a) Monte-Carlo circuit families."""
    from repro.sim.memory import memory_circuit, transversal_cnot_circuit

    return {
        "memory_d3": memory_circuit(3, 4, 0.003),
        "cnot_d3": transversal_cnot_circuit(3, 6, 0.003, (2, 4)),
    }


register_scenario(Scenario(
    name="fig6b",
    description="space-time volume per CNOT vs SE rounds per CNOT (Fig. 6(b))",
    build=_build_fig6b,
    render=_render_fig6b_result,
    order=40,
    lint_circuits=_lint_fig6,
))
