"""Fig. 13: sensitivity to decoder quality (alpha) and coherence time.

(a) Space-time volume vs the decoding factor alpha: re-choose the code
distance for the effective threshold at each alpha; even dropping the
one-round threshold from 0.86% to 0.6% costs only ~50% more volume.
(b) Volume vs coherence time: flat until ~1 s, then accelerating.

:func:`decoder_tradeoff_monte_carlo` backs the Fig. 13(a) narrative with
measured numbers: it runs the *same* sampled syndromes through every
registered decoder via the batched decoding engine, exhibiting the
accuracy gap (e.g. union-find vs MWPM) that the analytic alpha sweep
abstracts into a single parameter.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional, Sequence

import numpy as np

from repro.algorithms.factoring import FactoringParameters, estimate_factoring
from repro.core.idle import optimal_storage_period_volume
from repro.core.logical_error import required_distance
from repro.core.params import ArchitectureConfig
from repro.decoder.analysis import LogicalErrorResult, paired_failure_counts
from repro.decoder.engine import DecodingEngine, make_decoder
from repro.estimator.registry import Scenario, ScenarioResult, register_scenario
from repro.estimator.sweep import grid, sweep
from repro.sim.frame import FrameSimulator
from repro.sim.memory import memory_circuit

DEFAULT_ALPHAS = (1.0 / 12, 1.0 / 6, 1.0 / 3, 1.0 / 2, 2.0 / 3)
DEFAULT_COHERENCE_TIMES = (0.3, 1.0, 3.0, 10.0, 30.0, 100.0)


def _alpha_point(point: dict, target_error: float, base: ArchitectureConfig) -> dict:
    """Volume (Mq-days) at one decoding-factor grid point."""
    error = base.error.rescaled(alpha=point["alpha"])
    distance = required_distance(target_error, error, 1.0)
    params = FactoringParameters(code_distance=distance)
    config = base.rescaled(error=error)
    est = estimate_factoring(params, config)
    return {
        "volume_mq_days": est.physical_qubits * est.runtime_seconds / 86400.0 / 1e6,
        "code_distance": distance,
    }


def volume_vs_alpha(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    target_error: float = 1e-12,
    base: ArchitectureConfig = ArchitectureConfig(),
    jobs: int = 1,
) -> Dict[float, float]:
    """Space-time volume (Mqubit-days) vs decoding factor."""
    records = sweep(
        partial(_alpha_point, target_error=target_error, base=base),
        grid(alpha=tuple(alphas)),
        jobs=jobs,
    )
    return {r["alpha"]: r["volume_mq_days"] for r in records}


def _coherence_point(point: dict, base: ArchitectureConfig) -> dict:
    """Volume (Mq-days) at one coherence-time grid point."""
    physical = base.physical.rescaled(coherence_time=point["coherence_time"])
    period = optimal_storage_period_volume(base.error, physical).period
    config = base.rescaled(physical=physical, storage_se_period=period)
    est = estimate_factoring(config=config)
    # Storage density scales with the SE work per stored qubit: charge
    # the extra SE visits as extra effective storage footprint.
    storage_penalty = max(1.0, (8e-3 / period))
    volume = est.physical_qubits * storage_penalty * est.runtime_seconds
    return {
        "volume_mq_days": volume / 86400.0 / 1e6,
        "storage_se_period": period,
    }


def volume_vs_coherence(
    coherence_times: Sequence[float] = DEFAULT_COHERENCE_TIMES,
    base: ArchitectureConfig = ArchitectureConfig(),
    jobs: int = 1,
) -> Dict[float, float]:
    """Volume vs coherence time; the storage SE period re-optimizes.

    Shorter coherence forces denser storage SE (more volume) and higher
    idle noise; below ~1 s the cost accelerates (Fig. 13(b)).
    """
    records = sweep(
        partial(_coherence_point, base=base),
        grid(coherence_time=tuple(coherence_times)),
        jobs=jobs,
    )
    return {r["coherence_time"]: r["volume_mq_days"] for r in records}


def decoder_tradeoff_monte_carlo(
    distance: int = 3,
    rounds: int = 3,
    p: float = 0.004,
    shots: int = 2000,
    seed: int = 41,
    decoders: Sequence[str] = ("mwpm", "mwpm_uniform", "union_find"),
    workers: int = 1,
    target_failures: Optional[int] = None,
    noise=None,
) -> Dict[str, LogicalErrorResult]:
    """Measured logical error per decoder on one memory experiment.

    Every decoder decodes *the same* noise realizations (a paired
    comparison), so the rate ratio between a fast decoder and MWPM is the
    Monte-Carlo counterpart of the alpha penalty swept analytically in
    :func:`volume_vs_alpha`.  Serially (``workers=1``, no
    ``target_failures``) the syndromes are sampled exactly once through
    the packed pipeline (:meth:`DecodingEngine.collect`) and every
    decoder consumes the identical bit-packed tables; with ``workers>1``
    each decoder streams through its own sharded engine run instead --
    resampling identical shard streams from the common seed -- so the
    decode work (the dominant cost) parallelizes too.

    Note: setting ``target_failures`` makes each decoder stop at its own
    shot count, so failure *counts* are no longer paired -- compare
    ``rate`` (failures per shot) in that mode, not raw counts.

    ``noise`` selects the circuit noise model (instance or registry name);
    the default decoder list pairs DEM-weighted MWPM against the
    uniform-weight baseline graph and union-find, so the table doubles as
    a weighted-vs-uniform ablation under any model.
    """
    circuit = memory_circuit(distance, rounds, p, noise=noise)
    # Extract the DEM once (the dominant setup cost) and share it across
    # all decoders.
    dem = FrameSimulator(circuit).detector_error_model()
    out: Dict[str, LogicalErrorResult] = {}
    if target_failures is not None or workers > 1:
        for name in decoders:
            with DecodingEngine(
                circuit, make_decoder(name, dem), workers=workers
            ) as engine:
                if target_failures is not None:
                    res = engine.run_until(
                        target_failures,
                        max_shots=shots,
                        seed=np.random.SeedSequence(seed),
                    )
                else:
                    res = engine.run(shots, seed=np.random.SeedSequence(seed))
            out[name] = LogicalErrorResult(shots=res.shots, failures=res.failures)
        return out
    counts = paired_failure_counts(
        circuit,
        {name: name for name in decoders},
        shots,
        seed=np.random.SeedSequence(seed),
        dem=dem,
    )
    return {
        name: LogicalErrorResult(shots=shots, failures=failures)
        for name, failures in counts.items()
    }


def threshold_drop_cost(base: ArchitectureConfig = ArchitectureConfig()) -> float:
    """Volume ratio when the one-round threshold drops 0.86% -> 0.6%.

    Paper Fig. 13(a): about a 50% increase.  alpha = 2/3 gives
    p_eff = 1%/(1 + 2/3) = 0.6%.
    """
    curve = volume_vs_alpha(alphas=(1.0 / 6, 2.0 / 3), base=base)
    return curve[2.0 / 3] / curve[1.0 / 6]


# -- scenario ------------------------------------------------------------------


def _build_fig13(jobs: int = 1, target_error: float = 1e-12) -> ScenarioResult:
    base = ArchitectureConfig()
    alpha_records = sweep(
        partial(_alpha_point, target_error=target_error, base=base),
        grid(alpha=DEFAULT_ALPHAS),
        jobs=jobs,
    )
    coherence_records = sweep(
        partial(_coherence_point, base=base),
        grid(coherence_time=DEFAULT_COHERENCE_TIMES),
        jobs=jobs,
    )
    records = tuple(
        [{"kind": "alpha", **r} for r in alpha_records]
        + [{"kind": "coherence", **r} for r in coherence_records]
    )
    return ScenarioResult(
        scenario="fig13",
        records=records,
        metadata={"target_error": target_error},
    )


def _render_fig13(result: ScenarioResult) -> str:
    lines = []
    alpha_curve = {
        r["alpha"]: r["volume_mq_days"]
        for r in result.records
        if r["kind"] == "alpha"
    }
    for alpha, vol in sorted(alpha_curve.items()):
        lines.append(f"  alpha {alpha:.3f}: {vol:8.1f} Mq*days")
    coherence_curve = {
        r["coherence_time"]: r["volume_mq_days"]
        for r in result.records
        if r["kind"] == "coherence"
    }
    for t, vol in sorted(coherence_curve.items()):
        lines.append(f"  T_coh {t:6.1f} s: {vol:8.1f} Mq*days")
    return "\n".join(lines)


def _lint_fig13():
    """The decoder-tradeoff memory circuit at its default parameters."""
    return {"memory_d3": memory_circuit(3, 3, 0.004)}


register_scenario(Scenario(
    name="fig13",
    description="volume sensitivity to decoding factor and coherence time (Fig. 13)",
    build=_build_fig13,
    render=_render_fig13,
    order=70,
    lint_circuits=_lint_fig13,
))
