"""Fig. 13: sensitivity to decoder quality (alpha) and coherence time.

(a) Space-time volume vs the decoding factor alpha: re-choose the code
distance for the effective threshold at each alpha; even dropping the
one-round threshold from 0.86% to 0.6% costs only ~50% more volume.
(b) Volume vs coherence time: flat until ~1 s, then accelerating.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.algorithms.factoring import FactoringParameters, estimate_factoring
from repro.core.idle import optimal_storage_period_volume
from repro.core.logical_error import required_distance
from repro.core.params import ArchitectureConfig, ErrorParams


def volume_vs_alpha(
    alphas: Sequence[float] = (1.0 / 12, 1.0 / 6, 1.0 / 3, 1.0 / 2, 2.0 / 3),
    target_error: float = 1e-12,
    base: ArchitectureConfig = ArchitectureConfig(),
) -> Dict[float, float]:
    """Space-time volume (Mqubit-days) vs decoding factor."""
    out: Dict[float, float] = {}
    for alpha in alphas:
        error = base.error.rescaled(alpha=alpha)
        distance = required_distance(target_error, error, 1.0)
        params = FactoringParameters(code_distance=distance)
        config = base.rescaled(error=error)
        est = estimate_factoring(params, config)
        out[alpha] = est.physical_qubits * est.runtime_seconds / 86400.0 / 1e6
    return out


def volume_vs_coherence(
    coherence_times: Sequence[float] = (0.3, 1.0, 3.0, 10.0, 30.0, 100.0),
    base: ArchitectureConfig = ArchitectureConfig(),
) -> Dict[float, float]:
    """Volume vs coherence time; the storage SE period re-optimizes.

    Shorter coherence forces denser storage SE (more volume) and higher
    idle noise; below ~1 s the cost accelerates (Fig. 13(b)).
    """
    out: Dict[float, float] = {}
    for t_coh in coherence_times:
        physical = base.physical.rescaled(coherence_time=t_coh)
        period = optimal_storage_period_volume(base.error, physical).period
        config = base.rescaled(physical=physical, storage_se_period=period)
        est = estimate_factoring(config=config)
        # Storage density scales with the SE work per stored qubit: charge
        # the extra SE visits as extra effective storage footprint.
        storage_penalty = max(1.0, (8e-3 / period))
        volume = est.physical_qubits * storage_penalty * est.runtime_seconds
        out[t_coh] = volume / 86400.0 / 1e6
    return out


def threshold_drop_cost(base: ArchitectureConfig = ArchitectureConfig()) -> float:
    """Volume ratio when the one-round threshold drops 0.86% -> 0.6%.

    Paper Fig. 13(a): about a 50% increase.  alpha = 2/3 gives
    p_eff = 1%/(1 + 2/3) = 0.6%.
    """
    curve = volume_vs_alpha(alphas=(1.0 / 6, 2.0 / 3), base=base)
    return curve[2.0 / 3] / curve[1.0 / 6]
