"""Headline scenario: the paper's top-line estimate plus Fig. 2 context.

This is what a bare ``python -m repro`` prints: the 2048-bit factoring
point of the transversal architecture (~19 M qubits, ~5.6 days) and the
comparison table against the lattice-surgery baselines.
"""

from __future__ import annotations

from repro.algorithms.factoring import estimate_factoring
from repro.estimator.registry import Scenario, ScenarioResult, register_scenario
from repro.experiments import fig2


def _build_headline(jobs: int = 1) -> ScenarioResult:
    est = estimate_factoring()
    points = fig2.generate(jobs=jobs)
    records = [{
        "kind": "headline",
        "physical_qubits": est.physical_qubits,
        "runtime_seconds": est.runtime_seconds,
        "num_factories": est.num_factories,
        "logical_error": est.logical_error,
        "total_ccz": est.total_ccz,
    }]
    records.extend(
        {"kind": "fig2_point", "label": p.label, "megaqubits": p.megaqubits,
         "days": p.days}
        for p in points
    )
    return ScenarioResult(
        scenario="headline",
        records=tuple(records),
        metadata={"speedup_vs_ge_10ms": fig2.speedup_vs_ge()},
    )


def _render_headline(result: ScenarioResult) -> str:
    head = result.records[0]
    points = [
        fig2.Fig2Point(r["label"], r["megaqubits"], r["days"])
        for r in result.records
        if r["kind"] == "fig2_point"
    ]
    lines = [
        "== 2048-bit factoring, transversal architecture ==",
        f"  {head['physical_qubits'] / 1e6:.1f} M qubits, "
        f"{head['runtime_seconds'] / 86400:.2f} days, "
        f"{head['num_factories']} factories",
        "",
        "== Fig. 2 comparison ==",
        fig2.render(points),
        f"  speed-up vs GE19 @900us: {result.metadata['speedup_vs_ge_10ms']:.0f}x",
    ]
    return "\n".join(lines)


register_scenario(Scenario(
    name="headline",
    description="headline 2048-bit factoring estimate + Fig. 2 comparison",
    build=_build_headline,
    render=_render_headline,
    order=0,
    in_all=False,
))
