"""Rare-event memory sweep: importance sampling + adaptive shot budget.

The ``memory_rare`` scenario is the Fig. 6-style logical-error sweep
pushed below where brute force can follow: each (distance, p) point runs
an importance-sampled engine (:func:`repro.estimator.rare.rare_engine`)
drawing shots from a reweighted DEM proposal, and the points share one
shot budget through :func:`repro.estimator.sweep.adaptive_shots` -- waves
go to whichever point's failure-rate confidence interval is currently
widest, instead of every point burning the same fixed count.

Each record reports the weighted (unbiased) failure estimate with its
standard error, Wilson CI, Kish effective sample size, and the proposal
inflation used, so the output is self-diagnosing: a low ``ess`` fraction
flags an over-aggressive proposal on that point.

Defaults are sized for the CLI smoke path; raise ``total_shots`` via
``--param`` for production-tight tails.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.estimator.rare import rare_engine
from repro.estimator.registry import Scenario, ScenarioResult, register_scenario
from repro.estimator.sweep import adaptive_shots, grid
from repro.sim.memory import memory_circuit

DEFAULT_DISTANCES = (3, 5)
DEFAULT_PS = (3e-3, 1e-3, 3e-4)


def _build_memory_rare(
    jobs: int = 1,
    distances: Tuple[int, ...] = DEFAULT_DISTANCES,
    ps: Tuple[float, ...] = DEFAULT_PS,
    rounds: int = 2,
    total_shots: int = 6000,
    wave_shots: int = 800,
    initial_shots: int = 400,
    seed: int = 71,
    inflation: float = 0.0,
) -> ScenarioResult:
    # Engines are built lazily on a point's first wave and reused across
    # waves (DEM extraction and decoder construction dominate small-wave
    # cost); the allocation loop itself is serial, so ``jobs`` parallelizes
    # *within* a point's engine.
    engines: Dict[Tuple[int, float], object] = {}

    def run_point(point, shots, seq):
        key = (point["distance"], point["p"])
        engine = engines.get(key)
        if engine is None:
            circuit = memory_circuit(key[0], rounds, key[1])
            engine = rare_engine(
                circuit,
                "mwpm",
                inflation=inflation,
                min_failure_weight=(key[0] + 1) // 2,
                workers=jobs,
            )
            engines[key] = engine
        return engine.run(shots, seed=seq)

    try:
        records = adaptive_shots(
            run_point,
            grid(distance=distances, p=ps),
            total_shots=total_shots,
            wave_shots=wave_shots,
            initial_shots=initial_shots,
            seed=seed,
        )
        for record in records:
            sampler = engines[(record["distance"], record["p"])].sampler
            record["inflation"] = float(sampler.inflation)
    finally:
        for engine in engines.values():
            engine.close()
    return ScenarioResult(
        scenario="memory_rare",
        records=tuple(records),
        metadata={
            "distances": list(distances),
            "ps": list(ps),
            "rounds": rounds,
            "total_shots": total_shots,
            "wave_shots": wave_shots,
            "initial_shots": initial_shots,
            "seed": seed,
            "inflation": inflation,
        },
    )


def _render_memory_rare(result: ScenarioResult) -> str:
    lines = [
        f"{'d':>3s} {'p':>8s} {'shots':>7s} {'waves':>5s} {'rate':>10s} "
        f"{'std_err':>9s} {'ess/n':>6s} {'s':>5s}"
    ]
    for r in result.records:
        ess_frac = r["ess"] / r["shots"] if r["shots"] else 0.0
        lines.append(
            f"{r['distance']:3d} {r['p']:8.1e} {r['shots']:7d} "
            f"{r['waves']:5d} {r['weighted_rate']:10.3e} "
            f"{r['std_error']:9.2e} {ess_frac:6.2f} {r['inflation']:5.2f}"
        )
    lines.append(
        "(importance-sampled; rate is the weighted estimate under the "
        "original model, s the proposal inflation)"
    )
    return "\n".join(lines)


def _lint_memory_rare():
    """Smallest-instance circuits the rare sweep samples, one per distance."""
    return {
        f"d{d}": memory_circuit(d, 2, max(DEFAULT_PS))
        for d in DEFAULT_DISTANCES
    }


register_scenario(Scenario(
    name="memory_rare",
    description="rare-event memory sweep: importance-sampled DEM shots with adaptive budget",
    build=_build_memory_rare,
    render=_render_memory_rare,
    order=112,
    in_all=False,
    lint_circuits=_lint_memory_rare,
))
