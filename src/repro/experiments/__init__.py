"""Generators for every table and figure of the paper's evaluation.

Importing this package registers every builtin scenario with
:mod:`repro.estimator.registry` (each driver module self-registers), which
is what drives the ``python -m repro`` CLI.
"""

from repro.experiments import (
    fig2,
    fig6,
    fig11,
    fig12,
    fig13,
    fig14,
    headline,
    noise_sweeps,
    rare_sweeps,
    tables,
)

__all__ = [
    "fig2",
    "fig6",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "headline",
    "noise_sweeps",
    "rare_sweeps",
    "tables",
]
