"""Generators for every table and figure of the paper's evaluation."""

from repro.experiments import fig2, fig6, fig11, fig12, fig13, fig14, tables

__all__ = ["fig2", "fig6", "fig11", "fig12", "fig13", "fig14", "tables"]
