"""Fig. 2: space-time comparison against lattice-surgery baselines.

Our transversal point vs Gidney-Ekera rescaled to 900 us QEC cycles at
several reaction times (the blue points) and the Beverland-et-al. estimate.
Headline shape: ~50x runtime reduction at comparable footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.algorithms.factoring import estimate_factoring
from repro.baselines.beverland import beverland_atom_estimate
from repro.baselines.gidney_ekera import ge_rescaled_to_atoms
from repro.core.params import ArchitectureConfig
from repro.estimator.registry import Scenario, ScenarioResult, register_scenario
from repro.estimator.sweep import grid, sweep

DEFAULT_GE_REACTION_TIMES = (1e-3, 3e-3, 10e-3, 30e-3)


@dataclass(frozen=True)
class Fig2Point:
    label: str
    megaqubits: float
    days: float

    @property
    def megaqubit_days(self) -> float:
        return self.megaqubits * self.days


def _ge_point(point: dict) -> dict:
    tr = point["reaction_time"]
    ge = ge_rescaled_to_atoms(reaction_time=tr)
    return {
        "label": f"GE19 @900us, tr={tr * 1e3:.0f}ms",
        "megaqubits": ge.megaqubits,
        "days": ge.runtime_days,
    }


def generate(
    config: ArchitectureConfig = ArchitectureConfig(),
    ge_reaction_times=DEFAULT_GE_REACTION_TIMES,
    jobs: int = 1,
) -> List[Fig2Point]:
    """All points of the comparison figure."""
    points: List[Fig2Point] = []
    ours = estimate_factoring(config=config)
    points.append(
        Fig2Point("transversal (this work)", ours.physical_qubits / 1e6,
                  ours.runtime_seconds / 86400.0)
    )
    for r in sweep(
        _ge_point, grid(reaction_time=tuple(ge_reaction_times)), jobs=jobs,
    ):
        points.append(Fig2Point(r["label"], r["megaqubits"], r["days"]))
    bev = beverland_atom_estimate()
    points.append(Fig2Point("Beverland et al.", bev.megaqubits, bev.runtime_days))
    return points


def speedup_vs_ge(config: ArchitectureConfig = ArchitectureConfig()) -> float:
    """Runtime ratio against the 10 ms-reaction GE19 point (paper: ~50x)."""
    ours = estimate_factoring(config=config)
    ge = ge_rescaled_to_atoms(reaction_time=10e-3)
    return ge.runtime_seconds / ours.runtime_seconds


def render(points: List[Fig2Point]) -> str:
    lines = [f"{'configuration':32s} {'Mqubits':>8s} {'days':>10s} {'Mq*days':>10s}"]
    for p in points:
        lines.append(
            f"{p.label:32s} {p.megaqubits:8.1f} {p.days:10.2f} {p.megaqubit_days:10.1f}"
        )
    return "\n".join(lines)


# -- scenario ------------------------------------------------------------------


def _build_fig2(jobs: int = 1) -> ScenarioResult:
    points = generate(jobs=jobs)
    return ScenarioResult(
        scenario="fig2",
        records=tuple(
            {"label": p.label, "megaqubits": p.megaqubits, "days": p.days}
            for p in points
        ),
        metadata={"speedup_vs_ge_10ms": speedup_vs_ge()},
    )


def _render_fig2(result: ScenarioResult) -> str:
    return render([
        Fig2Point(r["label"], r["megaqubits"], r["days"])
        for r in result.records
    ])


register_scenario(Scenario(
    name="fig2",
    description="space-time comparison vs lattice-surgery baselines (Fig. 2)",
    build=_build_fig2,
    render=_render_fig2,
    order=30,
))
