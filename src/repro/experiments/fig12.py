"""Fig. 12: space usage and logical-error contribution by component.

During lookup, the CNOT fan-out dominates space and error budget; during
addition, the magic-state factories dominate.  Both panels derive from the
factoring estimate's breakdowns.
"""

from __future__ import annotations

from typing import Dict

from repro.algorithms.factoring import (
    FactoringEstimate,
    FactoringParameters,
    estimate_factoring,
)
from repro.core.params import ArchitectureConfig
from repro.estimator.registry import Scenario, ScenarioResult, register_scenario


def generate(
    parameters: FactoringParameters = FactoringParameters(),
    config: ArchitectureConfig = ArchitectureConfig(),
) -> FactoringEstimate:
    return estimate_factoring(parameters, config)


def space_fractions(estimate: FactoringEstimate) -> Dict[str, Dict[str, float]]:
    """Per-phase fractional space usage."""
    out: Dict[str, Dict[str, float]] = {}
    for phase, parts in estimate.space_breakdown.items():
        total = sum(parts.values())
        out[phase] = {name: value / total for name, value in parts.items()}
    return out


def error_fractions(estimate: FactoringEstimate) -> Dict[str, float]:
    """Fractional logical-error contributions."""
    total = estimate.logical_error
    if total == 0:
        return {name: 0.0 for name in estimate.error_breakdown}
    return {
        name: value / total for name, value in estimate.error_breakdown.items()
    }


def _records_from_estimate(estimate: FactoringEstimate) -> list:
    """Flatten the breakdowns into records, largest contribution first."""
    records = []
    for phase, parts in estimate.space_breakdown.items():
        for name, value in sorted(parts.items(), key=lambda kv: -kv[1]):
            records.append({
                "kind": "space",
                "phase": phase,
                "component": name,
                "atoms": value,
            })
    for name, value in sorted(
        estimate.error_breakdown.items(), key=lambda kv: -kv[1]
    ):
        records.append({
            "kind": "error",
            "component": name,
            "probability": value,
        })
    return records


def _render_records(records) -> str:
    lines = ["space usage (million physical qubits):"]
    current_phase = None
    for r in records:
        if r["kind"] != "space":
            continue
        if r["phase"] != current_phase:
            current_phase = r["phase"]
            lines.append(f"  during {current_phase}:")
        lines.append(f"    {r['component']:16s} {r['atoms'] / 1e6:8.2f} M")
    lines.append("logical error contributions:")
    for r in records:
        if r["kind"] == "error":
            lines.append(f"    {r['component']:16s} {r['probability']:10.3e}")
    return "\n".join(lines)


def render(estimate: FactoringEstimate) -> str:
    return _render_records(_records_from_estimate(estimate))


# -- scenario ------------------------------------------------------------------


def _build_fig12(jobs: int = 1) -> ScenarioResult:
    estimate = generate()
    records = _records_from_estimate(estimate)
    return ScenarioResult(
        scenario="fig12",
        records=tuple(records),
        metadata={
            "physical_qubits": estimate.physical_qubits,
            "runtime_seconds": estimate.runtime_seconds,
            "logical_error": estimate.logical_error,
        },
    )


def _render_fig12(result: ScenarioResult) -> str:
    return _render_records(result.records)


register_scenario(Scenario(
    name="fig12",
    description="space usage and logical-error contribution by component (Fig. 12)",
    build=_build_fig12,
    render=_render_fig12,
    order=60,
))
