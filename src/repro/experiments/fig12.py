"""Fig. 12: space usage and logical-error contribution by component.

During lookup, the CNOT fan-out dominates space and error budget; during
addition, the magic-state factories dominate.  Both panels derive from the
factoring estimate's breakdowns.
"""

from __future__ import annotations

from typing import Dict

from repro.algorithms.factoring import (
    FactoringEstimate,
    FactoringParameters,
    estimate_factoring,
)
from repro.core.params import ArchitectureConfig


def generate(
    parameters: FactoringParameters = FactoringParameters(),
    config: ArchitectureConfig = ArchitectureConfig(),
) -> FactoringEstimate:
    return estimate_factoring(parameters, config)


def space_fractions(estimate: FactoringEstimate) -> Dict[str, Dict[str, float]]:
    """Per-phase fractional space usage."""
    out: Dict[str, Dict[str, float]] = {}
    for phase, parts in estimate.space_breakdown.items():
        total = sum(parts.values())
        out[phase] = {name: value / total for name, value in parts.items()}
    return out


def error_fractions(estimate: FactoringEstimate) -> Dict[str, float]:
    """Fractional logical-error contributions."""
    total = estimate.logical_error
    if total == 0:
        return {name: 0.0 for name in estimate.error_breakdown}
    return {
        name: value / total for name, value in estimate.error_breakdown.items()
    }


def render(estimate: FactoringEstimate) -> str:
    lines = ["space usage (million physical qubits):"]
    for phase, parts in estimate.space_breakdown.items():
        lines.append(f"  during {phase}:")
        for name, value in sorted(parts.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {name:16s} {value / 1e6:8.2f} M")
    lines.append("logical error contributions:")
    for name, value in sorted(
        estimate.error_breakdown.items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"    {name:16s} {value:10.3e}")
    return "\n".join(lines)
