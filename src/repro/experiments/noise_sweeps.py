"""Noise-model scenario sweeps: biased and movement-aware memory.

Two Monte-Carlo scenarios exposed through the scenario registry (and
therefore the ``python -m repro`` CLI and the HTTP service) that exercise
the pluggable noise layer end to end:

* ``memory_biased`` -- memory experiments under :class:`BiasedPauli` noise
  at several Z:X bias ratios.  Every bias point samples *one* syndrome
  table and decodes it with both the DEM-weighted MWPM and the
  uniform-weight baseline graph, so each record is a paired
  weighted-vs-uniform comparison: as the bias grows, the DEM reweighting
  is what keeps the matching metric aligned with the actual channel.
* ``memory_movement`` -- memory experiments under :class:`MovementAware`
  noise across coherence times: the AOD-validated per-round interleave
  move of :func:`repro.noise.models.transversal_move_schedule` is
  converted to idle error through :mod:`repro.core.idle`, tying the
  movement layer's physical durations to the sampled noise.

Both scenarios run small fixed-seed experiments by default (they sit on
the CLI smoke path); raise ``shots`` via ``--param`` for tighter rates.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.core.params import PhysicalParams
from repro.decoder.analysis import paired_failure_counts
from repro.decoder.engine import DecodingEngine
from repro.estimator.registry import Scenario, ScenarioResult, register_scenario
from repro.estimator.sweep import grid, sweep
from repro.noise.models import BiasedPauli, MovementAware
from repro.sim.memory import memory_circuit

DEFAULT_BIASES = (1.0, 4.0, 16.0)
DEFAULT_COHERENCE_TIMES = (0.05, 0.5, 10.0)


def _biased_point(point: dict, distance: int, rounds: int, p: float, shots: int, seed: int, basis: str) -> dict:
    """One bias value: paired weighted-vs-uniform decode of shared samples."""
    bias = point["bias"]
    # X-basis memory by default: the Z-heavy channel lands in the
    # detecting sector, so the weighted-vs-uniform gap stays visible as
    # the bias grows (a Z-basis memory trends to zero failures instead).
    circuit = memory_circuit(
        distance, rounds, p, basis=basis, noise=BiasedPauli(p, bias=bias)
    )
    out = paired_failure_counts(
        circuit,
        {"weighted": "mwpm", "uniform": "mwpm_uniform"},
        shots,
        seed=np.random.SeedSequence(seed),
    )
    return {
        "shots": shots,
        "failures_weighted": out["weighted"],
        "failures_uniform": out["uniform"],
        "rate_weighted": out["weighted"] / shots,
        "rate_uniform": out["uniform"] / shots,
    }


def _movement_point(point: dict, distance: int, rounds: int, p: float, shots: int, seed: int) -> dict:
    """One coherence time: movement-aware memory through the engine."""
    physical = PhysicalParams().rescaled(coherence_time=point["coherence_time"])
    model = MovementAware(p, physical=physical, distance=distance)
    circuit = memory_circuit(distance, rounds, p, noise=model)
    with DecodingEngine(circuit, "mwpm") as engine:
        res = engine.run(shots, seed=np.random.SeedSequence(seed))
    return {
        "move_duration_s": model.move_duration,
        "idle_p": model.idle_p,
        "shots": res.shots,
        "failures": res.failures,
        "rate": res.rate,
    }


def _build_memory_biased(
    jobs: int = 1,
    distance: int = 3,
    rounds: int = 2,
    p: float = 0.004,
    shots: int = 400,
    seed: int = 53,
    basis: str = "X",
) -> ScenarioResult:
    records = sweep(
        partial(
            _biased_point,
            distance=distance, rounds=rounds, p=p, shots=shots, seed=seed,
            basis=basis,
        ),
        grid(bias=DEFAULT_BIASES),
        jobs=jobs,
    )
    return ScenarioResult(
        scenario="memory_biased",
        records=tuple(records),
        metadata={
            "distance": distance, "rounds": rounds, "p": p, "seed": seed,
            "basis": basis,
        },
    )


def _render_memory_biased(result: ScenarioResult) -> str:
    lines = [
        f"{'bias':>6s} {'shots':>6s} {'weighted':>9s} {'uniform':>8s}"
    ]
    for r in result.records:
        lines.append(
            f"{r['bias']:6.1f} {r['shots']:6d} "
            f"{r['failures_weighted']:9d} {r['failures_uniform']:8d}"
        )
    lines.append("(failures per shared sample table; weighted = DEM-LLR MWPM)")
    return "\n".join(lines)


def _build_memory_movement(
    jobs: int = 1,
    distance: int = 3,
    rounds: int = 2,
    p: float = 0.002,
    shots: int = 400,
    seed: int = 59,
) -> ScenarioResult:
    records = sweep(
        partial(
            _movement_point,
            distance=distance, rounds=rounds, p=p, shots=shots, seed=seed,
        ),
        grid(coherence_time=DEFAULT_COHERENCE_TIMES),
        jobs=jobs,
    )
    return ScenarioResult(
        scenario="memory_movement",
        records=tuple(records),
        metadata={"distance": distance, "rounds": rounds, "p": p, "seed": seed},
    )


def _render_memory_movement(result: ScenarioResult) -> str:
    lines = [
        f"{'T_coh (s)':>10s} {'move (s)':>10s} {'idle p':>10s} {'failures':>9s} {'rate':>8s}"
    ]
    for r in result.records:
        lines.append(
            f"{r['coherence_time']:10.2f} {r['move_duration_s']:10.2e} "
            f"{r['idle_p']:10.2e} {r['failures']:9d} {r['rate']:8.4f}"
        )
    return "\n".join(lines)


def _lint_memory_biased():
    """Smallest-instance circuits the biased sweep decodes, one per bias."""
    return {
        f"bias{bias:g}": memory_circuit(
            3, 2, 0.004, basis="X", noise=BiasedPauli(0.004, bias=bias)
        )
        for bias in DEFAULT_BIASES
    }


def _lint_memory_movement():
    model = MovementAware(
        0.002,
        physical=PhysicalParams().rescaled(coherence_time=DEFAULT_COHERENCE_TIMES[0]),
        distance=3,
    )
    return {"movement": memory_circuit(3, 2, 0.002, noise=model)}


register_scenario(Scenario(
    name="memory_biased",
    description="memory logical error under biased Pauli noise: DEM-weighted vs uniform MWPM",
    build=_build_memory_biased,
    render=_render_memory_biased,
    order=110,
    in_all=False,
    lint_circuits=_lint_memory_biased,
))

register_scenario(Scenario(
    name="memory_movement",
    description="memory logical error under movement-aware noise vs coherence time",
    build=_build_memory_movement,
    render=_render_memory_movement,
    order=111,
    in_all=False,
    lint_circuits=_lint_memory_movement,
))
