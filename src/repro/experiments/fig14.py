"""Fig. 14: timescale sensitivities and the qubit/time trade-off.

(a) Volume vs atom-acceleration rescale, (b) QEC-round duration vs the
same, (c) volume vs reaction time (gains saturate on the fan-out-bound
lookup), (d) qubits-vs-days trade-off frontier at roughly constant volume
down to ~15 M qubits.

Each panel is a declarative sweep through
:mod:`repro.estimator.sweep`; the factoring sub-models are memoized across
panels, and ``jobs > 1`` shards any panel's grid with worker-invariant
results.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Sequence, Tuple

from repro.algorithms.factoring import FactoringParameters, estimate_factoring
from repro.core.movement import patch_move_time
from repro.core.params import ArchitectureConfig
from repro.core.timing import timing_model
from repro.estimator.registry import Scenario, ScenarioResult, register_scenario
from repro.estimator.sweep import grid, sweep

DEFAULT_RESCALES = (0.25, 0.5, 1.0, 2.0, 4.0)
DEFAULT_REACTION_TIMES = (0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3)
DEFAULT_RUNWAY_SEPARATIONS = (48, 64, 96, 192, 384, 768)


def _acceleration_point(point: dict, base: ArchitectureConfig) -> dict:
    physical = base.physical.rescaled(
        acceleration=base.physical.acceleration * point["rescale"]
    )
    est = estimate_factoring(config=base.rescaled(physical=physical))
    return {
        "volume_mq_days": est.physical_qubits * est.runtime_seconds / 86400.0 / 1e6
    }


def volume_vs_acceleration(
    rescales: Sequence[float] = DEFAULT_RESCALES,
    base: ArchitectureConfig = ArchitectureConfig(),
    jobs: int = 1,
) -> Dict[float, float]:
    """Space-time volume (Mq-days) vs acceleration multiplier."""
    records = sweep(
        partial(_acceleration_point, base=base),
        grid(rescale=tuple(rescales)),
        jobs=jobs,
    )
    return {r["rescale"]: r["volume_mq_days"] for r in records}


def _qec_round_point(point: dict, base: ArchitectureConfig, code_distance: int) -> dict:
    physical = base.physical.rescaled(
        acceleration=base.physical.acceleration * point["rescale"]
    )
    timing = timing_model(physical)
    active = 4 * (timing.se_move_time + physical.gate_time)
    return {"qec_round_s": patch_move_time(code_distance, physical) + active}


def qec_round_vs_acceleration(
    rescales: Sequence[float] = DEFAULT_RESCALES,
    base: ArchitectureConfig = ArchitectureConfig(),
    code_distance: int = 27,
    jobs: int = 1,
) -> Dict[float, float]:
    """Move-limited QEC-cycle duration vs acceleration (Fig. 14(b)).

    Ancilla measurement is pipelined against the next round's moves, so the
    plotted duration is the patch interleave move plus the four SE hops and
    pulses -- the part that actually shrinks with acceleration.
    """
    records = sweep(
        partial(_qec_round_point, base=base, code_distance=code_distance),
        grid(rescale=tuple(rescales)),
        jobs=jobs,
    )
    return {r["rescale"]: r["qec_round_s"] for r in records}


def _reaction_point(point: dict, base: ArchitectureConfig) -> dict:
    tr = point["reaction_time"]
    physical = base.physical.rescaled(
        measure_time=tr / 2.0, decode_time=tr / 2.0
    )
    est = estimate_factoring(config=base.rescaled(physical=physical))
    return {
        "volume_mq_days": est.physical_qubits * est.runtime_seconds / 86400.0 / 1e6
    }


def volume_vs_reaction_time(
    reaction_times: Sequence[float] = DEFAULT_REACTION_TIMES,
    base: ArchitectureConfig = ArchitectureConfig(),
    jobs: int = 1,
) -> Dict[float, float]:
    """Volume vs reaction time; decreasing t_r helps until fan-out binds."""
    records = sweep(
        partial(_reaction_point, base=base),
        grid(reaction_time=tuple(reaction_times)),
        jobs=jobs,
    )
    return {r["reaction_time"]: r["volume_mq_days"] for r in records}


def _tradeoff_point(point: dict, base: ArchitectureConfig) -> dict:
    params = FactoringParameters(runway_separation=point["runway_separation"])
    est = estimate_factoring(params, base)
    return {
        "megaqubits": est.physical_qubits / 1e6,
        "days": est.runtime_seconds / 86400.0,
    }


def qubit_time_tradeoff(
    runway_separations: Sequence[int] = DEFAULT_RUNWAY_SEPARATIONS,
    base: ArchitectureConfig = ArchitectureConfig(),
    jobs: int = 1,
) -> List[Tuple[float, float]]:
    """(Mqubits, days) frontier traced by the runway separation.

    Smaller separations buy speed with more segments/factories; larger
    ones shrink the machine at longer runtimes (Fig. 14(d)).
    """
    records = sweep(
        partial(_tradeoff_point, base=base),
        grid(runway_separation=tuple(runway_separations)),
        jobs=jobs,
    )
    return [(r["megaqubits"], r["days"]) for r in records]


# -- scenario ------------------------------------------------------------------


def _build_fig14(jobs: int = 1) -> ScenarioResult:
    base = ArchitectureConfig()
    accel = sweep(
        partial(_acceleration_point, base=base),
        grid(rescale=DEFAULT_RESCALES),
        jobs=jobs,
    )
    tradeoff = sweep(
        partial(_tradeoff_point, base=base),
        grid(runway_separation=DEFAULT_RUNWAY_SEPARATIONS),
        jobs=jobs,
    )
    records = tuple(
        [{"kind": "acceleration", **r} for r in accel]
        + [{"kind": "tradeoff", **r} for r in tradeoff]
    )
    return ScenarioResult(scenario="fig14", records=records, metadata={})


def _render_fig14(result: ScenarioResult) -> str:
    lines = []
    accel = {
        r["rescale"]: r["volume_mq_days"]
        for r in result.records
        if r["kind"] == "acceleration"
    }
    for factor, vol in sorted(accel.items()):
        lines.append(f"  a x {factor:4.2f}: {vol:8.1f} Mq*days")
    for r in result.records:
        if r["kind"] == "tradeoff":
            lines.append(f"  {r['megaqubits']:6.1f} Mq -> {r['days']:6.2f} days")
    return "\n".join(lines)


register_scenario(Scenario(
    name="fig14",
    description="timescale sensitivities and the qubit/time trade-off (Fig. 14)",
    build=_build_fig14,
    render=_render_fig14,
    order=80,
))
