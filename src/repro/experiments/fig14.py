"""Fig. 14: timescale sensitivities and the qubit/time trade-off.

(a) Volume vs atom-acceleration rescale, (b) QEC-round duration vs the
same, (c) volume vs reaction time (gains saturate on the fan-out-bound
lookup), (d) qubits-vs-days trade-off frontier at roughly constant volume
down to ~15 M qubits.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.algorithms.factoring import FactoringParameters, estimate_factoring
from repro.core.params import ArchitectureConfig
from repro.core.timing import TimingModel


def volume_vs_acceleration(
    rescales: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    base: ArchitectureConfig = ArchitectureConfig(),
) -> Dict[float, float]:
    """Space-time volume (Mq-days) vs acceleration multiplier."""
    out: Dict[float, float] = {}
    for factor in rescales:
        physical = base.physical.rescaled(
            acceleration=base.physical.acceleration * factor
        )
        est = estimate_factoring(config=base.rescaled(physical=physical))
        out[factor] = est.physical_qubits * est.runtime_seconds / 86400.0 / 1e6
    return out


def qec_round_vs_acceleration(
    rescales: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    base: ArchitectureConfig = ArchitectureConfig(),
    code_distance: int = 27,
) -> Dict[float, float]:
    """Move-limited QEC-cycle duration vs acceleration (Fig. 14(b)).

    Ancilla measurement is pipelined against the next round's moves, so the
    plotted duration is the patch interleave move plus the four SE hops and
    pulses -- the part that actually shrinks with acceleration.
    """
    out: Dict[float, float] = {}
    for factor in rescales:
        physical = base.physical.rescaled(
            acceleration=base.physical.acceleration * factor
        )
        timing = TimingModel(physical)
        from repro.core.movement import patch_move_time

        active = 4 * (timing.se_move_time + physical.gate_time)
        out[factor] = patch_move_time(code_distance, physical) + active
    return out


def volume_vs_reaction_time(
    reaction_times: Sequence[float] = (0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3),
    base: ArchitectureConfig = ArchitectureConfig(),
) -> Dict[float, float]:
    """Volume vs reaction time; decreasing t_r helps until fan-out binds."""
    out: Dict[float, float] = {}
    for tr in reaction_times:
        physical = base.physical.rescaled(
            measure_time=tr / 2.0, decode_time=tr / 2.0
        )
        est = estimate_factoring(config=base.rescaled(physical=physical))
        out[tr] = est.physical_qubits * est.runtime_seconds / 86400.0 / 1e6
    return out


def qubit_time_tradeoff(
    runway_separations: Sequence[int] = (48, 64, 96, 192, 384, 768),
    base: ArchitectureConfig = ArchitectureConfig(),
) -> List[Tuple[float, float]]:
    """(Mqubits, days) frontier traced by the runway separation.

    Smaller separations buy speed with more segments/factories; larger
    ones shrink the machine at longer runtimes (Fig. 14(d)).
    """
    points: List[Tuple[float, float]] = []
    for r_sep in runway_separations:
        params = FactoringParameters(runway_separation=r_sep)
        est = estimate_factoring(params, base)
        points.append(
            (est.physical_qubits / 1e6, est.runtime_seconds / 86400.0)
        )
    return points
