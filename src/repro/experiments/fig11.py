"""Fig. 11: SE-frequency optimization for factories and idle storage.

(a,b) Space-time volume of the 8T-to-CCZ factory against the number of SE
rounds per transversal gate, for alpha = 1/6 (0.86% one-round threshold)
and alpha = 1/2 (0.67%); the optimum sits at <= 1 round per gate.
(c,d) Idle-storage SE-period sweep: volume-per-target vs period for
several distances, and the error-rate curves showing the optimum where
idle error is comparable to gate error.

All curves run through the estimation pipeline's sweep engine
(:mod:`repro.estimator.sweep`): grid points share the memoized
distance-search and factory-cycle sub-models, and ``jobs > 1`` shards the
grid across worker processes with worker-invariant results.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Dict, Sequence

from repro.core.idle import storage_error_rate
from repro.core.logical_error import required_distance
from repro.core.params import ErrorParams, PhysicalParams
from repro.core.timing import timing_model
from repro.estimator.registry import Scenario, ScenarioResult, register_scenario
from repro.estimator.sweep import grid, sweep
from repro.factory.cultivation import CultivationModel
from repro.factory.layout import FactoryLayout

FACTORY_ALPHAS = (1.0 / 6.0, 1.0 / 2.0)
DEFAULT_SE_ROUNDS = (0.25, 0.5, 1.0, 2.0, 4.0)


def _factory_point(
    point: dict, target_ccz_error: float, physical: PhysicalParams
) -> dict:
    """Factory qubit-seconds per CCZ at one (alpha, SE-rounds) grid point."""
    error = ErrorParams(alpha=point["alpha"])
    rounds = point["se_rounds"]
    x = 1.0 / rounds
    # ~30 logical CNOT-qubit steps of Clifford inside the factory must
    # sit well under the CCZ target.
    distance = required_distance(target_ccz_error / 30.0, error, x)
    layout = FactoryLayout(distance, physical)
    cultivation = CultivationModel(7.7e-7, distance)
    stage = layout.cnot_stage_time() * rounds + layout.measurement_time()
    cycle = max(stage, 8.0 * cultivation.expected_time(
        timing_model(physical).se_round_time) / max(
            cultivation.copies_in_row(), 1))
    return {
        "volume_qubit_seconds": layout.num_atoms * cycle,
        "code_distance": distance,
    }


def factory_volume_vs_se_rounds(
    alpha: float,
    se_rounds: Sequence[float] = DEFAULT_SE_ROUNDS,
    target_ccz_error: float = 1.6e-11,
    physical: PhysicalParams = PhysicalParams(),
    jobs: int = 1,
) -> Dict[float, float]:
    """Factory qubit-seconds per CCZ vs SE rounds per gate (Fig. 11(a,b)).

    For each SE frequency the factory code distance is re-chosen so the
    Clifford error of the distillation round stays below the CCZ target,
    then footprint x cycle time is charged.
    """
    records = sweep(
        partial(
            _factory_point,
            target_ccz_error=target_ccz_error,
            physical=physical,
        ),
        grid(alpha=(alpha,), se_rounds=tuple(se_rounds)),
        jobs=jobs,
    )
    return {r["se_rounds"]: r["volume_qubit_seconds"] for r in records}


def _idle_volume_point(
    point: dict,
    error: ErrorParams,
    physical: PhysicalParams,
    max_distance: int,
    t_round: float,
) -> dict:
    """Relative storage volume at one (rate-target, period) grid point."""
    target = point["rate_target"]
    period = point["period"]
    distance = None
    for d in range(3, max_distance + 1, 2):
        if storage_error_rate(d, period, error, physical) <= target:
            distance = d
            break
    if distance is None:
        return {"volume": math.inf, "code_distance": None}
    return {
        "volume": distance**2 * (1.0 + t_round / period),
        "code_distance": distance,
    }


def idle_volume_vs_period(
    rate_targets: Sequence[float] = (1e-11, 1e-13, 1e-15),
    periods: Sequence[float] | None = None,
    error: ErrorParams = ErrorParams(),
    physical: PhysicalParams = PhysicalParams(),
    max_distance: int = 201,
    jobs: int = 1,
) -> Dict[float, Dict[float, float]]:
    """Relative storage volume vs SE period (Fig. 11(c)).

    For each period, the smallest distance meeting the per-qubit-per-second
    error target is chosen; the stored qubit then costs d^2 data atoms plus
    the ancilla visits amortized over the period (measurement pipelined):

        volume(dt) ~ d(dt)^2 * (1 + t_round / dt)

    Sparse SE inflates d (idle errors), dense SE inflates the ancilla
    share; the optimum location barely moves across the target families
    (the paper's distance curves).
    """
    if periods is None:
        periods = [10 ** (-3.5 + 2.5 * i / 39) for i in range(40)]
    t_round = timing_model(physical).se_round_time
    records = sweep(
        partial(
            _idle_volume_point,
            error=error,
            physical=physical,
            max_distance=max_distance,
            t_round=t_round,
        ),
        grid(rate_target=tuple(rate_targets), period=tuple(periods)),
        jobs=jobs,
    )
    out: Dict[float, Dict[float, float]] = {t: {} for t in rate_targets}
    for r in records:
        out[r["rate_target"]][r["period"]] = r["volume"]
    return out


def _idle_error_point(point: dict, distance: int, physical: PhysicalParams) -> dict:
    error = ErrorParams(p_phys=point["gate_error"])
    return {
        "rate": storage_error_rate(distance, point["period"], error, physical)
    }


def idle_error_vs_period(
    distance: int = 27,
    gate_error_rates: Sequence[float] = (5e-4, 1e-3, 2e-3),
    periods: Sequence[float] | None = None,
    physical: PhysicalParams = PhysicalParams(),
    jobs: int = 1,
) -> Dict[float, Dict[float, float]]:
    """Error-rate curves for different gate-error rates (Fig. 11(d))."""
    if periods is None:
        periods = [10 ** (-4 + 3 * i / 39) for i in range(40)]
    records = sweep(
        partial(_idle_error_point, distance=distance, physical=physical),
        grid(gate_error=tuple(gate_error_rates), period=tuple(periods)),
        jobs=jobs,
    )
    out: Dict[float, Dict[float, float]] = {p: {} for p in gate_error_rates}
    for r in records:
        out[r["gate_error"]][r["period"]] = r["rate"]
    return out


def optimal_period_of_curve(curve: Dict[float, float]) -> float:
    """Argmin helper for the sweep outputs."""
    return min(curve, key=lambda period: curve[period])


# -- scenarios -----------------------------------------------------------------


def _build_fig11(
    jobs: int = 1,
    target_ccz_error: float = 1.6e-11,
) -> ScenarioResult:
    records = sweep(
        partial(
            _factory_point,
            target_ccz_error=target_ccz_error,
            physical=PhysicalParams(),
        ),
        grid(alpha=FACTORY_ALPHAS, se_rounds=DEFAULT_SE_ROUNDS),
        jobs=jobs,
    )
    return ScenarioResult(
        scenario="fig11",
        records=tuple(records),
        metadata={"target_ccz_error": target_ccz_error},
    )


def _render_fig11(result: ScenarioResult) -> str:
    lines = []
    for alpha in sorted({r["alpha"] for r in result.records}, reverse=False):
        lines.append(f"alpha = {alpha:.3f}:")
        curve = {
            r["se_rounds"]: r["volume_qubit_seconds"]
            for r in result.records
            if r["alpha"] == alpha
        }
        for rounds, vol in sorted(curve.items()):
            lines.append(f"  {rounds:5.2f} SE rounds/gate -> {vol:10.1f} qubit*s")
    return "\n".join(lines)


def _build_fig11_idle(
    jobs: int = 1,
    max_distance: int = 201,
) -> ScenarioResult:
    curves = idle_volume_vs_period(max_distance=max_distance, jobs=jobs)
    records = [
        {"rate_target": target, "period": period, "volume": volume}
        for target, curve in curves.items()
        for period, volume in curve.items()
    ]
    optima = {
        target: optimal_period_of_curve(curve)
        for target, curve in curves.items()
    }
    return ScenarioResult(
        scenario="fig11_idle",
        records=tuple(records),
        metadata={"optimal_period_s": optima},
    )


def _render_fig11_idle(result: ScenarioResult) -> str:
    lines = []
    for target, period in sorted(
        result.metadata["optimal_period_s"].items(), reverse=True
    ):
        lines.append(
            f"  rate target {target:.0e}: optimal SE period = "
            f"{period * 1e3:.2f} ms"
        )
    return "\n".join(lines)


register_scenario(Scenario(
    name="fig11",
    description="factory space-time volume vs SE rounds per gate (Fig. 11(a,b))",
    build=_build_fig11,
    render=_render_fig11,
    order=50,
))

register_scenario(Scenario(
    name="fig11_idle",
    description="idle-storage SE-period optimization (Fig. 11(c))",
    build=_build_fig11_idle,
    render=_render_fig11_idle,
    in_all=False,
))
