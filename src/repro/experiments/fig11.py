"""Fig. 11: SE-frequency optimization for factories and idle storage.

(a,b) Space-time volume of the 8T-to-CCZ factory against the number of SE
rounds per transversal gate, for alpha = 1/6 (0.86% one-round threshold)
and alpha = 1/2 (0.67%); the optimum sits at <= 1 round per gate.
(c,d) Idle-storage SE-period sweep: volume-per-target vs period for
several distances, and the error-rate curves showing the optimum where
idle error is comparable to gate error.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.core.idle import idle_error_per_period, storage_error_rate
from repro.core.logical_error import required_distance
from repro.core.params import ErrorParams, PhysicalParams
from repro.core.timing import TimingModel
from repro.factory.cultivation import CultivationModel
from repro.factory.layout import FactoryLayout


def factory_volume_vs_se_rounds(
    alpha: float,
    se_rounds: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    target_ccz_error: float = 1.6e-11,
    physical: PhysicalParams = PhysicalParams(),
) -> Dict[float, float]:
    """Factory qubit-seconds per CCZ vs SE rounds per gate (Fig. 11(a,b)).

    For each SE frequency the factory code distance is re-chosen so the
    Clifford error of the distillation round stays below the CCZ target,
    then footprint x cycle time is charged.
    """
    error = ErrorParams(alpha=alpha)
    out: Dict[float, float] = {}
    for rounds in se_rounds:
        x = 1.0 / rounds
        # ~30 logical CNOT-qubit steps of Clifford inside the factory must
        # sit well under the CCZ target.
        distance = required_distance(target_ccz_error / 30.0, error, x)
        layout = FactoryLayout(distance, physical)
        cultivation = CultivationModel(7.7e-7, distance)
        stage = layout.cnot_stage_time() * rounds + layout.measurement_time()
        cycle = max(stage, 8.0 * cultivation.expected_time(
            TimingModel(physical).se_round_time) / max(
                cultivation.copies_in_row(), 1))
        out[rounds] = layout.num_atoms * cycle
    return out


def idle_volume_vs_period(
    rate_targets: Sequence[float] = (1e-11, 1e-13, 1e-15),
    periods: Sequence[float] | None = None,
    error: ErrorParams = ErrorParams(),
    physical: PhysicalParams = PhysicalParams(),
    max_distance: int = 201,
) -> Dict[float, Dict[float, float]]:
    """Relative storage volume vs SE period (Fig. 11(c)).

    For each period, the smallest distance meeting the per-qubit-per-second
    error target is chosen; the stored qubit then costs d^2 data atoms plus
    the ancilla visits amortized over the period (measurement pipelined):

        volume(dt) ~ d(dt)^2 * (1 + t_round / dt)

    Sparse SE inflates d (idle errors), dense SE inflates the ancilla
    share; the optimum location barely moves across the target families
    (the paper's distance curves).
    """
    from repro.core.timing import TimingModel

    if periods is None:
        periods = [10 ** (-3.5 + 2.5 * i / 39) for i in range(40)]
    t_round = TimingModel(physical).se_round_time
    out: Dict[float, Dict[float, float]] = {}
    for target in rate_targets:
        curve: Dict[float, float] = {}
        for period in periods:
            distance = None
            for d in range(3, max_distance + 1, 2):
                if storage_error_rate(d, period, error, physical) <= target:
                    distance = d
                    break
            if distance is None:
                curve[period] = math.inf
                continue
            curve[period] = distance**2 * (1.0 + t_round / period)
        out[target] = curve
    return out


def idle_error_vs_period(
    distance: int = 27,
    gate_error_rates: Sequence[float] = (5e-4, 1e-3, 2e-3),
    periods: Sequence[float] | None = None,
    physical: PhysicalParams = PhysicalParams(),
) -> Dict[float, Dict[float, float]]:
    """Error-rate curves for different gate-error rates (Fig. 11(d))."""
    if periods is None:
        periods = [10 ** (-4 + 3 * i / 39) for i in range(40)]
    out: Dict[float, Dict[float, float]] = {}
    for p_gate in gate_error_rates:
        error = ErrorParams(p_phys=p_gate)
        curve = {
            period: storage_error_rate(distance, period, error, physical)
            for period in periods
        }
        out[p_gate] = curve
    return out


def optimal_period_of_curve(curve: Dict[float, float]) -> float:
    """Argmin helper for the sweep outputs."""
    return min(curve, key=lambda period: curve[period])
