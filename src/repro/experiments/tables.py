"""Tables I and II of the paper."""

from __future__ import annotations

from typing import Dict

from repro.algorithms.optimizer import (
    optimize_factoring,
    table_ii,
    table_ii_columns,
)
from repro.core.params import ArchitectureConfig, PhysicalParams
from repro.estimator.registry import Scenario, ScenarioResult, register_scenario


def table_i(physical: PhysicalParams = PhysicalParams()) -> Dict[str, float]:
    """Table I: platform parameters (inputs, echoed for the record)."""
    return {
        "site_spacing_um": physical.site_spacing * 1e6,
        "acceleration_m_s2": physical.acceleration,
        "gate_time_us": physical.gate_time * 1e6,
        "measure_time_us": physical.measure_time * 1e6,
        "decode_time_us": physical.decode_time * 1e6,
    }


def table_ii_rows(config: ArchitectureConfig = ArchitectureConfig()) -> Dict[str, Dict[str, float]]:
    """Table II: optimized parameters, ours vs Ref. [8]."""
    return table_ii(config)


def render_table_ii(rows: Dict[str, Dict[str, float]]) -> str:
    if not rows:
        return "(table II: no rows)"
    params = list(next(iter(rows.values())).keys())
    lines = [f"{'parameter':22s} " + " ".join(f"{name:>14s}" for name in rows)]
    for param in params:
        cells = " ".join(f"{rows[name][param]:14g}" for name in rows)
        lines.append(f"{param:22s} {cells}")
    return "\n".join(lines)


# -- scenarios -----------------------------------------------------------------


def _build_table1(jobs: int = 1) -> ScenarioResult:
    values = table_i()
    return ScenarioResult(
        scenario="table1",
        records=tuple(
            {"parameter": key, "value": value} for key, value in values.items()
        ),
        metadata={},
    )


def _render_table1(result: ScenarioResult) -> str:
    return "\n".join(
        f"  {r['parameter']:20s} {r['value']:10.1f}" for r in result.records
    )


def _build_table2(jobs: int = 1) -> ScenarioResult:
    # The optimizer's sweep is serial branch-and-bound (pruning needs the
    # ordered best-so-far), so `jobs` is accepted for CLI uniformity only.
    result = optimize_factoring()
    rows = table_ii_columns(result.parameters)
    records = tuple(
        {"column": column, **values} for column, values in rows.items()
    )
    return ScenarioResult(
        scenario="table2",
        records=records,
        metadata={
            "spacetime_volume": result.spacetime_volume,
            "grid_points_evaluated": len(result.trace),
            "grid_points_pruned": result.num_pruned,
        },
    )


def _render_table2(result: ScenarioResult) -> str:
    rows = {
        r["column"]: {k: v for k, v in r.items() if k != "column"}
        for r in result.records
    }
    return render_table_ii(rows)


register_scenario(Scenario(
    name="table1",
    description="platform parameters of the neutral-atom array (Table I)",
    build=_build_table1,
    render=_render_table1,
    order=10,
))

register_scenario(Scenario(
    name="table2",
    description="optimized algorithm parameters vs Ref. [8] (Table II)",
    build=_build_table2,
    render=_render_table2,
    order=20,
))
