"""Tables I and II of the paper."""

from __future__ import annotations

from typing import Dict

from repro.algorithms.optimizer import table_ii
from repro.core.params import ArchitectureConfig, PhysicalParams


def table_i(physical: PhysicalParams = PhysicalParams()) -> Dict[str, float]:
    """Table I: platform parameters (inputs, echoed for the record)."""
    return {
        "site_spacing_um": physical.site_spacing * 1e6,
        "acceleration_m_s2": physical.acceleration,
        "gate_time_us": physical.gate_time * 1e6,
        "measure_time_us": physical.measure_time * 1e6,
        "decode_time_us": physical.decode_time * 1e6,
    }


def table_ii_rows(config: ArchitectureConfig = ArchitectureConfig()) -> Dict[str, Dict[str, float]]:
    """Table II: optimized parameters, ours vs Ref. [8]."""
    return table_ii(config)


def render_table_ii(rows: Dict[str, Dict[str, float]]) -> str:
    params = list(next(iter(rows.values())).keys())
    lines = [f"{'parameter':22s} " + " ".join(f"{name:>14s}" for name in rows)]
    for param in params:
        cells = " ".join(f"{rows[name][param]:14g}" for name in rows)
        lines.append(f"{param:22s} {cells}")
    return "\n".join(lines)
