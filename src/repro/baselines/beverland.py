"""Beverland-et-al.-style estimate (paper Ref. [9]).

"Assessing requirements to scale to practical quantum advantage" runs the
logical algorithm essentially sequentially: each logical time-step costs a
full lattice-surgery round of d QEC cycles, and the T/Toffoli stream sets
the length.  At 100 us gate/measurement times this extrapolates to years
for 2048-bit factoring, which is the paper's second comparison point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.volume import ResourceEstimate


@dataclass(frozen=True)
class BeverlandModel:
    """Sequential lattice-surgery estimator in the style of Ref. [9]."""

    modulus_bits: int = 2048
    cycle_time: float = 100e-6  # Ref. [9] assumes 100 us operations
    code_distance: int = 27
    toffoli_count: float = 3e9  # matched to the same windowed compilation
    # Logical time-steps per Toffoli in the sequential schedule (surgery
    # choreography + T teleportation), calibrated so the 100 us operating
    # point lands in the multi-year regime Ref. [9] reports.
    depth_per_toffoli: float = 10.0

    @property
    def logical_timestep(self) -> float:
        """One logical operation: d cycles of syndrome extraction."""
        return self.code_distance * self.cycle_time

    @property
    def runtime_seconds(self) -> float:
        """Sequential Toffoli stream, several time-steps per Toffoli."""
        return self.toffoli_count * self.depth_per_toffoli * self.logical_timestep

    @property
    def physical_qubits(self) -> float:
        """Algorithm qubits + factories, ~2 (3n) d^2 + factory share."""
        n = self.modulus_bits
        logical = 3 * n + 0.002 * n * math.log2(n)
        factories = 0.3 * logical  # Ref. [9]'s ~25-30% factory share
        return 2.0 * (logical + factories) * self.code_distance**2

    def estimate(self) -> ResourceEstimate:
        return ResourceEstimate(
            physical_qubits=self.physical_qubits,
            runtime_seconds=self.runtime_seconds,
            metadata={"logical_timestep": self.logical_timestep},
        )


def beverland_atom_estimate() -> ResourceEstimate:
    """The ~years-scale neutral-atom point quoted in the paper's intro."""
    return BeverlandModel().estimate()
