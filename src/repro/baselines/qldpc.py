"""Hybrid qLDPC dense-storage variant (paper Sec. IV.3.4).

Logical gates stay on surface codes; idle registers are packed into a
high-rate qLDPC memory with ~10x denser encoding [23-25, 30].  Only the
idling fraction of the footprint compresses, so the paper expects a ~20%
footprint reduction when 4-6 M of ~19 M qubits are idle storage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.volume import ResourceEstimate

DEFAULT_COMPRESSION = 10.0


@dataclass(frozen=True)
class QLDPCStorageModel:
    """Applies dense-storage compression to an existing estimate."""

    compression: float = DEFAULT_COMPRESSION

    def __post_init__(self) -> None:
        if self.compression < 1:
            raise ValueError("compression must be >= 1")

    def apply(self, estimate: ResourceEstimate, idle_qubits: float) -> ResourceEstimate:
        """Compress the idle-storage share of the footprint.

        Args:
            estimate: the surface-code-only estimate.
            idle_qubits: physical qubits idling in storage (compressible).
        """
        if idle_qubits < 0 or idle_qubits > estimate.physical_qubits:
            raise ValueError("idle_qubits out of range")
        saved = idle_qubits * (1.0 - 1.0 / self.compression)
        return ResourceEstimate(
            physical_qubits=estimate.physical_qubits - saved,
            runtime_seconds=estimate.runtime_seconds,
            breakdown=dict(estimate.breakdown),
            logical_error=estimate.logical_error,
            metadata={**dict(estimate.metadata), "qldpc_saved_qubits": saved},
        )

    def footprint_reduction(self, estimate: ResourceEstimate, idle_qubits: float) -> float:
        """Fractional footprint saving (paper expects ~0.2)."""
        compressed = self.apply(estimate, idle_qubits)
        return 1.0 - compressed.physical_qubits / estimate.physical_qubits
