"""Lattice-surgery baselines and the qLDPC storage variant."""

from repro.baselines.beverland import BeverlandModel, beverland_atom_estimate
from repro.baselines.gidney_ekera import (
    GidneyEkeraModel,
    ge_rescaled_to_atoms,
    ge_superconducting_headline,
)
from repro.baselines.qldpc import QLDPCStorageModel

__all__ = [
    "BeverlandModel",
    "GidneyEkeraModel",
    "QLDPCStorageModel",
    "beverland_atom_estimate",
    "ge_rescaled_to_atoms",
    "ge_superconducting_headline",
]
