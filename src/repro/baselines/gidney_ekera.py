"""Gidney-Ekera-style lattice-surgery factoring estimate (paper Ref. [8]).

Re-implements the cost structure of "How to factor 2048 bit RSA integers
in 8 hours using 20 million noisy qubits", parameterized by QEC cycle time
and reaction time so it can be rescaled to neutral-atom timescales
(900 us cycles) exactly as the paper does for Fig. 2.  The model is
calibrated to reproduce the published headline (~20 M qubits, ~8 h at a
1 us cycle and 10 us reaction) and then evaluated at other timescales.

Cost structure (windowed arithmetic, lattice surgery, CCZ factories):

* lookup-additions: 2 * (n_e / w_e) * (n / w_m);
* each addition ripples 2 * (r_sep + r_pad) Toffoli steps, each lookup
  2^(w_e + w_m) steps; Toffoli steps are reaction-limited, but a lattice
  surgery Toffoli also needs ~d cycles of surgery, whichever is slower;
* space: 2 * (3 n + 0.002 n lg n) * d^2 physical qubits (Ref. [8] Sec. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.volume import ResourceEstimate

# Parameter choices published in Ref. [8] for 2048-bit RSA.
GE_WINDOW_EXP = 5
GE_WINDOW_MUL = 5
GE_RUNWAY_SEPARATION = 1024
GE_RUNWAY_PADDING = 43
GE_CODE_DISTANCE = 27


@dataclass(frozen=True)
class GidneyEkeraModel:
    """Lattice-surgery estimator at configurable timescales."""

    modulus_bits: int = 2048
    cycle_time: float = 1e-6
    reaction_time: float = 10e-6
    code_distance: int = GE_CODE_DISTANCE
    window_exp: int = GE_WINDOW_EXP
    window_mul: int = GE_WINDOW_MUL
    runway_separation: int = GE_RUNWAY_SEPARATION
    runway_padding: int = GE_RUNWAY_PADDING
    # Routing + factory footprint multiplier over the bare register board,
    # calibrated so the 1 us / 10 us point reproduces the published 20 M
    # qubits (Ref. [8] Fig. 1).
    layout_overhead: float = 2.2

    @property
    def exponent_bits(self) -> int:
        """Ekera-Hastad exponent: ~1.5 n."""
        return (3 * self.modulus_bits) // 2

    @property
    def num_lookup_additions(self) -> float:
        return (
            2.0
            * math.ceil(self.exponent_bits / self.window_exp)
            * math.ceil(self.modulus_bits / self.window_mul)
        )

    @property
    def toffoli_step_time(self) -> float:
        """Per dependent Toffoli: reaction-limited or surgery-limited.

        A lattice-surgery Toffoli occupies d cycles of surgery; the
        sequential ripple advances at the max of that and the reaction.
        """
        surgery = self.code_distance * self.cycle_time
        return max(self.reaction_time, surgery)

    @property
    def addition_time(self) -> float:
        segment = min(self.runway_separation, self.modulus_bits) + self.runway_padding
        return 2 * segment * self.toffoli_step_time

    @property
    def lookup_time(self) -> float:
        return 2 ** (self.window_exp + self.window_mul) * self.toffoli_step_time

    @property
    def runtime_seconds(self) -> float:
        return self.num_lookup_additions * (self.addition_time + self.lookup_time)

    @property
    def physical_qubits(self) -> float:
        """Ref. [8]'s board footprint: ~2 (3n + 0.002 n lg n) d^2."""
        n = self.modulus_bits
        logical = 3 * n + 0.002 * n * math.log2(n)
        return self.layout_overhead * 2.0 * logical * self.code_distance**2

    def estimate(self) -> ResourceEstimate:
        return ResourceEstimate(
            physical_qubits=self.physical_qubits,
            runtime_seconds=self.runtime_seconds,
            breakdown={"board": self.physical_qubits * self.runtime_seconds},
            metadata={
                "lookup_additions": self.num_lookup_additions,
                "toffoli_step_time": self.toffoli_step_time,
            },
        )


def ge_superconducting_headline() -> ResourceEstimate:
    """The published operating point: 1 us cycle, 10 us reaction."""
    return GidneyEkeraModel().estimate()


def ge_rescaled_to_atoms(reaction_time: float = 10e-3, cycle_time: float = 900e-6) -> ResourceEstimate:
    """Ref. [8] rescaled to neutral-atom lattice-surgery timescales.

    The paper uses a 900 us QEC cycle (no ancilla-measurement pipelining in
    lattice surgery) and sweeps the reaction time for the blue points of
    Fig. 2.
    """
    return GidneyEkeraModel(cycle_time=cycle_time, reaction_time=reaction_time).estimate()
