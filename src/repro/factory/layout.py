"""Factory footprint and cycle timing (paper Fig. 8(c,d)).

The combined factory occupies a 12d x 3d tile region: the top rows hold the
four CNOT-stage logical columns (outputs + [[8,3,2]] block patches laid out
1-D so no re-ordering moves are needed), and the bottom 12d x 1d row hosts
eight cultivation copies feeding |T> states upward.  The CNOT stage runs
its four layers at the transversal-gate cadence while the next batch of
|T> states grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atoms.geometry import Region
from repro.core.params import PhysicalParams
from repro.core.timing import timing_model
from repro.factory.cultivation import CultivationModel
from repro.factory.t_to_ccz import factory_cnot_layers

FACTORY_TILES_WIDE = 12
FACTORY_TILES_TALL = 3
CULTIVATION_ROW_TILES = 12
FACTORY_LOGICAL_PATCHES = 12  # 3 outputs + 8 block qubits + 1 staging


@dataclass(frozen=True)
class FactoryLayout:
    """Geometry and timing of one 8T-to-CCZ factory at distance d."""

    code_distance: int
    physical: PhysicalParams = PhysicalParams()

    @property
    def region(self) -> Region:
        """Site footprint: 12d wide, 3d tall plus the cultivation row."""
        d = self.code_distance
        return Region(0, 0, (FACTORY_TILES_TALL + 1) * d, FACTORY_TILES_WIDE * d)

    @property
    def num_atoms(self) -> int:
        """Atoms: 12 active patches (2d^2 - 1 each) + cultivation row."""
        d = self.code_distance
        patches = FACTORY_LOGICAL_PATCHES * (2 * d * d - 1)
        cultivation_row = CULTIVATION_ROW_TILES * d * d
        return patches + cultivation_row

    @property
    def num_cnot_layers(self) -> int:
        return len(factory_cnot_layers())

    def cnot_stage_time(self) -> float:
        """Four transversal CNOT layers at the logical-gate cadence."""
        timing = timing_model(self.physical)
        return self.num_cnot_layers * timing.logical_gate_time(self.code_distance)

    def measurement_time(self) -> float:
        """Block X measurement + decode feed-forward: one reaction time."""
        return self.physical.reaction_time

    def cycle_time(self, cultivation: CultivationModel) -> float:
        """Period between |CCZ> outputs of one factory.

        Cultivation runs concurrently in the bottom row; the cycle is the
        slower of (CNOT stage + teleportation/measurement) and the rate at
        which eight fresh |T> states are cultivated.
        """
        stage = self.cnot_stage_time() + self.measurement_time()
        round_time = timing_model(self.physical).se_round_time
        copies = max(cultivation.copies_in_row(CULTIVATION_ROW_TILES), 1)
        t_rate_limited = 8.0 * cultivation.expected_time(round_time) / copies
        return max(stage, t_rate_limited)

    def throughput(self, cultivation: CultivationModel) -> float:
        """|CCZ> states per second from one factory."""
        return 1.0 / self.cycle_time(cultivation)
