"""Magic-state cultivation cost model (paper Sec. III.6, Ref. [97]).

Cultivation grows a |T> state from a small colour code into a surface code
with in-place checks and post-selection; its expected space-time volume
(qubit-rounds per accepted state) rises steeply as the target infidelity
drops.  The paper reads the cost off Fig. 1 of Gidney-Shutty-Jones: a
7.7e-7 target costs ~1.5e4 qubit-rounds.  We encode that curve as a
power law anchored at the paper's quoted point, with exponent calibrated
to the figure's slope over the 1e-5..1e-7 decade.

The grafted colour/surface-code patch is extended to (d+5) x d and the
width-5 colour-code strip measured out, leaving a regular d x d patch
(Fig. 8(b)); :meth:`CultivationModel.escape_footprint` accounts for it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Anchor from the paper: per-|T> error 7.7e-7 costs 1.5e4 qubit-rounds.
ANCHOR_ERROR = 7.7e-7
ANCHOR_VOLUME = 1.5e4
# Effective slope of volume vs 1/error on a log-log plot in the relevant
# decade of Ref. [97] Fig. 1 (calibrated, see DESIGN.md).
VOLUME_EXPONENT = 0.83


@dataclass(frozen=True)
class CultivationModel:
    """Cost/acceptance model for one cultivation pipeline."""

    target_error: float
    code_distance: int

    def __post_init__(self) -> None:
        if not 0 < self.target_error < 1:
            raise ValueError("target_error must be in (0, 1)")
        if self.code_distance < 3:
            raise ValueError("code_distance must be >= 3")

    @property
    def expected_volume_qubit_rounds(self) -> float:
        """Expected qubit-rounds per accepted |T> state."""
        return ANCHOR_VOLUME * (ANCHOR_ERROR / self.target_error) ** VOLUME_EXPONENT

    @property
    def escape_footprint(self) -> int:
        """Atoms during escape: the grafted (d+5) x d patch plus ancillas."""
        d = self.code_distance
        return 2 * (d + 5) * d

    def expected_rounds(self) -> float:
        """Rounds per accepted state on the escape footprint."""
        return self.expected_volume_qubit_rounds / self.escape_footprint

    def expected_time(self, round_time: float) -> float:
        """Wall-clock per accepted |T> at a given SE-round duration."""
        if round_time <= 0:
            raise ValueError("round_time must be positive")
        return self.expected_rounds() * round_time

    def copies_in_row(self, row_tiles: int = 12) -> int:
        """Cultivation copies fitting in the factory's 12d x 1d bottom row.

        Each copy needs roughly a (d+5)-by-d strip, i.e. one-plus logical
        tile of width; the paper estimates 8 copies fit in the 12d row.
        """
        d = self.code_distance
        tiles_per_copy = (d + 5) / d  # width in d-units, height 1 tile
        return int(row_tiles // math.ceil(tiles_per_copy))


def required_t_error(ccz_target: float) -> float:
    """Per-|T> error so 8T-to-CCZ meets a per-CCZ target (Eq. 8 inverted).

    p_out = 28 p_in^2  =>  p_in = sqrt(p_out / 28).

    The paper's example: 3e9 CCZs at a 5% budget give a 1.6e-11 CCZ target
    and hence a 7.6e-7 cultivation target.
    """
    if not 0 < ccz_target < 1:
        raise ValueError("ccz_target must be in (0, 1)")
    return math.sqrt(ccz_target / 28.0)
