"""The 8T-to-CCZ factory second stage (paper Sec. III.6, Fig. 8(a)).

Three output qubits in |+> are entangled with the three logical qubits of
an [[8,3,2]] colour-code block (factory CNOTs); the transversal T pattern
of the code applies a logical CCZ; X-basis measurement of the block
teleports the gate onto the outputs (with Pauli-Z corrections from the
logical-X outcomes) while the X^{x8} stabilizer outcome flags any
odd-weight T fault.  Post-selection leaves

    |CCZ> = CCZ |+++>        (Eq. 7)
    p_out = 28 p_in^2 + O(p_in^3)   (Eq. 8)

This module builds the exact circuit (verifiable on the state-vector
simulator), enumerates all 2^8 T-fault patterns for the exact output error
and acceptance rate, and exposes the distillation curve used by the
resource estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.codes.color_832 import Color832Code
from repro.core.cache import memoized
from repro.sim.circuit import Circuit
from repro.sim.statevector import StateVector

NUM_T_INPUTS = 8
SECOND_ORDER_COEFFICIENT = 28  # undetected weight-2 fault patterns


@memoized
def default_color_code() -> Color832Code:
    """The shared [[8,3,2]] block.

    Constructing the code solves GF(2) linear systems for the logicals --
    the dominant cost of every factory-layout query -- so resource sweeps
    share one immutable instance instead of rebuilding it per grid point.
    """
    return Color832Code()


def factory_cnot_layers(code: Color832Code | None = None) -> List[List[Tuple[int, int]]]:
    """The factory's CNOT schedule as layers of (control, target) pairs.

    Qubits 0..2 are the outputs o0..o2; 3..10 are the code block d0..d7
    (vertex v of the cube is qubit 3 + v).  Layer 1 spreads a GHZ state
    over the block; layers 2-4 inject each output's logical X.
    """
    code = code or default_color_code()
    layers: List[List[Tuple[int, int]]] = []
    # GHZ prep of the code block: |000>_L = (|0^8> + |1^8>)/sqrt(2).
    layers.append([(3, 3 + v) for v in range(1, 4)])
    layers.append([(3 + v - 3, 3 + v) for v in range(4, 8)])  # fan deeper
    for i in range(3):
        face = code.logical_x_support(i)
        layers.append([(i, 3 + v) for v in face])
    return layers


def factory_circuit(t_z_faults: Tuple[int, ...] = ()) -> Circuit:
    """Full second-stage circuit, optionally with Z faults on T gates.

    Args:
        t_z_faults: vertices (0..7) whose T gate suffers a Z error, the
            dominant fault mode of noisy |T> inputs.

    Returns a circuit over 11 qubits: outputs 0..2, block 3..10; the block
    is measured in the X basis (8 records, in vertex order).
    """
    code = default_color_code()
    circuit = Circuit()
    circuit.append("RX", (0, 1, 2))
    circuit.append("R", tuple(range(3, 11)))
    circuit.h(3)
    for layer in factory_cnot_layers(code):
        for control, target in layer:
            circuit.cx(control, target)
    pattern = code.t_pattern()
    for v in range(8):
        if pattern[v] == 1:
            circuit.t(3 + v)
        else:
            circuit.t_dag(3 + v)
    for v in t_z_faults:
        circuit.z(3 + v)
    circuit.measure_x(*range(3, 11))
    return circuit


def run_factory(
    t_z_faults: Tuple[int, ...] = (), rng: np.random.Generator | None = None
) -> Tuple[StateVector, bool]:
    """Execute the factory; returns (output state, accepted).

    The output state has the Pauli-Z corrections applied.  ``accepted`` is
    the X^{x8} post-selection flag.
    """
    code = default_color_code()
    circuit = factory_circuit(t_z_faults)
    sim = StateVector(11, rng=rng or np.random.default_rng(0))
    sim.run(circuit)
    outcomes = sim.record[-8:]
    accepted = sum(outcomes) % 2 == 0
    # Logical X_i outcome = product over the face; Z-correct output i.
    for i in range(3):
        parity = sum(outcomes[v] for v in code.logical_x_support(i)) % 2
        if parity:
            sim.apply_1q(np.diag([1.0, -1.0]).astype(np.complex128), i)
    return sim, accepted


def output_fidelity(sim: StateVector) -> float:
    """Fidelity of the factory output (qubits 0..2) with the ideal |CCZ>.

    The block qubits are in X-basis product states after measurement, so
    the reduced state on 0..2 is pure; overlap is computed on the full
    state against |CCZ> tensor the block's collapsed state.
    """
    ideal = StateVector(11)
    ideal.amplitudes = sim.amplitudes.copy()
    # Project: compute <CCZ| psi> by contracting outputs against the ideal.
    ccz = np.ones(8, dtype=np.complex128) / math.sqrt(8.0)
    ccz[7] *= -1.0
    psi = sim.amplitudes.reshape(-1, 8)  # block index major, outputs minor
    overlap_vector = psi @ ccz.conj()
    return float(np.sum(np.abs(overlap_vector) ** 2))


@dataclass(frozen=True)
class DistillationCurve:
    """Exact input-output error map of the 8T-to-CCZ stage."""

    code: Color832Code

    def classify_patterns(self) -> Dict[str, List[int]]:
        """Classify all 256 Z-fault masks: detected / harmless / harmful."""
        out: Dict[str, List[int]] = {"detected": [], "harmless": [], "harmful": []}
        for mask in range(256):
            if self.code.z_error_detected(mask):
                out["detected"].append(mask)
            elif self.code.z_error_is_logical(mask):
                out["harmful"].append(mask)
            else:
                out["harmless"].append(mask)
        return out

    def output_error(self, p_in: float) -> float:
        """Exact post-selected output error probability."""
        if not 0 <= p_in < 0.5:
            raise ValueError("p_in must be in [0, 0.5)")
        classes = self.classify_patterns()
        accept = harmful = 0.0
        for name in ("harmless", "harmful"):
            for mask in classes[name]:
                weight = bin(mask).count("1")
                prob = p_in**weight * (1 - p_in) ** (8 - weight)
                accept += prob
                if name == "harmful":
                    harmful += prob
        return harmful / accept

    def acceptance_rate(self, p_in: float) -> float:
        """Probability the X^{x8} post-selection passes."""
        classes = self.classify_patterns()
        accept = 0.0
        for name in ("harmless", "harmful"):
            for mask in classes[name]:
                weight = bin(mask).count("1")
                accept += p_in**weight * (1 - p_in) ** (8 - weight)
        return accept

    def leading_coefficient(self) -> int:
        """Number of undetected, harmful weight-2 patterns (must be 28)."""
        classes = self.classify_patterns()
        return sum(
            1 for mask in classes["harmful"] if bin(mask).count("1") == 2
        )


def distilled_ccz_error(p_t: float) -> float:
    """Eq. (8) leading order: p_out = 28 p_in^2."""
    return SECOND_ORDER_COEFFICIENT * p_t**2
