"""1-D layout synthesis for the factory CNOT stage (paper Ref. [103]).

The paper uses OLSQ-DPQA to find a one-dimensional ordering of the twelve
factory patches such that the four CNOT layers never require re-ordering
moves and interaction distances stay short.  This module re-implements the
relevant slice: an ordering search (simulated annealing over permutations,
exact for small instances) minimizing the maximum tile distance of any
CNOT, with a validity check that each layer's moves are order-preserving.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

Gate = Tuple[int, int]


@dataclass(frozen=True)
class LayoutResult:
    """Outcome of the 1-D placement search."""

    order: Tuple[int, ...]
    max_distance: int
    total_distance: int

    def position(self, qubit: int) -> int:
        return self.order.index(qubit)


def layer_is_order_preserving(layer: Sequence[Gate], positions: Dict[int, int]) -> bool:
    """Whether a layer's moves keep relative ordering (no AOD crossings).

    Controls move to their targets; two simultaneous moves cross if their
    source order and destination order disagree.
    """
    moves = [(positions[c], positions[t]) for c, t in layer]
    for i in range(len(moves)):
        for j in range(i + 1, len(moves)):
            (s1, e1), (s2, e2) = moves[i], moves[j]
            if (s1 - s2) * (e1 - e2) < 0:
                return False
    return True


def evaluate(order: Sequence[int], layers: Sequence[Sequence[Gate]]) -> Tuple[int, int, bool]:
    """(max distance, total distance, all layers order-preserving)."""
    positions = {q: i for i, q in enumerate(order)}
    max_dist = 0
    total = 0
    valid = True
    for layer in layers:
        if not layer_is_order_preserving(layer, positions):
            valid = False
        for control, target in layer:
            dist = abs(positions[control] - positions[target])
            max_dist = max(max_dist, dist)
            total += dist
    return max_dist, total, valid


def synthesize_1d_layout(
    layers: Sequence[Sequence[Gate]],
    num_qubits: int,
    iterations: int = 4000,
    seed: int = 0,
) -> LayoutResult:
    """Search permutations for a valid, short-range 1-D placement.

    Simulated annealing over adjacent-transposition moves; order-violating
    layouts are penalized heavily so the result is re-ordering-free
    whenever one exists (the factory instance admits one, Fig. 8(c)).
    """
    rng = random.Random(seed)
    order = list(range(num_qubits))

    def cost(candidate: List[int]) -> float:
        max_dist, total, valid = evaluate(candidate, layers)
        return max_dist * 100 + total + (0 if valid else 1e6)

    current_cost = cost(order)
    best = list(order)
    best_cost = current_cost
    temperature = 10.0
    for step in range(iterations):
        i, j = rng.sample(range(num_qubits), 2)
        order[i], order[j] = order[j], order[i]
        candidate_cost = cost(order)
        accept = candidate_cost <= current_cost or rng.random() < math.exp(
            (current_cost - candidate_cost) / max(temperature, 1e-9)
        )
        if accept:
            current_cost = candidate_cost
            if candidate_cost < best_cost:
                best_cost = candidate_cost
                best = list(order)
        else:
            order[i], order[j] = order[j], order[i]
        temperature *= 0.999
    max_dist, total, valid = evaluate(best, layers)
    if not valid:
        raise ValueError("no re-ordering-free 1-D layout found")
    return LayoutResult(order=tuple(best), max_distance=max_dist, total_distance=total)
