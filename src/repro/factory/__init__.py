"""Magic-state factory: cultivation + 8T-to-CCZ distillation."""

from repro.factory.cultivation import CultivationModel, required_t_error
from repro.factory.layout import FactoryLayout
from repro.factory.layout_synth import LayoutResult, synthesize_1d_layout
from repro.factory.pipeline import FactoryFleet, size_fleet
from repro.factory.t_to_ccz import (
    DistillationCurve,
    distilled_ccz_error,
    factory_circuit,
    factory_cnot_layers,
    output_fidelity,
    run_factory,
)

__all__ = [
    "CultivationModel",
    "DistillationCurve",
    "FactoryFleet",
    "FactoryLayout",
    "LayoutResult",
    "distilled_ccz_error",
    "factory_circuit",
    "factory_cnot_layers",
    "output_fidelity",
    "required_t_error",
    "run_factory",
    "size_fleet",
    "synthesize_1d_layout",
]
