"""Factory-fleet sizing against the algorithm's CCZ consumption.

Additions consume one |CCZ> per runway segment per reaction step and
look-ups one per iteration step; the fleet must sustain the peak rate.
The paper's Table II caps the fleet at 192 factories for 2048-bit
factoring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.cache import memoized
from repro.core.params import PhysicalParams
from repro.factory.cultivation import CultivationModel, required_t_error
from repro.factory.layout import FactoryLayout
from repro.factory.t_to_ccz import distilled_ccz_error


@dataclass(frozen=True)
class FactoryFleet:
    """A fleet of identical factories meeting a consumption rate."""

    layout: FactoryLayout
    cultivation: CultivationModel
    count: int

    @property
    def production_rate(self) -> float:
        """|CCZ> per second across the fleet."""
        return self.count * self.layout.throughput(self.cultivation)

    @property
    def num_atoms(self) -> int:
        return self.count * self.layout.num_atoms

    @property
    def ccz_error(self) -> float:
        """Per-|CCZ> infidelity delivered (Eq. 8 on the cultivation target)."""
        return distilled_ccz_error(self.cultivation.target_error)


@memoized
def size_fleet(
    consumption_rate: float,
    code_distance: int,
    ccz_error_target: float,
    physical: PhysicalParams = PhysicalParams(),
    max_factories: int | None = None,
) -> FactoryFleet:
    """Smallest fleet sustaining ``consumption_rate`` CCZ/s.

    Args:
        consumption_rate: peak algorithm demand (states per second).
        code_distance: surface-code distance of the factory patches.
        ccz_error_target: per-CCZ error budget; sets the cultivation target
            via Eq. (8).
        max_factories: optional cap (the paper's Table II uses 192).
    """
    if consumption_rate < 0:
        raise ValueError("consumption_rate must be non-negative")
    layout = FactoryLayout(code_distance, physical)
    cultivation = CultivationModel(
        target_error=required_t_error(ccz_error_target),
        code_distance=code_distance,
    )
    per_factory = layout.throughput(cultivation)
    count = max(1, math.ceil(consumption_rate / per_factory))
    if max_factories is not None:
        count = min(count, max_factories)
    return FactoryFleet(layout=layout, cultivation=cultivation, count=count)
