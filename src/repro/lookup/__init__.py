"""Quantum look-up tables: QROM, GHZ-assisted fan-out, timing."""

from repro.lookup.ghz_fanout import (
    FanoutLayout,
    FanoutWires,
    fanout_circuit,
    fanout_wires,
    ghz_fixup,
    ghz_prep_circuit,
    optimal_grid_spacing,
)
from repro.lookup.qrom import QROMSpec, lookup, qrom_circuit, qrom_registers
from repro.lookup.timing import LookupTiming, optimal_pipeline_copies

__all__ = [
    "FanoutLayout",
    "FanoutWires",
    "LookupTiming",
    "QROMSpec",
    "fanout_circuit",
    "fanout_wires",
    "ghz_fixup",
    "ghz_prep_circuit",
    "lookup",
    "optimal_grid_spacing",
    "optimal_pipeline_copies",
    "qrom_circuit",
    "qrom_registers",
]
