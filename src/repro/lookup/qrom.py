"""Quantum look-up table / QROM via unary iteration (paper Sec. III.8).

Given an address register |l> and a classical table, the QROM XORs the
table entry data[l] into the target register.  The circuit walks the
address space with temporary-AND Toffolis, maintaining a one-hot line per
tree level; between the two children of a node the line is re-pointed with
a single CNOT (the standard unary-iteration toggle), so the tree uses
2^w - 2 temporary ANDs.  Each AND appears twice in the reversible circuit
(compute + uncompute), but the uncomputation is measurement-based in the
transversal implementation and consumes no magic state, so the |CCZ> cost
charged by :class:`QROMSpec` is 2^w - 2.

Functionally verified against the classical table on the reversible
simulator; the fan-out CNOT cost is handled by the GHZ-assisted gadget of
:mod:`repro.lookup.ghz_fanout`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arithmetic.reversible import RegisterFile, ReversibleCircuit


@dataclass(frozen=True)
class QROMSpec:
    """Cost summary of one table lookup."""

    address_bits: int
    target_bits: int

    @property
    def num_entries(self) -> int:
        return 2**self.address_bits

    @property
    def toffoli_count(self) -> int:
        """Magic states: one temporary AND per internal tree node."""
        return max(self.num_entries - 2, 0)

    @property
    def ancilla_bits(self) -> int:
        """One one-hot line per recursion level."""
        return max(self.address_bits - 1, 1)

    def average_cnot_fanout(self, table: Sequence[int]) -> float:
        """Mean number of target bits set per entry (typically ~half)."""
        if not table:
            return 0.0
        return sum(bin(v).count("1") for v in table) / len(table)


def qrom_registers(address_bits: int, target_bits: int) -> RegisterFile:
    """Wire layout: address | ancilla one-hot lines | target."""
    spec = QROMSpec(address_bits, target_bits)
    return RegisterFile(
        {
            "address": address_bits,
            "scratch": spec.ancilla_bits,
            "target": target_bits,
        }
    )


def qrom_circuit(
    address_bits: int, table: Sequence[int], target_bits: int
) -> ReversibleCircuit:
    """Build the unary-iteration lookup circuit.

    Args:
        address_bits: width w of the address register (2^w >= len(table)).
        table: classical data; entry l is XORed into the target when the
            address is l.  Missing tail entries act as zero.
        target_bits: width of the target register.

    Returns:
        A reversible circuit over the :func:`qrom_registers` layout mapping
        |l>|0>|t> -> |l>|0>|t XOR table[l]> (scratch returned to zero).
    """
    if address_bits < 1:
        raise ValueError("need at least one address bit")
    if target_bits < 1:
        raise ValueError("need at least one target bit")
    if len(table) > 2**address_bits:
        raise ValueError("table too large for the address register")
    for value in table:
        if value < 0 or value >= 2**target_bits:
            raise ValueError(f"table entry {value} does not fit target register")
    regs = qrom_registers(address_bits, target_bits)
    circuit = ReversibleCircuit(regs.total_bits)
    full_table = list(table) + [0] * (2**address_bits - len(table))
    address = regs.bits("address")
    scratch = regs.bits("scratch")

    def write(entry: int, control_wire: int) -> None:
        for bit in range(target_bits):
            if (full_table[entry] >> bit) & 1:
                circuit.cx(control_wire, regs.bit("target", bit))

    def descend(level: int, control_wire: int, entry_base: int) -> None:
        """Emit the subtree where higher address bits selected this node."""
        if level == 0:
            write(entry_base, control_wire)
            return
        child = scratch[level - 1]
        next_bit = address[level - 1]
        # child = control AND NOT next_bit ...
        circuit.x(next_bit)
        circuit.ccx(control_wire, next_bit, child)
        circuit.x(next_bit)
        descend(level - 1, child, entry_base)
        # ... toggled to control AND next_bit with one CNOT ...
        circuit.cx(control_wire, child)
        descend(level - 1, child, entry_base + 2 ** (level - 1))
        # ... and uncomputed (measurement-based in hardware).
        circuit.ccx(control_wire, next_bit, child)

    top = address[address_bits - 1]
    if address_bits == 1:
        circuit.x(top)
        write(0, top)
        circuit.x(top)
        write(1, top)
    else:
        circuit.x(top)
        descend(address_bits - 1, top, 0)
        circuit.x(top)
        descend(address_bits - 1, top, 2 ** (address_bits - 1))
    return circuit


def lookup(address_bits: int, table: Sequence[int], target_bits: int, address: int) -> int:
    """Classically execute the QROM: returns table[address] (or 0 padding)."""
    regs = qrom_registers(address_bits, target_bits)
    circuit = qrom_circuit(address_bits, table, target_bits)
    state = circuit.run(regs.encode({"address": address}))
    if regs.decode(state, "scratch") != 0:
        raise AssertionError("scratch lines not returned to zero")
    return regs.decode(state, "target")
