"""Look-up table timing and pipelining (paper Secs. III.8, IV.2).

The unary iteration advances one table entry per reaction-limited Toffoli
step; the per-entry fan-out (GHZ preparation, transversal CNOT, X-basis
measurement) is pipelined against the iteration, contributing only its
non-hidden part.  For the paper's parameters (w = 7, 128 entries, 1 ms
reaction time) a lookup takes ~0.17 s.

GHZ preparation, consumption, and measurement form a three-stage pipeline;
the paper finds a single copy per stage minimizes space-time volume, which
:func:`optimal_pipeline_copies` reproduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import PhysicalParams
from repro.core.timing import timing_model
from repro.lookup.ghz_fanout import FanoutLayout
from repro.lookup.qrom import QROMSpec


@dataclass(frozen=True)
class LookupTiming:
    """Wall-clock and resource model of one table lookup."""

    spec: QROMSpec
    code_distance: int
    physical: PhysicalParams = PhysicalParams()
    fanout_grid_spacing: int = 2

    @property
    def step_time(self) -> float:
        """Reaction-limited unary-iteration step."""
        return timing_model(self.physical).reaction_limited_step(self.code_distance)

    @property
    def fanout_overhead_per_entry(self) -> float:
        """Non-pipelined remainder of the per-entry fan-out.

        The fan-out is a three-stage pipeline (GHZ prep, transversal CNOT,
        X measurement; Fig. 10(b)) with one copy per stage, so only a third
        of the local move time (bounded by the grid spacing) stays exposed
        beyond the reaction-limited iteration step.
        """
        layout = FanoutLayout(
            self.spec.target_bits, self.fanout_grid_spacing, self.code_distance
        )
        return layout.move_time(self.physical) / layout.stage_count()

    @property
    def unlookup_steps(self) -> int:
        """Measurement-based unlookup: ~2 sqrt(N) fix-up steps (Ref. [65])."""
        return 2 * math.isqrt(self.spec.num_entries)

    @property
    def duration(self) -> float:
        """Total lookup time: iteration + exposed fan-out + unlookup.

        ~0.17 s for 128 entries at Table I parameters and d = 27.
        """
        per_entry = self.step_time + self.fanout_overhead_per_entry
        return self.spec.num_entries * per_entry + self.unlookup_steps * self.step_time

    @property
    def ccz_consumption_rate(self) -> float:
        """Magic states per second during the iteration: one per step."""
        return 1.0 / (self.step_time + self.fanout_overhead_per_entry)

    def active_logical_qubits(self) -> int:
        """Logical qubits busy during the lookup: targets + GHZ + scratch."""
        layout = FanoutLayout(
            self.spec.target_bits, self.fanout_grid_spacing, self.code_distance
        )
        return (
            self.spec.target_bits
            + layout.logical_qubits
            + self.spec.ancilla_bits
            + self.spec.address_bits
        )


def optimal_pipeline_copies(
    timing: LookupTiming,
    candidates=(1, 2, 3, 4),
) -> int:
    """Copies per pipeline stage minimizing lookup space-time volume.

    Extra GHZ copies shave the exposed fan-out overhead (overlapping more
    of the prep) but each copy adds a full GHZ register of qubits for the
    whole lookup.  For Table I parameters one copy per stage wins, matching
    the paper's observation.
    """
    best = None
    best_volume = math.inf
    layout_qubits = FanoutLayout(
        timing.spec.target_bits, timing.fanout_grid_spacing, timing.code_distance
    ).logical_qubits
    for copies in candidates:
        exposed = timing.fanout_overhead_per_entry / copies
        duration = (
            timing.spec.num_entries * (timing.step_time + exposed)
            + timing.unlookup_steps * timing.step_time
        )
        qubits = timing.active_logical_qubits() + (copies - 1) * layout_qubits
        volume = duration * qubits
        if volume < best_volume:
            best_volume = volume
            best = copies
    if best is None:
        raise ValueError("no candidates")
    return best
