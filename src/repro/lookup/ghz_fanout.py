"""GHZ-assisted CNOT fan-out (paper Sec. III.8, Fig. 10(b,c)).

A log-depth fan-out tree would need long-range moves; instead a GHZ state
is prepared measurement-based in constant depth -- qubits in |+>, ZZ parity
measurements via helper ancillae, Pauli frame fix-ups -- and one transversal
CNOT from the GHZ state onto the targets performs the whole fan-out, after
which the GHZ qubits are measured in X and a conditional Z correction is
applied.

The module provides (a) the Clifford circuit generator, verified on the
tableau simulator, and (b) the snake layout of Fig. 10(c) whose per-step
moves are bounded by 2 d l, with the GHZ-grid-spacing qubit/move trade-off
the paper optimizes over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.movement import move_time_sites
from repro.core.params import PhysicalParams
from repro.sim.circuit import Circuit


def ghz_prep_circuit(num_qubits: int) -> Circuit:
    """Measurement-based GHZ preparation on qubits 0..n-1.

    Qubits start in |+>; helpers n..2n-2 measure ZZ of neighbours; the
    deterministic Pauli-frame fix-up (X on a suffix for each odd outcome)
    is applied as classically-controlled X here via explicit branches --
    the returned circuit defers them, so consumers must apply
    :func:`ghz_fixup` using the measurement record.
    """
    if num_qubits < 2:
        raise ValueError("GHZ needs at least 2 qubits")
    circuit = Circuit()
    ghz = list(range(num_qubits))
    helpers = list(range(num_qubits, 2 * num_qubits - 1))
    circuit.append("RX", ghz)
    circuit.append("R", helpers)
    for i, helper in enumerate(helpers):
        circuit.cx(ghz[i], helper)
        circuit.cx(ghz[i + 1], helper)
    circuit.measure(*helpers)
    return circuit


def ghz_fixup(record: List[int], num_qubits: int) -> List[int]:
    """Qubits needing an X fix-up given the helper ZZ outcomes.

    Outcome m_i = 1 means qubits i and i+1 disagree in Z; flipping every
    qubit after an odd prefix parity restores |0...0> + |1...1>.
    """
    if len(record) < num_qubits - 1:
        raise ValueError("record too short")
    flips = []
    parity = 0
    for i in range(1, num_qubits):
        parity ^= record[i - 1]
        if parity:
            flips.append(i)
    return flips


@dataclass(frozen=True)
class FanoutWires:
    """Wire assignment of the fan-out gadget."""

    control: int
    ghz: Tuple[int, ...]
    helpers: Tuple[int, ...]
    targets: Tuple[int, ...]

    @property
    def num_qubits(self) -> int:
        return 1 + len(self.ghz) + len(self.helpers) + len(self.targets)


def fanout_wires(num_targets: int) -> FanoutWires:
    """Standard wire layout: control | GHZ x n | helpers x n | targets x n."""
    n = num_targets
    return FanoutWires(
        control=0,
        ghz=tuple(1 + i for i in range(n)),
        helpers=tuple(1 + n + i for i in range(n)),
        targets=tuple(1 + 2 * n + i for i in range(n)),
    )


def fanout_circuit(num_targets: int) -> Circuit:
    """Measurement-based CNOT fan-out of the control onto every target.

    The control heads a ZZ-parity chain through the GHZ qubits (prepared in
    |+>), entangling them into an extended GHZ state correlated with the
    control's Z value; a transversal CNOT copies onto the targets and the
    GHZ qubits are measured out in X.

    The helper ZZ outcomes dictate X fix-ups on the GHZ qubits and the
    X-outcome parity a Z fix-up on the control.  The IR has no classical
    control, so consumers either track the Pauli frame themselves or, in
    tests, post-select all outcomes to 0 (``forced_measurements``), where
    no fix-up is needed.
    """
    if num_targets < 2:
        raise ValueError("fan-out needs at least 2 targets")
    wires = fanout_wires(num_targets)
    circuit = Circuit()
    circuit.append("RX", wires.ghz)
    circuit.append("R", wires.helpers)
    chain = (wires.control,) + wires.ghz
    for i, helper in enumerate(wires.helpers):
        circuit.cx(chain[i], helper)
        circuit.cx(chain[i + 1], helper)
    circuit.measure(*wires.helpers)
    for g, t in zip(wires.ghz, wires.targets):
        circuit.cx(g, t)
    circuit.measure_x(*wires.ghz)
    return circuit


@dataclass(frozen=True)
class FanoutLayout:
    """Snake layout of the fan-out (Fig. 10(c)).

    GHZ qubits sit on a grid of pitch ``grid_spacing`` logical tiles
    threading through the target register; each target is at most half a
    grid pitch from its GHZ qubit, and helpers sit between GHZ neighbours.

    Attributes:
        num_targets: registers receiving the fan-out.
        grid_spacing: GHZ grid pitch in logical-tile units (>= 1); larger
            spacing uses fewer GHZ qubits (one serves several targets via
            extra local moves) at the cost of longer moves.
        code_distance: surface-code distance d.
    """

    num_targets: int
    grid_spacing: int
    code_distance: int

    def __post_init__(self) -> None:
        if self.num_targets < 1:
            raise ValueError("num_targets must be positive")
        if self.grid_spacing < 1:
            raise ValueError("grid_spacing must be >= 1")

    @property
    def num_ghz_qubits(self) -> int:
        """GHZ qubits: one per grid cell of targets."""
        return -(-self.num_targets // self.grid_spacing)

    @property
    def num_helper_qubits(self) -> int:
        return max(self.num_ghz_qubits - 1, 0)

    @property
    def logical_qubits(self) -> int:
        """GHZ + helpers (targets counted by the caller)."""
        return self.num_ghz_qubits + self.num_helper_qubits

    @property
    def max_move_tiles(self) -> float:
        """Longest move in logical-tile units: reaching across the cell."""
        return float(self.grid_spacing)

    def max_move_sites(self) -> float:
        """Longest move in site pitches; 2 d l at grid spacing 2."""
        return self.max_move_tiles * self.code_distance

    def move_time(self, physical: PhysicalParams) -> float:
        return move_time_sites(self.max_move_sites(), physical)

    def stage_count(self) -> int:
        """Pipeline stages: prep, fix-up+fan-out, consume (Fig. 10(b))."""
        return 3

    def spacetime_cost(self, physical: PhysicalParams, reaction_time: float) -> float:
        """Relative qubit-seconds of one fan-out at this spacing.

        Qubits: GHZ + helpers (times 2d^2 atoms); time: the serial moves to
        serve ``grid_spacing`` targets per GHZ qubit plus one reaction for
        the X-measurement correction.
        """
        d = self.code_distance
        atoms = self.logical_qubits * (2 * d * d)
        serve_time = self.grid_spacing * self.move_time(physical)
        return atoms * (serve_time + reaction_time)


def optimal_grid_spacing(
    num_targets: int,
    code_distance: int,
    physical: PhysicalParams,
    reaction_time: float,
    candidates: Tuple[int, ...] = (1, 2, 3, 4, 6, 8),
) -> int:
    """Grid spacing minimizing the fan-out space-time cost.

    The paper optimizes this parameter per experiment; for Table I numbers
    the optimum is small (1-2): moves are cheap but qubits are not.
    """
    best = None
    best_cost = math.inf
    for spacing in candidates:
        layout = FanoutLayout(num_targets, spacing, code_distance)
        cost = layout.spacetime_cost(physical, reaction_time)
        if cost < best_cost:
            best_cost = cost
            best = spacing
    if best is None:
        raise ValueError("no candidate spacings")
    return best
