"""Thread-pool job engine with request coalescing for scenario estimates.

The serving layer between the HTTP API and the estimation pipeline:

* **Coalescing** -- requests are keyed by the persistent store's content
  address ``(scenario, canonical params, code version)``.  While a job for
  a key is queued or running, identical submissions return the *same*
  :class:`Job` instead of enqueueing a duplicate, so N concurrent clients
  asking for ``table2`` cost exactly one ``build()``.
* **Priority FIFO** -- lower ``priority`` runs first; within a priority
  level jobs run in submission order (a monotonic sequence number breaks
  ties, so the heap is a stable FIFO).  A coalesced duplicate at a more
  urgent priority promotes the queued job rather than waiting at the old
  one.
* **Status/progress & cancellation** -- every job exposes a snapshot dict
  (state, progress, timings, error) for the ``/jobs/<id>`` endpoint;
  queued jobs can be cancelled, running ones cannot (scenario builds are
  pure compute with no safe interruption point).
* **Store integration** -- workers consult the :class:`ResultStore` before
  computing and persist what they compute, so the engine both serves from
  and feeds the warm-start path the CLI uses.

Workers run scenarios with ``jobs=1``: parallelism comes from serving many
requests concurrently, not from forking a multiprocessing pool per
request inside a server thread.
"""

from __future__ import annotations

import collections
import itertools
import queue
import threading
import time
from typing import Any, Deque, Dict, List, Optional

from repro.estimator.registry import ScenarioResult, get_scenario
from repro.service.store import ResultStore, result_key

# Terminal jobs kept for /jobs/<id> inspection before the oldest are
# dropped; bounds the engine's memory on a long-lived server.
DEFAULT_RETAIN_TERMINAL = 256

# Job states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_TERMINAL = frozenset({DONE, FAILED, CANCELLED})

_PROGRESS = {QUEUED: 0.0, RUNNING: 0.5, DONE: 1.0, FAILED: 1.0, CANCELLED: 1.0}


class JobError(RuntimeError):
    """A waited-on job finished without a result (failed or cancelled)."""


class Job:
    """One scheduled estimate.  State transitions are owned by the engine."""

    def __init__(
        self,
        job_id: str,
        scenario: str,
        params: Dict[str, Any],
        key: str,
        priority: int,
    ) -> None:
        self.id = job_id
        self.scenario = scenario
        self.params = params
        self.key = key
        self.priority = priority
        self.state = QUEUED
        self.error: Optional[str] = None
        self.result: Optional[ScenarioResult] = None
        self.from_store = False
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done = threading.Event()

    @property
    def progress(self) -> float:
        return _PROGRESS[self.state]

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of the job for the ``/jobs/<id>`` endpoint."""
        return {
            "id": self.id,
            "scenario": self.scenario,
            "params": dict(self.params),
            "key": self.key,
            "priority": self.priority,
            "state": self.state,
            "progress": self.progress,
            "error": self.error,
            "from_store": self.from_store,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    def wait(self, timeout: Optional[float] = None) -> ScenarioResult:
        """Block until terminal; returns the result or raises JobError."""
        if not self.done.wait(timeout):
            raise TimeoutError(
                f"job {self.id} ({self.scenario}) still {self.state} "
                f"after {timeout}s"
            )
        if self.result is None:
            raise JobError(
                f"job {self.id} ({self.scenario}) {self.state}: {self.error}"
            )
        return self.result


class JobEngine:
    """Priority thread pool computing scenario estimates through the store."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 2,
        retain_terminal: int = DEFAULT_RETAIN_TERMINAL,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retain_terminal < 1:
            raise ValueError("retain_terminal must be >= 1")
        self.store = store
        self.retain_terminal = retain_terminal
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._jobs: Dict[str, Job] = {}
        self._terminal_order: Deque[str] = collections.deque()
        self._inflight: Dict[str, Job] = {}
        self._counters = {
            "submitted": 0,
            "coalesced": 0,
            "computed": 0,
            "store_hits": 0,
            "failed": 0,
            "cancelled": 0,
        }
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        scenario: str,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
    ) -> Job:
        """Schedule an estimate; identical in-flight requests coalesce.

        The scenario name and parameter keys are validated here, up front,
        so a bad request fails at submission instead of surfacing later as
        a failed job.
        """
        params = dict(params or {})
        spec = get_scenario(scenario)  # raises KeyError for unknown names
        spec.validate_params(params)  # raises UnknownParamsError (ValueError)
        key = result_key(scenario, params)
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is shut down")
            inflight = self._inflight.get(key)
            if inflight is not None and inflight.state not in _TERMINAL:
                self._counters["coalesced"] += 1
                if inflight.state == QUEUED and priority < inflight.priority:
                    # An urgent duplicate promotes the queued job: push a
                    # second heap entry at the better priority; whichever
                    # entry pops second finds the job no longer QUEUED and
                    # is discarded by the worker loop.
                    inflight.priority = priority
                    self._queue.put((priority, next(self._seq), inflight))
                return inflight
            seq = next(self._seq)
            job = Job(f"job-{seq:06d}", scenario, params, key, priority)
            self._jobs[job.id] = job
            self._inflight[key] = job
            self._counters["submitted"] += 1
            self._queue.put((priority, seq, job))
        return job

    def estimate(
        self,
        scenario: str,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> ScenarioResult:
        """Synchronous estimate: store hit if possible, else submit + wait."""
        params = dict(params or {})
        if self.store is not None:
            cached = self.store.get(scenario, params)
            if cached is not None:
                with self._lock:
                    self._counters["store_hits"] += 1
                return cached
        return self.submit(scenario, params, priority).wait(timeout)

    # -- inspection / control --------------------------------------------------

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            members = list(self._jobs.values())
        return [job.snapshot() for job in members]

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running/terminal jobs return False."""
        job = self.job(job_id)
        with self._lock:
            if job.state != QUEUED:
                return False
            job.state = CANCELLED
            job.error = "cancelled before start"
            job.finished_at = time.time()
            self._inflight.pop(job.key, None)
            self._counters["cancelled"] += 1
            self._retire_locked(job)
        job.done.set()
        return True

    def _retire_locked(self, job: Job) -> None:
        """Record a terminal job; drop the oldest beyond the retention cap.

        Caller holds ``self._lock``.  Keeps ``_jobs`` (and the results the
        Job objects pin) bounded on a long-lived server while recent job
        ids stay inspectable via ``/jobs/<id>``.
        """
        self._terminal_order.append(job.id)
        while len(self._terminal_order) > self.retain_terminal:
            old_id = self._terminal_order.popleft()
            old = self._jobs.get(old_id)
            if old is not None and old.state in _TERMINAL:
                del self._jobs[old_id]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = dict(self._counters)
            out["queued"] = self._queue.qsize()
            out["jobs_tracked"] = len(self._jobs)
        return out

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the worker threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put((float("inf"), next(self._seq), None))
        if wait:
            for thread in self._threads:
                thread.join()

    # -- worker loop -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            _, _, job = self._queue.get()
            if job is None:
                return
            with self._lock:
                if job.state != QUEUED:  # cancelled while queued
                    continue
                job.state = RUNNING
                job.started_at = time.time()
            try:
                result = None
                if self.store is not None:
                    result = self.store.get(job.scenario, job.params)
                if result is not None:
                    job.from_store = True
                    with self._lock:
                        self._counters["store_hits"] += 1
                else:
                    result = get_scenario(job.scenario).run(
                        jobs=1, **job.params
                    )
                    with self._lock:
                        self._counters["computed"] += 1
                    if self.store is not None:
                        self.store.put(result, job.params)
            except Exception as exc:  # surface through the job, not the thread
                with self._lock:
                    job.state = FAILED
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finished_at = time.time()
                    self._inflight.pop(job.key, None)
                    self._counters["failed"] += 1
                    self._retire_locked(job)
                job.done.set()
                continue
            with self._lock:
                job.result = result
                job.state = DONE
                job.finished_at = time.time()
                self._inflight.pop(job.key, None)
                self._retire_locked(job)
            job.done.set()
