"""Estimation service: persistent result store + concurrent serving layer.

Turns the one-shot ``python -m repro`` pipeline into a long-lived service:

* :mod:`repro.service.store` -- content-addressed on-disk store keyed by
  ``(scenario, canonical params, code fingerprint)``; gives repeated CLI
  runs and the server warm-start hits, invalidated automatically when the
  installed source changes.
* :mod:`repro.service.jobs` -- thread-pool job engine with request
  coalescing (identical in-flight requests share one computation),
  priority-FIFO scheduling, per-job status and cancellation.
* :mod:`repro.service.api` -- stdlib HTTP JSON API (``/scenarios``,
  ``/estimate``, ``/jobs/<id>``, ``/healthz``, ``/stats``) whose
  ``/estimate`` bodies are byte-identical to ``python -m repro --json``.
* :mod:`repro.service.client` -- ``urllib`` client + :func:`local_service`
  context manager used by tests, benchmarks and examples.

Start a server with ``python -m repro serve`` (see the README's
"Serving" section).
"""

from repro.service.client import ServiceClient, ServiceError, local_service
from repro.service.jobs import Job, JobEngine, JobError
from repro.service.store import (
    ResultStore,
    canonical_params,
    default_store_dir,
    result_key,
    run_with_store,
)

__all__ = [
    "Job",
    "JobEngine",
    "JobError",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "canonical_params",
    "default_store_dir",
    "local_service",
    "result_key",
    "run_with_store",
]
