"""Persistent on-disk result store for scenario estimates.

Content-addressed over ``(scenario, canonicalized params, code-version
fingerprint)``: the key is a SHA-256 of all three, so a parameter override
written in any order or spelling that parses to the same values hits the
same entry, and a change to the installed ``repro`` source (a new
:func:`repro.core.cache.code_version`) makes every old entry unreachable
-- stale results can never be served by newer code.  :meth:`purge_stale`
garbage-collects those unreachable files.

Layout (``REPRO_STORE_DIR`` env var, or ``~/.cache/repro/store``)::

    <root>/<key[:2]>/<key>.json     # one entry per (scenario, params, version)

Entries are written atomically (temp file + ``os.replace``) so concurrent
readers never observe a torn file, and the store object is safe to share
between the service's worker threads.

Fidelity: scenario results are not plain JSON -- records carry ``inf`` for
infeasible sweep points and metadata may use float-keyed dicts (e.g.
fig11_idle's per-rate-target optima) or tuples.  Entries therefore use a
reversible encoding (``{"__kv__": [...]}`` for non-string-keyed dicts,
``{"__tuple__": [...]}`` for tuples, native ``Infinity``/``NaN`` tokens
for non-finite floats) so a round-tripped :class:`ScenarioResult` renders
and serializes byte-identically to a freshly computed one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.cache import code_version
from repro.estimator.registry import ScenarioResult, run_scenario

DEFAULT_STORE_ENV = "REPRO_STORE_DIR"


def default_store_dir() -> Path:
    """Store root: ``$REPRO_STORE_DIR`` or ``~/.cache/repro/store``."""
    env = os.environ.get(DEFAULT_STORE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "store"


def canonical_params(params: Optional[Dict[str, Any]]) -> str:
    """Canonical JSON form of a parameter-override dict.

    Key-order independent (``sort_keys``) and whitespace-free, so two
    requests for the same overrides always address the same entry.
    Values go through the store's type-faithful encoding first, so e.g. a
    tuple and a list override get *different* addresses (a build may treat
    them differently); truly non-JSON objects fall back to ``repr``, which
    only needs to be stable -- the canonical form is hashed, never
    decoded.
    """
    return json.dumps(
        _encode(dict(params or {})),
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )


def result_key(
    scenario: str,
    params: Optional[Dict[str, Any]] = None,
    version: Optional[str] = None,
) -> str:
    """Content address of one estimate: sha256(scenario, params, version)."""
    version = version if version is not None else code_version()
    payload = f"{scenario}\n{canonical_params(params)}\n{version}"
    return hashlib.sha256(payload.encode()).hexdigest()


# -- reversible encoding -------------------------------------------------------


def _encode(obj: Any) -> Any:
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and not (
            set(obj) in ({"__kv__"}, {"__tuple__"})
        ):
            return {k: _encode(v) for k, v in obj.items()}
        # Non-string keys (float rate targets, tuples) -- or a dict that
        # would collide with an escape marker -- go through the kv escape.
        return {"__kv__": [[_encode(k), _encode(v)] for k, v in obj.items()]}
    if isinstance(obj, tuple):
        return {"__tuple__": [_encode(v) for v in obj]}
    if isinstance(obj, list):
        return [_encode(v) for v in obj]
    return obj


def _decode(obj: Any) -> Any:
    if isinstance(obj, dict):
        if set(obj) == {"__kv__"}:
            return {_freeze(_decode(k)): _decode(v) for k, v in obj["__kv__"]}
        if set(obj) == {"__tuple__"}:
            return tuple(_decode(v) for v in obj["__tuple__"])
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    return obj


def _freeze(key: Any) -> Any:
    # Decoded dict keys must be hashable; lists inside a kv key become
    # tuples (tuples proper round-trip through the __tuple__ escape).
    if isinstance(key, list):
        return tuple(_freeze(v) for v in key)
    return key


class ResultStore:
    """Thread-safe persistent store of :class:`ScenarioResult` entries."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_store_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._counters = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "evictions": 0,
            "invalidations": 0,
        }
        # Entry count maintained incrementally so stats() needs no
        # directory walk; seeded with one scan at construction.  Exact for
        # this process; another process writing the same root is only
        # reflected at the next construction (use len(store) for a fresh
        # on-disk census).
        self._entries = sum(1 for _ in self.root.glob("*/*.json"))

    # -- internals -------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _bump(self, counter: str, by: int = 1, entries_delta: int = 0) -> None:
        with self._lock:
            self._counters[counter] += by
            self._entries = max(0, self._entries + entries_delta)

    # -- core API --------------------------------------------------------------

    def get(
        self, scenario: str, params: Optional[Dict[str, Any]] = None
    ) -> Optional[ScenarioResult]:
        """Stored result for (scenario, params) at the current code version.

        Returns ``None`` on miss.  A corrupt entry, or one recorded under a
        different fingerprint than its key claims (should never happen, but
        the store is defensive about hand-edited files), is evicted and
        counted as an invalidation.
        """
        key = result_key(scenario, params)
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self._bump("misses")
            return None
        try:
            payload = json.loads(text)
            if payload["version"] != code_version():
                raise ValueError("fingerprint mismatch")
            result = ScenarioResult(
                scenario=payload["scenario"],
                records=tuple(_decode(r) for r in payload["records"]),
                metadata=_decode(payload["metadata"]),
            )
        except (ValueError, KeyError, TypeError):
            path.unlink(missing_ok=True)
            self._bump("invalidations", entries_delta=-1)
            self._bump("misses")
            return None
        self._bump("hits")
        return result

    def put(
        self, result: ScenarioResult, params: Optional[Dict[str, Any]] = None
    ) -> str:
        """Persist a result under its content address; returns the key."""
        key = result_key(result.scenario, params)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "scenario": result.scenario,
            "params": _encode(dict(params or {})),
            "version": code_version(),
            "records": [_encode(dict(r)) for r in result.records],
            "metadata": _encode(dict(result.metadata)),
        }
        # json allows Infinity/NaN tokens by default; the store format is
        # internal, so non-finite floats round-trip natively here (the
        # RFC-valid sanitization happens at serialization time, in
        # repro.estimator.serialize).
        text = json.dumps(payload)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            existed = path.exists()
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self._bump("puts", entries_delta=0 if existed else 1)
        return key

    def evict(
        self, scenario: str, params: Optional[Dict[str, Any]] = None
    ) -> bool:
        """Remove one entry; returns whether it existed."""
        path = self._path(result_key(scenario, params))
        try:
            path.unlink()
        except OSError:
            return False
        self._bump("evictions", entries_delta=-1)
        return True

    def clear(self) -> int:
        """Remove every entry (any version); returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        self._bump("evictions", removed, entries_delta=-removed)
        return removed

    def purge_stale(self) -> int:
        """Drop entries recorded under a different code fingerprint.

        Fingerprint changes already make old entries unreachable (the
        version is part of the key); this garbage-collects their files.
        """
        current = code_version()
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                version = json.loads(path.read_text()).get("version")
            except (OSError, ValueError):
                version = None
            if version != current:
                path.unlink(missing_ok=True)
                removed += 1
        self._bump("invalidations", removed, entries_delta=-removed)
        return removed

    def __len__(self) -> int:
        """Exact on-disk entry census (walks the store directory)."""
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/put/eviction counters plus the tracked entry count.

        ``entries`` is maintained incrementally (no directory walk), so
        polling ``/stats`` stays O(1) however large the store grows; use
        ``len(store)`` for a fresh on-disk census.
        """
        with self._lock:
            out: Dict[str, Any] = dict(self._counters)
            out["entries"] = self._entries
        out["root"] = str(self.root)
        out["version"] = code_version()
        return out


def run_with_store(
    name: str,
    *,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    **params: Any,
) -> ScenarioResult:
    """Run a scenario, consulting a persistent store before computing.

    The estimation pipeline's warm-start entry point: the CLI (when
    ``REPRO_STORE_DIR`` is set), the service's job workers, and the
    benchmarks all come through here, so a result computed by any of them
    is reused by all of them.
    """
    if store is None:
        return run_scenario(name, jobs=jobs, **params)
    cached = store.get(name, params)
    if cached is not None:
        return cached
    result = run_scenario(name, jobs=jobs, **params)
    store.put(result, params)
    return result
