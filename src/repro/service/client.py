"""Small HTTP client for the estimation service (stdlib ``urllib`` only).

Used by the tests, ``benchmarks/bench_service.py`` and
``examples/service_demo.py``.  :func:`local_service` spins up a real
in-process server on an ephemeral port and yields a connected client, so
everything downstream exercises the same HTTP surface a remote caller
would -- including the byte-identity guarantee of ``/estimate``.
"""

from __future__ import annotations

import json
import tempfile
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple
from urllib.error import HTTPError
from urllib.parse import quote
from urllib.request import Request, urlopen


class ServiceError(RuntimeError):
    """Non-2xx response from the service; carries status + decoded body."""

    def __init__(self, status: int, payload: Any) -> None:
        error = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {error}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Thin wrapper over the service's HTTP endpoints."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _request(self, path: str, method: str = "GET") -> Tuple[int, bytes]:
        request = Request(self.base_url + path, method=method)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read()
        except HTTPError as exc:
            body = exc.read()
            try:
                payload = json.loads(body)
            except ValueError:
                payload = body.decode(errors="replace")
            raise ServiceError(exc.code, payload) from None

    def _json(self, path: str, method: str = "GET") -> Any:
        _, body = self._request(path, method)
        return json.loads(body)

    @staticmethod
    def _query(scenario: str, params: Dict[str, Any], **extra: str) -> str:
        # Values are formatted with str() so the server's literal parsing
        # sees exactly what a CLI user would type after --param KEY=.
        pairs = [("scenario", scenario)]
        pairs.extend(sorted((k, str(v)) for k, v in params.items()))
        pairs.extend(sorted(extra.items()))
        return "&".join(f"{quote(k)}={quote(str(v))}" for k, v in pairs)

    # -- endpoints -------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._json("/healthz")

    def scenarios(self) -> Dict[str, Any]:
        return self._json("/scenarios")

    def stats(self) -> Dict[str, Any]:
        return self._json("/stats")

    def metrics(self) -> str:
        """Prometheus text exposition from ``/metrics``."""
        _, body = self._request("/metrics")
        return body.decode("utf-8")

    def estimate_raw(self, scenario: str, **params: Any) -> bytes:
        """Synchronous estimate, raw body (byte-identical to CLI --json)."""
        _, body = self._request(f"/estimate?{self._query(scenario, params)}")
        return body

    def estimate(self, scenario: str, **params: Any) -> Dict[str, Any]:
        """Synchronous estimate, decoded: one scenario-result dict."""
        return json.loads(self.estimate_raw(scenario, **params))[0]

    def submit(self, scenario: str, **params: Any) -> Dict[str, Any]:
        """Asynchronous estimate: returns the job snapshot payload."""
        query = self._query(scenario, params, **{"async": "1"})
        return self._json(f"/estimate?{query}")

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json(f"/jobs/{quote(job_id)}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        try:
            return self._json(f"/jobs/{quote(job_id)}", method="DELETE")
        except ServiceError as exc:
            if exc.status == 409 and isinstance(exc.payload, dict):
                return exc.payload  # already running/terminal: not cancelled
            raise

    def wait(
        self, job_id: str, timeout: float = 60.0, poll_s: float = 0.02
    ) -> Dict[str, Any]:
        """Poll ``/jobs/<id>`` until the job is terminal."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["job"]["state"] in ("done", "failed", "cancelled"):
                return payload
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['job']['state']} "
                    f"after {timeout}s"
                )
            time.sleep(poll_s)


@contextmanager
def local_service(
    store_dir: Optional[str] = None,
    workers: int = 2,
    host: str = "127.0.0.1",
) -> Iterator[ServiceClient]:
    """Run a real service on an ephemeral port; yield a connected client.

    Without ``store_dir`` the store lives in a temporary directory that is
    removed on exit, so tests and demos never touch a user's real store.
    """
    from repro.service.api import Service, make_server, run_in_thread
    from repro.service.store import ResultStore

    tmpdir: Optional[tempfile.TemporaryDirectory] = None
    if store_dir is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-store-")
        store_dir = tmpdir.name
    service = Service(store=ResultStore(store_dir), workers=workers)
    httpd = make_server(host, 0, service)
    thread = run_in_thread(httpd)
    try:
        bound_host, port = httpd.server_address[:2]
        yield ServiceClient(f"http://{bound_host}:{port}")
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()
        thread.join(timeout=5)
        if tmpdir is not None:
            tmpdir.cleanup()
