"""Stdlib-only HTTP JSON API over the scenario registry.

Endpoints (all JSON):

* ``GET /healthz``                -- liveness + code version + uptime.
* ``GET /scenarios``              -- registered scenarios and their params.
* ``GET /estimate?scenario=<s>&<key>=<value>...``
                                  -- synchronous estimate.  The body is
                                     **byte-identical** to
                                     ``python -m repro <s> --json`` with
                                     the same ``--param`` overrides
                                     (same serializer, same newline).
                                     Add ``async=1`` to get ``202`` with a
                                     job id instead of blocking.
* ``GET /jobs/<id>``              -- job status/progress (result inlined
                                     once done).
* ``DELETE /jobs/<id>``           -- cancel a queued job.
* ``GET /stats``                  -- store, job-engine and sub-model-cache
                                     counters, plus decode-latency
                                     percentiles from the telemetry layer.
* ``GET /metrics``                -- Prometheus text exposition (0.0.4) of
                                     the whole registry: engine, decoder,
                                     sweep, cache, job-queue, and
                                     per-endpoint request-latency series.

Query parameter values are parsed exactly like CLI ``--param`` values
(Python literal when possible, string otherwise), and validated against
the scenario's signature before anything runs: an unknown scenario is 404,
an unknown parameter key is 400 with the offending key named.  ``scenario``
and ``async`` are reserved query keys.

Run via ``python -m repro serve`` (see :func:`serve`).  The server is
``ThreadingHTTPServer``: each request gets a thread, and concurrent
identical estimates coalesce in the :class:`JobEngine` to one computation.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.cache import cache_stats, code_version
from repro.estimator.registry import (
    UnknownParamsError,
    available_scenarios,
    get_scenario,
)
from repro.estimator.serialize import (
    dumps_results,
    finite,
    parse_override_value,
)
from repro.obs import metrics as _metrics
from repro.obs import percentiles as _percentiles
from repro.obs.logs import echo
from repro.obs.prometheus import render_prometheus
from repro.service.jobs import JobEngine
from repro.service.store import ResultStore, default_store_dir

# Per-request latency by endpoint (first path segment) and a status-
# labeled request counter: ROADMAP item 3's p50/p99-under-load surface.
_REQUEST_SECONDS = _metrics.histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency by endpoint.",
    ("endpoint",),
)
_REQUESTS = _metrics.counter(
    "repro_http_requests_total",
    "HTTP requests handled, by endpoint and response status.",
    ("endpoint", "status"),
)


class Service:
    """The in-process service: one store + one job engine + bookkeeping."""

    def __init__(
        self, store: Optional[ResultStore] = None, workers: int = 2
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.engine = JobEngine(store=self.store, workers=workers)
        self.started_at = time.time()
        # Scrape-time gauges for queue depth and the job/store counters:
        # a collector (not pushed metrics) so the engine's own counter
        # dicts remain the source of truth and multiple Service
        # instances in one process (tests) never fight over series --
        # the renderer takes the last-registered collector's values.
        _metrics.register_collector(self._obs_collector)

    def close(self) -> None:
        self.engine.shutdown(wait=True)
        _metrics.unregister_collector(self._obs_collector)

    def _obs_collector(self):
        jobs = self.engine.stats()
        store = self.store.stats()
        gauges = {
            "repro_jobs_queue_depth": (
                "Jobs waiting in the engine queue.", jobs.get("queued", 0)),
            "repro_jobs_submitted": (
                "Jobs submitted to the engine.", jobs.get("submitted", 0)),
            "repro_jobs_coalesced": (
                "Submissions coalesced onto an existing job.",
                jobs.get("coalesced", 0)),
            "repro_jobs_computed": (
                "Jobs computed by engine workers.", jobs.get("computed", 0)),
            "repro_jobs_store_hits": (
                "Jobs served from the result store.",
                jobs.get("store_hits", 0)),
            "repro_jobs_failed": (
                "Jobs that raised during computation.", jobs.get("failed", 0)),
            "repro_jobs_cancelled": (
                "Jobs cancelled while queued.", jobs.get("cancelled", 0)),
            "repro_jobs_tracked": (
                "Jobs currently tracked by the engine.",
                jobs.get("jobs_tracked", 0)),
            "repro_store_entries": (
                "Entries tracked in the persistent result store.",
                store.get("entries", 0)),
            "repro_store_hits": (
                "Result-store read hits.", store.get("hits", 0)),
            "repro_store_misses": (
                "Result-store read misses.", store.get("misses", 0)),
        }
        return {
            name: ("gauge", help_text, (), {(): float(value)})
            for name, (help_text, value) in gauges.items()
        }

    # -- endpoint payloads -----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "version": code_version(),
            "uptime_s": time.time() - self.started_at,
            "scenarios": len(available_scenarios()),
        }

    def scenarios(self) -> Dict[str, Any]:
        out: List[Dict[str, Any]] = []
        for name in available_scenarios():
            scenario = get_scenario(name)
            accepted = scenario.accepted_params()
            out.append({
                "name": name,
                "description": scenario.description,
                "params": sorted(accepted) if accepted is not None else None,
            })
        return {"scenarios": out}

    def stats(self) -> Dict[str, Any]:
        decode = _percentiles("repro_decode_seconds", (0.5, 0.99))
        request = _percentiles("repro_http_request_seconds", (0.5, 0.99))
        return {
            "store": self.store.stats(),
            "jobs": self.engine.stats(),
            "cache": {
                name: {"hits": h, "misses": m, "size": s}
                for name, (h, m, s) in cache_stats().items()
            },
            # NaN percentiles (nothing observed yet) serialize as null
            # through finite(), keeping bodies RFC-valid.
            "metrics": {
                "enabled": _metrics.enabled(),
                "decode_seconds_p50": decode[0.5],
                "decode_seconds_p99": decode[0.99],
                "request_seconds_p50": request[0.5],
                "request_seconds_p99": request[0.99],
            },
        }


class ApiError(Exception):
    """An error with an HTTP status and a JSON body."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload


def _parse_estimate_query(query: str) -> Tuple[str, Dict[str, Any], bool]:
    """(scenario, params, async) from an /estimate query string.

    Raises :class:`ApiError` mirroring the CLI's up-front validation: the
    offending key is named, and nothing has run yet.
    """
    pairs = parse_qs(query, keep_blank_values=True)
    names = pairs.pop("scenario", [])
    if not names:
        raise ApiError(400, {"error": "missing required query key 'scenario'"})
    name = names[-1]
    want_async = pairs.pop("async", ["0"])[-1].lower() in ("1", "true", "yes")
    try:
        scenario = get_scenario(name)
    except KeyError:
        raise ApiError(404, {
            "error": f"unknown scenario {name!r}",
            "available": list(available_scenarios()),
        })
    params = {key: parse_override_value(vals[-1]) for key, vals in pairs.items()}
    if "jobs" in params:
        raise ApiError(400, {
            "error": "'jobs' is not a scenario parameter (results are "
            "worker-count invariant; the service always computes with "
            "jobs=1)",
            "keys": ["jobs"],
        })
    try:
        scenario.validate_params(params)
    except UnknownParamsError as exc:
        raise ApiError(400, {"error": str(exc), "keys": exc.keys})
    return name, params, want_async


def estimate_body(result_json: Dict[str, Any]) -> bytes:
    """The /estimate response body: CLI ``--json`` stdout, byte-for-byte.

    The CLI prints ``dumps_results([...])`` through ``print`` (which adds
    the trailing newline); the API appends it explicitly.
    """
    return (dumps_results([result_json]) + "\n").encode()


class ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "ServiceServer"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(
        self, status: int, body: bytes,
        content_type: str = "application/json",
    ) -> None:
        self._sent_status = status  # recorded for the request counter
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        # finite() first so even a non-finite *parameter* echoed in a job
        # snapshot (e.g. ?target_error=1e999) serializes as null, keeping
        # every body RFC-valid -- same contract as /estimate.
        body = json.dumps(finite(payload), indent=2, allow_nan=False) + "\n"
        self._send(status, body.encode())

    # -- routing ---------------------------------------------------------------

    def _observe_request(self, endpoint: str, route) -> None:
        """Run a route handler with latency/status accounting around it."""
        self._sent_status = 0
        start = time.perf_counter()
        try:
            route()
        finally:
            if _metrics.enabled():
                _REQUEST_SECONDS.labels(endpoint=endpoint).observe(
                    time.perf_counter() - start
                )
                _REQUESTS.labels(
                    endpoint=endpoint, status=str(self._sent_status)
                ).inc()

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        endpoint = parts[0] if parts else "root"
        self._observe_request(endpoint, self._route_get)

    def _route_get(self) -> None:
        service = self.server.service
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send_json(200, service.healthz())
            elif parts == ["scenarios"]:
                self._send_json(200, service.scenarios())
            elif parts == ["stats"]:
                self._send_json(200, service.stats())
            elif parts == ["metrics"]:
                self._send(
                    200, render_prometheus().encode(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif parts == ["estimate"]:
                self._handle_estimate(url.query)
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, self._job_payload(parts[1]))
            elif not parts:
                self._send_json(200, {
                    "service": "repro",
                    "endpoints": [
                        "/healthz", "/scenarios", "/estimate", "/jobs/<id>",
                        "/stats", "/metrics",
                    ],
                })
            else:
                self._send_json(404, {"error": f"no route for {url.path!r}"})
        except ApiError as exc:
            self._send_json(exc.status, exc.payload)
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        endpoint = parts[0] if parts else "root"
        self._observe_request(endpoint, self._route_delete)

    def _route_delete(self) -> None:
        service = self.server.service
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            try:
                cancelled = service.engine.cancel(parts[1])
                job = service.engine.job(parts[1])
            except KeyError:
                # Unknown id, or a terminal job pruned from the retention
                # window between the two calls: either way it is gone.
                self._send_json(404, {"error": f"unknown job {parts[1]!r}"})
                return
            self._send_json(200 if cancelled else 409, {
                "cancelled": cancelled,
                "job": job.snapshot(),
            })
            return
        self._send_json(404, {"error": f"no route for {self.path!r}"})

    # -- handlers --------------------------------------------------------------

    def _handle_estimate(self, query: str) -> None:
        service = self.server.service
        name, params, want_async = _parse_estimate_query(query)
        if want_async:
            job = service.engine.submit(name, params)
            self._send_json(202, {"job": job.snapshot(),
                                  "status_url": f"/jobs/{job.id}"})
            return
        try:
            result = service.engine.estimate(name, params)
        except Exception as exc:
            raise ApiError(500, {
                "error": f"{type(exc).__name__}: {exc}",
                "scenario": name,
            })
        self._send(200, estimate_body(result.to_json()))

    def _job_payload(self, job_id: str) -> Dict[str, Any]:
        try:
            job = self.server.service.engine.job(job_id)
        except KeyError:
            raise ApiError(404, {"error": f"unknown job {job_id!r}"})
        payload = {"job": job.snapshot()}
        if job.result is not None:
            payload["result"] = job.result.to_json()  # _send_json sanitizes
        return payload


class ServiceServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: Service, verbose: bool = False):
        super().__init__(address, ServiceHandler)
        self.service = service
        self.verbose = verbose


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[Service] = None,
    verbose: bool = False,
) -> ServiceServer:
    """Bind a service server (``port=0`` picks an ephemeral port)."""
    return ServiceServer((host, port), service or Service(), verbose=verbose)


def serve(argv: Optional[List[str]] = None) -> None:
    """``python -m repro serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve scenario estimates over HTTP "
        "(persistent store + coalescing job engine).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8000,
        help="TCP port; 0 picks an ephemeral port (default: 8000)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="job-engine worker threads (default: 2)",
    )
    parser.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="persistent result store location (default: $REPRO_STORE_DIR "
        f"or {default_store_dir()})",
    )
    parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port to PATH once listening (for scripts "
        "using --port 0)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every request"
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    store = ResultStore(args.store_dir)
    service = Service(store=store, workers=args.workers)
    httpd = make_server(args.host, args.port, service, verbose=args.verbose)
    host, port = httpd.server_address[:2]
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write(f"{port}\n")
    echo(
        f"repro service listening on http://{host}:{port} "
        f"(store: {store.root}, workers: {args.workers})"
    )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        service.close()


def run_in_thread(httpd: ServiceServer) -> threading.Thread:
    """Start ``serve_forever`` on a daemon thread (tests, examples)."""
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return thread
