"""Bench E-F6: logical-error model fit (a) and CNOT volume curve (b)."""

from repro.experiments import fig6


def test_fig6a_monte_carlo_fit(benchmark):
    result = benchmark.pedantic(
        lambda: fig6.generate_fig6a(shots=600, seed=31), rounds=1, iterations=1
    )
    print()
    print(f"memory fit: C = {result.memory_fit.prefactor_c:.3f}, "
          f"Lambda = {result.memory_fit.lam:.2f}")
    print(f"Eq.(4) fit: alpha = {result.alpha_fit.alpha:.3f} "
          f"(paper MLE: 0.167), residual = {result.alpha_fit.residual:.2f}")
    for d, x, rate in result.data:
        print(f"  d={d} x={x:.2f}: per-CNOT rate {rate:.5f}")
    assert result.memory_fit.lam > 2.0
    assert 0.0 <= result.alpha_fit.alpha < 20.0


def test_fig6b_volume_curve(benchmark):
    curve = benchmark(fig6.generate_fig6b)
    print()
    print(fig6.render_fig6b(curve))
    # Optimal SE rounds per CNOT <= 1 at p = 1e-3 (paper Fig. 6(b)).
    best = min(curve, key=lambda rounds: curve[rounds])
    assert best <= 1.0
