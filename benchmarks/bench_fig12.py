"""Bench E-F12: space and logical-error breakdowns per phase."""

from repro.experiments import fig12


def test_fig12_breakdowns(benchmark):
    estimate = benchmark(fig12.generate)
    print()
    print(fig12.render(estimate))
    space = fig12.space_fractions(estimate)
    # Paper: fan-out dominates active compute during lookup; factories
    # dominate during addition.
    lookup = space["lookup"]
    addition = space["addition"]
    assert lookup["cnot_fanout"] + lookup["ghz_pipeline"] > lookup["factories"] * 0.8
    assert addition["factories"] == max(
        v for k, v in addition.items() if k != "storage"
    ) or addition["adder_segments"] >= addition["factories"] * 0.5
    # 4-6 M qubits idle in storage (paper Sec. IV.3.4).
    idle = estimate.space_breakdown["lookup"]["storage"]
    assert 2e6 < idle < 8e6
