"""Bench E-EST: shared scenario runner timing the estimation pipeline.

Times every registered analytic scenario three ways and writes
``BENCH_estimator.json`` at the repo root:

* ``uncached_serial_s`` -- sub-model caching bypassed (the pre-refactor
  cost model: every grid point re-derives timing/factory/lookup
  sub-models from scratch);
* ``serial_s`` -- the pipeline as shipped, cold caches at the start of
  the run (caches warm up *during* the sweep, which is the point);
* ``jobs{N}_s`` -- the same with ``jobs=N`` requested; the sweep engine's
  measured serial fallback decides per grid whether a pool actually
  spawns.

Methodology: every timing is the **median of** ``REPEATS`` runs after one
untimed warm-up (first-run effects: imports, allocator growth, the sweep
engine's one-off pool calibration).  Medians replaced the earlier
best-of-3 because sub-millisecond scenarios produced ``cache_speedup``
below 1.0 out of pure timer noise -- a single lucky/unlucky run no longer
decides the artifact.  Caches are cleared before each repeat; the code
fingerprint is re-derived outside the timed region (process-lifetime
state, not sweep work).

Run directly:  PYTHONPATH=src python benchmarks/bench_estimator.py
As pytest:     PYTHONPATH=src python -m pytest benchmarks/bench_estimator.py -q
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.core.cache import caching_disabled, clear_caches, code_version
from repro.obs import run_metadata
from repro.estimator.registry import available_scenarios, run_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_estimator.json"
REPEATS = 5
JOBS = 4
# Scenarios whose dominant cost is the estimator sweep (the decoder
# Monte-Carlo benchmarks live in bench_decode_engine.py).
SWEEP_SCENARIOS = ("fig11", "fig13", "fig14", "table2")


def _median_of(fn, repeats: int = REPEATS) -> float:
    times = []
    for attempt in range(repeats + 1):
        clear_caches()
        # Re-derive the code fingerprint outside the timed region: it is
        # process-lifetime state (clear_caches drops it), not part of the
        # sweep work this benchmark measures.
        code_version()
        start = time.perf_counter()
        fn()
        if attempt:  # attempt 0 is the untimed warm-up
            times.append(time.perf_counter() - start)
    return statistics.median(times)


def time_scenario(name: str) -> dict:
    serial = _median_of(lambda: run_scenario(name, jobs=1))
    sharded = _median_of(lambda: run_scenario(name, jobs=JOBS))

    def uncached():
        with caching_disabled():
            run_scenario(name, jobs=1)

    uncached_serial = _median_of(uncached)
    return {
        "uncached_serial_s": uncached_serial,
        "serial_s": serial,
        f"jobs{JOBS}_s": sharded,
        "cache_speedup": uncached_serial / serial if serial else float("inf"),
        "repeats": REPEATS,
    }


def run_benchmarks() -> dict:
    results = {}
    for name in sorted(available_scenarios()):
        results[name] = time_scenario(name)
    return results


def test_estimator_bench():
    """Pytest entry point: the sweep scenarios must gain >= 3x from caching."""
    results = run_benchmarks()
    OUTPUT.write_text(
        json.dumps({**results, "meta": run_metadata()}, indent=2) + "\n"
    )
    print()
    for name, row in results.items():
        print(
            f"  {name:12s} uncached {row['uncached_serial_s'] * 1e3:8.1f} ms"
            f"  cached {row['serial_s'] * 1e3:8.1f} ms"
            f"  ({row['cache_speedup']:.1f}x)"
        )
    best = max(results[name]["cache_speedup"] for name in SWEEP_SCENARIOS)
    assert best >= 3.0, f"best sweep-scenario cache speedup only {best:.2f}x"


if __name__ == "__main__":
    test_estimator_bench()
    print(f"\nwrote {OUTPUT}")
