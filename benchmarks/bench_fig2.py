"""Bench E-F2: regenerate the Fig. 2 comparison (ours vs lattice surgery)."""

from repro.experiments import fig2


def test_fig2(benchmark):
    points = benchmark(fig2.generate)
    print()
    print(fig2.render(points))
    speedup = fig2.speedup_vs_ge()
    print(f"runtime speedup vs GE19 @900us: {speedup:.1f}x (paper: ~50x)")
    ours = points[0]
    assert ours.days < 10  # days, not months
    assert speedup > 20
    baselines = [p for p in points[1:]]
    assert all(b.days > 10 * ours.days for b in baselines)
