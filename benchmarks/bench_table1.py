"""Bench E-T1: echo Table I and the timing quantities derived from it."""

from repro.core.params import PhysicalParams
from repro.core.timing import TimingModel
from repro.experiments import tables


def test_table1(benchmark):
    row = benchmark(tables.table_i)
    print()
    for name, value in row.items():
        print(f"  {name:20s} {value:10.1f}")
    timing = TimingModel(PhysicalParams())
    print(f"  derived SE-round active time: "
          f"{4 * (timing.se_move_time + 1e-6) * 1e6:.0f} us (paper: ~400 us)")
    print(f"  derived patch-move time (d=27): "
          f"{timing.logical_gate_time(27) * 1e3:.2f} ms")
    assert row["site_spacing_um"] == 12.0
    assert row["acceleration_m_s2"] == 5500.0
