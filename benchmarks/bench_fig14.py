"""Bench E-F14: timescale sensitivities and qubit/time trade-off."""

from repro.experiments import fig14


def test_fig14a_acceleration(benchmark):
    curve = benchmark(fig14.volume_vs_acceleration)
    print()
    for factor, vol in sorted(curve.items()):
        print(f"a x {factor:4.2f}: {vol:8.1f} Mq*days")
    assert curve[0.25] > curve[4.0]  # faster moves always help


def test_fig14b_qec_round(benchmark):
    curve = benchmark(fig14.qec_round_vs_acceleration)
    print()
    for factor, duration in sorted(curve.items()):
        print(f"a x {factor:4.2f}: QEC gate cycle {duration * 1e6:7.1f} us")
    assert curve[0.25] > curve[1.0] > curve[4.0]


def test_fig14c_reaction(benchmark):
    curve = benchmark(fig14.volume_vs_reaction_time)
    print()
    for tr, vol in sorted(curve.items()):
        print(f"t_r = {tr * 1e3:5.2f} ms: {vol:8.1f} Mq*days")
    assert curve[4e-3] > curve[1e-3]
    # Gains saturate at small reaction times (fan-out bound, Fig. 14(c)).
    assert curve[0.5e-3] / curve[0.25e-3] < curve[2e-3] / curve[1e-3]


def test_fig14d_tradeoff(benchmark):
    points = benchmark(fig14.qubit_time_tradeoff)
    print()
    for mq, days in points:
        print(f"{mq:6.1f} Mqubits -> {days:6.2f} days ({mq * days:7.1f} Mq*days)")
    qubits = [mq for mq, _ in points]
    days = [d for _, d in points]
    assert qubits == sorted(qubits, reverse=True)
    assert days == sorted(days)  # fewer qubits, longer runtime
