"""Bench E-T2: parameter optimization reproducing Table II."""

from repro.experiments import tables


def test_table2(benchmark):
    rows = benchmark(tables.table_ii_rows)
    print()
    print(tables.render_table_ii(rows))
    ours = rows["ours"]
    # The optimizer must land in the paper's regime: small windows and a
    # much smaller runway separation than Ref. [8]'s 1024.
    assert ours["window_exp"] in (2, 3, 4)
    assert ours["window_mul"] in (3, 4, 5)
    assert ours["runway_separation"] <= 128
    assert ours["runway_padding"] >= 20
    assert ours["max_factories"] >= 100
