"""Bench SVC: persistent-store warm starts and coalesced service throughput.

Times the serving layer three ways on ``table2`` (the Table II optimizer,
the heaviest single analytic scenario) and writes ``BENCH_service.json``
at the repo root:

* ``cold_s``      -- empty store, cold sub-model caches: the full compute
  path, plus one store write (what the first client ever pays);
* ``warm_s``      -- the same request against the populated store: a
  content-addressed disk read, no compute at all (what every subsequent
  client -- or a repeat ``REPRO_STORE_DIR`` CLI run -- pays);
* ``coalesced``   -- 8 concurrent identical requests against an empty
  store, which the job engine collapses into exactly one ``build()``.

Targets asserted here (and in CI): warm >= 5x over cold, and the 8-way
burst performs exactly 1 computation with byte-identical responses.

Run directly:  PYTHONPATH=src python benchmarks/bench_service.py
As pytest:     PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.core.cache import clear_caches, code_version
from repro.obs import run_metadata
from repro.estimator.serialize import dumps_results
from repro.service.jobs import JobEngine
from repro.service.store import ResultStore

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_service.json"
SCENARIO = "table2"
REPEATS = 5
CONCURRENCY = 8
WARM_TARGET = 5.0


def _cold_state(store: ResultStore) -> None:
    """Empty store + cold sub-model caches; fingerprint pre-paid.

    ``code_version`` is recomputed here so neither the cold nor the warm
    timing includes the one-off source-tree hash (it is process lifetime
    state, not per-request work).
    """
    store.clear()
    clear_caches()
    code_version()


def time_cold_vs_warm(engine: JobEngine, store: ResultStore) -> dict:
    cold = float("inf")
    for _ in range(REPEATS):
        _cold_state(store)
        start = time.perf_counter()
        engine.estimate(SCENARIO)
        cold = min(cold, time.perf_counter() - start)
    # Store stays populated: warm requests are pure store hits and never
    # touch the sub-model caches, which is the service's steady state.
    warm = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        engine.estimate(SCENARIO)
        warm = min(warm, time.perf_counter() - start)
    return {
        "cold_s": cold,
        "warm_s": warm,
        "warm_speedup": cold / warm if warm else float("inf"),
    }


def time_coalesced(engine: JobEngine, store: ResultStore) -> dict:
    _cold_state(store)
    computed_before = engine.stats()["computed"]
    barrier = threading.Barrier(CONCURRENCY)
    bodies = [None] * CONCURRENCY

    def request(i: int) -> None:
        barrier.wait()
        result = engine.estimate(SCENARIO, timeout=120)
        bodies[i] = dumps_results([result.to_json()])

    threads = [
        threading.Thread(target=request, args=(i,))
        for i in range(CONCURRENCY)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return {
        "requests": CONCURRENCY,
        "computations": engine.stats()["computed"] - computed_before,
        "identical_bodies": len(set(bodies)) == 1,
        "elapsed_s": elapsed,
        "requests_per_s": CONCURRENCY / elapsed if elapsed else float("inf"),
    }


def run_benchmarks() -> dict:
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-store-")
    store = ResultStore(tmpdir)
    engine = JobEngine(store=store, workers=CONCURRENCY)
    try:
        results = {
            "scenario": SCENARIO,
            **time_cold_vs_warm(engine, store),
            "coalesced": time_coalesced(engine, store),
        }
    finally:
        engine.shutdown()
        shutil.rmtree(tmpdir, ignore_errors=True)
    return results


def test_service_bench():
    """Pytest entry point: warm >= 5x, 8-way burst computes exactly once."""
    results = run_benchmarks()
    OUTPUT.write_text(
        json.dumps({**results, "meta": run_metadata()}, indent=2) + "\n"
    )
    print()
    print(
        f"  {SCENARIO}: cold {results['cold_s'] * 1e3:7.2f} ms"
        f"  warm {results['warm_s'] * 1e3:7.3f} ms"
        f"  ({results['warm_speedup']:.1f}x)"
    )
    coalesced = results["coalesced"]
    print(
        f"  coalesced: {coalesced['requests']} requests -> "
        f"{coalesced['computations']} computation(s), "
        f"{coalesced['requests_per_s']:.0f} req/s"
    )
    assert results["warm_speedup"] >= WARM_TARGET, (
        f"warm-store speedup only {results['warm_speedup']:.2f}x "
        f"(target {WARM_TARGET}x)"
    )
    assert coalesced["computations"] == 1, (
        f"{coalesced['requests']} identical requests cost "
        f"{coalesced['computations']} computations"
    )
    assert coalesced["identical_bodies"]


if __name__ == "__main__":
    test_service_bench()
    print(f"\nwrote {OUTPUT}")
