"""Benches E-F8/F9/F10: the constructed gadgets' headline quantities."""

import math

from repro.arithmetic.maj_layout import MajBlockLayout
from repro.arithmetic.runways import RunwayConfig
from repro.arithmetic.timing import AdditionTiming
from repro.codes.color_832 import Color832Code
from repro.factory.t_to_ccz import DistillationCurve, output_fidelity, run_factory
from repro.lookup.qrom import QROMSpec
from repro.lookup.timing import LookupTiming


def test_factory_construction(benchmark):
    """E-F8: 8T-to-CCZ factory: exact 28 p^2 curve and functional check."""

    def run():
        sim, accepted = run_factory()
        curve = DistillationCurve(Color832Code())
        return output_fidelity(sim), accepted, curve.leading_coefficient()

    fidelity, accepted, coefficient = benchmark(run)
    print()
    print(f"  no-fault output fidelity: {fidelity:.6f}; accepted: {accepted}")
    print(f"  undetected harmful weight-2 patterns: {coefficient} (Eq. 8: 28)")
    assert accepted
    assert fidelity > 1 - 1e-9
    assert coefficient == 28


def test_adder_gadget(benchmark):
    """E-F9: MAJ layout bound and the 0.28 s reaction-limited addition."""

    def run():
        layout = MajBlockLayout(27)
        timing = AdditionTiming(RunwayConfig(2048, 96, 43), 27)
        return layout.max_move_sites(), timing.duration

    max_move, duration = benchmark(run)
    print()
    print(f"  max MAJ move: {max_move:.1f} sites (sqrt(2) d = {math.sqrt(2) * 27:.1f})")
    print(f"  addition time: {duration:.3f} s (paper: 0.28 s)")
    assert max_move <= math.sqrt(2) * 27 + 1e-9
    assert abs(duration - 0.28) < 0.03


def test_lookup_gadget(benchmark):
    """E-F10: 128-entry lookup at ~0.17 s with bounded fan-out moves."""

    def run():
        timing = LookupTiming(QROMSpec(7, 2048), 27)
        return timing.duration

    duration = benchmark(run)
    print()
    print(f"  lookup time: {duration:.3f} s (paper: 0.17 s)")
    assert abs(duration - 0.17) < 0.04
