"""Bench E-F13: sensitivity to decoding factor and coherence time."""

from repro.experiments import fig13


def test_fig13a_alpha_sensitivity(benchmark):
    curve = benchmark(fig13.volume_vs_alpha)
    print()
    for alpha, vol in sorted(curve.items()):
        print(f"alpha = {alpha:.3f}: {vol:8.1f} Mq*days")
    ratio = fig13.threshold_drop_cost()
    print(f"0.86% -> 0.6% threshold drop costs {ratio:.2f}x (paper: ~1.5x)")
    assert 1.0 <= ratio < 2.0
    values = [curve[a] for a in sorted(curve)]
    assert values == sorted(values)  # volume rises with alpha


def test_fig13a_decoder_monte_carlo(benchmark):
    """Measured decoder trade-off behind the alpha sweep (engine-backed)."""
    tradeoff = benchmark.pedantic(
        lambda: fig13.decoder_tradeoff_monte_carlo(
            distance=3, rounds=3, p=0.004, shots=1500, seed=41
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for name, res in tradeoff.items():
        print(f"  {name:>10s}: {res.failures}/{res.shots} -> {res.rate:.4f}")
    # Paired comparison on identical syndromes: union-find should not beat
    # MWPM by more than tie-breaking noise (MWPM is min-weight, not
    # per-shot optimal, so allow a small slack as in test_unionfind_rotation).
    assert tradeoff["union_find"].failures >= tradeoff["mwpm"].failures - 3


def test_fig13b_coherence_sensitivity(benchmark):
    curve = benchmark(fig13.volume_vs_coherence)
    print()
    for t_coh, vol in sorted(curve.items()):
        print(f"T_coh = {t_coh:6.1f} s: {vol:8.1f} Mq*days")
    # Slow increase above 1 s, acceleration below (paper Fig. 13(b)).
    assert curve[0.3] > curve[10.0]
    assert curve[0.3] / curve[1.0] > curve[3.0] / curve[10.0]
