"""Bench: Monte-Carlo decoding engine throughput (DP matcher + dedup + sharding).

Compares three ways of decoding a d-distance memory experiment:

* per-shot baseline -- the pre-engine implementation: shot-by-shot loop
  with networkx blossom matching (``matcher="blossom"``, ``dedup=False``),
* dedup engine -- subset-DP matching on unique syndromes, scatter back,
* sharded engine -- the above plus multiprocessing workers (sampling and
  decoding both parallelized).

Acceptance anchor: at d=5, p=1e-3, 10k shots the engine path must deliver
>= 5x the per-shot baseline's shots/sec, and the engine must return
bit-identical counts for 1 vs. 4 workers at a fixed seed.
"""

import time

import numpy as np

from repro.decoder.engine import DecodingEngine
from repro.decoder.graph import DecodingGraph
from repro.decoder.mwpm import MWPMDecoder
from repro.sim.frame import FrameSimulator
from repro.sim.memory import memory_circuit


def _decode_throughput(decoder, detectors, dedup):
    start = time.perf_counter()
    predictions = decoder.decode_batch(detectors, dedup=dedup)
    elapsed = time.perf_counter() - start
    return predictions, detectors.shape[0] / elapsed


def _report(distance, p, shots):
    circuit = memory_circuit(distance, distance + 1, p)
    sim = FrameSimulator(circuit, rng=np.random.default_rng(47))
    dem = sim.detector_error_model()
    graph = DecodingGraph.from_dem(dem)
    baseline = MWPMDecoder(graph, matcher="blossom")
    engine_decoder = MWPMDecoder(graph)
    detectors, observables = sim.sample(shots)
    unique = np.unique(detectors, axis=0).shape[0]

    base_pred, base_rate = _decode_throughput(baseline, detectors, dedup=False)
    fast_pred, fast_rate = _decode_throughput(engine_decoder, detectors, dedup=True)
    # Both matchers are exact MWPM; on degenerate ties they may pick
    # different-but-equal-weight corrections, so compare failure counts.
    base_failures = int((base_pred[:, 0] ^ observables[:, 0]).sum())
    fast_failures = int((fast_pred[:, 0] ^ observables[:, 0]).sum())
    assert abs(base_failures - fast_failures) <= max(5, shots // 500)

    start = time.perf_counter()
    engine = DecodingEngine(circuit, engine_decoder, shard_shots=1024, workers=4)
    engine.run(shots, seed=47)
    sharded_rate = shots / (time.perf_counter() - start)

    print(
        f"  d={distance} p={p:g} shots={shots} unique={unique} | "
        f"per-shot(blossom) {base_rate:8.0f}/s  dedup(DP) {fast_rate:8.0f}/s "
        f"({fast_rate / base_rate:5.1f}x)  engine(4w, incl. sampling) "
        f"{sharded_rate:8.0f}/s"
    )
    return base_rate, fast_rate


def test_engine_speedup_and_determinism(benchmark):
    """d=5 acceptance point plus the d=3/d=7 context rows."""
    print()
    _report(3, 1e-3, 10_000)
    base_rate, fast_rate = _report(5, 1e-3, 10_000)
    _report(7, 1e-3, 4_000)

    circuit = memory_circuit(5, 6, 1e-3)
    results = []
    for workers in (1, 4):
        engine = DecodingEngine(circuit, "mwpm", shard_shots=1024, workers=workers)
        res = engine.run(10_000, seed=11)
        results.append((res.shots, res.failures, res.shards))
    print(f"  1w vs 4w at fixed seed: {results[0]} vs {results[1]}")
    assert results[0] == results[1], "engine must be worker-count invariant"
    assert fast_rate >= 5 * base_rate, (
        f"engine speedup {fast_rate / base_rate:.1f}x below the 5x target"
    )

    # Benchmark the engine's hot path itself for the pedantic record.
    engine = DecodingEngine(circuit, "mwpm", shard_shots=1024, workers=1)
    benchmark.pedantic(lambda: engine.run(5_000, seed=13), rounds=1, iterations=1)


def test_union_find_engine_throughput(benchmark):
    """Union-find through the engine: the faster, looser decoder."""
    circuit = memory_circuit(5, 6, 1e-3)
    engine = DecodingEngine(circuit, "union_find", shard_shots=1024, workers=1)
    result = benchmark.pedantic(
        lambda: engine.run(5_000, seed=13), rounds=1, iterations=1
    )
    print()
    print(f"  union_find d=5: {result.failures}/{result.shots} failures")
    assert result.shots == 5_000
