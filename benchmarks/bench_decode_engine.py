"""Bench: Monte-Carlo decoding engine throughput (packed pipeline + dedup).

Three benchmark families, all written into ``BENCH_frame.json``:

* **Decode path** (:func:`test_engine_speedup_and_determinism`) -- the
  established d=5 anchor comparing per-shot blossom (the pre-engine
  implementation), dedup subset-DP, and the sharded engine.
* **Packed frame pipeline** (:func:`packed_vs_unpacked`) -- end-to-end
  sample+decode throughput at d=7, p=1e-3 for three engine
  configurations:

  - ``per_shot_baseline``: byte-per-bit sampling, per-shot decoding with
    the whole-syndrome matcher (``packed=False``, ``dedup=False``,
    ``decompose=False``) -- the repo's historical baseline convention;
  - ``unpacked_engine``: byte-per-bit sampling + dedup batch decoding
    with the whole-syndrome matcher (``packed=False``,
    ``decompose=False``) -- the engine as it stood before the packed
    pipeline;
  - ``packed_engine``: the default path -- compiled bit-packed sampling,
    packed-key dedup, cluster-decomposed batch-DP MWPM.

  Acceptance anchors: the packed engine must deliver >= 5x the per-shot
  baseline's shots/sec, and the packed and unpacked configurations must
  return bit-identical failure counts for the same seed (also asserted,
  on full detector tables, in ``tests/test_sim_compiled.py``).
* **Decode-phase overhaul** (:func:`decode_phase`,
  :func:`decode_phase_quick_gate`) -- the batched union-find arena
  (with its sparse <=2-defect fast path) against the per-shot reference
  walk it replaced (``batched=False``): decode-phase-only throughput on
  pre-sampled packed tables (>= 3x at d=11, p=5e-4), end-to-end engine
  shots/s with the cross-batch syndrome cache live (>= 1.5x at the same
  point), a sample-vs-decode wall-clock split read from the engine
  phase counters, and a CI gate holding the batched path bit-identical
  to and never slower than per-shot at d=5/d=7.  Decode-phase timings
  run under ``caching_disabled()`` so the syndrome cache cannot serve
  either side; bit-identity is asserted per table and per seed.
* **Periodic round-compilation** (:func:`periodic_vs_linear`,
  :func:`periodic_d11_point`) -- the cold per-circuit pipeline (DEM
  extraction + program compilation + packed sampling) under the
  round-replay compiler vs the linear compiler, at d=7 p=1e-3 (>= 2x
  acceptance target) and a d=11 p=5e-4 low-p point.  Both paths must
  agree exactly: equal DEMs post-``merged()`` and bit-identical sampled
  planes per seed (property-tested across the full op/noise matrix in
  ``tests/test_sim_periodic.py``).
* **Rare-event importance sampling** (:func:`rare_overlap_check`,
  :func:`rare_event_gain`) -- the reweighted-DEM engine of
  :mod:`repro.estimator.rare` against brute force: agreement within 2
  combined sigma in the overlap region (d=5, p=3e-3) with a healthy
  effective sample size, and an effective-shots/s gain >= 100x at the
  d=7, p=5e-4 rare point (~1e-7 failure rate), landing >= 2 decades
  below the brute-force resolution floor.

Methodology: every configuration is warmed up first (compiles the packed
program, fills the decoder's cluster cache the same number of warm shots
for each config) and then timed as the median of ``TIMING_REPEATS``
fixed-seed runs; results land in ``BENCH_frame.json`` so CI can track
the trajectory per PR.

Run directly:  PYTHONPATH=src python benchmarks/bench_decode_engine.py [--quick]
As pytest:     PYTHONPATH=src python -m pytest benchmarks/bench_decode_engine.py -q
"""

import argparse
import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.cache import caching_disabled, clear_caches
from repro.decoder.analysis import paired_failure_counts
from repro.decoder.cache import syndrome_cache
from repro.decoder.engine import DecodingEngine, make_decoder
from repro.decoder.graph import DecodingGraph
from repro.decoder.mwpm import MWPMDecoder
from repro.decoder.union_find import UnionFindDecoder
from repro.obs import metrics as _metrics
from repro.estimator.rare import rare_engine
from repro.noise.dem import extract_dem
from repro.noise.models import BiasedPauli
from repro.sim.frame import FrameSimulator
from repro.sim.memory import memory_circuit
from repro.sim.periodic import PeriodicProgram, compile_program

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_frame.json"

PACKED_SPEEDUP_TARGET = 5.0
# Floor on the packed path vs the dedup engine it replaced: measured
# 4.4-5.5x across runs (the workload's blossom tail varies per seed),
# asserted with a machine-variance margin so slower CI runners do not
# flake.
ENGINE_SPEEDUP_FLOOR = 4.0


def _decode_throughput(decoder, detectors, dedup):
    start = time.perf_counter()
    predictions = decoder.decode_batch(detectors, dedup=dedup)
    elapsed = time.perf_counter() - start
    return predictions, detectors.shape[0] / elapsed


def _report(distance, p, shots):
    circuit = memory_circuit(distance, distance + 1, p)
    sim = FrameSimulator(circuit, rng=np.random.default_rng(47))
    dem = sim.detector_error_model()
    graph = DecodingGraph.from_dem(dem)
    baseline = MWPMDecoder(graph, matcher="blossom", decompose=False)
    engine_decoder = MWPMDecoder(graph)
    detectors, observables = sim.sample(shots)
    unique = np.unique(detectors, axis=0).shape[0]

    base_pred, base_rate = _decode_throughput(baseline, detectors, dedup=False)
    fast_pred, fast_rate = _decode_throughput(engine_decoder, detectors, dedup=True)
    # Both matchers are exact MWPM; on degenerate ties they may pick
    # different-but-equal-weight corrections, so compare failure counts.
    base_failures = int((base_pred[:, 0] ^ observables[:, 0]).sum())
    fast_failures = int((fast_pred[:, 0] ^ observables[:, 0]).sum())
    assert abs(base_failures - fast_failures) <= max(5, shots // 500)

    start = time.perf_counter()
    engine = DecodingEngine(circuit, engine_decoder, shard_shots=1024, workers=4)
    engine.run(shots, seed=47)
    engine.close()
    sharded_rate = shots / (time.perf_counter() - start)

    print(
        f"  d={distance} p={p:g} shots={shots} unique={unique} | "
        f"per-shot(blossom) {base_rate:8.0f}/s  dedup(DP) {fast_rate:8.0f}/s "
        f"({fast_rate / base_rate:5.1f}x)  engine(4w, incl. sampling) "
        f"{sharded_rate:8.0f}/s"
    )
    return base_rate, fast_rate


# -- packed pipeline ------------------------------------------------------------


# Timing repeats per configuration; the median absorbs the +/-15%
# single-run wobble observed even on an idle machine (same methodology as
# bench_estimator.py).
TIMING_REPEATS = 3


def _timed_engine_run(engine, shots, warm_shots, seed):
    """Warm an engine (compile + caches), then median-time repeated runs.

    Each repeat samples *fresh* noise (distinct seeds): repeating one seed
    would let the decoder's cluster cache replay the identical syndromes
    and report a rate no fresh workload ever sees.  The first repeat runs
    the canonical ``seed`` and provides the returned result.
    """
    engine.run(warm_shots, seed=seed + 1)
    rates = []
    result = None
    for i in range(TIMING_REPEATS):
        start = time.perf_counter()
        res = engine.run(shots, seed=seed + 100 * i)
        rates.append(shots / (time.perf_counter() - start))
        if i == 0:
            result = res
    return result, statistics.median(rates)


def packed_vs_unpacked(distance=7, p=1e-3, shots=6000, warm_shots=2048, seed=29):
    """End-to-end sample+decode throughput: packed vs unpacked configs.

    Both engine configurations use large shards (4096): at d=7 most
    syndromes are unique, so throughput comes from batch effects -- the
    decoder's vectorized defect-count groups and the packed sampler's
    whole-row ops -- which amortize better over bigger shards.
    """
    circuit = memory_circuit(distance, distance + 1, p)
    dem = FrameSimulator(circuit).detector_error_model()
    graph = DecodingGraph.from_dem(dem)

    packed = DecodingEngine(circuit, MWPMDecoder(graph), shard_shots=4096)
    res_packed, rate_packed = _timed_engine_run(packed, shots, warm_shots, seed)

    unpacked = DecodingEngine(
        circuit, MWPMDecoder(graph, decompose=False),
        shard_shots=4096, packed=False,
    )
    res_unpacked, rate_unpacked = _timed_engine_run(
        unpacked, shots, warm_shots, seed
    )
    # The two timed configurations run *different matchers* (decomposed vs
    # whole-syndrome -- both exact MWPM), so their failure counts are only
    # tie-equal; hold them to the usual degenerate-tie sliver.
    assert res_packed.shots == res_unpacked.shots
    assert abs(res_packed.failures - res_unpacked.failures) <= max(5, shots // 500)

    # Bit-identity of the packed vs unpacked *pipelines* is asserted on a
    # same-decoder pair, where equality is exact by construction.
    shared = MWPMDecoder(graph)
    check_shots = min(shots, 2048)
    res_a = DecodingEngine(circuit, shared, shard_shots=4096).run(
        check_shots, seed=seed
    )
    res_b = DecodingEngine(
        circuit, shared, shard_shots=4096, packed=False
    ).run(check_shots, seed=seed)
    assert (res_a.shots, res_a.failures) == (res_b.shots, res_b.failures), (
        "packed and unpacked engines must agree bit-for-bit at a fixed seed"
    )

    # The per-shot baseline is far too slow to run at full scale; time a
    # slice and extrapolate the rate (it is O(shots) by construction; the
    # slice must stay large enough that the heavy-tailed blossom work per
    # draw does not dominate the between-repeat variance).
    base_shots = max(shots // 5, 256)
    baseline = DecodingEngine(
        circuit, MWPMDecoder(graph, matcher="blossom", decompose=False),
        shard_shots=1024, packed=False,
    )
    sim = baseline._sim
    base_rates = []
    for i in range(TIMING_REPEATS):
        start = time.perf_counter()
        detectors, observables = sim.sample(
            base_shots, rng=np.random.default_rng(seed + 100 * i)
        )
        predictions = baseline.decoder.decode_batch(detectors, dedup=False)
        (predictions[:, 0] ^ observables[:, 0]).sum()
        base_rates.append(base_shots / (time.perf_counter() - start))
    rate_baseline = statistics.median(base_rates)

    row = {
        "distance": distance,
        "p": p,
        "shots": shots,
        "warm_shots": warm_shots,
        "per_shot_baseline_shots_per_s": rate_baseline,
        "unpacked_engine_shots_per_s": rate_unpacked,
        "packed_engine_shots_per_s": rate_packed,
        "speedup_vs_per_shot_baseline": rate_packed / rate_baseline,
        "speedup_vs_unpacked_engine": rate_packed / rate_unpacked,
        "failures": res_packed.failures,
        "bit_identical_to_unpacked": True,
    }
    print(
        f"  d={distance} p={p:g} shots={shots} | per-shot "
        f"{rate_baseline:7.0f}/s  unpacked engine {rate_unpacked:7.0f}/s  "
        f"packed engine {rate_packed:7.0f}/s "
        f"({row['speedup_vs_per_shot_baseline']:.1f}x vs per-shot, "
        f"{row['speedup_vs_unpacked_engine']:.1f}x vs unpacked engine)"
    )
    return row


# -- decode-phase overhaul ------------------------------------------------------


DECODE_PHASE_SPEEDUP_TARGET = 3.0
DECODE_E2E_SPEEDUP_TARGET = 1.5
# Quick/CI floor: the batched union-find arena must never decode slower
# than the per-shot reference walk it replaced, even at small distances
# where batches are shallow and per-row constants are modest.
DECODE_QUICK_FLOOR = 1.0


def _counter_value(name: str) -> float:
    # counter() is get-or-create, so this reads the engine's live
    # phase-seconds counters without importing its private globals.
    return float(_metrics.counter(name).value)


def _decode_phase_tables(circuit, decoder, shots, warm_shots, seed):
    """Sample a warm-up table plus TIMING_REPEATS fresh-seeded tables.

    Fresh seeds per repeat for the same reason as :func:`_timed_engine_run`:
    re-decoding one table would hand the second repeat a workload no fresh
    batch ever sees.  The canonical (first) table's observables come back
    unpacked for the failure-count comparison.
    """
    with DecodingEngine(circuit, decoder, shard_shots=4096) as engine:
        warm = engine.collect(warm_shots, seed=seed + 1)[0]
        tables = []
        observables = None
        for i in range(TIMING_REPEATS):
            det, obs_packed = engine.collect(shots, seed=seed + 100 * i)
            tables.append(det)
            if i == 0:
                observables = np.unpackbits(
                    obs_packed, axis=1, count=circuit.num_observables
                )
    return warm, tables, observables


def _timed_decode(decoder, tables, num_detectors):
    """Median decode-phase rate over the tables; returns all predictions."""
    rates = []
    predictions = []
    for det in tables:
        start = time.perf_counter()
        predictions.append(decoder.decode_packed(det, num_detectors))
        rates.append(det.shape[0] / (time.perf_counter() - start))
    return predictions, statistics.median(rates)


def _decode_phase_pair(distance, rounds, p, shots, warm_shots, seed):
    """Time per-shot vs batched union-find decode on identical tables.

    Both decoders are warmed (edge arrays, sparse tables, arena buffers)
    on a separate warm table, then timed under ``caching_disabled()`` so
    the cross-batch syndrome cache -- a separate win, measured in
    :func:`decode_phase` -- cannot serve rows to either side.  Per-table
    predictions must be bit-identical.
    """
    circuit = memory_circuit(distance, rounds, p)
    dem = FrameSimulator(circuit).detector_error_model()
    graph = DecodingGraph.from_dem(dem)
    per_shot = UnionFindDecoder(graph, batched=False)
    batched = UnionFindDecoder(graph)
    num_det = circuit.num_detectors
    warm, tables, observables = _decode_phase_tables(
        circuit, batched, shots, warm_shots, seed
    )
    with caching_disabled():
        per_shot.decode_packed(warm, num_det)
        batched.decode_packed(warm, num_det)
        base_preds, rate_base = _timed_decode(per_shot, tables, num_det)
        fast_preds, rate_fast = _timed_decode(batched, tables, num_det)
    for full, arena in zip(base_preds, fast_preds):
        assert np.array_equal(full, arena), (
            f"batched union-find must be bit-identical to the per-shot "
            f"path at d={distance}"
        )
    failures = int((fast_preds[0][:, 0] ^ observables[:, 0]).sum())
    return circuit, per_shot, batched, rate_base, rate_fast, failures


def decode_phase(distance=11, p=5e-4, shots=4096, warm_shots=512, seed=67):
    """d=11 low-p acceptance point for the batched decode path.

    Phase one times the *decode phase alone* on pre-sampled packed
    tables (collected once through the shared-memory transport): the
    batched union-find arena with its sparse <=2-defect fast path vs the
    per-shot reference walk it replaced, cache disabled for both.  Phase
    two re-runs the full engine (sample + dedup + decode) with each
    decoder -- the batched side with the cross-batch syndrome cache live,
    the per-shot side with it disabled (the pre-overhaul configuration)
    -- and splits the batched run's wall clock into sample vs decode
    seconds from the engine phase counters.  Both phases must be
    bit-identical: same predictions per table, same failure count per
    seed.
    """
    rounds = distance + 1
    (circuit, per_shot, batched, rate_base, rate_fast, failures) = (
        _decode_phase_pair(distance, rounds, p, shots, warm_shots, seed)
    )

    sample_before = _counter_value("repro_engine_sample_seconds_total")
    decode_before = _counter_value("repro_engine_decode_seconds_total")
    info_before = syndrome_cache().cache_info()
    engine_new = DecodingEngine(circuit, batched, shard_shots=1024)
    res_new, rate_e2e_new = _timed_engine_run(engine_new, shots, warm_shots, seed)
    engine_new.close()
    sample_seconds = (
        _counter_value("repro_engine_sample_seconds_total") - sample_before
    )
    decode_seconds = (
        _counter_value("repro_engine_decode_seconds_total") - decode_before
    )
    info_after = syndrome_cache().cache_info()

    engine_old = DecodingEngine(circuit, per_shot, shard_shots=1024)
    with caching_disabled():
        res_old, rate_e2e_old = _timed_engine_run(
            engine_old, shots, warm_shots, seed
        )
    engine_old.close()
    assert (res_new.shots, res_new.failures) == (res_old.shots, res_old.failures), (
        "batched and per-shot engines must agree bit-for-bit at a fixed seed"
    )

    row = {
        "distance": distance,
        "p": p,
        "rounds": rounds,
        "shots": shots,
        "per_shot_decode_shots_per_s": rate_base,
        "batched_decode_shots_per_s": rate_fast,
        "decode_speedup": rate_fast / rate_base,
        "per_shot_e2e_shots_per_s": rate_e2e_old,
        "batched_e2e_shots_per_s": rate_e2e_new,
        "e2e_speedup": rate_e2e_new / rate_e2e_old,
        "sample_seconds": sample_seconds,
        "decode_seconds": decode_seconds,
        "cache_hits": info_after.hits - info_before.hits,
        "cache_misses": info_after.misses - info_before.misses,
        "failures": failures,
        "bit_identical": True,
    }
    print(
        f"  d={distance} p={p:g} shots={shots} | decode-only per-shot "
        f"{rate_base:7.0f}/s  batched {rate_fast:7.0f}/s "
        f"({row['decode_speedup']:.1f}x)  end-to-end {rate_e2e_old:7.0f}/s "
        f"-> {rate_e2e_new:7.0f}/s ({row['e2e_speedup']:.1f}x; "
        f"sample {sample_seconds:.2f}s / decode {decode_seconds:.2f}s; "
        f"cache {row['cache_hits']} hits / {row['cache_misses']} misses)"
    )
    return row


def decode_phase_quick_gate(p=1e-3, shots=2048, warm_shots=256, seed=71):
    """CI gate: batched union-find bit-identical, never slower (d=5/d=7)."""
    rows = {}
    for distance in (5, 7):
        _, _, _, rate_base, rate_fast, failures = _decode_phase_pair(
            distance, distance + 1, p, shots, warm_shots, seed
        )
        rows[f"d{distance}"] = {
            "distance": distance,
            "p": p,
            "shots": shots,
            "per_shot_decode_shots_per_s": rate_base,
            "batched_decode_shots_per_s": rate_fast,
            "decode_speedup": rate_fast / rate_base,
            "failures": failures,
            "bit_identical": True,
        }
        print(
            f"  d={distance} p={p:g} shots={shots} | decode-only per-shot "
            f"{rate_base:7.0f}/s  batched {rate_fast:7.0f}/s "
            f"({rows[f'd{distance}']['decode_speedup']:.1f}x, bit-identical)"
        )
    return rows


def _assert_decode_phase(row: dict) -> None:
    assert row["decode_speedup"] >= DECODE_PHASE_SPEEDUP_TARGET, (
        f"batched union-find decode phase only {row['decode_speedup']:.2f}x "
        f"the per-shot path at d={row['distance']} "
        f"(target {DECODE_PHASE_SPEEDUP_TARGET}x)"
    )
    assert row["e2e_speedup"] >= DECODE_E2E_SPEEDUP_TARGET, (
        f"batched engine only {row['e2e_speedup']:.2f}x end-to-end over the "
        f"per-shot engine at d={row['distance']} "
        f"(target {DECODE_E2E_SPEEDUP_TARGET}x)"
    )


def _assert_decode_quick(rows: dict) -> None:
    for row in rows.values():
        assert row["decode_speedup"] >= DECODE_QUICK_FLOOR, (
            f"batched union-find decode at d={row['distance']} only "
            f"{row['decode_speedup']:.2f}x the per-shot path "
            f"(floor {DECODE_QUICK_FLOOR}x)"
        )


# -- biased-noise point ---------------------------------------------------------


def biased_noise_point(
    distance=7, p=3e-3, bias=8.0, shots=4000, warm_shots=1024, seed=31
):
    """d=7 biased-Pauli point: packed throughput + weighted-vs-uniform.

    Exercises the PAULI_CHANNEL_1/2 sampling path at scale through the
    packed engine, and pairs the DEM-LLR-weighted MWPM against the
    uniform-weight baseline graph on the *same* sampled syndromes -- the
    noise layer's acceptance comparison, tracked per PR next to the
    packed-pipeline numbers.
    """
    # X-basis memory: the Z-heavy channel lands in the detecting sector,
    # so failures are plentiful and the weighting comparison has teeth.
    circuit = memory_circuit(
        distance, distance + 1, p, basis="X", noise=BiasedPauli(p, bias=bias)
    )
    dem = FrameSimulator(circuit).detector_error_model()
    weighted = make_decoder("mwpm", dem)

    engine = DecodingEngine(circuit, weighted, shard_shots=4096)
    _, rate_packed = _timed_engine_run(engine, shots, warm_shots, seed)
    engine.close()

    failures = paired_failure_counts(
        circuit,
        {"weighted": weighted, "uniform": "mwpm_uniform"},
        shots,
        seed=np.random.SeedSequence(seed),
        dem=dem,
        shard_shots=4096,
    )

    row = {
        "distance": distance,
        "p": p,
        "bias": bias,
        "basis": "X",
        "shots": shots,
        "packed_engine_shots_per_s": rate_packed,
        "failures_weighted": failures["weighted"],
        "failures_uniform": failures["uniform"],
    }
    print(
        f"  d={distance} p={p:g} bias={bias:g} shots={shots} | packed engine "
        f"{rate_packed:7.0f}/s  weighted {failures['weighted']} vs uniform "
        f"{failures['uniform']} failures (paired samples)"
    )
    return row


# -- periodic round-compilation -------------------------------------------------


PERIODIC_SPEEDUP_TARGET = 2.0
# Quick/CI floor: the periodic path must never be slower than linear; the
# margin absorbs single-run wobble on loaded runners.
PERIODIC_QUICK_FLOOR = 0.95


def _timed_cold_pipeline(circuit, method, mode, shots, seed):
    """Median-of-repeats end-to-end pipeline time: DEM + compile + sample.

    Every repeat starts cold (the compiled-program cache is cleared), so
    the rate charges the full per-circuit setup cost -- DEM extraction and
    program compilation -- on top of the packed sampling run, matching how
    an estimator first touches a new circuit.  One untimed warm-up pass
    absorbs one-time process costs (imports, allocator growth).
    """

    def once(run_seed):
        clear_caches()
        start = time.perf_counter()
        dem = extract_dem(circuit, method=method)
        program = compile_program(circuit, mode=mode)
        detectors, observables = program.run_packed(
            shots, np.random.default_rng(run_seed)
        )
        elapsed = time.perf_counter() - start
        return elapsed, dem, program, detectors, observables

    once(seed)  # warm-up
    results = [once(seed) for _ in range(TIMING_REPEATS)]
    elapsed = statistics.median(r[0] for r in results)
    _, dem, program, detectors, observables = results[0]
    return shots / elapsed, dem, program, detectors, observables


def periodic_vs_linear(distance=7, p=1e-3, shots=4096, seed=43):
    """Round-replay compiler vs the linear compiler, end to end.

    Times DEM extraction + compilation + packed sampling as one cold
    pipeline per repeat (median of ``TIMING_REPEATS`` after warm-up), and
    asserts the two paths agree exactly: the periodic DEM must equal the
    linear DEM mechanism-for-mechanism, and the sampled detector and
    observable planes must be bit-identical at the fixed seed.
    """
    circuit = memory_circuit(distance, distance + 1, p)
    rate_lin, dem_lin, prog_lin, det_lin, obs_lin = _timed_cold_pipeline(
        circuit, "linear", "linear", shots, seed
    )
    rate_per, dem_per, prog_per, det_per, obs_per = _timed_cold_pipeline(
        circuit, "periodic", "periodic", shots, seed
    )
    assert isinstance(prog_per, PeriodicProgram), (
        f"d={distance} memory circuit must take the periodic compile path"
    )
    assert dem_lin.mechanisms == dem_per.mechanisms, (
        "periodic DEM must equal the linear DEM mechanism-for-mechanism"
    )
    assert np.array_equal(det_lin, det_per) and np.array_equal(obs_lin, obs_per), (
        "periodic replay must be bit-identical to linear execution per seed"
    )

    row = {
        "distance": distance,
        "p": p,
        "shots": shots,
        "rounds": distance + 1,
        "linear_shots_per_s": rate_lin,
        "periodic_shots_per_s": rate_per,
        "speedup": rate_per / rate_lin,
        "bit_identical": True,
        "dem_equal": True,
    }
    print(
        f"  d={distance} p={p:g} shots={shots} | linear {rate_lin:7.0f}/s  "
        f"periodic {rate_per:7.0f}/s ({row['speedup']:.1f}x, cold "
        f"DEM+compile+sample)"
    )
    return row


def periodic_d11_point(p=5e-4, shots=2048, seed=53):
    """d=11 low-p point: periodic median-of-3 vs a single linear reference.

    The linear pipeline at d=11 is dominated by the O(rounds) DEM
    extraction and takes >10s per repeat, so it is timed once; the
    periodic path is still the median of ``TIMING_REPEATS`` cold runs.
    """
    distance, rounds = 11, 12
    circuit = memory_circuit(distance, rounds, p)

    clear_caches()
    start = time.perf_counter()
    dem_lin = extract_dem(circuit, method="linear")
    prog_lin = compile_program(circuit, mode="linear")
    det_lin, obs_lin = prog_lin.run_packed(shots, np.random.default_rng(seed))
    rate_lin = shots / (time.perf_counter() - start)

    rate_per, dem_per, prog_per, det_per, obs_per = _timed_cold_pipeline(
        circuit, "periodic", "periodic", shots, seed
    )
    assert isinstance(prog_per, PeriodicProgram)
    assert dem_lin.mechanisms == dem_per.mechanisms
    assert np.array_equal(det_lin, det_per) and np.array_equal(obs_lin, obs_per)

    row = {
        "distance": distance,
        "p": p,
        "shots": shots,
        "rounds": rounds,
        "linear_shots_per_s": rate_lin,
        "linear_repeats": 1,
        "periodic_shots_per_s": rate_per,
        "speedup": rate_per / rate_lin,
        "bit_identical": True,
        "dem_equal": True,
    }
    print(
        f"  d={distance} p={p:g} shots={shots} | linear {rate_lin:7.0f}/s "
        f"(single run)  periodic {rate_per:7.0f}/s ({row['speedup']:.1f}x)"
    )
    return row


# -- rare-event importance sampling ---------------------------------------------


# Effective-shots/s gain of the importance-sampled engine over brute
# force at the d=7 rare point, at matched relative error: (IS shots/s x
# per-shot variance ratio) / brute shots/s.  Full-run acceptance target.
RARE_GAIN_TARGET = 100.0
# Kish effective-sample-size floor: below 0.1 * shots a few heavy weights
# dominate the weighted estimate and the proposal is over-inflated.
RARE_ESS_FLOOR = 0.1
# Brute-vs-IS agreement gate in the overlap region, in combined standard
# errors.  Shot counts are chosen so the statistical error (~10%) stays
# above the DEM independent-mechanism approximation's systematic offset
# (~5% at d=5, p=3e-3): the IS path samples the merged DEM directly,
# which is exact only to O(p^2) against the circuit-sampling brute path.
RARE_OVERLAP_SIGMAS = 2.0
# Reference brute-force resolution floor: the rate at which a generous
# fixed-budget brute sweep (1e5 shots/point, larger than any brute run in
# this repo's scenario suite) still expects ~10 failures.  The rare point
# must land >= 2 decades below it.
RARE_BRUTE_FLOOR = 1e-4
RARE_FLOOR_DECADES_TARGET = 2.0


def rare_overlap_check(
    distance=5, p=3e-3, rounds=3, inflation=2.5,
    brute_shots=60_000, is_shots=15_000, seed=37,
):
    """Brute force vs importance sampling where both can measure.

    At d=5, p=3e-3 the failure rate (~2e-3) is cheap for brute force, so
    the two estimators must agree: |IS - brute| within
    ``RARE_OVERLAP_SIGMAS`` combined standard errors, with the IS run's
    effective sample size above ``RARE_ESS_FLOOR`` of its shots.
    """
    circuit = memory_circuit(distance, rounds, p)
    with DecodingEngine(circuit, "mwpm", shard_shots=4096) as brute:
        res_brute = brute.run(brute_shots, seed=seed)
    with rare_engine(
        circuit, "mwpm", inflation=inflation, shard_shots=4096
    ) as rare:
        res_is = rare.run(is_shots, seed=seed)
    sigma = (res_brute.std_error ** 2 + res_is.std_error ** 2) ** 0.5
    z = abs(res_is.weighted_rate - res_brute.rate) / sigma
    row = {
        "distance": distance,
        "p": p,
        "rounds": rounds,
        "inflation": inflation,
        "brute_shots": brute_shots,
        "brute_rate": res_brute.rate,
        "brute_std_error": res_brute.std_error,
        "is_shots": is_shots,
        "is_rate": res_is.weighted_rate,
        "is_std_error": res_is.std_error,
        "agreement_sigmas": z,
        "ess_fraction": res_is.ess / res_is.shots,
    }
    print(
        f"  d={distance} p={p:g} | brute {res_brute.rate:.3e} "
        f"({brute_shots} shots)  IS {res_is.weighted_rate:.3e} "
        f"({is_shots} shots, s={inflation:g})  agreement {z:.2f} sigma  "
        f"ESS {row['ess_fraction']:.2f}n"
    )
    return row


def rare_event_gain(
    distance=7, p=5e-4, rounds=1, inflation=8.0,
    shots=40_000, warm_shots=4096, seed=41,
):
    """d=7 rare point: effective-shots/s of IS vs brute at matched error.

    The failure rate here (~1e-7) is beyond brute force entirely, so the
    brute engine contributes *timing only* (its shots are all-zero-
    dominated; it would need ~1e9 shots for one failure).  The comparison
    is in effective shots per second at matched relative error: one IS
    shot is worth ``p(1-p) / (per-shot IS variance)`` brute shots, so

        gain = (IS shots/s * variance ratio) / (brute shots/s).

    The same row records how far below the brute-force resolution floor
    (``RARE_BRUTE_FLOOR``) the estimate lands, in decades -- the "two
    decades below the old floor" acceptance of the rare-event sweep.
    """
    circuit = memory_circuit(distance, rounds, p)
    brute = DecodingEngine(circuit, "mwpm", shard_shots=4096)
    _, rate_brute = _timed_engine_run(brute, shots, warm_shots, seed)
    brute.close()
    rare = rare_engine(
        circuit, "mwpm", inflation=inflation, shard_shots=4096
    )
    res, rate_is = _timed_engine_run(rare, shots, warm_shots, seed)
    rare.close()
    p_hat = res.weighted_rate
    per_shot_var = res.variance * res.shots
    variance_ratio = (
        p_hat * (1.0 - p_hat) / per_shot_var if per_shot_var > 0 else 0.0
    )
    effective_rate = rate_is * variance_ratio
    gain = effective_rate / rate_brute if rate_brute > 0 else 0.0
    decades = (
        (np.log10(RARE_BRUTE_FLOOR) - np.log10(p_hat)) if p_hat > 0 else 0.0
    )
    row = {
        "distance": distance,
        "p": p,
        "rounds": rounds,
        "inflation": inflation,
        "shots": shots,
        "failures": res.failures,
        "rate": p_hat,
        "std_error": res.std_error,
        "rel_error": res.rel_error,
        "ess_fraction": res.ess / res.shots,
        "brute_shots_per_s": rate_brute,
        "is_shots_per_s": rate_is,
        "variance_ratio": variance_ratio,
        "effective_shots_per_s": effective_rate,
        "effective_gain": gain,
        "brute_floor": RARE_BRUTE_FLOOR,
        "floor_extension_decades": float(decades),
    }
    print(
        f"  d={distance} p={p:g} | rate {p_hat:.3e} +- {res.std_error:.1e} "
        f"({res.failures} weighted failures)  brute {rate_brute:7.0f}/s  "
        f"IS {rate_is:7.0f}/s x {variance_ratio:.0f} variance = "
        f"{effective_rate:9.0f} eff/s ({gain:.0f}x), "
        f"{decades:.1f} decades below the {RARE_BRUTE_FLOOR:g} brute floor"
    )
    return row


def _assert_rare_overlap(row: dict) -> None:
    assert row["agreement_sigmas"] <= RARE_OVERLAP_SIGMAS, (
        f"importance-sampled estimate {row['is_rate']:.3e} disagrees with "
        f"brute force {row['brute_rate']:.3e} by "
        f"{row['agreement_sigmas']:.2f} sigma (gate {RARE_OVERLAP_SIGMAS})"
    )
    assert row["ess_fraction"] >= RARE_ESS_FLOOR, (
        f"importance-sampling ESS at {row['ess_fraction']:.3f} of shots "
        f"(floor {RARE_ESS_FLOOR}); the proposal is over-inflated"
    )


def _assert_rare_gain(row: dict) -> None:
    assert row["effective_gain"] >= RARE_GAIN_TARGET, (
        f"rare-event engine only {row['effective_gain']:.0f}x effective "
        f"shots/s over brute force (target {RARE_GAIN_TARGET}x)"
    )
    assert row["floor_extension_decades"] >= RARE_FLOOR_DECADES_TARGET, (
        f"rare point at {row['rate']:.2e} is only "
        f"{row['floor_extension_decades']:.1f} decades below the brute "
        f"floor {row['brute_floor']:g} (target {RARE_FLOOR_DECADES_TARGET})"
    )


# -- telemetry overhead gate ----------------------------------------------------


# Metrics-enabled throughput must stay within 3% of disabled.  Recording
# is per *batch* (one histogram observe + a few counter incs per
# 1024-shot shard), so the true overhead is far below the gate; the
# margin exists to absorb scheduler noise, not to license regressions.
METRICS_OVERHEAD_FLOOR = 0.97
OVERHEAD_REPEATS = 8


def metrics_overhead(distance=5, p=1e-3, shots=5_000, seed=61):
    """Packed-engine shots/s with metrics enabled vs disabled.

    Throughput on this class of shared machine drifts by +-10% over
    seconds-long windows -- an order of magnitude above the true
    telemetry cost (~90us of snapshot/delta/merge per ~30ms shard) --
    and back-to-back runs show a consistent "second run faster" warm-up
    of several percent, so neither independent rate comparisons nor
    simple interleaved pairs can resolve a 3% gate.  Each repeat
    therefore measures an A-B-A *triple* on one freshly-warmed seed:
    the bracketed mode runs once between two runs of the other mode,
    and its rate is compared against the bracket *average*, which
    cancels any locally-linear drift exactly.  Which mode sits in the
    middle alternates across repeats (cancelling position bias that is
    not linear), every repeat draws a fresh seed, and the reported
    ratio is the median of the per-triple ratios.
    """
    if not obs.tracing_enabled():
        # Disabled-mode spans must compile to a shared no-op object --
        # the zero-overhead contract for un-traced runs.
        assert obs.span("a") is obs.span("b"), (
            "disabled spans must be a shared no-op singleton"
        )
    circuit = memory_circuit(distance, distance + 1, p)
    engine = DecodingEngine(circuit, "mwpm", shard_shots=1024)
    engine.run(2048, seed=seed)  # warm: compile, DEM, cluster caches

    def timed(run_seed, metered):
        if not metered:
            with obs.metrics_disabled():
                start = time.perf_counter()
                engine.run(shots, seed=run_seed)
                return shots / (time.perf_counter() - start)
        start = time.perf_counter()
        engine.run(shots, seed=run_seed)
        return shots / (time.perf_counter() - start)

    ratios = []
    rates = {False: [], True: []}
    for repeat in range(OVERHEAD_REPEATS):
        run_seed = seed + 1 + repeat
        engine.run(shots, seed=run_seed)  # warm this seed's syndromes
        middle = repeat % 2 == 0  # True: off-ON-off; False: on-OFF-on
        outer1 = timed(run_seed, not middle)
        inner = timed(run_seed, middle)
        outer2 = timed(run_seed, not middle)
        bracket = (outer1 + outer2) / 2
        if middle:
            rates[True].append(inner)
            rates[False].append(bracket)
            ratios.append(inner / bracket)
        else:
            rates[False].append(inner)
            rates[True].append(bracket)
            ratios.append(bracket / inner)
    row = {
        "distance": distance,
        "p": p,
        "shots": shots,
        "repeats": OVERHEAD_REPEATS,
        "disabled_shots_per_s": statistics.median(rates[False]),
        "enabled_shots_per_s": statistics.median(rates[True]),
        "enabled_over_disabled": statistics.median(ratios),
    }
    print(
        f"  d={distance} p={p:g} shots={shots} | metrics off "
        f"{row['disabled_shots_per_s']:7.0f}/s  on "
        f"{row['enabled_shots_per_s']:7.0f}/s "
        f"(median A-B-A ratio {row['enabled_over_disabled']:.3f})"
    )
    return row


def _assert_overhead(row: dict) -> None:
    assert row["enabled_over_disabled"] >= METRICS_OVERHEAD_FLOOR, (
        f"metrics-enabled engine at {row['enabled_over_disabled']:.3f}x of "
        f"disabled throughput (floor {METRICS_OVERHEAD_FLOOR})"
    )


def _assert_periodic(row: dict, target: float) -> None:
    assert row["speedup"] >= target, (
        f"periodic compilation only {row['speedup']:.2f}x over the linear "
        f"pipeline at d={row['distance']} (target {target}x)"
    )


def _assert_biased(row: dict) -> None:
    # Degenerate-weight ties can flip a handful of shots either way; the
    # DEM-weighted matcher must stay at-or-below the baseline beyond that.
    slack = max(2, row["shots"] // 2000)
    assert row["failures_weighted"] <= row["failures_uniform"] + slack, (
        f"DEM-weighted MWPM ({row['failures_weighted']}) decoded worse than "
        f"the uniform baseline ({row['failures_uniform']}) under biased noise"
    )


def _write_output(rows: dict) -> None:
    # Provenance stamp: code fingerprint, timestamp (BENCH_TIMESTAMP
    # when the harness pins one), host and interpreter versions -- so
    # the perf trajectory in BENCH_*.json is attributable across PRs.
    rows = dict(rows)
    rows["meta"] = obs.run_metadata()
    OUTPUT.write_text(json.dumps(rows, indent=2) + "\n")


# -- pytest entry points --------------------------------------------------------


def test_engine_speedup_and_determinism(benchmark):
    """d=5 acceptance point plus the d=3/d=7 context rows."""
    print()
    _report(3, 1e-3, 10_000)
    base_rate, fast_rate = _report(5, 1e-3, 10_000)
    _report(7, 1e-3, 4_000)

    circuit = memory_circuit(5, 6, 1e-3)
    results = []
    for workers in (1, 4):
        with DecodingEngine(
            circuit, "mwpm", shard_shots=1024, workers=workers
        ) as engine:
            res = engine.run(10_000, seed=11)
        results.append((res.shots, res.failures, res.shards))
    print(f"  1w vs 4w at fixed seed: {results[0]} vs {results[1]}")
    assert results[0] == results[1], "engine must be worker-count invariant"
    assert fast_rate >= 5 * base_rate, (
        f"engine speedup {fast_rate / base_rate:.1f}x below the 5x target"
    )

    # Benchmark the engine's hot path itself for the pedantic record.
    engine = DecodingEngine(circuit, "mwpm", shard_shots=1024, workers=1)
    benchmark.pedantic(lambda: engine.run(5_000, seed=13), rounds=1, iterations=1)


def test_union_find_engine_throughput(benchmark):
    """Union-find through the engine: the faster, looser decoder."""
    circuit = memory_circuit(5, 6, 1e-3)
    engine = DecodingEngine(circuit, "union_find", shard_shots=1024, workers=1)
    result = benchmark.pedantic(
        lambda: engine.run(5_000, seed=13), rounds=1, iterations=1
    )
    print()
    print(f"  union_find d=5: {result.failures}/{result.shots} failures")
    assert result.shots == 5_000


def _assert_speedups(row: dict) -> None:
    assert row["speedup_vs_per_shot_baseline"] >= PACKED_SPEEDUP_TARGET, (
        f"packed engine only {row['speedup_vs_per_shot_baseline']:.1f}x over "
        f"the per-shot baseline (target {PACKED_SPEEDUP_TARGET}x)"
    )
    assert row["speedup_vs_unpacked_engine"] >= ENGINE_SPEEDUP_FLOOR, (
        f"packed engine only {row['speedup_vs_unpacked_engine']:.1f}x over "
        f"the unpacked dedup engine (floor {ENGINE_SPEEDUP_FLOOR}x)"
    )


def test_packed_engine_speedup():
    """d=7, p=1e-3 packed acceptance point; writes BENCH_frame.json."""
    print()
    row = packed_vs_unpacked()
    biased = biased_noise_point()
    print("decode-phase overhaul (quick gate, d=5/d=7):")
    decode_block = {"quick_gate": decode_phase_quick_gate()}
    print("periodic round-compilation (d=7, p=1e-3):")
    periodic = periodic_vs_linear()
    print("rare-event importance sampling (overlap d=5, gain d=7):")
    rare_overlap = rare_overlap_check()
    rare_gain = rare_event_gain()
    print("telemetry overhead (d=5, p=1e-3):")
    overhead = metrics_overhead()
    _write_output({
        "packed_vs_unpacked": row,
        "biased_d7": biased,
        "decode_phase": decode_block,
        "periodic_vs_linear": {"d7": periodic},
        "rare_event": {"overlap": rare_overlap, "gain": rare_gain},
        "metrics_overhead": overhead,
    })
    _assert_speedups(row)
    _assert_biased(biased)
    _assert_decode_quick(decode_block["quick_gate"])
    _assert_periodic(periodic, PERIODIC_SPEEDUP_TARGET)
    _assert_rare_overlap(rare_overlap)
    _assert_rare_gain(rare_gain)
    _assert_overhead(overhead)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced shot counts for CI smoke runs",
    )
    args = parser.parse_args()
    print("packed frame pipeline (d=7, p=1e-3):")
    if args.quick:
        row = packed_vs_unpacked(shots=1500, warm_shots=512)
    else:
        row = packed_vs_unpacked()
    print("biased-noise point (d=7, p=3e-3, PAULI_CHANNEL_1/2):")
    if args.quick:
        biased = biased_noise_point(shots=1500, warm_shots=512)
    else:
        biased = biased_noise_point()
    print("decode-phase overhaul (quick gate, d=5/d=7):")
    decode_block = {"quick_gate": decode_phase_quick_gate()}
    if not args.quick:
        print("decode-phase overhaul (d=11, p=5e-4):")
        decode_block["d11"] = decode_phase()
    print("periodic round-compilation (d=7, p=1e-3):")
    periodic_block = {"d7": periodic_vs_linear()}
    if not args.quick:
        print("periodic round-compilation (d=11, p=5e-4):")
        periodic_block["d11"] = periodic_d11_point()
    print("rare-event importance sampling (overlap d=5, gain d=7):")
    if args.quick:
        rare_overlap = rare_overlap_check(brute_shots=30_000, is_shots=8_000)
        rare_gain = rare_event_gain(shots=8_000, warm_shots=1024)
    else:
        rare_overlap = rare_overlap_check()
        rare_gain = rare_event_gain()
    print("telemetry overhead (d=5, p=1e-3):")
    overhead = metrics_overhead()
    _write_output({
        "packed_vs_unpacked": row,
        "biased_d7": biased,
        "decode_phase": decode_block,
        "periodic_vs_linear": periodic_block,
        "rare_event": {"overlap": rare_overlap, "gain": rare_gain},
        "metrics_overhead": overhead,
    })
    _assert_speedups(row)
    _assert_biased(biased)
    # Quick/CI runs gate the decode overhaul on "bit-identical and never
    # slower" at d=5/d=7; the full run additionally holds the d=11 3x
    # decode-phase and 1.5x end-to-end acceptance targets.
    _assert_decode_quick(decode_block["quick_gate"])
    if not args.quick:
        _assert_decode_phase(decode_block["d11"])
    # Quick/CI runs gate on "periodic path active and never slower"; the
    # full run holds the 2x end-to-end acceptance target and the d=11
    # low-p point.
    _assert_periodic(
        periodic_block["d7"],
        PERIODIC_QUICK_FLOOR if args.quick else PERIODIC_SPEEDUP_TARGET,
    )
    if not args.quick:
        _assert_periodic(periodic_block["d11"], PERIODIC_SPEEDUP_TARGET)
    # Quick runs gate the rare path on correctness only (unbiased in the
    # overlap region, healthy ESS); the full run additionally holds the
    # 100x effective-throughput and floor-extension targets, whose
    # variance estimates need the full shot counts.
    _assert_rare_overlap(rare_overlap)
    if not args.quick:
        _assert_rare_gain(rare_gain)
    _assert_overhead(overhead)
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
