"""Bench E-F11: factory SE-round and idle-storage SE-period optimization."""

from repro.experiments import fig11


def test_fig11ab_factory_se_rounds(benchmark):
    def run():
        return (
            fig11.factory_volume_vs_se_rounds(1.0 / 6),
            fig11.factory_volume_vs_se_rounds(1.0 / 2),
        )

    curve_a, curve_b = benchmark(run)
    print()
    for alpha, curve in ((1 / 6, curve_a), (1 / 2, curve_b)):
        best = fig11.optimal_period_of_curve(curve)
        print(f"alpha = {alpha:.3f}: optimal SE rounds per gate = {best}")
        for rounds, vol in sorted(curve.items()):
            print(f"  {rounds:5.2f} rounds/gate -> {vol:10.1f} qubit*s")
        assert best <= 1.0  # paper: ~1 round per gate or fewer


def test_fig11cd_idle_period(benchmark):
    curves = benchmark(fig11.idle_volume_vs_period)
    print()
    optima = {}
    for target, curve in curves.items():
        best = fig11.optimal_period_of_curve(curve)
        optima[target] = best
        print(f"rate target {target:.0e}: optimal SE period = {best * 1e3:.2f} ms")
    values = list(optima.values())
    # Largely independent of the distance family (paper Fig. 11(c)).
    assert max(values) / min(values) < 4.0
    assert all(5e-4 < v < 6e-2 for v in values)
