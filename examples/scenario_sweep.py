"""Drive the estimation pipeline programmatically: registry + sweep engine.

Three levels of the same machinery:

1. run a registered scenario by name (what the CLI does);
2. declare a custom grid sweep over the factoring estimator, sharded
   across worker processes with worker-invariant results;
3. inspect the sub-model cache the sweeps share.

Run:  PYTHONPATH=src python examples/scenario_sweep.py
"""

from functools import partial

from repro.algorithms.factoring import estimate_factoring, FactoringParameters
from repro.core.params import ArchitectureConfig
from repro.estimator import cache_stats, grid, run_scenario, sweep


def _volume_point(point: dict, config: ArchitectureConfig) -> dict:
    """Mq-days at one (code distance, runway separation) grid point."""
    params = FactoringParameters(
        code_distance=point["code_distance"],
        runway_separation=point["runway_separation"],
    )
    est = estimate_factoring(params, config)
    return {
        "mq_days": est.physical_qubits * est.runtime_seconds / 86400.0 / 1e6,
        "factories": est.num_factories,
    }


def main() -> None:
    # 1. Registered scenario, exactly as `python -m repro fig13` runs it.
    result = run_scenario("fig13", jobs=1)
    print(f"scenario {result.scenario!r}: {len(result.records)} records")
    print(f"  first record: {result.records[0]}")

    # 2. A custom sweep the paper never plotted: distance x runway grid.
    records = sweep(
        partial(_volume_point, config=ArchitectureConfig()),
        grid(code_distance=(25, 27, 29), runway_separation=(48, 96, 192)),
        jobs=2,  # sharded; identical records for any job count
    )
    print("\ncustom distance x runway sweep (Mq-days):")
    for r in records:
        print(
            f"  d={r['code_distance']}  r_sep={r['runway_separation']:4d}"
            f"  -> {r['mq_days']:7.1f} Mq-days, {r['factories']:3d} factories"
        )

    # 3. The sweeps above shared these memoized sub-model calls.
    print("\nsub-model cache (hits, misses, size):")
    for name, stats in sorted(cache_stats().items()):
        if stats[1]:
            print(f"  {name}: {stats}")


if __name__ == "__main__":
    main()
