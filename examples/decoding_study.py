"""Monte-Carlo decoding study: memory suppression and the Eq. (4) fit.

Runs small surface-code memory and two-patch transversal-CNOT experiments
through the batched decoding engine (syndrome dedup + per-point seed
streams), decodes with MWPM (sequential correlated decoding across the
CNOT), and fits the paper's heuristic logical-error model (Fig. 6(a)).
Memory points use streaming early-stop sampling: shots are drawn until a
target failure count instead of a fixed batch.  Shot caps are kept small
so the script finishes quickly; increase them for tighter fits.

The physical error rate and the noise model are command-line parameters
backed by the noise-model registry (:mod:`repro.noise.models`), so the
same study runs under uniform depolarizing, biased Pauli, or
movement-aware noise -- the decoders reweight themselves from the DEM.

Run:  python examples/decoding_study.py [--p 0.003]
          [--noise uniform_depolarizing|biased_pauli|movement_aware]
          [--bias 10]
"""

import argparse

import numpy as np

from repro.decoder.analysis import (
    cnot_experiment_rate,
    fit_alpha,
    fit_memory_model,
    memory_logical_error,
    per_round_rate,
)
from repro.noise.models import available_noise_models, make_noise_model


def build_model(args):
    if args.noise == "biased_pauli":
        return make_noise_model(args.noise, p=args.p, bias=args.bias)
    if args.noise == "movement_aware":
        # Pass the registry name through: each experiment builder resolves
        # it with its own code distance, so the d=5 points use a d=5
        # interleave move (a shared instance would freeze one duration).
        return args.noise
    return make_noise_model(args.noise, p=args.p)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--p", type=float, default=0.003,
                        help="physical error rate (default 0.003)")
    parser.add_argument("--noise", default="uniform_depolarizing",
                        choices=available_noise_models(),
                        help="registered noise model to run under")
    parser.add_argument("--bias", type=float, default=10.0,
                        help="Z:X bias ratio for --noise biased_pauli")
    args = parser.parse_args()
    noise = build_model(args)
    p = args.p

    root = np.random.SeedSequence(11)
    print(f"== memory experiments under {noise!r} (early-stop sampling) ==")
    rates = []
    for (d, rounds, shots), point_seed in zip(
        [(3, 4, 3000), (5, 6, 1500)], root.spawn(2)
    ):
        res = memory_logical_error(
            d, rounds, p, shots, seed=point_seed, target_failures=20,
            noise=noise,
        )
        rate = per_round_rate(res, rounds)
        rates.append(rate)
        print(f"  d={d}: {res.failures}/{res.shots} failures -> "
              f"per-round {rate:.5f} (+-{res.std_error / rounds:.5f})")
    fit = fit_memory_model([3, 5], rates)
    print(f"  Eq. (2) fit: C = {fit.prefactor_c:.3f}, Lambda = {fit.lam:.2f}")

    print("\n== transversal-CNOT experiments (sequential decoder) ==")
    data = []
    cnot_seeds = iter(root.spawn(4))
    for d, shots in [(3, 1500), (5, 800)]:
        for every in (1, 2):
            res, n = cnot_experiment_rate(
                d, 6, p, every, shots, seed=next(cnot_seeds), noise=noise,
            )
            per_cnot = res.rate / n
            print(f"  d={d}, x=1/{every}: {res.failures}/{res.shots} -> "
                  f"per-CNOT {per_cnot:.5f}")
            if res.failures:
                data.append((d, 1.0 / every, per_cnot))

    alpha = fit_alpha(data, fit.prefactor_c, fit.lam)
    print(f"\n  Eq. (4) fit: alpha = {alpha.alpha:.3f} "
          f"(paper's MLE decoder: 0.167); C = {alpha.prefactor_c:.3f}")
    print("  (a larger alpha for matching-type decoders is expected; the")
    print("   paper sweeps exactly this sensitivity in Fig. 13(a))")


if __name__ == "__main__":
    main()
