"""Demo: run the estimation service and drive it like a remote client.

Starts a real HTTP server on an ephemeral port (the same code path as
``python -m repro serve``), then walks the API surface: discovery, a
synchronous estimate (cold, then warm from the persistent store), an
asynchronous job, a coalesced burst of identical requests, and the
service counters that make all of it observable.

Run:  PYTHONPATH=src python examples/service_demo.py
"""

import threading
import time

from repro.service.client import local_service


def main() -> None:
    with local_service(workers=4) as client:
        health = client.healthz()
        print(f"service up: version {health['version']}, "
              f"{health['scenarios']} scenarios registered")

        listing = client.scenarios()["scenarios"]
        print("\nscenarios:")
        for entry in listing:
            params = ", ".join(entry["params"] or []) or "-"
            print(f"  {entry['name']:12s} params: {params}")

        # Synchronous estimate: first request computes and persists...
        start = time.perf_counter()
        result = client.estimate("table2")
        cold_ms = (time.perf_counter() - start) * 1e3
        # ...the repeat is served from the content-addressed store.
        start = time.perf_counter()
        client.estimate("table2")
        warm_ms = (time.perf_counter() - start) * 1e3
        best = next(r for r in result["records"] if r["column"] == "ours")
        print(f"\ntable2 via /estimate: volume column 'ours', "
              f"{len(result['records'])} records")
        print(f"  window_exp={best['window_exp']}  "
              f"cold {cold_ms:.1f} ms -> warm {warm_ms:.2f} ms "
              f"({cold_ms / warm_ms:.0f}x)")

        # Asynchronous job with a parameter override.
        submitted = client.submit("fig13", target_error="1e-11")
        job_id = submitted["job"]["id"]
        print(f"\nsubmitted {job_id} (fig13, target_error=1e-11): "
              f"state={submitted['job']['state']}")
        payload = client.wait(job_id, timeout=60)
        print(f"  -> state={payload['job']['state']}, "
              f"{len(payload['result']['records'])} records")

        # Concurrent identical requests coalesce to one computation.
        barrier = threading.Barrier(8)

        def burst() -> None:
            barrier.wait()
            client.estimate_raw("fig11")

        threads = [threading.Thread(target=burst) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = client.stats()
        print(f"\nafter an 8-way identical burst on fig11:")
        print(f"  jobs:  {stats['jobs']}")
        print(f"  store: hits={stats['store']['hits']} "
              f"puts={stats['store']['puts']} "
              f"entries={stats['store']['entries']}")


if __name__ == "__main__":
    main()
