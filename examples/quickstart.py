"""Quickstart: estimate 2048-bit RSA factoring on the transversal architecture.

Reproduces the paper's headline numbers (Sec. IV.2): ~19 million physical
qubits for ~5.6 days at Table I hardware parameters, roughly 50x faster than
lattice-surgery baselines at the same footprint.

Run:  python examples/quickstart.py
"""

from repro.algorithms import FactoringParameters, estimate_factoring
from repro.baselines import ge_rescaled_to_atoms
from repro.core import ArchitectureConfig


def main() -> None:
    config = ArchitectureConfig()
    parameters = FactoringParameters()  # paper Table II defaults
    estimate = estimate_factoring(parameters, config)

    print("2048-bit RSA factoring on the transversal atom-array architecture")
    print(f"  physical qubits : {estimate.physical_qubits / 1e6:8.1f} million")
    print(f"  runtime         : {estimate.runtime_seconds / 86400:8.2f} days")
    print(f"  lookup-additions: {estimate.num_lookup_additions:8.3e}")
    print(f"  |CCZ> states    : {estimate.total_ccz:8.3e}")
    print(f"  factories       : {estimate.num_factories:8d}")
    print(f"  per lookup      : {estimate.lookup_time:8.3f} s")
    print(f"  per addition    : {estimate.addition_time:8.3f} s")

    baseline = ge_rescaled_to_atoms(reaction_time=10e-3)
    speedup = baseline.runtime_seconds / estimate.runtime_seconds
    print("\nGidney-Ekera lattice surgery rescaled to 900 us QEC cycles:")
    print(f"  {baseline.megaqubits:.1f} Mqubits for {baseline.runtime_days:.0f} days"
          f"  ->  transversal speedup ~{speedup:.0f}x")


if __name__ == "__main__":
    main()
