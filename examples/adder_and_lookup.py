"""Build and verify the arithmetic and look-up gadgets (Secs. III.7-III.8).

1. Generates a Cuccaro ripple-carry adder and checks it against integer
   addition on the reversible simulator.
2. Lays out the MAJ block (3 x 2 tiles, max move sqrt(2) d) and times a
   runway-segmented 2048-bit addition (paper: 0.28 s).
3. Generates a QROM, verifies it against its classical table, and checks
   the GHZ-assisted fan-out on the stabilizer simulator.
4. Times a 128-entry lookup (paper: 0.17 s).

Run:  python examples/adder_and_lookup.py
"""

import math
import random

import numpy as np

from repro.arithmetic import AdditionTiming, MajBlockLayout, RunwayConfig, add
from repro.lookup import LookupTiming, QROMSpec, fanout_circuit, fanout_wires, lookup
from repro.sim.tableau import TableauSimulator


def main() -> None:
    rng = random.Random(7)

    print("== Cuccaro adder verification ==")
    for width in (4, 8, 16):
        trials = [(rng.randrange(2**width), rng.randrange(2**width)) for _ in range(50)]
        ok = all(
            add(width, a, b) == ((a + b) % 2**width, (a + b) >> width)
            for a, b in trials
        )
        print(f"  width {width:2d}: 50 random additions {'OK' if ok else 'BROKEN'}")

    print("\n== MAJ block layout and addition timing (d = 27) ==")
    layout = MajBlockLayout(27)
    print(f"  footprint: {layout.footprint_tiles} logical tiles")
    print(f"  max move: {layout.max_move_sites():.1f} sites "
          f"(sqrt(2) d = {math.sqrt(2) * 27:.1f})")
    timing = AdditionTiming(RunwayConfig(2048, 96, 43), 27)
    print(f"  2048-bit addition: {timing.duration:.3f} s across "
          f"{timing.runway.num_segments} parallel segments (paper: 0.28 s)")

    print("\n== QROM verification ==")
    table = [rng.randrange(256) for _ in range(16)]
    ok = all(lookup(4, table, 8, addr) == table[addr] for addr in range(16))
    print(f"  16-entry, 8-bit QROM exhaustive check: {'OK' if ok else 'BROKEN'}")

    print("\n== GHZ fan-out on the stabilizer simulator ==")
    n = 6
    wires = fanout_wires(n)
    circuit = fanout_circuit(n)
    forced = {i: 0 for i in range(circuit.num_measurements)}
    sim = TableauSimulator(circuit.num_qubits, rng=np.random.default_rng(0))
    sim.x_gate(wires.control)
    sim.run(circuit, forced_measurements=forced)
    copies = [sim.measure(t) for t in wires.targets]
    print(f"  control=1 fans out to {n} targets: {copies}")

    print("\n== lookup timing (w = 7, d = 27) ==")
    timing = LookupTiming(QROMSpec(7, 2048), 27)
    print(f"  128-entry lookup: {timing.duration:.3f} s (paper: 0.17 s)")


if __name__ == "__main__":
    main()
