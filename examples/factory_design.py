"""Design and verify a magic-state factory (paper Sec. III.6, Fig. 8).

Walks through the full factory stack:

1. functional verification of the 8T-to-CCZ stage on the state-vector
   simulator (perfect |CCZ> with clean inputs; all single faults caught);
2. the exact distillation curve (Eq. 8's 28 p^2) from fault enumeration;
3. cultivation targets for the factoring error budget;
4. footprint, cycle time and fleet sizing at d = 27;
5. a 1-D layout for the CNOT stage found by the placement synthesizer.

Run:  python examples/factory_design.py
"""

from repro.codes.color_832 import Color832Code
from repro.factory import (
    CultivationModel,
    DistillationCurve,
    FactoryLayout,
    factory_cnot_layers,
    output_fidelity,
    required_t_error,
    run_factory,
    size_fleet,
    synthesize_1d_layout,
)


def main() -> None:
    print("== functional verification (state vector) ==")
    sim, accepted = run_factory()
    print(f"  clean inputs: accepted={accepted}, "
          f"|<CCZ|out>|^2 = {output_fidelity(sim):.9f}")
    rejected = sum(1 for v in range(8) if not run_factory((v,))[1])
    print(f"  single T faults detected: {rejected}/8")

    print("\n== exact distillation curve ==")
    curve = DistillationCurve(Color832Code())
    print(f"  undetected harmful weight-2 patterns: {curve.leading_coefficient()}")
    for p_in in (1e-3, 1e-4, 1e-5):
        print(f"  p_in = {p_in:.0e}: p_out = {curve.output_error(p_in):.3e} "
              f"(28 p^2 = {28 * p_in**2:.3e}), "
              f"acceptance = {curve.acceptance_rate(p_in):.4f}")

    print("\n== cultivation target for 2048-bit factoring ==")
    per_ccz = 0.05 / 3.25e9
    t_target = required_t_error(per_ccz)
    cultivation = CultivationModel(t_target, 27)
    print(f"  per-CCZ budget {per_ccz:.2e} -> per-T target {t_target:.2e}")
    print(f"  expected cultivation volume: "
          f"{cultivation.expected_volume_qubit_rounds:.2e} qubit-rounds "
          f"(paper: 1.5e4)")

    print("\n== footprint / throughput at d = 27 ==")
    layout = FactoryLayout(27)
    print(f"  atoms per factory: {layout.num_atoms}")
    print(f"  CNOT stage: {layout.cnot_stage_time() * 1e3:.2f} ms; "
          f"cycle: {layout.cycle_time(cultivation) * 1e3:.2f} ms")
    fleet = size_fleet(22000.0, 27, per_ccz, max_factories=192)
    print(f"  fleet for 22k CCZ/s: {fleet.count} factories, "
          f"{fleet.num_atoms / 1e6:.2f} M atoms")

    print("\n== 1-D CNOT-stage placement (OLSQ-style) ==")
    result = synthesize_1d_layout(factory_cnot_layers(), 11)
    print(f"  order: {result.order}")
    print(f"  max interaction distance: {result.max_distance} tiles "
          f"(re-ordering-free)")


if __name__ == "__main__":
    main()
