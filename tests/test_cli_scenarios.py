"""CLI + scenario-registry tests: smoke, JSON round-trip, golden values.

The golden files under ``tests/golden/`` were captured from the
pre-refactor (PR 1) code; the registry-driven pipeline must reproduce
them bit-identically (text) / within 1e-12 (numerics).
"""

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.estimator.registry import (
    all_sections,
    available_scenarios,
    run_scenario,
)

GOLDEN = Path(__file__).parent / "golden"


class TestScenarioSmoke:
    @pytest.mark.parametrize("name", sorted(available_scenarios()))
    def test_every_scenario_runs_through_dispatcher(self, name, capsys):
        main([name])
        out = capsys.readouterr().out
        assert out.strip(), f"scenario {name} printed nothing"

    @pytest.mark.parametrize("name", sorted(available_scenarios()))
    def test_every_scenario_json_round_trips(self, name, capsys):
        main(["--json", name])
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        result = payload[0]
        assert result["scenario"] == name
        assert isinstance(result["records"], list) and result["records"]
        assert all(isinstance(r, dict) for r in result["records"])

    def test_structured_records_match_render_source(self):
        result = run_scenario("table2")
        columns = {r["column"] for r in result.records}
        assert columns == {"ours", "gidney_ekera"}
        assert result.metadata["grid_points_evaluated"] > 0


class TestCLI:
    def test_headline_default(self, capsys):
        main([])
        out = capsys.readouterr().out
        assert "transversal" in out
        assert "days" in out

    def test_list_names_every_scenario(self, capsys):
        main(["--list"])
        out = capsys.readouterr().out
        for name in available_scenarios():
            assert name in out

    def test_multiple_sections(self, capsys):
        main(["table1", "fig6b"])
        out = capsys.readouterr().out
        assert "site_spacing_um" in out
        assert "SE rounds/CNOT" in out

    def test_unknown_section_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_unknown_section_validated_before_any_output(self, capsys):
        """A typo must not fail partway through a multi-section run."""
        with pytest.raises(SystemExit):
            main(["table1", "nope"])
        assert "site_spacing_um" not in capsys.readouterr().out

    def test_unknown_param_rejected_with_section_name(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig6b", "--param", "bogus_knob=3"])
        err = capsys.readouterr().err
        assert "fig6b" in err and "bogus_knob" in err

    def test_bad_param_exit_code_and_message_pinned(self, capsys):
        """argparse's up-front rejection: exit code 2, key named on stderr."""
        with pytest.raises(SystemExit) as excinfo:
            main(["fig6b", "--param", "bad=1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "fig6b" in err and "'bad'" in err and "supported" in err

    def test_bad_param_exit_code_pinned_in_subprocess(self):
        """The real process exit status, not just the in-process SystemExit."""
        repo_root = Path(__file__).parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fig6b", "--param", "bad=1"],
            capture_output=True,
            cwd=repo_root,
            env=env,
        )
        assert proc.returncode == 2
        assert b"'bad'" in proc.stderr and b"fig6b" in proc.stderr
        assert proc.stdout == b""

    def test_unknown_param_validated_before_any_output(self, capsys):
        """A param one section rejects must not abort mid-invocation."""
        with pytest.raises(SystemExit):
            main(["fig6b", "table1", "--param", "target_error=1e-9"])
        out, err = capsys.readouterr()
        assert "SE rounds/CNOT" not in out  # fig6b never printed
        assert "table1" in err and "target_error" in err

    def test_json_is_rfc_valid_with_infeasible_points(self, capsys):
        """fig11_idle carries inf volumes; JSON must not emit Infinity."""
        main(["--json", "fig11_idle"])
        out = capsys.readouterr().out
        assert "Infinity" not in out
        payload = json.loads(out)
        volumes = [r["volume"] for r in payload[0]["records"]]
        assert None in volumes  # infeasible points serialized as null
        assert any(isinstance(v, float) for v in volumes)

    def test_param_override_changes_output(self, capsys):
        main(["--json", "fig6b", "--param", "target_error=1e-9"])
        loose = json.loads(capsys.readouterr().out)[0]
        main(["--json", "fig6b"])
        tight = json.loads(capsys.readouterr().out)[0]
        assert loose["metadata"]["target_error"] == 1e-9
        assert loose["records"][0]["volume"] < tight["records"][0]["volume"]

    def test_jobs_flag_matches_serial(self, capsys):
        main(["--json", "fig14"])
        serial = capsys.readouterr().out
        main(["--json", "--jobs", "2", "fig14"])
        sharded = capsys.readouterr().out
        assert serial == sharded

    def test_all_covers_canonical_sections(self, capsys):
        assert all_sections() == (
            "table1", "table2", "fig2", "fig6b",
            "fig11", "fig12", "fig13", "fig14",
        )


class TestGolden:
    def test_cli_all_bit_identical(self, capsys):
        main(["all"])
        out = capsys.readouterr().out
        assert out == (GOLDEN / "cli_all.txt").read_text()

    def test_cli_headline_bit_identical(self, capsys):
        main([])
        out = capsys.readouterr().out
        assert out == (GOLDEN / "cli_headline.txt").read_text()

    def test_numeric_outputs_within_1e12(self):
        from repro.algorithms.factoring import estimate_factoring
        from repro.experiments import fig6, fig11, fig13, fig14

        golden = json.loads((GOLDEN / "estimator_values.json").read_text())

        def check_curve(curve, expected):
            pairs = sorted([[float(k), v] for k, v in curve.items()])
            assert len(pairs) == len(expected)
            for (key, value), (gkey, gvalue) in zip(pairs, expected):
                assert key == pytest.approx(gkey, abs=0.0)
                assert value == pytest.approx(gvalue, rel=1e-12)

        est = estimate_factoring()
        head = golden["headline"]
        assert est.physical_qubits == pytest.approx(
            head["physical_qubits"], rel=1e-12
        )
        assert est.runtime_seconds == pytest.approx(
            head["runtime_seconds"], rel=1e-12
        )
        assert est.logical_error == pytest.approx(
            head["logical_error"], rel=1e-12
        )
        assert est.num_factories == head["num_factories"]
        check_curve(fig6.generate_fig6b(), golden["fig6b"])
        check_curve(
            fig11.factory_volume_vs_se_rounds(1 / 6),
            golden["fig11_factory_alpha_sixth"],
        )
        check_curve(fig13.volume_vs_alpha(), golden["fig13_alpha"])
        check_curve(fig13.volume_vs_coherence(), golden["fig13_coherence"])
        check_curve(
            fig14.volume_vs_acceleration(), golden["fig14_acceleration"]
        )
        check_curve(
            fig14.volume_vs_reaction_time(), golden["fig14_reaction"]
        )
        tradeoff = fig14.qubit_time_tradeoff()
        for point, gpoint in zip(tradeoff, golden["fig14_tradeoff"]):
            assert point[0] == pytest.approx(gpoint[0], rel=1e-12)
            assert point[1] == pytest.approx(gpoint[1], rel=1e-12)

    def test_optimizer_volume_matches_golden(self):
        from repro.algorithms.optimizer import optimize_factoring

        golden = json.loads((GOLDEN / "estimator_values.json").read_text())
        result = optimize_factoring()
        assert result.spacetime_volume == pytest.approx(
            golden["optimizer"]["best_volume"], rel=1e-12
        )
        for key in ("window_exp", "window_mul", "runway_separation",
                    "runway_padding"):
            assert getattr(result.parameters, key) == golden["optimizer"][key]


class TestRenderTableII:
    def test_empty_rows_return_message_not_stopiteration(self):
        from repro.experiments.tables import render_table_ii

        out = render_table_ii({})
        assert "no rows" in out

    def test_nonempty_rows_render(self):
        from repro.experiments.tables import render_table_ii

        out = render_table_ii({"ours": {"window_exp": 3}})
        assert "window_exp" in out


class TestLintCLI:
    """python -m repro lint: the static-analysis driver's CLI surface."""

    @staticmethod
    def _run_lint(*argv):
        repo_root = Path(__file__).parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            capture_output=True, text=True, cwd=repo_root, env=env,
        )

    def test_in_process_single_scenario_is_clean(self, capsys):
        from repro.analysis.lint import lint_main

        assert lint_main(["fig13"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_in_process_unknown_scenario_exits_2(self, capsys):
        from repro.analysis.lint import lint_main

        with pytest.raises(SystemExit) as excinfo:
            lint_main(["nonesuch"])
        assert excinfo.value.code == 2
        assert "nonesuch" in capsys.readouterr().err

    def test_in_process_names_plus_all_rejected(self, capsys):
        from repro.analysis.lint import lint_main

        with pytest.raises(SystemExit) as excinfo:
            lint_main(["fig13", "--all"])
        assert excinfo.value.code == 2

    def test_all_scenarios_clean_in_subprocess(self):
        """The CI gate: zero error-severity diagnostics repo-wide."""
        proc = self._run_lint("--all")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 error(s)" in proc.stdout

    def test_source_lint_warnings_do_not_gate_by_default(self):
        proc = self._run_lint("fig13", "--source")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_fail_on_warning_gates_source_warnings(self):
        # The simulators' unseeded default_rng fallbacks are known
        # warnings, so tightening the threshold must flip the exit code.
        proc = self._run_lint("fig13", "--source", "--fail-on", "warning")
        assert proc.returncode == 1
        assert "default_rng" in proc.stdout
